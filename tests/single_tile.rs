//! Regression test for the single-tile scheduling livelock.
//!
//! On one tile, every propagation-kernel queue lives on the same TSU, and
//! RMAT-scale datasets give T4's frontier IQ (one entry per 32 local
//! vertices) a larger capacity than T1's 64-word IQ.  Under
//! occupancy-priority scheduling both sit at High priority when full, the
//! tie goes to the larger queue, and — before T4 declared its
//! `requires_iq_space(T1, 1)` output-queue guarantee — the TSU dispatched
//! T4 every cycle forever: each invocation found IQ1 full, pushed nothing,
//! popped nothing, and still counted as watchdog progress, so
//! `scaling_study`'s first sweep step (1 tile, RMAT-13) crawled into
//! `CycleLimitExceeded { limit: 200000000 }`.  This test pins the fixed
//! behaviour on a scaled-down instance of the exact same configuration
//! (single tile, RMAT graph large enough that IQ4's capacity exceeds
//! IQ1's).

use dalorex::graph::generators::rmat::RmatConfig;
use dalorex::graph::reference;
use dalorex::kernels::BfsKernel;
use dalorex::sim::config::{Engine, GridConfig, SimConfigBuilder};
use dalorex::sim::Simulation;

#[test]
fn single_tile_bfs_terminates_and_matches_the_reference() {
    // RMAT-12: 4096 vertices -> 128 frontier blocks on one tile, exceeding
    // T1's 64-word IQ capacity — the tie-break regime that livelocked.
    let graph = RmatConfig::new(12, 8).seed(3).build().unwrap();
    let per_tile_bytes = ((2 * graph.num_vertices() + 2 * graph.num_edges()) * 4
        + 256 * 1024)
        .next_power_of_two();
    let config = SimConfigBuilder::new(GridConfig::square(1))
        .scratchpad_bytes(per_tile_bytes)
        // Generous for a healthy run (a few hundred thousand cycles), far
        // below the livelocked behaviour (which burned the full 200M).
        .max_cycles(20_000_000)
        .build()
        .unwrap();
    let sim = Simulation::new(config, &graph).unwrap();
    let outcome = sim
        .run(&BfsKernel::new(0))
        .expect("single-tile BFS must terminate (T4/T1 livelock regression)");
    let expected = reference::bfs(&graph, 0);
    assert_eq!(outcome.output.as_u32_array("value"), expected.depths());
    // A healthy single-tile run is PU/endpoint-bound, not stuck: T4 must
    // not dominate the invocation counts the way the livelock did (it
    // spun millions of no-op dispatches while T1 starved).
    let invocations = &outcome.stats.task_invocations;
    assert!(
        invocations[3] < invocations[2],
        "T4 dispatched {} times vs T3's {} — the frontier task is spinning",
        invocations[3],
        invocations[2]
    );
}

#[test]
fn single_tile_run_is_identical_across_engines() {
    // The engine square holds even degenerately (no fabric hops at all:
    // every message self-delivers through the ejection buffer).
    let graph = RmatConfig::new(9, 6).seed(5).build().unwrap();
    let config = SimConfigBuilder::new(GridConfig::square(1))
        .scratchpad_bytes(8 << 20)
        .build()
        .unwrap();
    let sim = Simulation::new(config, &graph).unwrap();
    let reference = sim
        .run_with_engine(&BfsKernel::new(0), Engine::Reference)
        .unwrap();
    for engine in Engine::ALL {
        let outcome = sim.run_with_engine(&BfsKernel::new(0), engine).unwrap();
        assert_eq!(outcome.cycles, reference.cycles, "{engine}");
        assert_eq!(outcome.stats, reference.stats, "{engine}");
        assert_eq!(outcome.output, reference.output, "{engine}");
    }
}
