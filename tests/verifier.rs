//! Integration tests for `dalorex-verify`, the static task-graph verifier.
//!
//! Three claims are pinned here:
//!
//! 1. **Zero false positives** — every shipped kernel verifies clean under
//!    [`VerifyMode::Deny`], and a `Deny` run aborts *before the first
//!    simulated cycle* when (and only when) the graph is defective.
//! 2. **The PR 5 livelock is statically rediscovered** — the pre-PR-5
//!    `scaling_study` shape (the shipped propagation kernel with
//!    `T4-frontier`'s `requires_iq_space` escape removed) is rejected with
//!    its stable code, `V031`.  The fixture is derived from the *shipped*
//!    declarations, so if the kernel's queue geometry ever drifts, the
//!    regression pin drifts with it.
//! 3. **The verifier tracks reality** — a property test generates random
//!    small task/channel graphs, runs each through the verifier, and
//!    executes the clean ones on a single tile with a synthetic
//!    message-forwarding kernel: a graph the verifier passes in `Deny`
//!    mode must terminate (no watchdog deadlock, no cycle-limit livelock).

use dalorex::graph::generators::grid2d::GridConfig as Grid2d;
use dalorex::graph::CsrGraph;
use dalorex::kernels::{BfsKernel, PageRankKernel, SpmvKernel, SsspKernel, WccKernel};
use dalorex::sim::config::{GridConfig, SimConfigBuilder};
use dalorex::sim::kernel::{
    BootstrapContext, ChannelDecl, EpochContext, EpochDecision, Kernel, LocalArrayDecl,
    TaskContext, TaskDecl, TaskId, TaskParams,
};
use dalorex::sim::verify::{verify_decls, verify_kernel, VerifyContext, VerifyMode};
use dalorex::sim::{ArraySpace, SimError, Simulation};
use proptest::prelude::*;

fn ctx() -> VerifyContext {
    VerifyContext::paper_default()
}

fn mesh4x4() -> CsrGraph {
    Grid2d::new(4, 4).build().unwrap()
}

#[test]
fn every_shipped_kernel_is_clean_under_deny() {
    let kernels: Vec<Box<dyn Kernel>> = vec![
        Box::new(BfsKernel::new(0)),
        Box::new(SsspKernel::new(0)),
        Box::new(WccKernel::new()),
        Box::new(PageRankKernel::new(10)),
        Box::new(SpmvKernel::with_default_input()),
    ];
    for kernel in &kernels {
        let report = verify_kernel(kernel.as_ref(), &ctx());
        assert!(
            !report.has_errors(),
            "shipped kernel must be deny-clean: {report}"
        );
        assert_eq!(
            report.warnings().count(),
            0,
            "shipped kernel warnings must be fixed or suppressed: {report}"
        );
        assert!(
            report.dataflow_analyzed,
            "{} skipped dataflow analysis",
            report.kernel
        );
    }
}

/// The pre-PR-5 `scaling_study` livelock, statically rediscovered: strip
/// `T4-frontier`'s `requires_iq_space` gate from the *shipped* propagation
/// declarations and the verifier must reject the graph with `V031` — the
/// occupancy-priority local-push livelock (T4's workload-sized IQ outranks
/// T1's bounded IQ forever once both fill, and without the gate T4 spins).
#[test]
fn pre_pr5_livelock_fixture_is_rejected_with_v031() {
    let shipped = BfsKernel::new(0).tasks();
    let channels = BfsKernel::new(0).channels();

    // Sanity: the fixture is the shipped kernel minus exactly one gate.
    let frontier = shipped
        .iter()
        .position(|t| t.name.contains("frontier"))
        .expect("shipped propagation kernel has a frontier task");
    assert!(
        !shipped[frontier].iq_space_required.is_empty(),
        "the shipped kernel carries the PR 5 fix"
    );

    let mut fixture = shipped.clone();
    fixture[frontier].iq_space_required.clear();

    let report = verify_decls("scaling_study_pre_pr5", &fixture, &channels, &ctx());
    assert!(report.has_errors(), "{report}");
    assert!(report.has_code("V031"), "{report}");
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == "V031")
        .unwrap();
    assert!(
        diag.subject.contains("frontier"),
        "the finding names the spinning task: {diag}"
    );

    // And the shipped declarations (gate intact) stay clean.
    let clean = verify_decls("scaling_study", &shipped, &channels, &ctx());
    assert!(!clean.has_errors(), "{clean}");
}

/// A deliberately hazardous kernel: self-managed producer with a large IQ,
/// ungated local push into a small consumer IQ — the V031 class, reduced
/// to two tasks.  The body never actually misbehaves (it pops and exits),
/// which is exactly the point: `Deny` rejects the *declarations* before a
/// single cycle runs, while `Warn`/`Off` let the run complete.
struct HazardKernel;

impl Kernel for HazardKernel {
    fn name(&self) -> &str {
        "hazard"
    }
    fn tasks(&self) -> Vec<TaskDecl> {
        vec![
            TaskDecl::new("producer", 64, TaskParams::SelfManaged)
                .pushes_local(1)
                .entry(),
            TaskDecl::new("consumer", 8, TaskParams::AutoPop(1)),
        ]
    }
    fn channels(&self) -> Vec<ChannelDecl> {
        vec![]
    }
    fn arrays(&self) -> Vec<LocalArrayDecl> {
        vec![]
    }
    fn output_arrays(&self) -> Vec<&'static str> {
        vec![]
    }
    fn bootstrap(&self, ctx: &mut dyn BootstrapContext) {
        if ctx.tile() == 0 {
            let _ = ctx.push_invocation(0, &[1]);
        }
    }
    fn execute(&self, task: TaskId, _params: &[u32], ctx: &mut dyn TaskContext) {
        if task == 0 {
            ctx.iq_pop();
        }
    }
    fn on_global_idle(&self, _epoch: usize, _ctx: &mut dyn EpochContext) -> EpochDecision {
        EpochDecision::Finish
    }
}

#[test]
fn deny_rejects_hazards_before_the_first_cycle_and_warn_does_not() {
    let graph = mesh4x4();
    let config = |mode: VerifyMode| {
        SimConfigBuilder::new(GridConfig::square(1))
            .scratchpad_bytes(1 << 20)
            .verify(mode)
            .build()
            .unwrap()
    };

    // Deny: the run fails with the verification report before cycle 0.
    let sim = Simulation::new(config(VerifyMode::Deny), &graph).unwrap();
    match sim.run(&HazardKernel) {
        Err(SimError::Verification { report }) => {
            assert!(report.has_code("V031"), "{report}");
        }
        other => panic!("expected a verification error under Deny, got {other:?}"),
    }

    // Warn (the default) and Off: the declarations are hazardous in
    // general but this body never trips the hazard, so the run completes.
    for mode in [VerifyMode::Warn, VerifyMode::Off] {
        let sim = Simulation::new(config(mode), &graph).unwrap();
        let outcome = sim.run(&HazardKernel).unwrap();
        assert!(outcome.cycles > 0, "{mode}");
    }
}

// ---------------------------------------------------------------------------
// Property test: verifier-clean graphs terminate on a single tile.
// ---------------------------------------------------------------------------

/// A randomly generated task graph, interpreted by [`SyntheticKernel`]:
/// every message is one word, a TTL; every task forwards `ttl - 1` along
/// each of its declared outputs while `ttl > 0`.
#[derive(Debug, Clone)]
struct GraphSpec {
    tasks: Vec<TaskDecl>,
    channels: Vec<ChannelDecl>,
}

/// Interprets a [`GraphSpec`] as a runnable kernel.  Auto-pop tasks
/// forward best-effort (a full destination drops the message — allowed,
/// since an ungated auto-pop producer cannot block).  Self-managed tasks
/// hold their head word until *every* declared output has accepted the
/// forward, tracking already-sent outputs in a per-task tile variable so
/// retries resume instead of duplicating messages — exactly the
/// partial-progress shape that made the PR 5 livelock reachable.
struct SyntheticKernel {
    spec: GraphSpec,
}

impl SyntheticKernel {
    /// Output list of `task`: declared channel sends, then local pushes.
    /// Each entry is `(channel, dest_task)`; `channel` is `None` for a
    /// same-tile local push.
    fn outputs(&self, task: usize) -> Vec<(Option<usize>, usize)> {
        let decl = &self.spec.tasks[task];
        decl.sends
            .iter()
            .map(|&c| (Some(c), self.spec.channels[c].dest_task))
            .chain(decl.local_pushes.iter().map(|&t| (None, t)))
            .collect()
    }
}

impl Kernel for SyntheticKernel {
    fn name(&self) -> &str {
        "synthetic"
    }
    fn tasks(&self) -> Vec<TaskDecl> {
        self.spec.tasks.clone()
    }
    fn channels(&self) -> Vec<ChannelDecl> {
        self.spec.channels.clone()
    }
    fn arrays(&self) -> Vec<LocalArrayDecl> {
        vec![]
    }
    fn num_tile_vars(&self) -> usize {
        // One sent-outputs bitmask per self-managed task.
        self.spec.tasks.len()
    }
    fn output_arrays(&self) -> Vec<&'static str> {
        vec![]
    }
    fn bootstrap(&self, ctx: &mut dyn BootstrapContext) {
        for (t, task) in self.spec.tasks.iter().enumerate() {
            if task.entry {
                // TTL 2: enough to traverse the graph and fan out twice,
                // while keeping total message work bounded.
                let _ = ctx.push_invocation(t, &[2]);
            }
        }
    }
    fn execute(&self, task: TaskId, params: &[u32], ctx: &mut dyn TaskContext) {
        let outputs = self.outputs(task);
        match self.spec.tasks[task].params {
            TaskParams::AutoPop(_) => {
                let ttl = params[0];
                if ttl == 0 {
                    return;
                }
                for &(channel, dest) in &outputs {
                    // Best-effort: a rejected forward is dropped.  (Head
                    // word 0/1 is a valid global vertex index on the 4x4
                    // mesh dataset.)
                    let _ = match channel {
                        Some(c) => ctx.try_send(c, &[ttl - 1]),
                        None => ctx.try_push_local(dest, &[ttl - 1]),
                    };
                }
            }
            TaskParams::SelfManaged => {
                let Some(ttl) = ctx.iq_peek() else {
                    return;
                };
                if ttl > 0 {
                    let mut sent = ctx.var(task);
                    for (i, &(channel, dest)) in outputs.iter().enumerate() {
                        if sent & (1 << i) != 0 {
                            continue;
                        }
                        let accepted = match channel {
                            Some(c) => ctx.try_send(c, &[ttl - 1]),
                            None => ctx.try_push_local(dest, &[ttl - 1]),
                        };
                        if !accepted {
                            // Partial progress: persist what was sent and
                            // retry the rest on the next dispatch.
                            ctx.set_var(task, sent);
                            return;
                        }
                        sent |= 1 << i;
                        ctx.set_var(task, sent);
                    }
                }
                ctx.set_var(task, 0);
                ctx.iq_pop();
            }
        }
    }
    fn on_global_idle(&self, _epoch: usize, _ctx: &mut dyn EpochContext) -> EpochDecision {
        EpochDecision::Finish
    }
}

const TASK_NAMES: [&str; 8] = ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"];
const CHANNEL_NAMES: [&str; 8] = ["c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"];

/// Random small task graphs, structural defects included: channel and
/// local-push destinations may dangle (`num_tasks + 1` range), so the
/// structurally-rejected part of the space is exercised too.
fn arb_graph_spec() -> impl Strategy<Value = GraphSpec> {
    // (task count, channel count, raw randomness consumed as a stream)
    (
        1usize..5,
        0usize..4,
        proptest::collection::vec(0u32..1_000_000, 40..41),
    )
        .prop_map(|(num_tasks, num_channels, seed)| {
            let mut draw = seed.into_iter().cycle();
            let mut next = move |bound: usize| -> usize {
                if bound == 0 {
                    0
                } else {
                    draw.next().unwrap() as usize % bound
                }
            };
            let mut channels = Vec::new();
            for &name in CHANNEL_NAMES.iter().take(num_channels) {
                let dest = next(num_tasks + 1);
                channels.push(ChannelDecl::new(name, dest, ArraySpace::Vertex, 1, 1 + next(12)));
            }
            let mut tasks = Vec::new();
            for (t, &name) in TASK_NAMES.iter().enumerate().take(num_tasks) {
                let params = if next(2) == 0 {
                    TaskParams::SelfManaged
                } else {
                    TaskParams::AutoPop(1)
                };
                let mut task = TaskDecl::new(name, 1 + next(15), params);
                // Up to two outputs per task: a channel send and/or a
                // local push (either possibly dangling or self-directed).
                if num_channels > 0 && next(2) == 0 {
                    let c = next(num_channels);
                    task = task.sends(c);
                    if next(2) == 0 {
                        task = task.requires_cq_space(c, 1);
                    }
                }
                if next(3) == 0 {
                    let dest = next(num_tasks + 1);
                    task = task.pushes_local(dest);
                    if next(2) == 0 && dest < num_tasks {
                        task = task.requires_iq_space(dest, 1);
                    }
                }
                if t == 0 || next(3) == 0 {
                    task = task.entry();
                }
                tasks.push(task);
            }
            GraphSpec { tasks, channels }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any graph the verifier passes in `Deny` mode must terminate on a
    /// single-tile run: no watchdog deadlock, no cycle-limit livelock.
    /// (The reverse is not asserted — the hazard passes are deliberately
    /// conservative, and a flagged graph may still happen to terminate.)
    #[test]
    fn verifier_clean_graphs_terminate_on_a_single_tile(spec in arb_graph_spec()) {
        let report = verify_decls("synthetic", &spec.tasks, &spec.channels, &ctx());
        if !report.has_errors() {
            let graph = mesh4x4();
            let config = SimConfigBuilder::new(GridConfig::square(1))
                .scratchpad_bytes(1 << 20)
                .verify(VerifyMode::Deny)
                .max_cycles(200_000)
                .watchdog_cycles(10_000)
                .build()
                .unwrap();
            let sim = Simulation::new(config, &graph).unwrap();
            let kernel = SyntheticKernel { spec: spec.clone() };
            match sim.run(&kernel) {
                Ok(_) => {}
                Err(SimError::Deadlock { .. }) => {
                    panic!("verifier-clean graph deadlocked: {spec:?}\n{report}")
                }
                Err(SimError::CycleLimitExceeded { .. }) => {
                    panic!("verifier-clean graph livelocked: {spec:?}\n{report}")
                }
                Err(other) => panic!("unexpected error on {spec:?}: {other}"),
            }
        }
    }
}
