//! Engine parity at the exact error boundaries.
//!
//! The skip-family engines (skip, calendar, parallel) clamp their jumps to
//! the failure horizons — `max_cycles` and the watchdog deadline
//! `last_progress_cycle + watchdog_cycles + 1` — so that
//! [`SimError::CycleLimitExceeded`] and [`SimError::Deadlock`] fire at the
//! *identical* cycle as when ticking every cycle.  These tests pin that
//! contract at the boundary itself: limits landing exactly on, one before
//! and one after the interesting cycle, across all five engines, plus a
//! property-style sweep of `max_cycles`/`watchdog_cycles` near the event
//! horizon.  Any off-by-one in the clamp (or in the parallel engine's
//! merged progress marker) shows up as one engine erroring a cycle early,
//! a cycle late, or with different queue/message counts in the payload.

use dalorex::graph::generators::rmat::RmatConfig;
use dalorex::graph::CsrGraph;
use dalorex::kernels::SsspKernel;
use dalorex::sim::config::{Engine, GridConfig, SimConfigBuilder};
use dalorex::sim::kernel::{
    BootstrapContext, ChannelDecl, EpochContext, EpochDecision, Kernel, LocalArrayDecl,
    TaskContext, TaskDecl, TaskParams,
};
use dalorex::sim::{ArraySpace, FaultEvent, FaultPlan, SimError, Simulation, VertexPlacement};

/// All five engines plus explicitly sized parallel pools (2 workers, and 3
/// so the shard boundaries do not divide the tile count evenly).
fn engines() -> Vec<Engine> {
    let mut engines = Engine::ALL.to_vec();
    engines.push(Engine::Parallel { workers: 2 });
    engines.push(Engine::Parallel { workers: 3 });
    engines
}

/// Runs `kernel` under every engine and asserts the result is identical:
/// either all succeed with the same cycle count and statistics, or all
/// fail with the exact same [`SimError`] value (`SimError` is
/// `PartialEq`, so the comparison covers the payload — the cycle the
/// watchdog fired at, the in-flight message count, the queued
/// invocations — not just the variant).
fn assert_error_parity(sim: &Simulation, kernel: &dyn Kernel, label: &str) {
    let reference = sim.run_with_engine(kernel, Engine::Reference);
    for engine in engines() {
        let outcome = sim.run_with_engine(kernel, engine);
        match (&reference, &outcome) {
            (Ok(want), Ok(got)) => {
                assert_eq!(got.cycles, want.cycles, "{label}/{engine}: cycles diverged");
                assert_eq!(got.stats, want.stats, "{label}/{engine}: stats diverged");
            }
            (Err(want), Err(got)) => {
                assert_eq!(got, want, "{label}/{engine}: errors diverged");
            }
            (want, got) => panic!(
                "{label}/{engine}: reference {} but {engine} {}",
                if want.is_ok() { "succeeded" } else { "failed" },
                if got.is_ok() { "succeeded" } else { "failed" },
            ),
        }
    }
}

fn graph() -> CsrGraph {
    RmatConfig::new(8, 6).seed(23).build().unwrap()
}

fn sim_with_limits(graph: &CsrGraph, max_cycles: u64, watchdog_cycles: u64) -> Simulation {
    let config = SimConfigBuilder::new(GridConfig::square(4))
        .scratchpad_bytes(1 << 20)
        .vertex_placement(VertexPlacement::Interleaved)
        .max_cycles(max_cycles)
        .watchdog_cycles(watchdog_cycles)
        .build()
        .unwrap();
    Simulation::new(config.clone(), graph).unwrap()
}

/// The cycle-limit boundary: `max_cycles` landing exactly on, just below
/// and just above the run's natural completion cycle must produce the
/// same outcome — success or `CycleLimitExceeded { limit }` — on every
/// engine.  The skip engines jump straight at the horizon, so this is
/// where a clamp off-by-one would live.
#[test]
fn cycle_limit_fires_identically_at_the_exact_boundary() {
    let graph = graph();
    let kernel = SsspKernel::new(0);
    let completion = sim_with_limits(&graph, u64::MAX / 2, u64::MAX / 4)
        .run(&kernel)
        .expect("unlimited run completes")
        .cycles;
    for limit in [
        completion - 2,
        completion - 1,
        completion,
        completion + 1,
        completion + 17,
        completion / 2,
    ] {
        let sim = sim_with_limits(&graph, limit, u64::MAX / 4);
        assert_error_parity(&sim, &kernel, &format!("max_cycles={limit}"));
    }
}

/// A deliberately wedged kernel (a flood whose 5-word invocations can
/// never fit the consumer's 4-word IQ, as in `failure_injection.rs`): the
/// watchdog deadline `last_progress_cycle + watchdog_cycles + 1` is the
/// only exit, and every engine must report the identical `Deadlock`
/// payload — same cycle, same stuck-message census.
struct StuckKernel;

impl Kernel for StuckKernel {
    fn name(&self) -> &str {
        "stuck"
    }
    fn tasks(&self) -> Vec<TaskDecl> {
        vec![
            TaskDecl::new("producer", 16, TaskParams::AutoPop(1)).requires_cq_space(0, 4),
            TaskDecl::new("consumer", 4, TaskParams::AutoPop(5)),
        ]
    }
    fn channels(&self) -> Vec<ChannelDecl> {
        vec![ChannelDecl::new("flood", 1, ArraySpace::Vertex, 1, 8)]
    }
    fn arrays(&self) -> Vec<LocalArrayDecl> {
        vec![]
    }
    fn output_arrays(&self) -> Vec<&'static str> {
        vec![]
    }
    fn bootstrap(&self, ctx: &mut dyn BootstrapContext) {
        if ctx.tile() == 0 {
            let _ = ctx.push_invocation(0, &[1]);
        }
    }
    fn execute(&self, task: usize, params: &[u32], ctx: &mut dyn TaskContext) {
        if task == 0 {
            for _ in 0..4 {
                let _ = ctx.try_send(0, &[params[0]]);
            }
            let _ = ctx.try_push_local(0, params);
        }
    }
    fn on_global_idle(&self, _epoch: usize, _ctx: &mut dyn EpochContext) -> EpochDecision {
        EpochDecision::Finish
    }
}

#[test]
fn watchdog_deadline_fires_identically_on_wedged_pipelines() {
    let graph = RmatConfig::new(7, 4).seed(9).build().unwrap();
    for watchdog in [64u64, 65, 1000, 4999] {
        let config = SimConfigBuilder::new(GridConfig::square(2))
            .scratchpad_bytes(1 << 20)
            .vertex_placement(VertexPlacement::Interleaved)
            .max_cycles(1_000_000)
            .watchdog_cycles(watchdog)
            .build()
            .unwrap();
        let sim = Simulation::new(config, &graph).unwrap();
        let err = sim.run(&StuckKernel).unwrap_err();
        assert!(
            matches!(err, SimError::Deadlock { .. }),
            "watchdog={watchdog}: expected Deadlock, got {err:?}"
        );
        assert_error_parity(&sim, &StuckKernel, &format!("watchdog={watchdog}"));
    }
}

/// The cycle-limit boundary under a non-empty fault plan: the skip-family
/// engines now juggle three horizon clamps (`max_cycles`, the watchdog
/// deadline and the next fault transition), and the tightest must win on
/// every engine — `CycleLimitExceeded` still fires on the identical cycle
/// with the identical payload.
#[test]
fn cycle_limit_fires_identically_under_faults() {
    let graph = graph();
    let kernel = SsspKernel::new(0);
    let plan: FaultPlan = "stall:tile=3,start=50,end=400;link:tile=5,port=east,start=100,end=800"
        .parse()
        .unwrap();
    let faulted_sim = |max_cycles: u64| {
        let config = SimConfigBuilder::new(GridConfig::square(4))
            .scratchpad_bytes(1 << 20)
            .vertex_placement(VertexPlacement::Interleaved)
            .max_cycles(max_cycles)
            .watchdog_cycles(u64::MAX / 4)
            .faults(plan.clone())
            .build()
            .unwrap();
        Simulation::new(config, &graph).unwrap()
    };
    let completion = faulted_sim(u64::MAX / 2)
        .run(&kernel)
        .expect("faulted run still completes")
        .cycles;
    for limit in [completion - 1, completion, completion + 1, completion / 2] {
        assert_error_parity(
            &faulted_sim(limit),
            &kernel,
            &format!("faulted/max_cycles={limit}"),
        );
    }
}

/// The watchdog boundary under a non-empty fault plan, including the nasty
/// corner the issue calls out: a fault transition landing *exactly on* the
/// watchdog deadline, where the skip engines' fault-edge clamp and the
/// deadline clamp pick the same stop cycle.  Every engine must report the
/// identical `Deadlock` payload — `SimError` is `PartialEq`, so the
/// comparison covers the structured diagnostics too.
#[test]
fn watchdog_fires_identically_under_faults_even_on_a_transition_cycle() {
    let graph = RmatConfig::new(7, 4).seed(9).build().unwrap();
    let build = |plan: FaultPlan, watchdog: u64| {
        let config = SimConfigBuilder::new(GridConfig::square(2))
            .scratchpad_bytes(1 << 20)
            .vertex_placement(VertexPlacement::Interleaved)
            .max_cycles(1_000_000)
            .watchdog_cycles(watchdog)
            .faults(plan)
            .build()
            .unwrap();
        Simulation::new(config, &graph).unwrap()
    };
    let base: FaultPlan = "slow:tile=1,factor=3,start=10,end=60;stall:tile=0,start=20,end=45"
        .parse()
        .unwrap();
    for watchdog in [64u64, 65, 1000] {
        let sim = build(base.clone(), watchdog);
        let err = sim.run(&StuckKernel).unwrap_err();
        assert!(
            matches!(err, SimError::Deadlock { .. }),
            "faulted/watchdog={watchdog}: expected Deadlock, got {err:?}"
        );
        assert_error_parity(&sim, &StuckKernel, &format!("faulted/watchdog={watchdog}"));
    }
    // Observe the deadline under the base plan, then open a window exactly
    // on it.  A window opening at the deadline cannot affect any earlier
    // cycle, so the deadline must not move — but the skip engines now land
    // on it through two coinciding clamps.
    let watchdog = 64u64;
    let SimError::Deadlock { cycle: deadline, .. } =
        build(base.clone(), watchdog).run(&StuckKernel).unwrap_err()
    else {
        panic!("wedged kernel must deadlock");
    };
    let mut plan = base;
    plan.events.push(FaultEvent::RouterStall {
        tile: 1,
        start: deadline,
        end: deadline + 50,
    });
    let sim = build(plan, watchdog);
    let SimError::Deadlock { cycle, .. } = sim.run(&StuckKernel).unwrap_err() else {
        panic!("wedged kernel must deadlock under the extended plan");
    };
    assert_eq!(
        cycle, deadline,
        "a window opening at the deadline must not move the deadline"
    );
    assert_error_parity(&sim, &StuckKernel, "faulted/transition-on-deadline");
}

/// Property-style sweep of both limits near the event horizon: a grid of
/// `max_cycles` × `watchdog_cycles` values straddling the completion
/// cycle, including combinations where both horizons clamp the same jump
/// and the tighter one must win on every engine.
#[test]
fn limit_sweep_near_the_event_horizon_stays_in_parity() {
    let graph = graph();
    let kernel = SsspKernel::new(0);
    let completion = sim_with_limits(&graph, u64::MAX / 2, u64::MAX / 4)
        .run(&kernel)
        .expect("unlimited run completes")
        .cycles;
    // Offsets around the horizon: deep inside the run, hugging the
    // boundary from both sides, and past it.
    let max_cycle_points = [completion / 3, completion - 1, completion, completion + 3];
    let watchdog_points = [
        completion / 4,
        completion / 2 + 1,
        completion - 1,
        completion + 10,
    ];
    for &max_cycles in &max_cycle_points {
        for &watchdog in &watchdog_points {
            let sim = sim_with_limits(&graph, max_cycles, watchdog);
            assert_error_parity(
                &sim,
                &kernel,
                &format!("max_cycles={max_cycles}/watchdog={watchdog}"),
            );
        }
    }
}
