//! Schedule-equivalence tests for the engine square: all five cycle
//! engines must be *indistinguishable*.
//!
//! [`Engine::Skip`] drives the overhauled per-cycle tile path (ring-buffer
//! queues, inline message payloads, O(1) idle tracking, incrementally
//! maintained readiness masks, parked-injection elision) under the
//! skip-to-next-event engine; [`Engine::Calendar`] adds the NoC's
//! calendar router scheduler (per-router `next_possible` due stamps, a
//! bucketed calendar of due routers, waiter lists for blocked heads);
//! [`Engine::Parallel`] fans the calendar engine's tile phase out over a
//! worker pool of endpoint shards whose cross-tile side effects are
//! replayed in the frozen walk order; [`Engine::Ticked`] is the same tile
//! path ticking every cycle; and [`Engine::Reference`] is the preserved
//! pre-overhaul path.  The five must agree on everything — cycle counts,
//! gathered outputs, every tile counter and every NoC statistic
//! (including the per-tile injection rejections the parked-channel
//! elision and the bulk skip-replay reconstruct instead of
//! re-attempting) — across every topology, placement and scheduling
//! policy, in barrierless and barrier mode, and at wider endpoint-drain
//! budgets.
//!
//! A small golden table additionally pins absolute cycle counts for
//! non-default configurations, so all engines drifting *together* (a bug
//! in shared machinery) still fails loudly.

use dalorex::baseline::Workload;
use dalorex::graph::generators::rmat::RmatConfig;
use dalorex::graph::CsrGraph;
use dalorex::noc::Topology;
use dalorex::sim::config::{BarrierMode, Engine, GridConfig, SchedulingPolicy, SimConfigBuilder};
use dalorex::sim::{FaultPlan, Simulation, VertexPlacement};

fn assert_paths_identical(sim: &Simulation, workload: Workload, label: &str) -> u64 {
    let kernel = workload.kernel();
    let reference = sim.run_with_engine(kernel.as_ref(), Engine::Reference).unwrap();
    // `Engine::ALL` carries `Parallel { workers: 0 }` (auto-detected pool
    // size); also pin explicit pool sizes, including one that does not
    // divide the tile count evenly, so shard-boundary bugs cannot hide
    // behind a single-worker auto-detection on small CI machines.
    let engines = Engine::ALL
        .into_iter()
        .chain([Engine::Parallel { workers: 2 }, Engine::Parallel { workers: 3 }]);
    for engine in engines {
        let outcome = sim.run_with_engine(kernel.as_ref(), engine).unwrap();
        assert_outcomes_match(&outcome, &reference, &format!("{label}/{engine}"));
    }
    // Both router schedulers: the calendar engine under the preserved
    // full-walk baseline (`RouterScheduler::CalendarScan`) must reproduce
    // the square too — it is the schedule oracle the due-only walk is
    // pinned to, so a divergence here localizes a bug to the walk itself.
    let baseline = sim.run_calendar_scan(kernel.as_ref()).unwrap();
    assert_outcomes_match(&baseline, &reference, &format!("{label}/calendar-scan"));
    reference.cycles
}

fn assert_outcomes_match(
    outcome: &dalorex::sim::SimOutcome,
    reference: &dalorex::sim::SimOutcome,
    label: &str,
) {
    assert_eq!(
        outcome.cycles, reference.cycles,
        "{label}: cycles diverged"
    );
    assert_eq!(
        outcome.output, reference.output,
        "{label}: outputs diverged"
    );
    assert_eq!(
        outcome.stats, reference.stats,
        "{label}: statistics diverged"
    );
    assert_eq!(
        outcome.total_energy_j(),
        reference.total_energy_j(),
        "{label}: energy diverged"
    );
    assert_eq!(
        outcome.fault, reference.fault,
        "{label}: fault reports diverged"
    );
}

fn graph() -> CsrGraph {
    RmatConfig::new(9, 8).seed(17).build().unwrap()
}

#[test]
fn fast_path_matches_reference_across_topologies_placements_and_policies() {
    let graph = graph();
    for topology in [
        Topology::Mesh,
        Topology::Torus,
        Topology::TorusRuche { factor: 2 },
    ] {
        for placement in [VertexPlacement::Chunked, VertexPlacement::Interleaved] {
            for policy in [
                SchedulingPolicy::RoundRobin,
                SchedulingPolicy::OccupancyPriority,
            ] {
                let config = SimConfigBuilder::new(GridConfig::square(4))
                    .scratchpad_bytes(1 << 20)
                    .topology(topology)
                    .vertex_placement(placement)
                    .scheduling(policy)
                    .build()
                    .unwrap();
                let sim = Simulation::new(config, &graph).unwrap();
                assert_paths_identical(
                    &sim,
                    Workload::Sssp { root: 0 },
                    &format!("{topology:?}/{placement:?}/{policy:?}"),
                );
            }
        }
    }
}

#[test]
fn fast_path_matches_reference_for_every_workload() {
    let graph = graph();
    let config = SimConfigBuilder::new(GridConfig::square(4))
        .scratchpad_bytes(1 << 20)
        .build()
        .unwrap();
    let sim = Simulation::new(config.clone(), &graph).unwrap();
    for workload in [
        Workload::Bfs { root: 0 },
        Workload::Sssp { root: 0 },
        Workload::Wcc,
        Workload::Spmv,
    ] {
        assert_paths_identical(&sim, workload, workload.name());
    }
    // PageRank exercises the epoch-barrier wake path.
    let barrier = SimConfigBuilder::new(GridConfig::square(4))
        .scratchpad_bytes(1 << 20)
        .barrier_mode(BarrierMode::EpochBarrier)
        .build()
        .unwrap();
    let sim = Simulation::new(barrier, &graph).unwrap();
    assert_paths_identical(&sim, Workload::PageRank { epochs: 3 }, "pagerank-barrier");
}

#[test]
fn fast_path_matches_reference_at_wider_endpoint_budgets() {
    // The drain/inject budget interacts with the parked-channel rejection
    // accounting (channels beyond the budget's break point accrue no
    // rejection) and with how much the skip engine can jump (wider
    // endpoints change the back-pressure pattern), so sweep budget ×
    // topology explicitly.
    let graph = graph();
    for drains in [1usize, 2, 4] {
        for topology in [Topology::Mesh, Topology::Torus] {
            let config = SimConfigBuilder::new(GridConfig::square(4))
                .scratchpad_bytes(1 << 20)
                .topology(topology)
                .endpoint_drains_per_cycle(drains)
                .build()
                .unwrap();
            let sim = Simulation::new(config, &graph).unwrap();
            assert_paths_identical(
                &sim,
                Workload::Sssp { root: 0 },
                &format!("drains={drains}/{topology:?}"),
            );
        }
    }
}

#[test]
fn fast_path_matches_reference_under_tight_buffers() {
    // Small router buffers maximise back-pressure, the regime in which the
    // parked-injection elision does the most skipping.
    let graph = graph();
    let config = SimConfigBuilder::new(GridConfig::square(4))
        .scratchpad_bytes(1 << 20)
        .noc_buffer_flits(8)
        .noc_ejection_flits(8)
        .build()
        .unwrap();
    let sim = Simulation::new(config, &graph).unwrap();
    assert_paths_identical(&sim, Workload::Sssp { root: 0 }, "tight-buffers");
}

/// The worst case for due-stamp churn (ISSUE 10): traffic that alternates
/// between dense waves (every router active and due nearly every cycle —
/// the due-only heap at its fullest) and sparse trickles (long elided
/// stretches where membership changes arrive via the dirty set).
/// Epoch-barrier PageRank produces exactly that shape — a burst of rank
/// updates per epoch, then a global quiesce before the barrier releases
/// the next wave — and tight ejection buffers plus a 2-wide endpoint
/// budget add blocked-head waiter churn on top.  All five engines (and
/// both router schedulers, via `assert_paths_identical`) must stay
/// bit-identical through the alternation.
#[test]
fn engines_agree_on_alternating_sparse_dense_traffic() {
    let graph = graph();
    for topology in [Topology::Mesh, Topology::Torus] {
        let config = SimConfigBuilder::new(GridConfig::square(4))
            .scratchpad_bytes(1 << 20)
            .topology(topology)
            .barrier_mode(BarrierMode::EpochBarrier)
            .noc_ejection_flits(8)
            .endpoint_drains_per_cycle(2)
            .build()
            .unwrap();
        let sim = Simulation::new(config, &graph).unwrap();
        assert_paths_identical(
            &sim,
            Workload::PageRank { epochs: 5 },
            &format!("sparse-dense-alternation/{topology:?}"),
        );
    }
}

/// Lazy tile-arena allocation must be schedule-invisible: the eager-init
/// oracle (`eager_tile_init(true)`, which materializes every tile's arena
/// slab up front exactly like the pre-arena engine) and the default lazy
/// mode must agree on cycles, outputs and every statistic, on every
/// engine.  Only the memory report may differ — and only in its arena
/// lines, in the expected direction: lazily materialized tiles are a
/// subset of the grid, and the physical lines (CSR, NoC buffers) are
/// identical.
#[test]
fn lazy_tile_allocation_is_schedule_invisible() {
    let graph = graph();
    for workload in [Workload::Sssp { root: 0 }, Workload::Wcc] {
        let kernel = workload.kernel();
        let base = SimConfigBuilder::new(GridConfig::square(4)).scratchpad_bytes(1 << 20);
        let lazy_sim =
            Simulation::new(base.clone().build().unwrap(), &graph).unwrap();
        let eager_sim =
            Simulation::new(base.eager_tile_init(true).build().unwrap(), &graph).unwrap();
        for engine in Engine::ALL {
            let lazy = lazy_sim.run_with_engine(kernel.as_ref(), engine).unwrap();
            let eager = eager_sim.run_with_engine(kernel.as_ref(), engine).unwrap();
            let label = format!("{}/{engine}", workload.name());
            assert_eq!(lazy.cycles, eager.cycles, "{label}: cycles diverged");
            assert_eq!(lazy.output, eager.output, "{label}: outputs diverged");
            assert_eq!(lazy.stats, eager.stats, "{label}: statistics diverged");
            assert_eq!(
                lazy.total_energy_j(),
                eager.total_energy_j(),
                "{label}: energy diverged"
            );
            assert_eq!(eager.memory.materialized_tiles, eager.memory.total_tiles);
            assert!(lazy.memory.materialized_tiles <= eager.memory.materialized_tiles);
            assert!(lazy.memory.tile_arena_bytes <= eager.memory.tile_arena_bytes);
            assert_eq!(lazy.memory.csr_bytes, eager.memory.csr_bytes);
            assert_eq!(lazy.memory.noc_buffer_bytes, eager.memory.noc_buffer_bytes);
        }
    }
}

/// The fault-injection half of the equivalence square: all five engines
/// (plus the explicit parallel pool sizes) must stay bit-identical under
/// non-empty fault plans — including the per-event `FaultReport` — and a
/// faulted run must never finish earlier than its fault-free twin (faults
/// delay, never drop).
#[test]
fn engines_agree_under_fault_plans() {
    let graph = graph();
    // A 2-wide endpoint budget so the `throttle` events (cap 1) actually
    // bite; the fault-free twin uses the same budget so the cycle
    // comparison below is apples-to-apples.
    let base = || {
        SimConfigBuilder::new(GridConfig::square(4))
            .scratchpad_bytes(1 << 20)
            .endpoint_drains_per_cycle(2)
    };
    let fault_free = {
        let sim = Simulation::new(base().build().unwrap(), &graph).unwrap();
        assert_paths_identical(&sim, Workload::Sssp { root: 0 }, "fault-free-twin")
    };
    let scenarios: &[(&str, &str)] = &[
        (
            "link-outage",
            "link:tile=5,port=east,start=200,end=900;link:tile=6,start=400,end=700",
        ),
        (
            "router-stall",
            "stall:tile=5,start=100,end=600;stall:tile=10,start=300,end=800",
        ),
        (
            "tile-side",
            "slow:tile=3,factor=4,start=0,end=4000;throttle:tile=9,budget=1,start=50,end=2500",
        ),
        ("mixed-random", "random:seed=2026,count=12,horizon=4000"),
    ];
    for &(label, spec) in scenarios {
        let plan: FaultPlan = spec.parse().unwrap();
        let sim = Simulation::new(base().faults(plan).build().unwrap(), &graph).unwrap();
        let faulted = assert_paths_identical(&sim, Workload::Sssp { root: 0 }, label);
        assert!(
            faulted >= fault_free,
            "{label}: the faulted run finished in {faulted} cycles, before its \
             fault-free twin's {fault_free}"
        );
        let kernel = Workload::Sssp { root: 0 }.kernel();
        let outcome = sim.run(kernel.as_ref()).unwrap();
        assert!(
            !outcome.fault.is_empty(),
            "{label}: a non-empty plan must produce fault-report entries"
        );
    }
}

/// An armed plan whose windows all open after quiescence must be
/// observation-identical to the empty plan — cycles, outputs, statistics
/// and energy unmoved, with the only trace an all-zero fault report.  This
/// pins the claim that fault support costs nothing on the hot path beyond
/// a branch: the fault machinery being *armed* is not itself a
/// perturbation.
#[test]
fn armed_but_never_firing_plan_is_schedule_invisible() {
    let graph = graph();
    let base = SimConfigBuilder::new(GridConfig::square(4)).scratchpad_bytes(1 << 20);
    let empty_sim = Simulation::new(base.clone().build().unwrap(), &graph).unwrap();
    // Far beyond any 4x4 SSSP horizon (the golden run quiesces near 10^4).
    let plan: FaultPlan = "link:tile=1,start=40000000,end=50000000;\
                           stall:tile=2,start=40000000,end=50000000;\
                           slow:tile=3,factor=8,start=40000000,end=50000000;\
                           throttle:tile=4,budget=1,start=40000000,end=50000000"
        .parse()
        .unwrap();
    let armed_sim = Simulation::new(base.faults(plan).build().unwrap(), &graph).unwrap();
    let kernel = Workload::Sssp { root: 0 }.kernel();
    for engine in Engine::ALL {
        let empty = empty_sim.run_with_engine(kernel.as_ref(), engine).unwrap();
        let armed = armed_sim.run_with_engine(kernel.as_ref(), engine).unwrap();
        let label = format!("armed-idle/{engine}");
        assert_eq!(empty.cycles, armed.cycles, "{label}: cycles diverged");
        assert_eq!(empty.output, armed.output, "{label}: outputs diverged");
        assert_eq!(empty.stats, armed.stats, "{label}: statistics diverged");
        assert_eq!(
            empty.total_energy_j(),
            armed.total_energy_j(),
            "{label}: energy diverged"
        );
        assert!(empty.fault.is_empty(), "{label}: empty plan must report nothing");
        assert_eq!(armed.fault.entries.len(), 4, "{label}: one entry per event");
        assert!(
            armed.fault.is_zero_impact(),
            "{label}: windows after quiescence must have zero impact"
        );
    }
}

/// Golden cycle counts for non-default configurations, captured when the
/// overhaul landed.  Both engines must keep reproducing them exactly; a
/// drift here with the equivalence tests still green means shared
/// machinery changed the modelled schedule itself.
#[test]
fn golden_cycles_pin_both_paths() {
    let graph = graph();
    let cases: &[(&str, Topology, VertexPlacement, SchedulingPolicy, u64)] = &[
        (
            "mesh/chunked/round-robin",
            Topology::Mesh,
            VertexPlacement::Chunked,
            SchedulingPolicy::RoundRobin,
            GOLDEN_MESH_CHUNKED_RR,
        ),
        (
            "torus/interleaved/occupancy",
            Topology::Torus,
            VertexPlacement::Interleaved,
            SchedulingPolicy::OccupancyPriority,
            GOLDEN_TORUS_INTERLEAVED_OCC,
        ),
    ];
    for &(label, topology, placement, policy, golden) in cases {
        let config = SimConfigBuilder::new(GridConfig::square(4))
            .scratchpad_bytes(1 << 20)
            .topology(topology)
            .vertex_placement(placement)
            .scheduling(policy)
            .build()
            .unwrap();
        let sim = Simulation::new(config, &graph).unwrap();
        let cycles = assert_paths_identical(&sim, Workload::Sssp { root: 0 }, label);
        assert_eq!(cycles, golden, "{label}: cycle count drifted from the golden");
    }
}

const GOLDEN_MESH_CHUNKED_RR: u64 = 10677;
const GOLDEN_TORUS_INTERLEAVED_OCC: u64 = 9476;
