//! The memory-regression test tier: modeled per-subsystem byte totals are
//! pinned like cycle goldens.
//!
//! The tentpole claim of the arena/SoA refactor is that the simulator's
//! footprint scales like the hardware it models: the distributed CSR and
//! the NoC buffers grow with the dataset and the grid, while per-tile
//! arena slabs exist only for tiles that saw activity — an all-idle tile
//! contributes exactly 0 arena bytes.  These tests pin the per-subsystem
//! totals for two grid sizes, assert the idle-tile guarantee directly, and
//! check that the report's CSR line equals the graph's own accounting, so
//! any future allocation regression (a hidden eager allocation, a grown
//! queue ring, a padded arena) fails CI the same way a schedule
//! regression would.

use dalorex::graph::generators::rmat::RmatConfig;
use dalorex::graph::{CsrGraph, Edge, EdgeList};
use dalorex::kernels::SsspKernel;
use dalorex::sim::config::{Engine, GridConfig, SimConfigBuilder};
use dalorex::sim::{MemoryReport, Simulation, VertexPlacement};

fn run_sssp(side: usize, graph: &CsrGraph) -> dalorex::sim::SimOutcome {
    let config = SimConfigBuilder::new(GridConfig::square(side))
        .scratchpad_bytes(1 << 20)
        .build()
        .unwrap();
    let sim = Simulation::new(config, graph).unwrap();
    sim.run_with_engine(&SsspKernel::new(0), Engine::Skip).unwrap()
}

/// Golden per-subsystem byte totals for a 16x16 grid running SSSP on an
/// RMAT graph with 1024 vertices.  Captured when the arena refactor
/// landed; any drift means the modeled memory footprint changed.
#[test]
fn golden_memory_budget_16x16_sssp() {
    let graph = RmatConfig::new(10, 8).seed(17).build().unwrap();
    let outcome = run_sssp(16, &graph);
    assert_eq!(
        outcome.memory,
        MemoryReport {
            csr_bytes: 61_664,
            tile_arena_bytes: 2_688_336,
            materialized_tiles: 252,
            total_tiles: 256,
            noc_buffer_bytes: 262_144,
            calendar_bytes: 3_072,
        },
        "16x16 memory budget drifted: {:?}",
        outcome.memory
    );
    assert_eq!(
        outcome.memory.csr_bytes,
        graph.distributed_footprint_bytes(),
        "the report's CSR line must equal the graph's own distributed accounting"
    );
}

/// Same pin at 64x64 (4096 tiles): the NoC buffer line scales with the
/// fabric, the CSR line with the dataset, and the arena line only with
/// the tiles that actually ran something.
#[test]
fn golden_memory_budget_64x64_sssp() {
    let graph = RmatConfig::new(12, 8).seed(17).build().unwrap();
    let outcome = run_sssp(64, &graph);
    assert_eq!(
        outcome.memory,
        MemoryReport {
            csr_bytes: 261_472,
            tile_arena_bytes: 43_508_448,
            materialized_tiles: 4_083,
            total_tiles: 4096,
            noc_buffer_bytes: 6_291_456,
            calendar_bytes: 49_152,
        },
        "64x64 memory budget drifted: {:?}",
        outcome.memory
    );
    assert_eq!(outcome.memory.csr_bytes, graph.distributed_footprint_bytes());
}

/// The idle-tile guarantee, asserted directly: a root with no out-edges
/// touches exactly one tile (its owner, materialized by the bootstrap
/// push), and the other 15 tiles of the grid finish the run hollow —
/// contributing 0 arena bytes.  The eager-init oracle on the same
/// workload allocates all 16 uniform arenas, so the lazy total must be
/// exactly one sixteenth of the eager total.
#[test]
fn all_idle_tiles_contribute_zero_arena_bytes() {
    // 64 vertices, one edge between two vertices both owned by tile 0
    // under chunked placement (4 vertices per tile on a 4x4 grid; the
    // default interleaved placement would put vertex 1 on tile 1), and
    // the SSSP root is vertex 0: no message ever leaves tile 0.
    let edges = EdgeList::from_edges(64, [Edge::new(0, 1, 3)]).unwrap();
    let graph = CsrGraph::from_edge_list(&edges);
    let base = SimConfigBuilder::new(GridConfig::square(4))
        .scratchpad_bytes(1 << 20)
        .vertex_placement(VertexPlacement::Chunked);
    let lazy_sim = Simulation::new(base.clone().build().unwrap(), &graph).unwrap();
    let lazy = lazy_sim
        .run_with_engine(&SsspKernel::new(0), Engine::Skip)
        .unwrap();
    assert_eq!(lazy.memory.total_tiles, 16);
    assert_eq!(
        lazy.memory.materialized_tiles, 1,
        "only the root's owner tile saw activity"
    );
    assert!(lazy.memory.tile_arena_bytes > 0);

    let eager_sim = Simulation::new(
        base.eager_tile_init(true).build().unwrap(),
        &graph,
    )
    .unwrap();
    let eager = eager_sim
        .run_with_engine(&SsspKernel::new(0), Engine::Skip)
        .unwrap();
    assert_eq!(eager.memory.materialized_tiles, 16);
    // Chunked placement gives every tile the same 4-vertex chunk, so all
    // 16 arenas are the same size: 15 idle tiles contribute exactly 0.
    assert_eq!(eager.memory.tile_arena_bytes, 16 * lazy.memory.tile_arena_bytes);
    // And the schedule itself is untouched by laziness.
    assert_eq!(lazy.cycles, eager.cycles);
    assert_eq!(lazy.stats, eager.stats);
    assert_eq!(lazy.output, eager.output);
}

/// The arena line counts exactly the materialized tiles, at per-tile
/// granularity: with 1024 vertices interleaved over 256 tiles every tile
/// owns the same 4-vertex chunk, so every arena is the same size — the
/// eager oracle prices one tile as `eager_total / 256`, and the lazy
/// total must be exactly `materialized x that price`.  The physical
/// fabric lines are unaffected by laziness, and the NoC buffer line
/// scales exactly with the router count.
#[test]
fn arena_bytes_count_exactly_the_materialized_tiles() {
    let graph = RmatConfig::new(10, 8).seed(17).build().unwrap();
    let lazy = run_sssp(16, &graph);
    let eager_config = SimConfigBuilder::new(GridConfig::square(16))
        .scratchpad_bytes(1 << 20)
        .eager_tile_init(true)
        .build()
        .unwrap();
    let eager_sim = Simulation::new(eager_config, &graph).unwrap();
    let eager = eager_sim
        .run_with_engine(&SsspKernel::new(0), Engine::Skip)
        .unwrap();
    assert_eq!(eager.memory.materialized_tiles, 256);
    assert_eq!(eager.memory.tile_arena_bytes % 256, 0, "arenas are uniform");
    let per_tile = eager.memory.tile_arena_bytes / 256;
    assert_eq!(
        lazy.memory.tile_arena_bytes,
        lazy.memory.materialized_tiles * per_tile,
        "the lazy arena total must price exactly the materialized tiles"
    );
    assert_eq!(lazy.memory.csr_bytes, eager.memory.csr_bytes);
    assert_eq!(lazy.memory.noc_buffer_bytes, eager.memory.noc_buffer_bytes);
    // Fabric scaling: 4x the routers on a 16x16 grid vs an 8x8 grid means
    // exactly 4x the modeled buffer bytes.
    let small = run_sssp(8, &graph);
    assert_eq!(lazy.memory.noc_buffer_bytes, small.memory.noc_buffer_bytes * 4);
}
