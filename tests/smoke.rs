//! Smoke tests: the failure-injection and ablation-shape scenarios, shrunk
//! to a 2x2 grid, must finish in a few seconds of wall clock.
//!
//! The cycle engine's active-tile and active-router tracking is what keeps
//! small runs cheap; a regression to scanning every tile and every router
//! every cycle (accidental quadratic blowup) shows up here immediately,
//! long before the full suites time out.

use dalorex::baseline::ablation::{run_rung, AblationRung};
use dalorex::baseline::Workload;
use dalorex::graph::generators::rmat::RmatConfig;
use dalorex::graph::CsrGraph;
use dalorex::kernels::BfsKernel;
use dalorex::sim::config::{GridConfig, SimConfigBuilder};
use dalorex::sim::{SimError, Simulation};
use std::time::{Duration, Instant};

/// Generous per-scenario wall-clock budget.  Each scenario takes well under
/// a second in release and tens of milliseconds to low seconds in debug; a
/// quadratic cycle engine overshoots this by orders of magnitude.
const BUDGET: Duration = Duration::from_secs(5);

fn assert_within_budget(label: &str, start: Instant) {
    let elapsed = start.elapsed();
    assert!(
        elapsed <= BUDGET,
        "{label} took {elapsed:?}, over the {BUDGET:?} smoke budget — \
         did the cycle engine lose its active-set tracking?"
    );
}

fn smoke_graph() -> CsrGraph {
    RmatConfig::new(9, 8).seed(21).build().unwrap()
}

#[test]
fn failure_injection_scenarios_are_fast_on_a_2x2_grid() {
    let start = Instant::now();
    let graph = smoke_graph();

    // Scenario 1: oversized dataset rejected before any cycle is simulated
    // (32 KiB cannot even hold the simulator's 64 KiB code/queue reserve).
    let config = SimConfigBuilder::new(GridConfig::square(2))
        .scratchpad_bytes(32 * 1024)
        .build()
        .unwrap();
    assert!(matches!(
        Simulation::new(config, &graph),
        Err(SimError::DatasetTooLarge { .. })
    ));

    // Scenario 2: the cycle limit aborts a run promptly.
    let config = SimConfigBuilder::new(GridConfig::square(2))
        .scratchpad_bytes(1 << 20)
        .max_cycles(2_000)
        .watchdog_cycles(500)
        .build()
        .unwrap();
    let sim = Simulation::new(config, &graph).unwrap();
    let err = sim.run(&BfsKernel::new(0)).unwrap_err();
    assert!(matches!(
        err,
        SimError::CycleLimitExceeded { .. } | SimError::Deadlock { .. }
    ));

    // Scenario 3: an unreachable root completes (almost) immediately.
    let config = SimConfigBuilder::new(GridConfig::square(2))
        .scratchpad_bytes(1 << 20)
        .build()
        .unwrap();
    let sim = Simulation::new(config, &graph).unwrap();
    let outcome = sim.run(&BfsKernel::new(u32::MAX)).unwrap();
    assert!(outcome.output.as_u32_array("value").iter().all(|&v| v == u32::MAX));

    assert_within_budget("failure-injection smoke", start);
}

#[test]
fn ablation_ladder_is_fast_on_a_2x2_grid() {
    let start = Instant::now();
    let graph = smoke_graph();
    let workload = Workload::Bfs { root: 0 };
    let mut cycles = Vec::new();
    for rung in AblationRung::ALL {
        let outcome = run_rung(rung, &graph, workload, 2, 1 << 20).unwrap();
        assert!(outcome.cycles > 0, "{} produced zero cycles", rung.label());
        cycles.push(outcome.cycles);
    }
    // The ladder endpoints must still point the right way, even at 4 tiles.
    assert!(
        cycles.last().unwrap() < cycles.first().unwrap(),
        "full Dalorex ({}) should beat Tesseract ({}) on 4 tiles",
        cycles.last().unwrap(),
        cycles.first().unwrap()
    );
    assert_within_budget("ablation-ladder smoke", start);
}

#[test]
fn every_workload_completes_quickly_on_a_2x2_grid() {
    let start = Instant::now();
    let graph = smoke_graph();
    for workload in Workload::full_set() {
        let outcome = run_rung(AblationRung::Dalorex, &graph, workload, 2, 1 << 20).unwrap();
        assert!(outcome.cycles > 0, "{} produced zero cycles", workload.name());
    }
    assert_within_budget("all-workloads smoke", start);
}
