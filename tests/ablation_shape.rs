//! Shape tests for the paper's headline claims: the directions and rough
//! magnitudes of the evaluation-section results must hold on the
//! reproduction's (reduced-scale) substrate.

use dalorex::baseline::ablation::{geomean, run_rung, AblationRung};
use dalorex::baseline::roofline::{dalorex_aggregate_bandwidth_bytes_per_s, BandwidthRoofline};
use dalorex::baseline::tesseract::{TesseractConfig, TesseractModel};
use dalorex::baseline::Workload;
use dalorex::graph::generators::rmat::RmatConfig;
use dalorex::graph::CsrGraph;

fn graph() -> CsrGraph {
    RmatConfig::new(9, 8).seed(33).build().unwrap()
}

const SCRATCHPAD: usize = 1 << 20;

#[test]
fn figure5_shape_dalorex_beats_tesseract_by_a_large_factor_on_every_workload() {
    let graph = graph();
    let mut speedups = Vec::new();
    let mut energy_gains = Vec::new();
    for workload in Workload::figure5_set() {
        let tesseract = run_rung(AblationRung::Tesseract, &graph, workload, 4, SCRATCHPAD).unwrap();
        let dalorex = run_rung(AblationRung::Dalorex, &graph, workload, 4, SCRATCHPAD).unwrap();
        let speedup = dalorex.speedup_over(&tesseract);
        let energy = dalorex.energy_gain_over(&tesseract);
        assert!(
            speedup > 3.0,
            "{}: speedup {speedup:.1} too small for the Figure 5 shape",
            workload.name()
        );
        assert!(
            energy > 3.0,
            "{}: energy gain {energy:.1} too small for the Figure 5 shape",
            workload.name()
        );
        speedups.push(speedup);
        energy_gains.push(energy);
    }
    // The paper reports 221x/325x geomeans at 256 cores on full-size
    // datasets; at reproduction scale the gap shrinks but must remain well
    // above an order of magnitude in the aggregate direction.
    assert!(geomean(&speedups) > 5.0);
    assert!(geomean(&energy_gains) > 5.0);
}

#[test]
fn figure5_shape_every_major_rung_contributes() {
    // Climbing from Data-Local to full Dalorex must improve the geomean
    // across workloads (individual rungs may be noisy on small datasets).
    let graph = graph();
    let mut first = Vec::new();
    let mut last = Vec::new();
    for workload in [Workload::Bfs { root: 0 }, Workload::Sssp { root: 0 }, Workload::Wcc] {
        let data_local =
            run_rung(AblationRung::DataLocal, &graph, workload, 4, SCRATCHPAD).unwrap();
        let dalorex = run_rung(AblationRung::Dalorex, &graph, workload, 4, SCRATCHPAD).unwrap();
        first.push(data_local.cycles as f64);
        last.push(dalorex.cycles as f64);
    }
    let improvement = geomean(&first) / geomean(&last);
    assert!(
        improvement > 1.5,
        "full Dalorex only {improvement:.2}x over Data-Local"
    );
}

#[test]
fn tesseract_lc_sits_between_tesseract_and_dalorex() {
    let graph = graph();
    let workload = Workload::PageRank { epochs: 3 };
    let tesseract = run_rung(AblationRung::Tesseract, &graph, workload, 4, SCRATCHPAD).unwrap();
    let lc = run_rung(AblationRung::TesseractLc, &graph, workload, 4, SCRATCHPAD).unwrap();
    let dalorex = run_rung(AblationRung::Dalorex, &graph, workload, 4, SCRATCHPAD).unwrap();
    assert!(lc.cycles <= tesseract.cycles);
    assert!(dalorex.cycles < lc.cycles);
    assert!(lc.energy_j < tesseract.energy_j);
    assert!(dalorex.energy_j < lc.energy_j);
}

#[test]
fn figure6_shape_strong_scaling_until_tiles_starve() {
    // Runtime must keep dropping as the grid grows, but the last doubling
    // steps — where each tile holds only a few dozen vertices, far below
    // the paper's ~1k-vertex parallelization limit — must be clearly
    // sub-linear: quadrupling the tile count no longer comes close to a 4x
    // speedup.
    let graph = RmatConfig::new(10, 8).seed(5).build().unwrap();
    let workload = Workload::Bfs { root: 0 };
    let mut cycles = Vec::new();
    for side in [1usize, 2, 4, 8] {
        let outcome = dalorex_bench_runner(&graph, workload, side);
        cycles.push(outcome);
    }
    assert!(cycles[1] < cycles[0], "4 tiles must beat 1 tile");
    assert!(cycles[2] < cycles[1], "16 tiles must beat 4 tiles");
    assert!(cycles[3] < cycles[2], "64 tiles must still beat 16 tiles");
    let late_speedup = cycles[2] as f64 / cycles[3] as f64; // 16 -> 64 tiles
    assert!(
        late_speedup < 3.0,
        "16->64 tile speedup {late_speedup:.1} should be clearly sub-linear with only ~16 vertices per tile"
    );
    let total_speedup = cycles[0] as f64 / cycles[3] as f64;
    assert!(
        total_speedup < 64.0 && total_speedup > 3.0,
        "1->64 tile speedup {total_speedup:.1} should be substantial but below ideal"
    );
}

fn dalorex_bench_runner(graph: &CsrGraph, workload: Workload, side: usize) -> u64 {
    use dalorex::sim::config::{GridConfig, SimConfigBuilder};
    use dalorex::sim::Simulation;
    let config = SimConfigBuilder::new(GridConfig::square(side))
        .scratchpad_bytes(4 << 20)
        .build()
        .unwrap();
    let sim = Simulation::new(config, graph).unwrap();
    let kernel = workload.kernel();
    sim.run(kernel.as_ref()).unwrap().cycles
}

#[test]
fn figure8_shape_torus_beats_mesh_on_contended_grids() {
    use dalorex::noc::Topology;
    use dalorex::sim::config::{GridConfig, SimConfigBuilder};
    use dalorex::sim::Simulation;
    // Average degree 16 keeps the fabric — not the tiles' single
    // injection/ejection ports — the bottleneck on a 64-tile grid, so the
    // topology comparison measures contention rather than endpoint
    // serialization noise.
    let graph = RmatConfig::new(10, 16).seed(29).build().unwrap();
    let mut cycles = Vec::new();
    for topology in [Topology::Mesh, Topology::Torus] {
        let config = SimConfigBuilder::new(GridConfig::square(8))
            .scratchpad_bytes(1 << 20)
            .topology(topology)
            .build()
            .unwrap();
        let sim = Simulation::new(config, &graph).unwrap();
        let kernel = Workload::Sssp { root: 0 }.kernel();
        cycles.push(sim.run(kernel.as_ref()).unwrap().cycles);
    }
    assert!(
        cycles[1] < cycles[0],
        "torus ({}) should beat mesh ({})",
        cycles[1],
        cycles[0]
    );
}

#[test]
fn figure10_shape_mesh_concentrates_router_load_more_than_torus() {
    use dalorex::noc::Topology;
    use dalorex::sim::config::{GridConfig, SimConfigBuilder};
    use dalorex::sim::Simulation;
    let graph = RmatConfig::new(10, 8).seed(29).build().unwrap();
    let mut variations = Vec::new();
    for topology in [Topology::Mesh, Topology::Torus] {
        let config = SimConfigBuilder::new(GridConfig::square(8))
            .scratchpad_bytes(1 << 20)
            .topology(topology)
            .build()
            .unwrap();
        let sim = Simulation::new(config, &graph).unwrap();
        let kernel = Workload::Sssp { root: 0 }.kernel();
        let outcome = sim.run(kernel.as_ref()).unwrap();
        variations.push(outcome.stats.router_utilization_grid().variation());
    }
    assert!(
        variations[0] > variations[1],
        "mesh router-load variation ({:.3}) should exceed the torus's ({:.3})",
        variations[0],
        variations[1]
    );
}

#[test]
fn section_iv_b_shape_polygraph_plateaus_while_dalorex_bandwidth_scales() {
    let roofline = BandwidthRoofline::polygraph_like();
    assert!(roofline.achievable_edges_per_s(16) == roofline.achievable_edges_per_s(256));
    let dalorex_256 = dalorex_aggregate_bandwidth_bytes_per_s(256, 1.0e9);
    let dalorex_16k = dalorex_aggregate_bandwidth_bytes_per_s(16_384, 1.0e9);
    assert!(dalorex_16k > 60.0 * dalorex_256);
}

#[test]
fn tesseract_imbalance_grows_with_graph_skew() {
    let model = TesseractModel::new(TesseractConfig::paper_default());
    let skewed = RmatConfig::new(10, 8).seed(3).build().unwrap();
    let uniform = dalorex::graph::generators::erdos_renyi::UniformConfig::new(1 << 10, 8)
        .seed(3)
        .build()
        .unwrap();
    let skewed_outcome = model.run(&skewed, Workload::PageRank { epochs: 1 });
    let uniform_outcome = model.run(&uniform, Workload::PageRank { epochs: 1 });
    assert!(
        skewed_outcome.average_imbalance > uniform_outcome.average_imbalance,
        "RMAT imbalance {:.2} should exceed uniform imbalance {:.2}",
        skewed_outcome.average_imbalance,
        uniform_outcome.average_imbalance
    );
}
