//! Repository determinism lint.
//!
//! The reproduction's headline property is that all five engines replay
//! the *identical* schedule — bit-identical cycle counts, stats and
//! output on every run, on every machine.  That property dies quietly
//! the first time schedule-order code iterates a `HashMap`, timestamps a
//! modeled event, or grows an unreviewed `unsafe` block.  This lint
//! walks the modeled crates (`crates/sim`, `crates/noc`) and rejects:
//!
//! - `HashMap` / `HashSet` — iteration order is randomized per process;
//!   use `Vec`, `BTreeMap` or index-keyed arenas in modeled code.
//! - `Instant::now` / `SystemTime` — wall-clock must never reach a
//!   modeled path; cycle counts are the only clock.
//! - `unsafe` — confined to the parallel engine's worker handoff
//!   (`crates/sim/src/engine/par.rs`), which carries the safety
//!   argument; everywhere else the crates deny it at compile time too.
//!
//! Exemptions live in `tests/repo_lint_allowlist.txt` (`path token`
//! pairs) so every exception is visible in review.  The scan strips
//! `//` line comments and matches on word boundaries, so prose about
//! hash maps and the `#[deny(unsafe_code)]` attribute token do not trip
//! it.

use std::fs;
use std::path::{Path, PathBuf};

/// Tokens that must not appear in modeled code.
const BANNED: [&str; 5] = ["HashMap", "HashSet", "Instant::now", "SystemTime", "unsafe"];

/// Crates whose sources are schedule-order (modeled) code.
const LINTED_ROOTS: [&str; 2] = ["crates/sim/src", "crates/noc/src"];

fn repo_root() -> PathBuf {
    // tests/ lives at the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("linted directory exists") {
        let path = entry.expect("directory entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// `path token` pairs from the allowlist file; `#` starts a comment.
fn allowlist(root: &Path) -> Vec<(String, String)> {
    let text = fs::read_to_string(root.join("tests/repo_lint_allowlist.txt"))
        .expect("tests/repo_lint_allowlist.txt exists");
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (path, token) = l
                .split_once(' ')
                .expect("allowlist lines are `path token` pairs");
            (path.to_string(), token.trim().to_string())
        })
        .collect()
}

/// Strips `//` comments (doc comments included) from one line of code.
/// String literals are not parsed — none of the banned tokens appears in
/// a string in the linted crates, and a new one would fail visibly here
/// rather than silently pass.
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    }
}

/// Whether `token` occurs in `code` on word boundaries (so the `unsafe`
/// scan does not match the `unsafe_code` attribute token).
fn contains_token(code: &str, token: &str) -> bool {
    let is_word = |c: char| c.is_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let before_ok = at == 0 || !code[..at].chars().next_back().is_some_and(is_word);
        let after = at + token.len();
        let after_ok = after >= code.len() || !code[after..].chars().next().is_some_and(is_word);
        if before_ok && after_ok {
            return true;
        }
        start = at + token.len();
    }
    false
}

#[test]
fn modeled_crates_stay_deterministic() {
    let root = repo_root();
    let allow = allowlist(&root);
    let mut files = Vec::new();
    for linted in LINTED_ROOTS {
        rust_sources(&root.join(linted), &mut files);
    }
    files.sort();
    assert!(
        files.len() >= 10,
        "lint walked only {} files — roots moved?",
        files.len()
    );

    let mut violations = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(&root)
            .expect("file under repo root")
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(file).expect("source file is UTF-8");
        let mut block_comment = false;
        for (num, raw) in text.lines().enumerate() {
            // Cheap block-comment tracking: a line that opens `/*` without
            // closing it comments out following lines until `*/`.
            let mut line = strip_line_comment(raw).to_string();
            if block_comment {
                match line.find("*/") {
                    Some(end) => {
                        line = line[end + 2..].to_string();
                        block_comment = false;
                    }
                    None => continue,
                }
            }
            while let Some(open) = line.find("/*") {
                match line[open + 2..].find("*/") {
                    Some(close) => {
                        line = format!("{}{}", &line[..open], &line[open + 2 + close + 2..]);
                    }
                    None => {
                        line = line[..open].to_string();
                        block_comment = true;
                        break;
                    }
                }
            }
            for token in BANNED {
                if contains_token(&line, token)
                    && !allow.iter().any(|(p, t)| p == &rel && t == token)
                {
                    violations.push(format!("{rel}:{}: banned token `{token}`", num + 1));
                }
            }
        }
    }

    assert!(
        violations.is_empty(),
        "determinism lint failed — use ordered containers / cycle counts, or \
         justify an entry in tests/repo_lint_allowlist.txt:\n{}",
        violations.join("\n")
    );
}

#[test]
fn allowlist_entries_point_at_real_files() {
    let root = repo_root();
    for (path, token) in allowlist(&root) {
        assert!(
            root.join(&path).is_file(),
            "stale allowlist entry: {path} (token {token}) is not a file"
        );
        assert!(
            BANNED.contains(&token.as_str()),
            "allowlist entry for {path} names unknown token {token}"
        );
    }
}

#[test]
fn the_lint_matcher_respects_word_boundaries() {
    assert!(contains_token("let x = unsafe { y };", "unsafe"));
    assert!(!contains_token("#![deny(unsafe_code)]", "unsafe"));
    assert!(!contains_token("a_HashMap_like_name", "HashMap"));
    assert!(contains_token("use std::collections::HashMap;", "HashMap"));
    assert!(contains_token("Instant::now()", "Instant::now"));
    assert!(strip_line_comment("let a = 1; // unsafe note") == "let a = 1; ");
}
