//! Property-based tests (proptest) for the core invariants of the
//! reproduction: data-structure round trips, placement bijectivity, NoC
//! delivery, and simulator-vs-reference equivalence on arbitrary graphs.

use dalorex::graph::{CsrGraph, Edge, EdgeList};
use dalorex::kernels::{BfsKernel, SpmvKernel, SsspKernel, WccKernel};
use dalorex::noc::message::Message;
use dalorex::noc::network::Network;
use dalorex::noc::topology::{GridShape, Port};
use dalorex::noc::{NocConfig, RouterScheduler, Topology};
use dalorex::sim::config::{GridConfig, SimConfigBuilder};
use dalorex::sim::placement::ArraySpace;
use dalorex::sim::{FaultEvent, FaultPlan, Placement, RandomFaultSpec, Simulation, VertexPlacement};
use dalorex::graph::reference;
use dalorex::sim::queues::WordQueue;
use proptest::prelude::*;
use std::collections::VecDeque;

/// One operation of the [`WordQueue`] model test.
#[derive(Debug, Clone)]
enum QueueOp {
    /// Try to push this invocation.
    Push(Vec<u32>),
    /// Pop one word.
    PopWord,
    /// Pop an invocation of this many words (into a stack buffer).
    PopInvocation(usize),
    /// Pop an invocation of this many words, then restore it at the head
    /// (the engine's speculative pop + rejected-injection undo).
    PopAndRestore(usize),
}

fn arb_queue_op() -> impl Strategy<Value = QueueOp> {
    // Encoded as a tuple (kind, count, words) so the strategy works with
    // both the vendored proptest stand-in and the real crate.
    (0usize..4, 1usize..6, proptest::collection::vec(1u32..1_000_000, 1..6)).prop_map(
        |(kind, count, words)| match kind {
            0 => QueueOp::Push(words),
            1 => QueueOp::PopWord,
            2 => QueueOp::PopInvocation(count),
            _ => QueueOp::PopAndRestore(count),
        },
    )
}

/// Strategy: a random directed weighted graph with up to `max_v` vertices.
fn arb_graph(max_v: usize, max_degree: usize) -> impl Strategy<Value = CsrGraph> {
    (2usize..max_v).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, 1u32..64), 0..n * max_degree).prop_map(
            move |triples| {
                let mut edges = EdgeList::new(n);
                for (src, dst, w) in triples {
                    edges.push(Edge::new(src as u32, dst as u32, w));
                }
                edges.dedup_and_remove_self_loops();
                CsrGraph::from_edge_list(&edges)
            },
        )
    })
}

/// Strategy: one random fault event on the 2×2 property grid — all four
/// kinds, windows inside the first couple thousand cycles so they overlap
/// real traffic.
fn arb_fault_event() -> impl Strategy<Value = FaultEvent> {
    (0usize..4, 0usize..4, 0u64..1500, 1u64..400, 2u64..6, 0usize..5).prop_map(
        |(kind, tile, start, len, factor, port)| {
            let end = start + len;
            match kind {
                0 => FaultEvent::LinkOutage {
                    tile,
                    port: [
                        None,
                        Some(Port::East),
                        Some(Port::West),
                        Some(Port::North),
                        Some(Port::South),
                    ][port],
                    start,
                    end,
                },
                1 => FaultEvent::RouterStall { tile, start, end },
                2 => FaultEvent::PuSlowdown {
                    tile,
                    factor,
                    start,
                    end,
                },
                _ => FaultEvent::EndpointThrottle {
                    tile,
                    budget: 1,
                    start,
                    end,
                },
            }
        },
    )
}

fn small_sim(graph: &CsrGraph, placement: VertexPlacement) -> Simulation {
    let config = SimConfigBuilder::new(GridConfig::new(2, 2))
        .scratchpad_bytes(1 << 20)
        .vertex_placement(placement)
        .build()
        .unwrap();
    Simulation::new(config, graph).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ring_word_queue_matches_vecdeque_model(
        capacity in 1usize..24,
        ops in proptest::collection::vec(arb_queue_op(), 1..120),
    ) {
        // The ring-descriptor WordQueue (storage lives in a shared arena
        // slab; the descriptor only carries offset/capacity/head/len)
        // against a straightforward VecDeque model: pushes, single-word
        // pops, allocation-free invocation pops and the speculative pop +
        // push-front undo must agree word for word, and the occupancy
        // statistics must track the model exactly.  The ring is placed at
        // a nonzero slab offset with live guard words on both sides to
        // catch any out-of-span access.
        const GUARD: u32 = 0xDEAD_BEEF;
        let off = 3usize;
        let mut slab = vec![GUARD; off + capacity + 2];
        let mut queue = WordQueue::new(off, capacity);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut model_max = 0usize;
        for op in ops {
            match op {
                QueueOp::Push(words) => {
                    let fits = words.len() <= capacity - model.len();
                    prop_assert_eq!(queue.can_push(words.len()), fits);
                    prop_assert_eq!(queue.try_push(&mut slab, &words), fits);
                    if fits {
                        model.extend(words.iter().copied());
                        model_max = model_max.max(model.len());
                    }
                }
                QueueOp::PopWord => {
                    prop_assert_eq!(queue.peek(&slab), model.front().copied());
                    prop_assert_eq!(queue.pop_word(&slab), model.pop_front());
                }
                QueueOp::PopInvocation(count) => {
                    let mut buf = [0u32; 8];
                    let fits = count <= model.len();
                    prop_assert_eq!(queue.pop_invocation_into(&slab, count, &mut buf), fits);
                    if fits {
                        let expected: Vec<u32> = model.drain(..count).collect();
                        prop_assert_eq!(&buf[..count], expected.as_slice());
                    }
                }
                QueueOp::PopAndRestore(count) => {
                    if count <= model.len() {
                        let head = queue.pop_invocation(&slab, count).unwrap();
                        let expected: Vec<u32> =
                            model.iter().take(count).copied().collect();
                        prop_assert_eq!(&head, &expected);
                        queue.push_front_invocation(&mut slab, &head);
                    }
                }
            }
            prop_assert_eq!(queue.len(), model.len());
            prop_assert_eq!(queue.is_empty(), model.is_empty());
            prop_assert_eq!(queue.free(), capacity - model.len());
            prop_assert_eq!(queue.max_occupancy(), model_max);
            prop_assert_eq!(queue.iter(&slab).collect::<Vec<u32>>(),
                            model.iter().copied().collect::<Vec<u32>>());
            // The ring never writes outside its span.
            prop_assert!(slab[..off].iter().all(|&w| w == GUARD));
            prop_assert!(slab[off + capacity..].iter().all(|&w| w == GUARD));
        }
    }

    #[test]
    fn csr_round_trips_through_edge_lists(graph in arb_graph(120, 4)) {
        let rebuilt = CsrGraph::from_edge_list(&graph.to_edge_list());
        prop_assert_eq!(&rebuilt, &graph);
        // Transposing twice preserves the edge multiset.
        let mut a = graph.to_edge_list();
        let mut b = graph.transpose().transpose().to_edge_list();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn placement_is_a_bijection(
        tiles in 1usize..40,
        vertices in 1usize..3000,
        edges in 1usize..9000,
        interleaved in proptest::bool::ANY,
    ) {
        let placement = Placement::new(
            tiles,
            vertices,
            edges,
            if interleaved { VertexPlacement::Interleaved } else { VertexPlacement::Chunked },
        );
        for space in [ArraySpace::Vertex, ArraySpace::Edge] {
            let total = match space { ArraySpace::Vertex => vertices, ArraySpace::Edge => edges };
            let mut per_tile = vec![0usize; tiles];
            for index in 0..total {
                let owner = placement.owner(space, index);
                let local = placement.to_local(space, index);
                prop_assert!(owner < tiles);
                prop_assert!(local < placement.chunk_capacity(space));
                prop_assert_eq!(placement.to_global(space, owner, local), index);
                per_tile[owner] += 1;
            }
            prop_assert_eq!(per_tile.iter().sum::<usize>(), total);
            // Every tile's load is within one chunk of the even share.
            let max = per_tile.iter().copied().max().unwrap_or(0);
            prop_assert!(max <= placement.chunk_capacity(space));
        }
    }

    #[test]
    fn noc_delivers_every_message_exactly_once(
        messages in proptest::collection::vec((0usize..16, 0usize..16, 1usize..4, 1u32..1000), 1..80),
        torus in proptest::bool::ANY,
    ) {
        let topology = if torus { Topology::Torus } else { Topology::Mesh };
        let mut net = Network::new(NocConfig::new(GridShape::new(4, 4), topology));
        let mut expected = vec![0u32; 16];
        let mut pending: Vec<(usize, Message)> = messages
            .into_iter()
            .map(|(src, dst, len, seed)| {
                expected[dst] += 1;
                (src, Message::new(dst, (seed % 4) as usize, vec![seed; len]))
            })
            .collect();
        let mut guard = 0;
        while !pending.is_empty() {
            let mut retry = Vec::new();
            for (src, msg) in pending.drain(..) {
                if let Err(rejected) = net.try_inject(src, msg) {
                    retry.push((src, rejected.message));
                }
            }
            pending = retry;
            net.cycle();
            guard += 1;
            prop_assert!(guard < 20_000, "injection never completed");
        }
        let mut drain_guard = 0;
        while net.in_flight() > 0 {
            net.cycle();
            drain_guard += 1;
            prop_assert!(drain_guard < 100_000, "network never drained");
        }
        let mut received = vec![0u32; 16];
        for (tile, count) in received.iter_mut().enumerate() {
            while let Some(msg) = net.pop_delivered(tile) {
                prop_assert_eq!(msg.dest(), tile);
                *count += 1;
            }
        }
        prop_assert_eq!(received, expected);
        prop_assert!(net.is_idle());
    }

    #[test]
    fn any_endpoint_drain_budget_conserves_messages_and_quiesces(
        messages in proptest::collection::vec((0usize..16, 0usize..16, 1usize..4, 1u32..1000), 1..60),
        drains in 1usize..5,
        torus in proptest::bool::ANY,
    ) {
        // For any endpoint_drains_per_cycle >= 1: every injected message is
        // drained exactly once (conservation) and the network eventually
        // reaches quiescence under the per-cycle endpoint drain budget.
        let topology = if torus { Topology::Torus } else { Topology::Mesh };
        let config = NocConfig::new(GridShape::new(4, 4), topology).with_endpoint_drains(drains);
        prop_assert_eq!(config.endpoint_drains_per_cycle, drains);
        let mut net = Network::new(config);
        let mut expected = vec![0u32; 16];
        let mut pending: Vec<(usize, Message)> = messages
            .into_iter()
            .map(|(src, dst, len, seed)| {
                expected[dst] += 1;
                (src, Message::new(dst, (seed % 4) as usize, vec![seed; len]))
            })
            .collect();
        let total: u32 = expected.iter().sum();
        let mut received = vec![0u32; 16];
        let mut guard = 0;
        // Endpoint loop: inject with retry, advance, drain at most `drains`
        // messages per tile per cycle.
        while !net.quiescent() || !pending.is_empty() {
            let mut retry = Vec::new();
            for (src, msg) in pending.drain(..) {
                if let Err(rejected) = net.try_inject(src, msg) {
                    retry.push((src, rejected.message));
                }
            }
            pending = retry;
            net.cycle();
            for (tile, count) in received.iter_mut().enumerate() {
                for _ in 0..drains {
                    let Some(msg) = net.pop_delivered(tile) else { break };
                    prop_assert_eq!(msg.dest(), tile);
                    *count += 1;
                }
            }
            guard += 1;
            prop_assert!(guard < 50_000, "network never quiesced under drain budget {}", drains);
        }
        prop_assert_eq!(received, expected);
        prop_assert!(net.quiescent());
        prop_assert_eq!(net.stats().delivered_messages, u64::from(total));
        prop_assert_eq!(net.stats().injected_messages, u64::from(total));
    }

    #[test]
    fn skip_drive_loop_matches_reference_on_random_traffic(
        messages in proptest::collection::vec((0usize..16, 0usize..16, 1usize..4, 1u32..1000), 1..80),
        torus in proptest::bool::ANY,
    ) {
        // The skip-to-next-event drive loop (advance_to the network's next
        // event, then cycle) against the pre-overhaul cycle_reference
        // ticking every cycle, on arbitrary traffic: messages are conserved
        // (each delivered exactly once), both reach quiescence, and every
        // statistic — including the total latency and the modelled cycle
        // count — is identical.  Ejection buffers are sized to hold all
        // traffic so the endpoints never interleave pops mid-flight (pop
        // timing is the tile engine's concern, pinned by the
        // tile_path_equivalence suite).
        let topology = if torus { Topology::Torus } else { Topology::Mesh };
        let config = NocConfig::new(GridShape::new(4, 4), topology)
            .with_ejection_buffer_flits(1024);
        let mut skip = Network::new(config.clone());
        let mut reference = Network::new(config);
        let mut expected = vec![0u32; 16];
        let mut pending: Vec<(usize, Message)> = messages
            .into_iter()
            .map(|(src, dst, len, seed)| {
                expected[dst] += 1;
                (src, Message::new(dst, (seed % 4) as usize, vec![seed; len]))
            })
            .collect();
        let mut pending_ref = pending.clone();
        // Injection phase: both tick cycle by cycle with identical retries,
        // so every attempt (and rejection statistic) lines up.
        let mut guard = 0;
        while !pending.is_empty() || !pending_ref.is_empty() {
            let mut retry = Vec::new();
            for (src, msg) in pending.drain(..) {
                if let Err(rejected) = skip.try_inject(src, msg) {
                    retry.push((src, rejected.message));
                }
            }
            pending = retry;
            let mut retry = Vec::new();
            for (src, msg) in pending_ref.drain(..) {
                if let Err(rejected) = reference.try_inject(src, msg) {
                    retry.push((src, rejected.message));
                }
            }
            pending_ref = retry;
            skip.cycle();
            reference.cycle_reference();
            guard += 1;
            prop_assert!(guard < 20_000, "injection never completed");
        }
        // Drain phase: the skip loop jumps every provably quiet window.
        let mut steps = 0;
        while skip.in_flight() > 0 {
            let bound = skip.next_event_cycle();
            prop_assert!(bound < u64::MAX, "in-flight traffic must have a next event");
            skip.advance_to(bound);
            skip.cycle();
            steps += 1;
            prop_assert!(steps < 100_000, "skip loop never drained");
        }
        let mut ticks = 0;
        while reference.in_flight() > 0 {
            reference.cycle_reference();
            ticks += 1;
            prop_assert!(ticks < 100_000, "reference never drained");
        }
        prop_assert_eq!(skip.current_cycle(), reference.current_cycle());
        prop_assert_eq!(skip.stats(), reference.stats());
        prop_assert_eq!(
            skip.stats().total_latency_cycles,
            reference.stats().total_latency_cycles
        );
        prop_assert_eq!(skip.flits_per_router(), reference.flits_per_router());
        // Conservation: every message delivered exactly once, identically.
        let mut received = vec![0u32; 16];
        for (tile, count) in received.iter_mut().enumerate() {
            loop {
                let a = skip.pop_delivered(tile);
                let b = reference.pop_delivered(tile);
                prop_assert_eq!(
                    a.as_ref().map(|m| m.payload().to_vec()),
                    b.as_ref().map(|m| m.payload().to_vec())
                );
                let Some(msg) = a else { break };
                prop_assert_eq!(msg.dest(), tile);
                *count += 1;
            }
        }
        prop_assert_eq!(received, expected);
        prop_assert!(skip.is_idle() && reference.is_idle());
    }

    #[test]
    fn calendar_scheduler_matches_reference_on_random_traffic(
        messages in proptest::collection::vec((0usize..16, 0usize..16, 1usize..4, 1u32..1000), 1..80),
        drains in 1usize..4,
        torus in proptest::bool::ANY,
    ) {
        // The calendar router scheduler against the pre-overhaul
        // cycle_reference, on arbitrary traffic with a throttled endpoint
        // (small ejection buffers + a per-cycle drain budget keep some
        // heads blocked on full downstream buffers, exercising the waiter
        // lists): message conservation, identical statistics, identical
        // per-tile delivery streams.
        let topology = if torus { Topology::Torus } else { Topology::Mesh };
        let config = NocConfig::new(GridShape::new(4, 4), topology)
            .with_ejection_buffer_flits(8);
        let mut calendar = Network::new(
            config.clone().with_router_scheduler(RouterScheduler::Calendar),
        );
        let mut reference = Network::new(config);
        let mut expected = vec![0u32; 16];
        let mut pending: Vec<(usize, Message)> = messages
            .into_iter()
            .map(|(src, dst, len, seed)| {
                expected[dst] += 1;
                (src, Message::new(dst, (seed % 4) as usize, vec![seed; len]))
            })
            .collect();
        let mut pending_ref = pending.clone();
        let mut received = vec![0u32; 16];
        let mut guard = 0;
        while !calendar.quiescent()
            || !reference.quiescent()
            || !pending.is_empty()
            || !pending_ref.is_empty()
        {
            let mut retry = Vec::new();
            for (src, msg) in pending.drain(..) {
                if let Err(rejected) = calendar.try_inject(src, msg) {
                    retry.push((src, rejected.message));
                }
            }
            pending = retry;
            let mut retry = Vec::new();
            for (src, msg) in pending_ref.drain(..) {
                if let Err(rejected) = reference.try_inject(src, msg) {
                    retry.push((src, rejected.message));
                }
            }
            pending_ref = retry;
            calendar.cycle();
            reference.cycle_reference();
            for (tile, count) in received.iter_mut().enumerate() {
                for _ in 0..drains {
                    let a = calendar.pop_delivered(tile);
                    let b = reference.pop_delivered(tile);
                    prop_assert_eq!(
                        a.as_ref().map(|m| m.payload().to_vec()),
                        b.as_ref().map(|m| m.payload().to_vec()),
                        "delivery diverged at tile {}", tile
                    );
                    let Some(msg) = a else { break };
                    prop_assert_eq!(msg.dest(), tile);
                    *count += 1;
                }
            }
            guard += 1;
            prop_assert!(guard < 50_000, "networks never quiesced");
        }
        prop_assert_eq!(received, expected);
        prop_assert_eq!(calendar.stats(), reference.stats());
        prop_assert_eq!(calendar.flits_per_router(), reference.flits_per_router());
    }

    #[test]
    fn due_only_walk_preserves_active_list_order(
        messages in proptest::collection::vec((0usize..16, 0usize..16, 1usize..4, 1u32..1000), 1..80),
        drains in 1usize..4,
        torus in proptest::bool::ANY,
    ) {
        // The arbitration-order invariant behind the due-only walk (ISSUE
        // 10): the implicit position keys, sorted, reproduce the scan
        // scheduler's explicit `active_list` byte for byte — every cycle,
        // under arbitrary traffic with endpoint-drain membership churn
        // (drops, re-adds, mid-walk wakes).  The calendar-scan baseline
        // keeps a real list and must agree too.  Any divergence here is a
        // future schedule divergence even if this cycle's commits matched.
        let topology = if torus { Topology::Torus } else { Topology::Mesh };
        let config = NocConfig::new(GridShape::new(4, 4), topology)
            .with_ejection_buffer_flits(8);
        let mut scan = Network::new(config.clone());
        let mut due_only = Network::new(
            config.clone().with_router_scheduler(RouterScheduler::Calendar),
        );
        let mut full_walk = Network::new(
            config.with_router_scheduler(RouterScheduler::CalendarScan),
        );
        let seed_pending: Vec<(usize, Message)> = messages
            .into_iter()
            .map(|(src, dst, len, seed)| {
                (src, Message::new(dst, (seed % 4) as usize, vec![seed; len]))
            })
            .collect();
        let mut pendings = [seed_pending.clone(), seed_pending.clone(), seed_pending];
        let mut guard = 0;
        while !scan.quiescent()
            || !due_only.quiescent()
            || !full_walk.quiescent()
            || pendings.iter().any(|p| !p.is_empty())
        {
            for (net, pending) in [&mut scan, &mut due_only, &mut full_walk]
                .into_iter()
                .zip(pendings.iter_mut())
            {
                let mut retry = Vec::new();
                for (src, msg) in pending.drain(..) {
                    if let Err(rejected) = net.try_inject(src, msg) {
                        retry.push((src, rejected.message));
                    }
                }
                *pending = retry;
                net.cycle();
            }
            prop_assert_eq!(
                due_only.debug_active_order(),
                scan.debug_active_order(),
                "due-only position order diverged from the scan list at cycle {}",
                scan.current_cycle()
            );
            prop_assert_eq!(
                full_walk.debug_active_order(),
                scan.debug_active_order(),
                "calendar-scan list diverged from the scan list at cycle {}",
                scan.current_cycle()
            );
            for tile in 0..16 {
                for _ in 0..drains {
                    let a = scan.pop_delivered(tile);
                    let b = due_only.pop_delivered(tile);
                    let c = full_walk.pop_delivered(tile);
                    prop_assert_eq!(
                        a.as_ref().map(|m| m.payload().to_vec()),
                        b.as_ref().map(|m| m.payload().to_vec()),
                        "due-only delivery diverged at tile {}", tile
                    );
                    prop_assert_eq!(
                        a.as_ref().map(|m| m.payload().to_vec()),
                        c.as_ref().map(|m| m.payload().to_vec()),
                        "calendar-scan delivery diverged at tile {}", tile
                    );
                    if a.is_none() {
                        break;
                    }
                }
            }
            guard += 1;
            prop_assert!(guard < 50_000, "networks never quiesced");
        }
        prop_assert_eq!(scan.stats(), due_only.stats());
        prop_assert_eq!(scan.stats(), full_walk.stats());
        prop_assert_eq!(scan.flits_per_router(), due_only.flits_per_router());
        prop_assert_eq!(scan.flits_per_router(), full_walk.flits_per_router());
    }

    #[test]
    fn calendar_due_stamps_never_overshoot_commits(
        messages in proptest::collection::vec((0usize..16, 0usize..16, 1usize..4, 1u32..1000), 1..60),
        drains in 1usize..4,
        torus in proptest::bool::ANY,
        due_only in proptest::bool::ANY,
    ) {
        // The calendar invariant (ISSUE 5): a router's `next_possible` due
        // stamp is a *lower bound* on its next commit — whenever a router
        // actually forwards a message (its forwarded-flit counter moves
        // during a cycle), the stamp it carried entering that cycle must
        // have come due.  An overshooting stamp would mean the calendar
        // walk could skip a router that the scan scheduler would commit,
        // silently changing the schedule.  ISSUE 10 extends the invariant
        // to the due-only walk, where an overshoot no longer merely skips
        // a stamp read — the router is never even visited.
        let topology = if torus { Topology::Torus } else { Topology::Mesh };
        let scheduler = if due_only {
            RouterScheduler::Calendar
        } else {
            RouterScheduler::CalendarScan
        };
        let mut net = Network::new(
            NocConfig::new(GridShape::new(4, 4), topology)
                .with_ejection_buffer_flits(8)
                .with_router_scheduler(scheduler),
        );
        let mut pending: Vec<(usize, Message)> = messages
            .into_iter()
            .map(|(src, dst, len, seed)| {
                (src, Message::new(dst, (seed % 4) as usize, vec![seed; len]))
            })
            .collect();
        let mut guard = 0;
        while !net.quiescent() || !pending.is_empty() {
            let mut retry = Vec::new();
            for (src, msg) in pending.drain(..) {
                if let Err(rejected) = net.try_inject(src, msg) {
                    retry.push((src, rejected.message));
                }
            }
            pending = retry;
            let stamps: Vec<u64> = (0..16).map(|t| net.next_possible_stamp(t)).collect();
            let before = net.flits_per_router();
            let now = net.current_cycle();
            net.cycle();
            let after = net.flits_per_router();
            for tile in 0..16 {
                if after[tile] > before[tile] {
                    prop_assert!(
                        stamps[tile] <= now,
                        "router {} committed at cycle {} but its next_possible stamp was {}",
                        tile, now, stamps[tile]
                    );
                }
            }
            for tile in 0..16 {
                for _ in 0..drains {
                    if net.pop_delivered(tile).is_none() {
                        break;
                    }
                }
            }
            guard += 1;
            prop_assert!(guard < 50_000, "network never quiesced");
        }
    }

    #[test]
    fn simulated_bfs_and_sssp_match_references_on_arbitrary_graphs(
        graph in arb_graph(150, 3),
        interleaved in proptest::bool::ANY,
    ) {
        let placement = if interleaved { VertexPlacement::Interleaved } else { VertexPlacement::Chunked };
        let sim = small_sim(&graph, placement);
        let bfs = sim.run(&BfsKernel::new(0)).unwrap();
        let expected_bfs = reference::bfs(&graph, 0);
        prop_assert_eq!(bfs.output.as_u32_array("value"), expected_bfs.depths());
        let sssp = sim.run(&SsspKernel::new(0)).unwrap();
        let expected_sssp = reference::sssp(&graph, 0);
        prop_assert_eq!(sssp.output.as_u32_array("value"), expected_sssp.distances());
    }

    #[test]
    fn fault_plans_delay_but_never_drop(
        graph in arb_graph(100, 3),
        events in proptest::collection::vec(arb_fault_event(), 1..8),
        seed in 0u64..1_000,
    ) {
        // Under ANY generated fault plan — explicit windows of all four
        // kinds plus a seeded random batch — the run still quiesces and is
        // still *correct*: faults delay traffic, they never drop it.  The
        // faulted output must match both the fault-free twin and the
        // reference oracle, and the drain/delivery conservation invariant
        // must hold at quiescence.
        //
        // Delay monotonicity (a faulted run never finishes before its
        // fault-free twin) is asserted on SPMV, whose total work is fixed
        // regardless of message arrival order.  It is *not* a theorem for
        // data-dependent kernels: delaying an SSSP update can reorder
        // relaxations so a vertex sees its best distance first, pruning
        // redundant re-relaxation cascades — the faulted run then finishes
        // *earlier* (a classic scheduling anomaly, observed on this very
        // strategy).
        let build = |plan: FaultPlan| {
            let config = SimConfigBuilder::new(GridConfig::new(2, 2))
                .scratchpad_bytes(1 << 20)
                .vertex_placement(VertexPlacement::Interleaved)
                .endpoint_drains_per_cycle(2)
                .faults(plan)
                .build()
                .unwrap();
            Simulation::new(config, &graph).unwrap()
        };
        let mut plan = FaultPlan::from_events(events);
        plan.random = Some(RandomFaultSpec { seed, count: 4, horizon: 2_000 });

        let sssp = SsspKernel::new(0);
        let fault_free = build(FaultPlan::empty()).run(&sssp).unwrap();
        let faulted = build(plan.clone()).run(&sssp).unwrap();
        prop_assert_eq!(
            faulted.output.as_u32_array("value"),
            reference::sssp(&graph, 0).distances()
        );
        prop_assert_eq!(
            faulted.output.as_u32_array("value"),
            fault_free.output.as_u32_array("value")
        );
        prop_assert_eq!(
            faulted.stats.messages_received,
            faulted.stats.noc.delivered_messages
        );

        let spmv = SpmvKernel::with_default_input();
        let fault_free = build(FaultPlan::empty()).run(&spmv).unwrap();
        let faulted = build(plan).run(&spmv).unwrap();
        prop_assert_eq!(
            faulted.output.as_u32_array("y"),
            fault_free.output.as_u32_array("y")
        );
        prop_assert!(
            faulted.cycles >= fault_free.cycles,
            "faults shortened the fixed-work run: {} < {}",
            faulted.cycles,
            fault_free.cycles
        );
    }

    #[test]
    fn simulated_wcc_matches_reference_on_arbitrary_symmetric_graphs(graph in arb_graph(120, 3)) {
        let mut edges = graph.to_edge_list();
        edges.symmetrize();
        edges.dedup_and_remove_self_loops();
        let symmetric = CsrGraph::from_edge_list(&edges);
        let sim = small_sim(&symmetric, VertexPlacement::Interleaved);
        let outcome = sim.run(&WccKernel::new()).unwrap();
        let expected = reference::wcc(&symmetric);
        prop_assert_eq!(outcome.output.as_u32_array("value"), expected.labels());
    }

    #[test]
    fn simulated_spmv_matches_reference_on_arbitrary_graphs(graph in arb_graph(120, 3)) {
        let kernel = SpmvKernel::with_default_input();
        let x = kernel.input_vector(graph.num_vertices());
        let expected: Vec<u32> = reference::spmv(&graph, &x)
            .values()
            .iter()
            .map(|&v| u32::try_from(v).unwrap())
            .collect();
        let sim = small_sim(&graph, VertexPlacement::Chunked);
        let outcome = sim.run(&kernel).unwrap();
        prop_assert_eq!(outcome.output.as_u32_array("y"), expected);
    }

    #[test]
    fn energy_model_is_monotone_in_activity(
        reads in 0u64..1_000_000,
        writes in 0u64..1_000_000,
        extra in 1u64..1_000_000,
    ) {
        use dalorex::sim::energy::{ActivityCounters, EnergyConstants, EnergyModel};
        let model = EnergyModel::new(EnergyConstants::paper_7nm(), 64, 1 << 20);
        let base = ActivityCounters { sram_reads: reads, sram_writes: writes, cycles: 1000, ..Default::default() };
        let more = ActivityCounters { sram_reads: reads + extra, ..base };
        prop_assert!(model.breakdown(&more).total_j() > model.breakdown(&base).total_j());
    }
}
