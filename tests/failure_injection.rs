//! Failure-injection tests: the simulator must reject impossible
//! configurations and detect runs that cannot terminate, rather than
//! producing silently wrong results.

use dalorex::graph::generators::rmat::RmatConfig;
use dalorex::kernels::BfsKernel;
use dalorex::sim::config::{GridConfig, SimConfigBuilder};
use dalorex::sim::kernel::{
    BootstrapContext, ChannelDecl, EpochContext, EpochDecision, Kernel, LocalArrayDecl,
    TaskContext, TaskDecl, TaskParams,
};
use dalorex::sim::placement::VertexPlacement;
use dalorex::sim::{ArraySpace, SimError, Simulation};

#[test]
fn dataset_larger_than_the_scratchpad_is_rejected_up_front() {
    let graph = RmatConfig::new(12, 10).seed(1).build().unwrap();
    let config = SimConfigBuilder::new(GridConfig::square(2))
        .scratchpad_bytes(96 * 1024)
        .build()
        .unwrap();
    let err = Simulation::new(config, &graph).unwrap_err();
    match err {
        SimError::DatasetTooLarge {
            required_bytes,
            scratchpad_bytes,
        } => {
            assert!(required_bytes > scratchpad_bytes);
        }
        other => panic!("expected DatasetTooLarge, got {other:?}"),
    }
}

#[test]
fn zero_sized_configuration_is_rejected() {
    assert!(SimConfigBuilder::new(GridConfig::new(0, 1)).build().is_err());
    assert!(SimConfigBuilder::new(GridConfig::square(2))
        .noc_buffer_flits(0)
        .build()
        .is_err());
}

#[test]
fn cycle_limit_is_enforced() {
    let graph = RmatConfig::new(9, 8).seed(2).build().unwrap();
    let config = SimConfigBuilder::new(GridConfig::square(2))
        .scratchpad_bytes(1 << 20)
        .max_cycles(50)
        .watchdog_cycles(10)
        .build()
        .unwrap();
    let sim = Simulation::new(config, &graph).unwrap();
    let err = sim.run(&BfsKernel::new(0)).unwrap_err();
    assert!(
        matches!(err, SimError::CycleLimitExceeded { limit: 50 } | SimError::Deadlock { .. }),
        "unexpected error {err:?}"
    );
}

/// A deliberately broken kernel: the producer floods a consumer whose
/// parameter count (5 words) can never fit in its 4-word input queue, so
/// the consumer is never eligible, its IQ backs the network up, the
/// producer's channel queue fills, and the whole pipeline wedges.  The
/// watchdog must flag this as a deadlock instead of spinning forever.
struct StuckKernel;

impl Kernel for StuckKernel {
    fn name(&self) -> &str {
        "stuck"
    }
    fn tasks(&self) -> Vec<TaskDecl> {
        vec![
            TaskDecl::new("producer", 16, TaskParams::AutoPop(1)).requires_cq_space(0, 4),
            TaskDecl::new("consumer", 4, TaskParams::AutoPop(5)),
        ]
    }
    fn channels(&self) -> Vec<ChannelDecl> {
        vec![ChannelDecl::new("flood", 1, ArraySpace::Vertex, 1, 8)]
    }
    fn arrays(&self) -> Vec<LocalArrayDecl> {
        vec![]
    }
    fn output_arrays(&self) -> Vec<&'static str> {
        vec![]
    }
    fn bootstrap(&self, ctx: &mut dyn BootstrapContext) {
        if ctx.tile() == 0 {
            let _ = ctx.push_invocation(0, &[1]);
        }
    }
    fn execute(&self, task: usize, params: &[u32], ctx: &mut dyn TaskContext) {
        if task == 0 {
            // Flood the consumer on another tile with single-word messages
            // it can never consume as full 5-word invocations.
            for _ in 0..4 {
                let _ = ctx.try_send(0, &[params[0]]);
            }
            // Keep the producer alive by re-queueing itself locally.
            let _ = ctx.try_push_local(0, params);
        }
    }
    fn on_global_idle(&self, _epoch: usize, _ctx: &mut dyn EpochContext) -> EpochDecision {
        EpochDecision::Finish
    }
}

#[test]
fn wedged_pipelines_are_reported_as_deadlock_or_cycle_limit() {
    let graph = RmatConfig::new(7, 4).seed(9).build().unwrap();
    let config = SimConfigBuilder::new(GridConfig::square(2))
        .scratchpad_bytes(1 << 20)
        .vertex_placement(VertexPlacement::Interleaved)
        .max_cycles(200_000)
        .watchdog_cycles(5_000)
        .build()
        .unwrap();
    let sim = Simulation::new(config, &graph).unwrap();
    let err = sim.run(&StuckKernel).unwrap_err();
    assert!(
        matches!(
            err,
            SimError::Deadlock { .. } | SimError::CycleLimitExceeded { .. }
        ),
        "unexpected error {err:?}"
    );
}

#[test]
fn out_of_range_bfs_root_returns_all_unreached_instead_of_crashing() {
    let graph = RmatConfig::new(7, 4).seed(4).build().unwrap();
    let config = SimConfigBuilder::new(GridConfig::square(2))
        .scratchpad_bytes(1 << 20)
        .build()
        .unwrap();
    let sim = Simulation::new(config, &graph).unwrap();
    let outcome = sim.run(&BfsKernel::new(u32::MAX)).unwrap();
    assert!(outcome
        .output
        .as_u32_array("value")
        .iter()
        .all(|&v| v == u32::MAX));
}
