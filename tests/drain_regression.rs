//! Regression tests for the endpoint-drain and `Network::cycle` overhaul.
//!
//! Two guarantees are pinned here.  First, `endpoint_drains_per_cycle = 1`
//! (the default) must reproduce the *exact* per-cycle schedule of the
//! pre-overhaul engine: the golden cycle and message counts below were
//! captured on the 2x2 smoke scenarios before the multi-drain endpoint
//! model and the event-driven `Network::cycle` landed, so any drift at the
//! default configuration fails loudly.  Second, with a wider endpoint
//! (`endpoint_drains_per_cycle > 1`) a dense-traffic run becomes
//! fabric-bound: the torus beats the mesh on the plain degree-8 RMAT graph,
//! without the degree-16 densification the Figure 8 shape test previously
//! needed to mask endpoint serialization.

use dalorex::baseline::Workload;
use dalorex::graph::generators::rmat::RmatConfig;
use dalorex::noc::Topology;
use dalorex::sim::config::{GridConfig, SimConfigBuilder};
use dalorex::sim::Simulation;

/// Golden outcomes of the 2x2 smoke scenarios (RMAT scale 9, degree 8,
/// seed 21, 1 MiB scratchpad, paper-default configuration), captured from
/// the pre-overhaul engine: (cycles, delivered == injected messages).
const GOLDEN: &[(&str, u64, u64)] = &[
    ("BFS", 8843, 3624),
    ("SSSP", 21652, 8885),
    ("WCC", 22140, 10258),
    ("PageRank", 19706, 7138),
    ("SPMV", 19056, 6775),
];

fn golden_workload(name: &str) -> Workload {
    match name {
        "BFS" => Workload::Bfs { root: 0 },
        "SSSP" => Workload::Sssp { root: 0 },
        "WCC" => Workload::Wcc,
        "PageRank" => Workload::PageRank { epochs: 2 },
        "SPMV" => Workload::Spmv,
        other => panic!("unknown golden workload {other}"),
    }
}

#[test]
fn default_drain_budget_reproduces_the_pre_overhaul_schedule_exactly() {
    let graph = RmatConfig::new(9, 8).seed(21).build().unwrap();
    for &(name, golden_cycles, golden_messages) in GOLDEN {
        let config = SimConfigBuilder::new(GridConfig::square(2))
            .scratchpad_bytes(1 << 20)
            .build()
            .unwrap();
        assert_eq!(config.endpoint_drains_per_cycle, 1, "default must stay 1");
        let sim = Simulation::new(config, &graph).unwrap();
        let kernel = golden_workload(name).kernel();
        let outcome = sim.run(kernel.as_ref()).unwrap();
        assert_eq!(
            outcome.cycles, golden_cycles,
            "{name}: cycle count drifted from the pre-overhaul engine"
        );
        assert_eq!(
            outcome.stats.noc.delivered_messages, golden_messages,
            "{name}: delivered-message count drifted from the pre-overhaul engine"
        );
        assert_eq!(
            outcome.stats.noc.injected_messages, golden_messages,
            "{name}: injected-message count drifted from the pre-overhaul engine"
        );
        // Conservation: everything delivered was drained into an IQ.
        assert_eq!(outcome.stats.messages_received, golden_messages);
    }
}

#[test]
fn wider_endpoints_make_the_16x16_dense_run_fabric_bound() {
    // Average degree 8 — no densification workaround.  With two drains per
    // cycle the endpoint serialization no longer hides the fabric, so the
    // torus's shorter routes and doubled bisection beat the mesh outright.
    let graph = RmatConfig::new(10, 8).seed(29).build().unwrap();
    let mut cycles = Vec::new();
    for topology in [Topology::Mesh, Topology::Torus] {
        let config = SimConfigBuilder::new(GridConfig::square(16))
            .scratchpad_bytes(1 << 20)
            .topology(topology)
            .endpoint_drains_per_cycle(2)
            .build()
            .unwrap();
        let sim = Simulation::new(config, &graph).unwrap();
        let kernel = Workload::Sssp { root: 0 }.kernel();
        cycles.push(sim.run(kernel.as_ref()).unwrap().cycles);
    }
    assert!(
        cycles[1] < cycles[0],
        "torus ({}) should beat mesh ({}) once endpoints stop serializing",
        cycles[1],
        cycles[0]
    );
}

#[test]
fn wider_endpoints_never_change_results_and_rarely_hurt() {
    // The drain budget is a performance knob, not a semantic one: BFS must
    // produce identical depths at every budget, and the budget sweep's
    // cycle counts must be recorded monotonically enough that a widened
    // endpoint never loses badly (ordering effects can cost a few cycles).
    use dalorex::graph::reference;
    let graph = RmatConfig::new(9, 8).seed(7).build().unwrap();
    let expected = reference::bfs(&graph, 0);
    let mut baseline = None;
    for drains in [1usize, 2, 4, 8] {
        let config = SimConfigBuilder::new(GridConfig::square(4))
            .scratchpad_bytes(1 << 20)
            .endpoint_drains_per_cycle(drains)
            .build()
            .unwrap();
        let sim = Simulation::new(config, &graph).unwrap();
        let outcome = sim.run(&dalorex::kernels::BfsKernel::new(0)).unwrap();
        assert_eq!(
            outcome.output.as_u32_array("value"),
            expected.depths(),
            "drains={drains} changed BFS results"
        );
        let cycles = outcome.cycles;
        let base = *baseline.get_or_insert(cycles);
        assert!(
            cycles <= base + base / 10,
            "drains={drains} took {cycles} cycles, far above the \
             single-drain baseline {base}"
        );
    }
}
