//! Cross-crate integration tests: every kernel, run through the full
//! cycle-level simulator on non-trivial datasets and across the
//! configuration space the paper's ablation explores, must reproduce the
//! sequential reference output exactly.

use dalorex::baseline::Workload;
use dalorex::graph::datasets::{DatasetCatalog, DatasetLabel};
use dalorex::graph::generators::realworld::ScaleFreeConfig;
use dalorex::graph::generators::rmat::RmatConfig;
use dalorex::graph::reference;
use dalorex::kernels::{BfsKernel, PageRankKernel, SpmvKernel, SsspKernel, WccKernel};
use dalorex::noc::Topology;
use dalorex::sim::config::{BarrierMode, GridConfig, SchedulingPolicy, SimConfigBuilder};
use dalorex::sim::{Simulation, VertexPlacement};

fn run_workload(
    graph: &dalorex::graph::CsrGraph,
    workload: Workload,
    side: usize,
) -> dalorex::sim::SimOutcome {
    let prepared = workload.prepare_graph(graph);
    let config = SimConfigBuilder::new(GridConfig::square(side))
        .scratchpad_bytes(2 << 20)
        .barrier_mode(if workload.requires_barrier() {
            BarrierMode::EpochBarrier
        } else {
            BarrierMode::Barrierless
        })
        .build()
        .unwrap();
    let sim = Simulation::new(config, &prepared).unwrap();
    let kernel = workload.kernel();
    sim.run(kernel.as_ref()).unwrap()
}

#[test]
fn all_five_workloads_match_their_references_on_an_rmat_graph() {
    let graph = RmatConfig::new(10, 8).seed(77).build().unwrap();
    for workload in Workload::full_set() {
        let prepared = workload.prepare_graph(&graph);
        let outcome = run_workload(&graph, workload, 4);
        match workload {
            Workload::Bfs { root } => assert_eq!(
                outcome.output.as_u32_array("value"),
                reference::bfs(&prepared, root).depths(),
                "BFS diverged"
            ),
            Workload::Sssp { root } => assert_eq!(
                outcome.output.as_u32_array("value"),
                reference::sssp(&prepared, root).distances(),
                "SSSP diverged"
            ),
            Workload::Wcc => assert_eq!(
                outcome.output.as_u32_array("value"),
                reference::wcc(&prepared).labels(),
                "WCC diverged"
            ),
            Workload::PageRank { epochs } => assert_eq!(
                outcome.output.as_u64_array("rank"),
                reference::pagerank(&prepared, epochs).ranks(),
                "PageRank diverged"
            ),
            Workload::Spmv => {
                let x = SpmvKernel::with_default_input().input_vector(prepared.num_vertices());
                let expected: Vec<u32> = reference::spmv(&prepared, &x)
                    .values()
                    .iter()
                    .map(|&v| u32::try_from(v).unwrap())
                    .collect();
                assert_eq!(outcome.output.as_u32_array("y"), expected, "SPMV diverged");
            }
        }
    }
}

#[test]
fn bfs_is_correct_across_the_whole_configuration_space() {
    let graph = ScaleFreeConfig::new(600, 8).seed(5).build().unwrap();
    let expected = reference::bfs(&graph, 0);
    for topology in [
        Topology::Mesh,
        Topology::Torus,
        Topology::TorusRuche { factor: 2 },
    ] {
        for placement in [VertexPlacement::Chunked, VertexPlacement::Interleaved] {
            for scheduling in [SchedulingPolicy::RoundRobin, SchedulingPolicy::OccupancyPriority] {
                for barrier in [BarrierMode::Barrierless, BarrierMode::EpochBarrier] {
                    let config = SimConfigBuilder::new(GridConfig::new(4, 2))
                        .scratchpad_bytes(1 << 20)
                        .topology(topology)
                        .vertex_placement(placement)
                        .scheduling(scheduling)
                        .barrier_mode(barrier)
                        .build()
                        .unwrap();
                    let sim = Simulation::new(config, &graph).unwrap();
                    let outcome = sim.run(&BfsKernel::new(0)).unwrap();
                    assert_eq!(
                        outcome.output.as_u32_array("value"),
                        expected.depths(),
                        "BFS diverged under {topology:?}/{placement:?}/{scheduling:?}/{barrier:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn catalogued_figure5_datasets_run_end_to_end() {
    // Small catalogue scale so the whole figure-5 dataset set is exercised.
    let catalog = DatasetCatalog::new().with_scale_shift(13);
    for label in DatasetLabel::figure5_set() {
        let graph = catalog.build(label).unwrap();
        let outcome = run_workload(&graph, Workload::Sssp { root: 0 }, 4);
        let expected = reference::sssp(&graph, 0);
        assert_eq!(
            outcome.output.as_u32_array("value"),
            expected.distances(),
            "SSSP diverged on {}",
            label.as_str()
        );
        assert!(outcome.cycles > 0);
        assert!(outcome.total_energy_j() > 0.0);
    }
}

#[test]
fn statistics_are_internally_consistent() {
    let graph = RmatConfig::new(9, 8).seed(3).build().unwrap();
    let outcome = run_workload(&graph, Workload::Sssp { root: 0 }, 4);
    let stats = &outcome.stats;
    // Four tasks declared by the propagation pipeline.
    assert_eq!(stats.task_invocations.len(), 4);
    assert!(stats.total_invocations() > 0);
    // Every sent message was delivered; nothing remains in flight.
    assert_eq!(stats.messages_sent, stats.noc.injected_messages);
    assert_eq!(stats.noc.injected_messages, stats.noc.delivered_messages);
    // The PU utilization grid matches the grid shape.
    assert_eq!(stats.per_tile_busy_cycles.len(), 16);
    assert_eq!(stats.router_busy_fraction.len(), 16);
    // Energy groups are all populated and shares sum to 100%.
    let (logic, memory, network) = outcome.energy.shares_percent();
    assert!(logic > 0.0 && memory > 0.0 && network > 0.0);
    assert!((logic + memory + network - 100.0).abs() < 1e-6);
    // Edges processed cannot exceed relaxations: at least reachable edges,
    // at most total relaxation work (finite).
    assert!(stats.edges_processed >= graph.num_edges() as u64 / 4);
}

#[test]
fn larger_grids_do_not_change_results_only_performance() {
    let graph = RmatConfig::new(10, 6).seed(11).build().unwrap();
    let expected = reference::sssp(&graph, 0);
    let mut cycles = Vec::new();
    for side in [1usize, 2, 4, 8] {
        let config = SimConfigBuilder::new(GridConfig::square(side))
            .scratchpad_bytes(4 << 20)
            .build()
            .unwrap();
        let sim = Simulation::new(config, &graph).unwrap();
        let outcome = sim.run(&SsspKernel::new(0)).unwrap();
        assert_eq!(outcome.output.as_u32_array("value"), expected.distances());
        cycles.push(outcome.cycles);
    }
    // Strong scaling: 64 tiles must be much faster than 1 tile.
    assert!(
        cycles[3] * 4 < cycles[0],
        "64 tiles ({}) not at least 4x faster than 1 tile ({})",
        cycles[3],
        cycles[0]
    );
}

#[test]
fn pagerank_and_wcc_share_the_simulator_with_different_epoch_behaviour() {
    let graph = RmatConfig::new(9, 6).seed(23).symmetric(true).build().unwrap();
    let pagerank = run_workload(&graph, Workload::PageRank { epochs: 4 }, 4);
    let wcc = run_workload(&graph, Workload::Wcc, 4);
    // PageRank runs exactly epochs+1 triggers; barrierless WCC runs in one.
    assert_eq!(pagerank.stats.epochs, 5);
    assert_eq!(wcc.stats.epochs, 1);
    let _ = PageRankKernel::new(4);
    let _ = WccKernel::new();
}
