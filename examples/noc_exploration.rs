//! NoC design-space exploration (a miniature of the paper's Figures 8 and
//! 10): run SSSP on the same dataset and grid while swapping the
//! interconnect between a 2D mesh, a 2D torus and a torus with ruche
//! channels, and show how the torus relieves the centre-of-mesh contention
//! and improves runtime.
//!
//! Run with:
//! ```text
//! cargo run --release --example noc_exploration [-- --engine <name>]
//! ```
//!
//! `--engine` (or `DALOREX_ENGINE`) picks the cycle engine; the modelled
//! schedule, and so the whole topology comparison, is engine-independent.

use dalorex::graph::generators::rmat::RmatConfig;
use dalorex::kernels::SsspKernel;
use dalorex::noc::Topology;
use dalorex::sim::config::{GridConfig, SimConfigBuilder};
use dalorex::sim::Simulation;

#[path = "common/engine.rs"]
mod common_engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = common_engine::engine_arg();
    let graph = RmatConfig::new(12, 10).seed(9).build()?;
    let side = 8;
    println!(
        "dataset: RMAT-12 ({} vertices, {} edges) on a {side}x{side} grid",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!(
        "{:>12}  {:>12}  {:>14}  {:>16}  {:>16}",
        "topology", "cycles", "speedup/mesh", "router util var", "avg msg latency"
    );

    let mut mesh_cycles: Option<u64> = None;
    for topology in [
        Topology::Mesh,
        Topology::Torus,
        Topology::TorusRuche { factor: 4 },
    ] {
        let config = SimConfigBuilder::new(GridConfig::square(side))
            .scratchpad_bytes(1 << 20)
            .topology(topology)
            .build()?;
        let sim = Simulation::new(config, &graph)?;
        let outcome = sim.run_with_engine(&SsspKernel::new(0), engine)?;
        let mesh = *mesh_cycles.get_or_insert(outcome.cycles);
        println!(
            "{:>12}  {:>12}  {:>13.2}x  {:>16.3}  {:>16.1}",
            topology.name(),
            outcome.cycles,
            mesh as f64 / outcome.cycles as f64,
            outcome.stats.router_utilization_grid().variation(),
            outcome.stats.noc.average_latency()
        );
    }

    println!();
    println!(
        "The torus spreads router load (lower variation) and shortens paths, which is\n\
         exactly the effect the paper's Figure 10 heatmaps visualise; ruche channels\n\
         only pay off on much larger grids (Figure 8)."
    );
    Ok(())
}
