//! Quickstart: simulate BFS on a small RMAT graph and validate the result
//! against the sequential reference, then print the headline statistics the
//! paper reports for every run (cycles, energy, utilization, bandwidth).
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart [-- --engine <name>]
//! ```
//!
//! `--engine` (or the `DALOREX_ENGINE` environment variable) picks the
//! cycle engine; all engines produce the identical schedule, so the
//! printed numbers never depend on it.

use dalorex::graph::generators::rmat::RmatConfig;
use dalorex::graph::reference;
use dalorex::kernels::BfsKernel;
use dalorex::sim::config::{GridConfig, SimConfigBuilder};
use dalorex::sim::Simulation;

#[path = "common/engine.rs"]
mod common_engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = common_engine::engine_arg();
    // 1. Generate a dataset: RMAT with 2^12 vertices and average degree 10,
    //    the same family as the paper's RMAT-16..26 datasets.
    let graph = RmatConfig::new(12, 10).seed(1).build()?;
    println!(
        "dataset: RMAT-12  ({} vertices, {} edges, avg degree {:.1})",
        graph.num_vertices(),
        graph.num_edges(),
        graph.average_degree()
    );

    // 2. Configure a Dalorex grid. The builder defaults follow the paper:
    //    torus NoC, occupancy-priority scheduling, interleaved placement,
    //    barrierless frontiers.
    let config = SimConfigBuilder::new(GridConfig::square(8))
        .scratchpad_bytes(1 << 20)
        .build()?;
    let sim = Simulation::new(config, &graph)?;

    // 3. Run BFS from vertex 0 on the simulated chip.
    let outcome = sim.run_with_engine(&BfsKernel::new(0), engine)?;

    // 4. Validate against the sequential reference (the paper validates its
    //    simulator against x86 runs the same way).
    let expected = reference::bfs(&graph, 0);
    assert_eq!(outcome.output.as_u32_array("value"), expected.depths());
    println!("result matches the sequential reference ({} vertices reached)", expected.reached());

    // 5. Report the run the way the paper's figures do.
    println!("cycles            : {}", outcome.cycles);
    println!("runtime           : {:.3} ms at 1 GHz", outcome.seconds * 1e3);
    println!("energy            : {:.3} mJ", outcome.total_energy_j() * 1e3);
    println!(
        "energy breakdown  : logic {:.1}% / memory {:.1}% / network {:.1}%",
        outcome.energy.shares_percent().0,
        outcome.energy.shares_percent().1,
        outcome.energy.shares_percent().2
    );
    println!(
        "mean PU utilization: {:.1}%",
        100.0 * outcome.stats.mean_pu_utilization()
    );
    println!(
        "edges/s           : {:.3e}",
        outcome.stats.edges_per_second(1.0e9)
    );
    println!(
        "memory bandwidth  : {:.3e} B/s (chip area {:.1} mm^2, {:.0} mW/mm^2)",
        outcome.memory_bandwidth_bytes_per_s,
        outcome.chip_area_mm2,
        outcome.power_density_mw_per_mm2
    );
    Ok(())
}
