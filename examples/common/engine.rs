//! Shared `--engine` handling for the examples (included via
//! `#[path = "common/engine.rs"]`, not an example itself).
//!
//! Every example accepts `--engine <name>` / `--engine=<name>` with the
//! same names as the figure binaries (`reference`, `ticked`, `skip`,
//! `calendar`, `parallel[:N]`) and honours the `DALOREX_ENGINE`
//! environment variable as a default when the flag is absent — the flag
//! wins when both are given.  All engines model the identical schedule,
//! so an example's printed results never change with this knob; it exists
//! so the examples double as quick A/B timing drivers and as CI smoke for
//! each engine.  A malformed value aborts with exit code 2 rather than
//! silently running the default engine under the wrong label.

use dalorex::sim::config::Engine;

/// Resolves the engine from `--engine` (first) or `DALOREX_ENGINE`
/// (fallback); exits with code 2 on a malformed or missing value.
pub fn engine_arg() -> Engine {
    let mut args = std::env::args().skip(1);
    let mut from_flag: Option<String> = None;
    while let Some(arg) = args.next() {
        if arg == "--engine" {
            match args.next().filter(|v| !v.starts_with("--")) {
                Some(value) => from_flag = Some(value),
                None => abort("--engine requires a value"),
            }
        } else if let Some(value) = arg.strip_prefix("--engine=") {
            if value.is_empty() {
                abort("--engine requires a value");
            }
            from_flag = Some(value.to_string());
        }
    }
    if let Some(name) = from_flag {
        return name.parse().unwrap_or_else(|err: String| abort(&err));
    }
    match std::env::var("DALOREX_ENGINE") {
        Ok(name) => name
            .parse()
            .unwrap_or_else(|err: String| abort(&format!("DALOREX_ENGINE: {err}"))),
        Err(_) => Engine::default(),
    }
}

fn abort(message: &str) -> ! {
    eprintln!("{message}");
    std::process::exit(2);
}
