//! Strong-scaling study (a miniature of the paper's Figure 6): run BFS on a
//! fixed RMAT dataset while growing the Dalorex grid, and watch runtime
//! shrink until each tile holds too few vertices to keep its PU busy —
//! the paper's "parallelization limit" near ~1,000 vertices per tile —
//! while energy reaches its optimum earlier.
//!
//! Run with:
//! ```text
//! cargo run --release --example scaling_study [-- --max-side <n>] [-- --engine <name>]
//! ```
//!
//! `--max-side` caps the sweep (default 16).  `--max-side 1` runs only the
//! single-tile step — the configuration that once livelocked on the
//! T4-vs-T1 occupancy-priority tie (fixed by T4's `requires_iq_space`
//! output-queue guarantee); CI runs that step as a regression smoke.
//! `--engine` (or `DALOREX_ENGINE`) picks the cycle engine; the modelled
//! schedule is engine-independent.
//!
//! Each row also prints the run's modeled memory footprint and how many of
//! the grid's tiles materialized an arena slab: tile state is allocated
//! lazily on first activity, so idle tiles cost nothing — the mechanism
//! that lets the same simulator hold paper-scale (millions-of-vertices)
//! datasets in a CI machine's RAM.

use dalorex::graph::generators::rmat::RmatConfig;
use dalorex::kernels::BfsKernel;
use dalorex::sim::config::{GridConfig, SimConfigBuilder};
use dalorex::sim::Simulation;

#[path = "common/engine.rs"]
mod common_engine;

fn max_side_arg() -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        let value = if arg == "--max-side" {
            args.next()
        } else {
            arg.strip_prefix("--max-side=").map(str::to_string)
        };
        if let Some(value) = value {
            match value.parse::<usize>() {
                Ok(side) if side > 0 => return side,
                _ => eprintln!("ignoring invalid --max-side value {value:?}"),
            }
        }
    }
    16
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = common_engine::engine_arg();
    let max_side = max_side_arg();
    let graph = RmatConfig::new(13, 10).seed(3).build()?;
    println!(
        "dataset: RMAT-13 ({} vertices, {} edges)",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!(
        "{:>6}  {:>14}  {:>12}  {:>12}  {:>10}  {:>8}  {:>13}  {:>12}",
        "tiles", "vertices/tile", "cycles", "speedup", "energy(mJ)", "PU util", "modeled-bytes", "active-tiles"
    );

    let mut baseline_cycles: Option<u64> = None;
    for side in [1usize, 2, 4, 8, 16].into_iter().filter(|&s| s <= max_side) {
        let tiles = side * side;
        // Size the scratchpad to the chunk (plus reserve), as a real
        // deployment would provision it.
        let per_tile_bytes =
            ((2 * graph.num_vertices() + 2 * graph.num_edges()) * 4 / tiles + 256 * 1024)
                .next_power_of_two();
        let config = SimConfigBuilder::new(GridConfig::square(side))
            .scratchpad_bytes(per_tile_bytes)
            .build()?;
        let sim = Simulation::new(config, &graph)?;
        let outcome = sim.run_with_engine(&BfsKernel::new(0), engine)?;
        let baseline = *baseline_cycles.get_or_insert(outcome.cycles);
        println!(
            "{:>6}  {:>14}  {:>12}  {:>11.1}x  {:>10.3}  {:>7.1}%  {:>13}  {:>9}/{:<3}",
            tiles,
            graph.num_vertices() / tiles,
            outcome.cycles,
            baseline as f64 / outcome.cycles as f64,
            outcome.total_energy_j() * 1e3,
            100.0 * outcome.stats.mean_pu_utilization(),
            outcome.memory.modeled_total_bytes(),
            outcome.memory.materialized_tiles,
            outcome.memory.total_tiles
        );
    }
    println!();
    println!(
        "Speedup grows close to linearly while tiles hold thousands of vertices and\n\
         flattens as the per-tile chunk approaches the ~1k-vertex parallelization limit\n\
         the paper reports in Section V-B."
    );
    Ok(())
}
