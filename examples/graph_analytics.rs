//! Graph-analytics suite: run all four graph applications of the paper
//! (BFS, SSSP, PageRank, WCC) plus SPMV on a scale-free social-network
//! stand-in, validating each against its sequential reference and printing
//! a per-application summary — the workloads the paper's introduction
//! motivates (social networks, web graphs, sparse algebra).
//!
//! Run with:
//! ```text
//! cargo run --release --example graph_analytics [-- --engine <name>]
//! ```
//!
//! `--engine` (or `DALOREX_ENGINE`) picks the cycle engine; the schedule
//! — and therefore every printed number and reference check — is
//! engine-independent.

use dalorex::baseline::Workload;
use dalorex::graph::generators::realworld::RealWorldDataset;
use dalorex::graph::reference;
use dalorex::sim::config::{BarrierMode, GridConfig, SimConfigBuilder};
use dalorex::sim::Simulation;

#[path = "common/engine.rs"]
mod common_engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = common_engine::engine_arg();
    // A LiveJournal-shaped scale-free graph at reproduction scale.
    let graph = RealWorldDataset::LiveJournal.config(1 << 12).build()?;
    println!(
        "dataset: LiveJournal stand-in ({} vertices, {} edges)",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!(
        "{:>9}  {:>12}  {:>12}  {:>10}  {:>8}  {:>7}",
        "app", "cycles", "energy (mJ)", "edges/s", "PU util", "checked"
    );

    for workload in Workload::full_set() {
        let prepared = workload.prepare_graph(&graph);
        let config = SimConfigBuilder::new(GridConfig::square(8))
            .scratchpad_bytes(1 << 20)
            .barrier_mode(if workload.requires_barrier() {
                BarrierMode::EpochBarrier
            } else {
                BarrierMode::Barrierless
            })
            .build()?;
        let sim = Simulation::new(config, &prepared)?;
        let kernel = workload.kernel();
        let outcome = sim.run_with_engine(kernel.as_ref(), engine)?;

        // Validate each application against its reference implementation.
        let checked = match workload {
            Workload::Bfs { root } => {
                outcome.output.as_u32_array("value") == reference::bfs(&prepared, root).depths()
            }
            Workload::Sssp { root } => {
                outcome.output.as_u32_array("value")
                    == reference::sssp(&prepared, root).distances()
            }
            Workload::Wcc => {
                outcome.output.as_u32_array("value") == reference::wcc(&prepared).labels()
            }
            Workload::PageRank { epochs } => {
                outcome.output.as_u64_array("rank") == reference::pagerank(&prepared, epochs).ranks()
            }
            Workload::Spmv => {
                let kernel = dalorex::kernels::SpmvKernel::with_default_input();
                let x = kernel.input_vector(prepared.num_vertices());
                let expected: Vec<u32> = reference::spmv(&prepared, &x)
                    .values()
                    .iter()
                    .map(|&v| v as u32)
                    .collect();
                outcome.output.as_u32_array("y") == expected
            }
        };

        println!(
            "{:>9}  {:>12}  {:>12.3}  {:>10.2e}  {:>7.1}%  {:>7}",
            workload.name(),
            outcome.cycles,
            outcome.total_energy_j() * 1e3,
            outcome.stats.edges_per_second(1.0e9),
            100.0 * outcome.stats.mean_pu_utilization(),
            if checked { "ok" } else { "MISMATCH" }
        );
        assert!(checked, "{} output diverged from the reference", workload.name());
    }
    Ok(())
}
