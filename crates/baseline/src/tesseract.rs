//! First-order performance and energy model of Tesseract (Ahn et al., ISCA
//! 2015), the processing-in-memory baseline of the paper's evaluation.
//!
//! Tesseract places one in-order core in the logic layer of each Hybrid
//! Memory Cube vault (16 cubes × 16 vaults = 256 cores), distributes the
//! graph vertex-centrically (each core owns a contiguous block of vertices
//! together with *all* of their edges), executes bulk-synchronous epochs
//! with a barrier between them, and performs remote vertex updates with
//! interrupting remote function calls.  The paper attributes Tesseract's
//! gap to Dalorex to five effects (Sections II-C and V-A):
//!
//! 1. load imbalance from vertex-centric placement (a hub-heavy core makes
//!    the whole epoch wait),
//! 2. the 50-cycle interrupt penalty on every remote update,
//! 3. DRAM access latency and energy for every data touch,
//! 4. DRAM refresh/background power across 128 GB of provisioned HMC for
//!    the whole runtime,
//! 5. barrier serialization at every epoch.
//!
//! This model reproduces exactly those five effects from a bulk-synchronous
//! execution trace of the workload, instead of re-running the authors' zsim
//! setup (see `DESIGN.md` §3).  The `Tesseract-LC` variant of Figure 5 —
//! Tesseract provisioned with a 2 MB SRAM cache per core and without DRAM
//! background energy — is expressed with [`TesseractConfig::with_large_cache`].

use crate::workload::Workload;
use dalorex_graph::{reference, CsrGraph, VertexId};

/// Configuration of the Tesseract model.
#[derive(Debug, Clone, PartialEq)]
pub struct TesseractConfig {
    /// Number of cores (one per vault); the paper uses 256.
    pub cores: usize,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
    /// Effective stall cycles per DRAM access after memory-level
    /// parallelism (a full round trip is ~100 ns; in-order cores with a few
    /// outstanding misses hide part of it).
    pub dram_stall_cycles: u64,
    /// Interrupt handling penalty per received remote call, in cycles.
    pub interrupt_cycles: u64,
    /// Barrier cost per epoch, in cycles.
    pub barrier_cycles: u64,
    /// Compute cycles per active vertex (loop bookkeeping, frontier checks).
    pub vertex_compute_cycles: u64,
    /// Compute cycles per traversed edge.
    pub edge_compute_cycles: u64,
    /// DRAM energy per 32-bit access, in picojoules.
    pub dram_access_pj: f64,
    /// DRAM background + refresh power for the whole 16-cube system, in
    /// Watts.  The paper notes this is Tesseract's dominant energy term.
    pub dram_background_w: f64,
    /// Core energy per operation, in picojoules (same 7 nm scaling as the
    /// Dalorex PU so the comparison isolates the architecture).
    pub core_op_pj: f64,
    /// SerDes + link energy per inter-cube remote message, in picojoules.
    pub remote_message_pj: f64,
    /// Optional per-core SRAM cache (the `Tesseract-LC` variant): capacity
    /// in bytes.
    pub cache_bytes_per_core: Option<usize>,
    /// Hit rate of that cache for vertex-state accesses.
    pub cache_vertex_hit_rate: f64,
    /// Hit rate of that cache for edge-array (streaming) accesses.
    pub cache_edge_hit_rate: f64,
}

impl TesseractConfig {
    /// The paper's Tesseract configuration: 256 cores over 16 HMC cubes.
    pub fn paper_default() -> Self {
        TesseractConfig {
            cores: 256,
            clock_hz: 1.0e9,
            dram_stall_cycles: 18,
            interrupt_cycles: 50,
            barrier_cycles: 2_000,
            vertex_compute_cycles: 8,
            edge_compute_cycles: 4,
            dram_access_pj: 120.0,
            dram_background_w: 96.0,
            core_op_pj: 4.0,
            remote_message_pj: 480.0,
            cache_bytes_per_core: None,
            cache_vertex_hit_rate: 0.85,
            cache_edge_hit_rate: 0.5,
        }
    }

    /// The `Tesseract-LC` variant: a 2 MB SRAM cache per core (512 MB
    /// aggregate) and no DRAM background energy, approximating the effect
    /// of moving the working set into distributed SRAM.
    pub fn with_large_cache(mut self) -> Self {
        self.cache_bytes_per_core = Some(2 * 1024 * 1024);
        self.dram_background_w = 0.0;
        self
    }

    /// Overrides the core count (used by scaling studies).
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }
}

impl Default for TesseractConfig {
    fn default() -> Self {
        TesseractConfig::paper_default()
    }
}

/// Energy breakdown of a Tesseract run, in Joules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TesseractEnergy {
    /// Core dynamic energy.
    pub core_j: f64,
    /// DRAM (or cache) access energy.
    pub memory_dynamic_j: f64,
    /// DRAM background and refresh energy over the runtime.
    pub memory_background_j: f64,
    /// Inter-cube network energy.
    pub network_j: f64,
}

impl TesseractEnergy {
    /// Total energy in Joules.
    pub fn total_j(&self) -> f64 {
        self.core_j + self.memory_dynamic_j + self.memory_background_j + self.network_j
    }
}

/// Result of evaluating the Tesseract model on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TesseractOutcome {
    /// Total cycles.
    pub cycles: u64,
    /// Number of bulk-synchronous epochs executed.
    pub epochs: usize,
    /// Energy breakdown.
    pub energy: TesseractEnergy,
    /// Ratio of the busiest core's work to the average core's work,
    /// averaged over epochs — the load-imbalance measure of Section II-C.
    pub average_imbalance: f64,
    /// Edges traversed over the whole run.
    pub edges_processed: u64,
}

impl TesseractOutcome {
    /// Total energy in Joules.
    pub fn total_energy_j(&self) -> f64 {
        self.energy.total_j()
    }

    /// Runtime in seconds at the configured clock.
    pub fn seconds(&self, clock_hz: f64) -> f64 {
        self.cycles as f64 / clock_hz
    }
}

/// The Tesseract model.
#[derive(Debug, Clone, Default)]
pub struct TesseractModel {
    config: TesseractConfig,
}

impl TesseractModel {
    /// Creates a model with the given configuration.
    pub fn new(config: TesseractConfig) -> Self {
        TesseractModel { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TesseractConfig {
        &self.config
    }

    /// Evaluates `workload` on `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero cores.
    pub fn run(&self, graph: &CsrGraph, workload: Workload) -> TesseractOutcome {
        assert!(self.config.cores > 0, "at least one core is required");
        let graph = workload.prepare_graph(graph);
        let epochs = bsp_trace(&graph, workload);
        let cores = self.config.cores;
        let n = graph.num_vertices().max(1);
        let vertices_per_core = n.div_ceil(cores);
        let owner = |v: VertexId| (v as usize / vertices_per_core).min(cores - 1);

        let c = &self.config;
        let mut total_cycles: u64 = 0;
        let mut total_dram_accesses: u64 = 0;
        let mut total_cache_hits: u64 = 0;
        let mut total_core_ops: u64 = 0;
        let mut total_remote_msgs: u64 = 0;
        let mut total_edges: u64 = 0;
        let mut imbalance_sum = 0.0;

        for active in &epochs {
            if active.is_empty() {
                continue;
            }
            let mut compute = vec![0u64; cores];
            let mut accesses = vec![0u64; cores];
            let mut interrupts = vec![0u64; cores];
            for &v in active {
                let core = owner(v);
                let degree = graph.out_degree(v) as u64;
                compute[core] += c.vertex_compute_cycles + degree * c.edge_compute_cycles;
                // Vertex state + adjacency pointers, then two words per edge.
                accesses[core] += 2 + 2 * degree;
                total_edges += degree;
                for (dst, _) in graph.neighbors(v) {
                    let dest_core = owner(dst);
                    // The update itself touches the destination's memory.
                    accesses[dest_core] += 2;
                    if dest_core != core {
                        interrupts[dest_core] += 1;
                        total_remote_msgs += 1;
                    }
                }
            }

            let (hit_rate_v, hit_rate_e) = match c.cache_bytes_per_core {
                Some(_) => (c.cache_vertex_hit_rate, c.cache_edge_hit_rate),
                None => (0.0, 0.0),
            };
            // Edge-array accesses are roughly two thirds of the traffic for
            // the average degree ~10 datasets; blend the two hit rates.
            let hit_rate = 0.4 * hit_rate_v + 0.6 * hit_rate_e;

            let mut epoch_max = 0u64;
            let mut epoch_sum = 0u64;
            for core in 0..cores {
                let dram_accesses = (accesses[core] as f64 * (1.0 - hit_rate)).round() as u64;
                let cache_hits = accesses[core] - dram_accesses;
                let cycles = compute[core]
                    + dram_accesses * c.dram_stall_cycles
                    + cache_hits // one cycle per cache hit
                    + interrupts[core] * c.interrupt_cycles;
                epoch_max = epoch_max.max(cycles);
                epoch_sum += cycles;
                total_dram_accesses += dram_accesses;
                total_cache_hits += cache_hits;
                total_core_ops += compute[core];
            }
            let epoch_mean = epoch_sum as f64 / cores as f64;
            if epoch_mean > 0.0 {
                imbalance_sum += epoch_max as f64 / epoch_mean;
            }
            total_cycles += epoch_max + c.barrier_cycles;
        }

        let seconds = total_cycles as f64 / c.clock_hz;
        const PJ: f64 = 1.0e-12;
        // Cache hits cost SRAM energy; DRAM accesses cost DRAM energy.
        let sram_access_pj = 7.5;
        let energy = TesseractEnergy {
            core_j: total_core_ops as f64 * c.core_op_pj * PJ,
            memory_dynamic_j: total_dram_accesses as f64 * c.dram_access_pj * PJ
                + total_cache_hits as f64 * sram_access_pj * PJ,
            memory_background_j: c.dram_background_w * seconds,
            network_j: total_remote_msgs as f64 * c.remote_message_pj * PJ,
        };
        TesseractOutcome {
            cycles: total_cycles,
            epochs: epochs.len(),
            energy,
            average_imbalance: if epochs.is_empty() {
                1.0
            } else {
                imbalance_sum / epochs.iter().filter(|e| !e.is_empty()).count().max(1) as f64
            },
            edges_processed: total_edges,
        }
    }
}

/// Builds the bulk-synchronous execution trace of a workload: the set of
/// active vertices per epoch.
fn bsp_trace(graph: &CsrGraph, workload: Workload) -> Vec<Vec<VertexId>> {
    match workload {
        Workload::Bfs { root } => bfs_epochs(graph, root),
        Workload::Sssp { root } => sssp_epochs(graph, root),
        Workload::Wcc => wcc_epochs(graph),
        Workload::PageRank { epochs } => {
            let all: Vec<VertexId> = (0..graph.num_vertices() as VertexId).collect();
            vec![all; epochs]
        }
        Workload::Spmv => vec![(0..graph.num_vertices() as VertexId).collect()],
    }
}

fn bfs_epochs(graph: &CsrGraph, root: VertexId) -> Vec<Vec<VertexId>> {
    let n = graph.num_vertices();
    if n == 0 || root as usize >= n {
        return Vec::new();
    }
    let mut depths = vec![u32::MAX; n];
    depths[root as usize] = 0;
    let mut frontier = vec![root];
    let mut epochs = Vec::new();
    while !frontier.is_empty() {
        epochs.push(frontier.clone());
        let mut next = Vec::new();
        for &v in &frontier {
            for (dst, _) in graph.neighbors(v) {
                if depths[dst as usize] == u32::MAX {
                    depths[dst as usize] = depths[v as usize] + 1;
                    next.push(dst);
                }
            }
        }
        frontier = next;
    }
    epochs
}

fn sssp_epochs(graph: &CsrGraph, root: VertexId) -> Vec<Vec<VertexId>> {
    let n = graph.num_vertices();
    if n == 0 || root as usize >= n {
        return Vec::new();
    }
    let mut dist = vec![u32::MAX; n];
    dist[root as usize] = 0;
    let mut frontier = vec![root];
    let mut epochs = Vec::new();
    while !frontier.is_empty() {
        epochs.push(frontier.clone());
        let mut improved = std::collections::BTreeSet::new();
        for &v in &frontier {
            let base = dist[v as usize];
            for (dst, w) in graph.neighbors(v) {
                let candidate = base.saturating_add(w);
                if candidate < dist[dst as usize] {
                    dist[dst as usize] = candidate;
                    improved.insert(dst);
                }
            }
        }
        frontier = improved.into_iter().collect();
    }
    epochs
}

fn wcc_epochs(graph: &CsrGraph) -> Vec<Vec<VertexId>> {
    let n = graph.num_vertices();
    let mut labels: Vec<VertexId> = (0..n as VertexId).collect();
    let mut active: Vec<VertexId> = (0..n as VertexId).collect();
    let mut epochs = Vec::new();
    while !active.is_empty() {
        epochs.push(active.clone());
        let mut changed = std::collections::BTreeSet::new();
        for &v in &active {
            let label = labels[v as usize];
            for (dst, _) in graph.neighbors(v) {
                if label < labels[dst as usize] {
                    labels[dst as usize] = label;
                    changed.insert(dst);
                }
            }
        }
        active = changed.into_iter().collect();
    }
    // Sanity: labels computed here must agree with the reference.
    debug_assert_eq!(labels, reference::wcc(graph).labels());
    epochs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalorex_graph::generators::rmat::RmatConfig;

    fn graph() -> CsrGraph {
        RmatConfig::new(9, 8).seed(7).build().unwrap()
    }

    #[test]
    fn produces_nonzero_cycles_and_energy() {
        let model = TesseractModel::new(TesseractConfig::paper_default());
        let outcome = model.run(&graph(), Workload::Bfs { root: 0 });
        assert!(outcome.cycles > 0);
        assert!(outcome.total_energy_j() > 0.0);
        assert!(outcome.epochs > 1);
        assert!(outcome.edges_processed > 0);
        assert!(outcome.seconds(1.0e9) > 0.0);
    }

    #[test]
    fn dram_background_energy_dominates_as_the_paper_reports() {
        let model = TesseractModel::new(TesseractConfig::paper_default());
        let outcome = model.run(&graph(), Workload::PageRank { epochs: 5 });
        let energy = outcome.energy;
        assert!(
            energy.memory_background_j > energy.core_j,
            "background {} should dominate core {}",
            energy.memory_background_j,
            energy.core_j
        );
        assert!(energy.memory_background_j > energy.network_j);
    }

    #[test]
    fn large_caches_improve_performance_and_energy() {
        let base = TesseractModel::new(TesseractConfig::paper_default());
        let cached = TesseractModel::new(TesseractConfig::paper_default().with_large_cache());
        for workload in [Workload::Bfs { root: 0 }, Workload::PageRank { epochs: 3 }] {
            let b = base.run(&graph(), workload);
            let c = cached.run(&graph(), workload);
            assert!(c.cycles < b.cycles, "{workload:?} cycles {} !< {}", c.cycles, b.cycles);
            assert!(c.total_energy_j() < b.total_energy_j());
        }
    }

    #[test]
    fn vertex_centric_placement_shows_load_imbalance_on_rmat() {
        let model = TesseractModel::new(TesseractConfig::paper_default());
        let outcome = model.run(&graph(), Workload::PageRank { epochs: 1 });
        assert!(
            outcome.average_imbalance > 1.3,
            "imbalance {} unexpectedly flat",
            outcome.average_imbalance
        );
    }

    #[test]
    fn more_cores_reduce_cycles_but_not_linearly_under_imbalance() {
        let small = TesseractModel::new(TesseractConfig::paper_default().with_cores(16));
        let large = TesseractModel::new(TesseractConfig::paper_default().with_cores(256));
        let workload = Workload::Bfs { root: 0 };
        let s = small.run(&graph(), workload);
        let l = large.run(&graph(), workload);
        assert!(l.cycles < s.cycles);
        let speedup = s.cycles as f64 / l.cycles as f64;
        assert!(speedup < 16.0, "speedup {speedup} should be sub-linear");
    }

    #[test]
    fn all_workloads_run() {
        let model = TesseractModel::new(TesseractConfig::paper_default());
        for workload in Workload::full_set() {
            let outcome = model.run(&graph(), workload);
            assert!(outcome.cycles > 0, "{workload:?} produced zero cycles");
        }
    }

    #[test]
    fn empty_and_out_of_range_roots_are_handled() {
        let model = TesseractModel::new(TesseractConfig::paper_default());
        let empty = CsrGraph::from_edge_list(&dalorex_graph::EdgeList::new(0));
        let outcome = model.run(&empty, Workload::Bfs { root: 0 });
        assert_eq!(outcome.cycles, 0);
        let outcome = model.run(&graph(), Workload::Bfs { root: u32::MAX });
        assert_eq!(outcome.cycles, 0);
    }
}
