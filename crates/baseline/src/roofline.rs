//! DRAM-bandwidth roofline for accelerator baselines.
//!
//! Section IV-B notes that Polygraph — the state-of-the-art graph
//! accelerator with a specialised hardware pipeline — stops scaling beyond
//! 16 cores because that configuration already saturates the 512 GB/s of
//! HBM bandwidth provided by its eight memory controllers, whereas Dalorex
//! keeps scaling because its aggregate SRAM bandwidth grows with the tile
//! count.  The paper makes this point with the authors' accelerator code;
//! we reproduce the *claim* with the standard bandwidth-roofline argument,
//! which is all the claim rests on (see `DESIGN.md` §3).

/// Roofline model of a DRAM/HBM-bound graph accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthRoofline {
    /// Off-chip memory bandwidth in bytes per second (512 GB/s for
    /// Polygraph's eight HBM controllers).
    pub memory_bandwidth_bytes_per_s: f64,
    /// Average bytes of memory traffic per processed edge (CSR index +
    /// weight + destination state for a push update).
    pub bytes_per_edge: f64,
    /// Peak edges per second each core's pipeline can sustain when not
    /// memory bound.
    pub edges_per_s_per_core: f64,
}

impl BandwidthRoofline {
    /// Polygraph-like configuration: 512 GB/s HBM, ~16 bytes of traffic per
    /// edge, and a pipeline that can retire one edge per cycle per core at
    /// 2 GHz.
    pub fn polygraph_like() -> Self {
        BandwidthRoofline {
            memory_bandwidth_bytes_per_s: 512.0e9,
            bytes_per_edge: 16.0,
            edges_per_s_per_core: 2.0e9,
        }
    }

    /// Throughput (edges per second) achievable with `cores` cores: the
    /// minimum of the compute roof and the bandwidth roof.
    pub fn achievable_edges_per_s(&self, cores: usize) -> f64 {
        let compute = cores as f64 * self.edges_per_s_per_core;
        let bandwidth = self.memory_bandwidth_bytes_per_s / self.bytes_per_edge;
        compute.min(bandwidth)
    }

    /// The core count beyond which adding cores no longer helps (the
    /// saturation point the paper observed experimentally at 16 cores).
    pub fn saturation_cores(&self) -> usize {
        let bandwidth = self.memory_bandwidth_bytes_per_s / self.bytes_per_edge;
        (bandwidth / self.edges_per_s_per_core).ceil() as usize
    }
}

/// Aggregate SRAM bandwidth of a Dalorex grid in bytes per second: every
/// tile reads and writes one 32-bit word per cycle (Section III-G), so the
/// roof grows linearly with the tile count instead of being fixed.
pub fn dalorex_aggregate_bandwidth_bytes_per_s(tiles: usize, clock_hz: f64) -> f64 {
    tiles as f64 * 8.0 * clock_hz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polygraph_like_saturates_at_sixteen_cores() {
        let roofline = BandwidthRoofline::polygraph_like();
        assert_eq!(roofline.saturation_cores(), 16);
        let at_16 = roofline.achievable_edges_per_s(16);
        let at_64 = roofline.achievable_edges_per_s(64);
        assert_eq!(at_16, at_64, "throughput must plateau past saturation");
        let at_8 = roofline.achievable_edges_per_s(8);
        assert!(at_8 < at_16);
    }

    #[test]
    fn dalorex_bandwidth_scales_linearly_and_overtakes_hbm() {
        let small = dalorex_aggregate_bandwidth_bytes_per_s(256, 1.0e9);
        let large = dalorex_aggregate_bandwidth_bytes_per_s(16_384, 1.0e9);
        assert!((large / small - 64.0).abs() < 1e-9);
        // 16k tiles provide ~131 TB/s, far beyond the 512 GB/s HBM roof,
        // matching the paper's Section V-B numbers.
        assert!(large > 100.0e12);
        assert!(large > BandwidthRoofline::polygraph_like().memory_bandwidth_bytes_per_s);
    }
}
