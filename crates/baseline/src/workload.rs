//! Workload descriptions shared by the baseline model and the ablation
//! runner.

use dalorex_graph::CsrGraph;
use dalorex_kernels::{BfsKernel, PageRankKernel, SpmvKernel, SsspKernel, WccKernel};
use dalorex_sim::Kernel;

/// One of the applications evaluated in the paper (Section IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Breadth-first search from a root vertex.
    Bfs {
        /// Root vertex.
        root: u32,
    },
    /// Single-source shortest paths from a root vertex.
    Sssp {
        /// Root vertex.
        root: u32,
    },
    /// Push-based PageRank for a fixed number of epochs.
    PageRank {
        /// Number of epochs.
        epochs: usize,
    },
    /// Weakly connected components via label propagation.
    Wcc,
    /// Sparse matrix–vector multiplication with the default input vector.
    Spmv,
}

impl Workload {
    /// Short name used in figure output ("BFS", "WCC", ...).
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Bfs { .. } => "BFS",
            Workload::Sssp { .. } => "SSSP",
            Workload::PageRank { .. } => "PageRank",
            Workload::Wcc => "WCC",
            Workload::Spmv => "SPMV",
        }
    }

    /// The four graph workloads of Figure 5 with the paper's defaults
    /// (PageRank runs 10 epochs).
    pub fn figure5_set() -> [Workload; 4] {
        [
            Workload::Bfs { root: 0 },
            Workload::Wcc,
            Workload::PageRank { epochs: 10 },
            Workload::Sssp { root: 0 },
        ]
    }

    /// The five workloads of Figures 7–9.
    pub fn full_set() -> [Workload; 5] {
        [
            Workload::Bfs { root: 0 },
            Workload::Wcc,
            Workload::PageRank { epochs: 10 },
            Workload::Sssp { root: 0 },
            Workload::Spmv,
        ]
    }

    /// Whether the workload requires per-epoch synchronization even on
    /// Dalorex (only PageRank does; see Figure 5's caption).
    pub fn requires_barrier(&self) -> bool {
        matches!(self, Workload::PageRank { .. })
    }

    /// Instantiates the Dalorex kernel for this workload.
    pub fn kernel(&self) -> Box<dyn Kernel> {
        match *self {
            Workload::Bfs { root } => Box::new(BfsKernel::new(root)),
            Workload::Sssp { root } => Box::new(SsspKernel::new(root)),
            Workload::PageRank { epochs } => Box::new(PageRankKernel::new(epochs)),
            Workload::Wcc => Box::new(WccKernel::new()),
            Workload::Spmv => Box::new(SpmvKernel::with_default_input()),
        }
    }

    /// Whether this workload should run on a symmetrized graph (WCC labels
    /// weakly connected components, so the undirected closure is the input).
    pub fn wants_symmetric_graph(&self) -> bool {
        matches!(self, Workload::Wcc)
    }

    /// Prepares a graph for this workload (symmetrizing it for WCC).
    pub fn prepare_graph(&self, graph: &CsrGraph) -> CsrGraph {
        if self.wants_symmetric_graph() {
            let mut edges = graph.to_edge_list();
            edges.symmetrize();
            edges.dedup_and_remove_self_loops();
            CsrGraph::from_edge_list(&edges)
        } else {
            graph.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalorex_graph::generators::rmat::RmatConfig;

    #[test]
    fn names_and_sets_match_the_paper() {
        let names: Vec<&str> = Workload::figure5_set().iter().map(|w| w.name()).collect();
        assert_eq!(names, vec!["BFS", "WCC", "PageRank", "SSSP"]);
        assert_eq!(Workload::full_set().len(), 5);
        assert!(Workload::PageRank { epochs: 3 }.requires_barrier());
        assert!(!Workload::Bfs { root: 0 }.requires_barrier());
    }

    #[test]
    fn kernels_are_instantiated_with_matching_names() {
        for workload in Workload::full_set() {
            let kernel = workload.kernel();
            assert_eq!(kernel.name().to_uppercase(), workload.name().to_uppercase());
        }
    }

    #[test]
    fn wcc_prepares_a_symmetric_graph() {
        let graph = RmatConfig::new(6, 4).seed(5).build().unwrap();
        let prepared = Workload::Wcc.prepare_graph(&graph);
        for v in 0..prepared.num_vertices() as u32 {
            for (dst, _) in prepared.neighbors(v) {
                assert!(prepared.neighbors(dst).any(|(back, _)| back == v));
            }
        }
        // Other workloads leave the graph unchanged.
        let same = Workload::Spmv.prepare_graph(&graph);
        assert_eq!(same, graph);
    }
}
