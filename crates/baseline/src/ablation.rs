//! The Figure-5 ablation ladder: from Tesseract to full Dalorex, one
//! optimization at a time.
//!
//! Section V-A builds Dalorex's 221× geomean speedup (and 325× energy gain)
//! out of six increments over the Tesseract baseline.  Each rung of the
//! ladder is either a configuration of the Tesseract model or a
//! configuration of the Dalorex simulator:
//!
//! | Rung | What it adds | How it is modelled here |
//! |---|---|---|
//! | `Tesseract` | the PIM baseline | [`TesseractModel`] |
//! | `TesseractLc` | 2 MB SRAM cache per core, no DRAM background energy | [`TesseractModel`] with [`TesseractConfig::with_large_cache`] |
//! | `DataLocal` | Dalorex tiles, array chunking and task splitting, but interrupting invocations, blocked placement, mesh NoC, epoch barriers | Dalorex sim, 50-cycle dispatch overhead |
//! | `BasicTsu` | non-blocking, non-interrupting task invocation (round-robin TSU) | Dalorex sim, overhead removed |
//! | `UniformDistr` | low-order-bit (interleaved) vertex placement | Dalorex sim |
//! | `TrafficAware` | occupancy-priority scheduling | Dalorex sim |
//! | `TorusNoc` | 2D torus instead of 2D mesh | Dalorex sim |
//! | `Dalorex` | barrierless local frontiers | Dalorex sim |
//! | `WideEndpoint` | 2 endpoint drains/injections per tile per cycle (beyond the paper) | Dalorex sim, `endpoint_drains_per_cycle = 2` |
//!
//! PageRank keeps its barrier on the `Dalorex` rung, as in the paper's
//! Figure 5 caption.  The final `WideEndpoint` rung goes beyond the paper:
//! it widens the tile's single local router port to two messages per cycle
//! (the `endpoint_drains_per_cycle` knob), quantifying how much of the
//! remaining runtime is endpoint serialization rather than fabric or
//! compute — the ROADMAP's "endpoint-bound on small grids" observation
//! expressed as an explicit ladder step.

use crate::tesseract::{TesseractConfig, TesseractModel};
use crate::workload::Workload;
use dalorex_graph::CsrGraph;
use dalorex_noc::Topology;
use dalorex_sim::config::{BarrierMode, Engine, GridConfig, SchedulingPolicy, SimConfigBuilder};
use dalorex_sim::{SimError, Simulation, VertexPlacement};

/// One rung of the Figure-5 ablation ladder, in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AblationRung {
    /// The Tesseract PIM baseline.
    Tesseract,
    /// Tesseract with 2 MB SRAM caches per core ("Tesseract-LC").
    TesseractLc,
    /// Dalorex data layout and task splitting with interrupting invocations.
    DataLocal,
    /// Adds the TSU with non-interrupting invocations (round-robin).
    BasicTsu,
    /// Adds low-order-bit (interleaved) vertex placement.
    UniformDistr,
    /// Adds occupancy-priority (traffic-aware) scheduling.
    TrafficAware,
    /// Adds the 2D torus NoC.
    TorusNoc,
    /// Full Dalorex: barrierless local frontiers.
    Dalorex,
    /// Beyond the paper: widens the endpoint to 2 drains/injections per
    /// tile per cycle (`endpoint_drains_per_cycle = 2`), isolating the
    /// endpoint-serialization share of the remaining runtime.
    WideEndpoint,
}

impl AblationRung {
    /// All rungs, in the paper's order, plus the beyond-paper
    /// wide-endpoint step.
    pub const ALL: [AblationRung; 9] = [
        AblationRung::Tesseract,
        AblationRung::TesseractLc,
        AblationRung::DataLocal,
        AblationRung::BasicTsu,
        AblationRung::UniformDistr,
        AblationRung::TrafficAware,
        AblationRung::TorusNoc,
        AblationRung::Dalorex,
        AblationRung::WideEndpoint,
    ];

    /// The label used in Figure 5's legend.
    pub fn label(&self) -> &'static str {
        match self {
            AblationRung::Tesseract => "Tesseract",
            AblationRung::TesseractLc => "Tesseract-LC",
            AblationRung::DataLocal => "Data-Local",
            AblationRung::BasicTsu => "Basic-TSU",
            AblationRung::UniformDistr => "Uniform-Distr",
            AblationRung::TrafficAware => "Traffic-Aware",
            AblationRung::TorusNoc => "Torus-NoC",
            AblationRung::Dalorex => "Dalorex",
            AblationRung::WideEndpoint => "Wide-Endpoint",
        }
    }

    /// Whether this rung runs on the Tesseract model (the first two) or on
    /// the Dalorex simulator (the rest).
    pub fn uses_dalorex_simulator(&self) -> bool {
        !matches!(self, AblationRung::Tesseract | AblationRung::TesseractLc)
    }
}

/// Cycle and energy result of one (rung, workload, dataset) cell of
/// Figure 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationOutcome {
    /// Runtime in cycles (both systems are modelled at 1 GHz).
    pub cycles: u64,
    /// Total energy in Joules.
    pub energy_j: f64,
    /// Modeled memory footprint of the run — `None` for the analytical
    /// Tesseract rungs, which have no cycle-level memory model.
    pub memory: Option<dalorex_sim::MemoryReport>,
}

impl AblationOutcome {
    /// Performance improvement of `self` over a `baseline` outcome
    /// (baseline cycles / own cycles), the quantity on Figure 5's Y axis.
    pub fn speedup_over(&self, baseline: &AblationOutcome) -> f64 {
        baseline.cycles as f64 / self.cycles.max(1) as f64
    }

    /// Energy improvement of `self` over a `baseline` outcome.
    pub fn energy_gain_over(&self, baseline: &AblationOutcome) -> f64 {
        if self.energy_j == 0.0 {
            return 0.0;
        }
        baseline.energy_j / self.energy_j
    }
}

/// Runs one rung of the ablation ladder on a workload and dataset, using a
/// grid of `side x side` tiles (the paper uses 16×16 = 256 to match
/// Tesseract's core count).
///
/// # Errors
///
/// Propagates simulator errors for the Dalorex rungs (e.g. the dataset not
/// fitting the scratchpad).
pub fn run_rung(
    rung: AblationRung,
    graph: &CsrGraph,
    workload: Workload,
    side: usize,
    scratchpad_bytes: usize,
) -> Result<AblationOutcome, SimError> {
    run_rung_with_engine(rung, graph, workload, side, scratchpad_bytes, Engine::default())
}

/// Like [`run_rung`], with an explicit cycle engine for the Dalorex rungs
/// (the Tesseract rungs are analytical and ignore it).  Every engine
/// models the identical schedule; `fig05_ablation`'s `--engine` flag
/// threads through here for A/B timing of the ladder.
///
/// # Errors
///
/// Same as [`run_rung`].
pub fn run_rung_with_engine(
    rung: AblationRung,
    graph: &CsrGraph,
    workload: Workload,
    side: usize,
    scratchpad_bytes: usize,
    engine: Engine,
) -> Result<AblationOutcome, SimError> {
    match rung {
        AblationRung::Tesseract => {
            let model = TesseractModel::new(TesseractConfig::paper_default().with_cores(side * side));
            let outcome = model.run(graph, workload);
            Ok(AblationOutcome {
                cycles: outcome.cycles,
                energy_j: outcome.total_energy_j(),
                memory: None,
            })
        }
        AblationRung::TesseractLc => {
            let model = TesseractModel::new(
                TesseractConfig::paper_default()
                    .with_cores(side * side)
                    .with_large_cache(),
            );
            let outcome = model.run(graph, workload);
            Ok(AblationOutcome {
                cycles: outcome.cycles,
                energy_j: outcome.total_energy_j(),
                memory: None,
            })
        }
        _ => run_dalorex_rung(rung, graph, workload, side, scratchpad_bytes, engine),
    }
}

fn run_dalorex_rung(
    rung: AblationRung,
    graph: &CsrGraph,
    workload: Workload,
    side: usize,
    scratchpad_bytes: usize,
    engine: Engine,
) -> Result<AblationOutcome, SimError> {
    // Feature switches accumulate as the ladder climbs.
    let non_interrupting = rung >= AblationRung::BasicTsu;
    let interleaved = rung >= AblationRung::UniformDistr;
    let traffic_aware = rung >= AblationRung::TrafficAware;
    let torus = rung >= AblationRung::TorusNoc;
    let barrierless = rung >= AblationRung::Dalorex && !workload.requires_barrier();
    let endpoint_drains = if rung >= AblationRung::WideEndpoint { 2 } else { 1 };

    let prepared = workload.prepare_graph(graph);
    let config = SimConfigBuilder::new(GridConfig::square(side))
        .scratchpad_bytes(scratchpad_bytes)
        .endpoint_drains_per_cycle(endpoint_drains)
        .topology(if torus { Topology::Torus } else { Topology::Mesh })
        .scheduling(if traffic_aware {
            SchedulingPolicy::OccupancyPriority
        } else {
            SchedulingPolicy::RoundRobin
        })
        .vertex_placement(if interleaved {
            VertexPlacement::Interleaved
        } else {
            VertexPlacement::Chunked
        })
        .barrier_mode(if barrierless {
            BarrierMode::Barrierless
        } else {
            BarrierMode::EpochBarrier
        })
        .invocation_overhead_cycles(if non_interrupting { 0 } else { 50 })
        .engine(engine)
        .build()?;
    let sim = Simulation::new(config, &prepared)?;
    let kernel = workload.kernel();
    let outcome = sim.run(kernel.as_ref())?;
    Ok(AblationOutcome {
        cycles: outcome.cycles,
        energy_j: outcome.total_energy_j(),
        memory: Some(outcome.memory),
    })
}

/// Geometric mean of a slice of ratios (used for the Section V-A compound
/// factors).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalorex_graph::generators::rmat::RmatConfig;

    fn small_graph() -> CsrGraph {
        RmatConfig::new(8, 6).seed(13).build().unwrap()
    }

    #[test]
    fn rung_metadata_is_ordered_like_the_paper() {
        assert_eq!(AblationRung::ALL.len(), 9);
        assert_eq!(AblationRung::ALL[0].label(), "Tesseract");
        assert_eq!(AblationRung::ALL[7].label(), "Dalorex");
        assert_eq!(AblationRung::ALL[8].label(), "Wide-Endpoint");
        assert!(AblationRung::Tesseract < AblationRung::Dalorex);
        assert!(AblationRung::Dalorex < AblationRung::WideEndpoint);
        assert!(!AblationRung::Tesseract.uses_dalorex_simulator());
        assert!(AblationRung::DataLocal.uses_dalorex_simulator());
        assert!(AblationRung::WideEndpoint.uses_dalorex_simulator());
    }

    #[test]
    fn wide_endpoint_rung_never_loses_badly_to_dalorex() {
        // The beyond-paper rung widens the endpoint; on the same workload
        // it helps or roughly ties (message-ordering effects can cost a
        // few cycles), and it never changes results — the equivalence and
        // drain-regression suites pin the semantics.
        let graph = small_graph();
        let workload = Workload::Sssp { root: 0 };
        let dalorex = run_rung(AblationRung::Dalorex, &graph, workload, 4, 1 << 20).unwrap();
        let wide = run_rung(AblationRung::WideEndpoint, &graph, workload, 4, 1 << 20).unwrap();
        assert!(
            wide.cycles <= dalorex.cycles + dalorex.cycles / 10,
            "wide endpoint ({}) far slower than Dalorex ({})",
            wide.cycles,
            dalorex.cycles
        );
    }

    #[test]
    fn dalorex_full_beats_tesseract_on_bfs() {
        let graph = small_graph();
        let workload = Workload::Bfs { root: 0 };
        let tesseract =
            run_rung(AblationRung::Tesseract, &graph, workload, 4, 1 << 20).unwrap();
        let dalorex = run_rung(AblationRung::Dalorex, &graph, workload, 4, 1 << 20).unwrap();
        let speedup = dalorex.speedup_over(&tesseract);
        let energy_gain = dalorex.energy_gain_over(&tesseract);
        assert!(speedup > 2.0, "speedup {speedup} too small");
        assert!(energy_gain > 2.0, "energy gain {energy_gain} too small");
    }

    #[test]
    fn ladder_is_monotonic_in_the_aggregate_for_sssp() {
        // Individual steps may fluctuate on a tiny dataset, but the full
        // Dalorex configuration must beat the first Dalorex-simulator rung,
        // and that rung must beat Tesseract.
        let graph = small_graph();
        let workload = Workload::Sssp { root: 0 };
        let tesseract =
            run_rung(AblationRung::Tesseract, &graph, workload, 4, 1 << 20).unwrap();
        let data_local =
            run_rung(AblationRung::DataLocal, &graph, workload, 4, 1 << 20).unwrap();
        let full = run_rung(AblationRung::Dalorex, &graph, workload, 4, 1 << 20).unwrap();
        assert!(data_local.cycles < tesseract.cycles);
        assert!(full.cycles < data_local.cycles);
    }

    #[test]
    fn pagerank_keeps_its_barrier_on_the_last_rung() {
        let graph = small_graph();
        let workload = Workload::PageRank { epochs: 2 };
        let torus = run_rung(AblationRung::TorusNoc, &graph, workload, 4, 1 << 20).unwrap();
        let full = run_rung(AblationRung::Dalorex, &graph, workload, 4, 1 << 20).unwrap();
        // With the barrier retained the last rung changes nothing for
        // PageRank (as in the paper's Figure 5, where the last two bars are
        // equal).
        assert_eq!(torus.cycles, full.cycles);
    }

    #[test]
    fn geomean_of_identical_values_is_the_value() {
        assert!((geomean(&[4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }
}
