//! Baseline models and the Figure-5 ablation ladder for the Dalorex
//! reproduction.
//!
//! The paper's headline comparison (Section V-A, Figure 5) pits Dalorex
//! against Tesseract, the processing-in-memory graph accelerator built on
//! Hybrid Memory Cubes, with both systems using 256 cores.  It then climbs
//! an ablation ladder from Tesseract to full Dalorex, enabling one
//! optimization at a time.  This crate provides:
//!
//! * [`workload`] — the workload descriptions shared by the baseline and
//!   the ablation runner (BFS, SSSP, PageRank, WCC, SPMV).
//! * [`tesseract`] — a first-order performance and energy model of
//!   Tesseract: one in-order core per HMC vault, vertex-centric data
//!   placement, interrupting remote vertex updates, per-epoch barriers,
//!   DRAM access plus refresh/background energy, and the `Tesseract-LC`
//!   variant with large per-core SRAM caches.  The paper simulated
//!   Tesseract on zsim; `DESIGN.md` §3 documents why this first-order model
//!   preserves the effects the comparison depends on.
//! * [`ablation`] — the eight-rung ladder of Figure 5 (`Tesseract`,
//!   `Tesseract-LC`, `Data-Local`, `Basic-TSU`, `Uniform-Distr`,
//!   `Traffic-Aware`, `Torus-NoC`, `Dalorex`), mapping each rung either to
//!   the Tesseract model or to a `dalorex-sim` configuration, and a runner
//!   that produces comparable cycle and energy numbers.
//! * [`roofline`] — the DRAM-bandwidth roofline used in Section IV-B to
//!   explain why accelerators such as Polygraph stop scaling once they
//!   saturate HBM, while Dalorex's aggregate SRAM bandwidth keeps growing
//!   with the tile count.
//!
//! # Place in the workspace
//!
//! `dalorex-baseline` sits between the simulator and the figure harness:
//! it consumes graphs from `dalorex-graph`, drives `dalorex-sim` (through
//! the per-rung configurations in [`ablation`]) and is consumed by
//! `dalorex-bench`, whose `fig05_ablation` binary regenerates the Figure 5
//! ladder.  The README's "Architecture tour" section diagrams the full
//! crate graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod roofline;
pub mod tesseract;
pub mod workload;

pub use ablation::{AblationRung, AblationOutcome};
pub use tesseract::{TesseractConfig, TesseractModel, TesseractOutcome};
pub use workload::Workload;
