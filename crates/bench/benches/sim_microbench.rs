//! Criterion micro-benchmarks for the simulator's hot paths: graph
//! generation, CSR construction, data-placement arithmetic, queue
//! operations and raw NoC message movement.  These guard the performance of
//! the substrate the figure experiments are built on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dalorex_graph::generators::rmat::RmatConfig;
use dalorex_graph::CsrGraph;
use dalorex_kernels::SsspKernel;
use dalorex_noc::message::Message;
use dalorex_noc::network::Network;
use dalorex_noc::topology::{GridShape, Topology};
use dalorex_noc::{NocConfig, RouterScheduler};
use dalorex_sim::config::{Engine, GridConfig, SimConfigBuilder};
use dalorex_sim::placement::{ArraySpace, Placement, VertexPlacement};
use dalorex_sim::queues::WordQueue;
use dalorex_sim::Simulation;

/// The bench-binary counterpart of the figure binaries' `--engine` flag:
/// when `cargo bench ... -- --engine=<name>` is passed, the end-to-end
/// simulation benches run only that engine's rung, so one engine can be
/// timed in isolation (the NoC-only benches are unaffected).  Only the
/// `=`-joined form is accepted here: with the space-separated form the
/// value would double as the criterion harness's positional benchmark
/// name *filter* (silently restricting the bench set to names containing
/// the engine's name), so that form is rejected loudly.  Parsing is the
/// shared [`dalorex_bench::cli::flag_value`], so flag syntax cannot
/// drift from the figure binaries'.
fn engine_flag() -> Option<Engine> {
    if std::env::args().any(|a| a == "--engine") {
        eprintln!(
            "use --engine=<name> with cargo bench: in `--engine <name>` the value would \
             also be taken as the positional benchmark-name filter"
        );
        std::process::exit(2);
    }
    let value = dalorex_bench::cli::flag_value("engine")?;
    match value.parse() {
        Ok(engine) => Some(engine),
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    }
}

/// Whether `engine`'s rung should run under the current `--engine=` filter.
/// Compares by variant, not by value, so `--engine=parallel` and
/// `--engine=parallel:8` both select the parallel rungs (the rung's own
/// worker count is then taken from the flag via [`flag_workers`]).
fn engine_selected(engine: Engine) -> bool {
    engine_flag()
        .map(|chosen| std::mem::discriminant(&chosen) == std::mem::discriminant(&engine))
        .unwrap_or(true)
}

/// Worker count requested via `--engine=parallel:N`, if any.
fn flag_workers() -> Option<usize> {
    match engine_flag() {
        Some(Engine::Parallel { workers }) if workers > 0 => Some(workers),
        _ => None,
    }
}

fn bench_rmat_generation(c: &mut Criterion) {
    c.bench_function("rmat_scale10_generation", |b| {
        b.iter(|| {
            let graph = RmatConfig::new(10, 8).seed(7).build().unwrap();
            black_box(graph.num_edges())
        })
    });
}

fn bench_csr_round_trip(c: &mut Criterion) {
    let edges = RmatConfig::new(10, 8).seed(7).build_edge_list().unwrap();
    c.bench_function("csr_from_edge_list_scale10", |b| {
        b.iter(|| black_box(CsrGraph::from_edge_list(&edges).num_edges()))
    });
}

fn bench_placement_mapping(c: &mut Criterion) {
    let placement = Placement::new(256, 1 << 20, 10 << 20, VertexPlacement::Interleaved);
    c.bench_function("placement_owner_and_local_1M_lookups", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in (0..(1 << 20)).step_by(17) {
                acc += placement.owner(ArraySpace::Vertex, i);
                acc += placement.to_local(ArraySpace::Edge, i);
            }
            black_box(acc)
        })
    });
}

fn bench_word_queue(c: &mut Criterion) {
    c.bench_function("word_queue_push_pop_4k", |b| {
        b.iter(|| {
            // Queues are storage-less ring descriptors over an arena slab;
            // the bench prices the descriptor arithmetic plus slab access.
            let mut slab = vec![0u32; 4096];
            let mut queue = WordQueue::new(0, 4096);
            for i in 0..1024u32 {
                queue.try_push(&mut slab, &[i, i + 1, i + 2]);
            }
            let mut acc = 0u32;
            while let Some(word) = queue.pop_word(&slab) {
                acc = acc.wrapping_add(word);
            }
            black_box(acc)
        })
    });
}

fn bench_noc_uniform_traffic(c: &mut Criterion) {
    c.bench_function("torus_8x8_uniform_traffic_drain", |b| {
        b.iter(|| {
            let mut net = Network::new(NocConfig::new(GridShape::new(8, 8), Topology::Torus));
            for src in 0..64usize {
                let dst = (src * 29 + 7) % 64;
                let _ = net.try_inject(src, Message::new(dst, 0, vec![src as u32, 1]));
            }
            let mut cycles = 0;
            while net.in_flight() > 0 && cycles < 10_000 {
                net.cycle();
                cycles += 1;
            }
            for tile in 0..64 {
                while net.pop_delivered(tile).is_some() {}
            }
            black_box(net.stats().delivered_messages)
        })
    });
}

/// One dense 64x64 wave: every tile sends three 2-flit messages (one of
/// them across the grid, as an engine-driven run's scattered traffic
/// does), the fabric drains, then the endpoints empty their ejection
/// buffers — deliveries pile up in the ejection buffers during the wave,
/// exactly the endpoint-bound regime the tile simulator produces.  `step`
/// selects the event-driven hot path or the pre-overhaul reference
/// implementation.
fn torus_64x64_wave(net: &mut Network, step: fn(&mut Network)) -> u64 {
    const N: usize = 64 * 64;
    for src in 0..N {
        for k in 1..4usize {
            let dst = (src * 13 + k * 977 + N / 2) % N;
            if dst != src {
                let _ = net.try_inject(src, Message::new(dst, k % 4, vec![src as u32, 1]));
            }
        }
    }
    let mut cycles = 0u64;
    while net.in_flight() > 0 {
        step(net);
        cycles += 1;
    }
    for tile in 0..N {
        while net.pop_delivered(tile).is_some() {}
    }
    cycles
}

/// The ISSUE-2 acceptance case: the event-driven `Network::cycle` must
/// sustain at least 2x the cycles/sec of the pre-overhaul scan
/// (`Network::cycle_reference`) on a dense 64x64 torus.  Compare the two
/// reported per-iteration times; both drain the identical wave, so time
/// per iteration is inversely proportional to cycles/sec.
fn bench_noc_cycle_64x64(c: &mut Criterion) {
    let shape = GridShape::new(64, 64);
    c.bench_function("torus_64x64_cycle_event_driven", |b| {
        let mut net = Network::new(NocConfig::new(shape, Topology::Torus));
        b.iter(|| black_box(torus_64x64_wave(&mut net, Network::cycle)))
    });
    c.bench_function("torus_64x64_cycle_reference_scan", |b| {
        let mut net = Network::new(NocConfig::new(shape, Topology::Torus));
        b.iter(|| black_box(torus_64x64_wave(&mut net, Network::cycle_reference)))
    });
}

/// One dense serialization-bound 64x64 wave for the cycle-skipping pair:
/// every tile sends three maximum-length (8-flit) messages, one of them
/// across the grid.  Long serialization makes most cycles forward nothing
/// — each link that moved a message sits busy for 8 cycles — which is
/// exactly the regime `Network::advance_to` jumps.  `skip` selects the
/// skip-to-next-event drive loop or plain tick-every-cycle; both produce
/// the identical modelled schedule (the equivalence suite pins that), so
/// per-iteration time is inversely proportional to end-to-end cycles/sec.
fn torus_64x64_serialization_wave(net: &mut Network, skip: bool) -> u64 {
    const N: usize = 64 * 64;
    const FLITS: usize = 8;
    for src in 0..N {
        for k in 1..4usize {
            let dst = (src * 13 + k * 977 + N / 2) % N;
            if dst != src {
                let _ = net.try_inject(src, Message::new(dst, k % 4, vec![src as u32; FLITS]));
            }
        }
    }
    while net.in_flight() > 0 {
        if skip {
            net.advance_to(net.next_event_cycle());
        }
        net.cycle();
    }
    for tile in 0..N {
        while net.pop_delivered(tile).is_some() {}
    }
    net.current_cycle()
}

/// The ISSUE-4 acceptance case: the skip-to-next-event engine must sustain
/// at least 1.5x the end-to-end cycles/sec of the tick-every-cycle drive
/// loop on the fabric-bound dense 64x64 torus wave (measured ~1.6x in this
/// container; the modelled cycle count of one wave is identical either
/// way, so compare per-iteration times directly).
fn bench_noc_skip_64x64(c: &mut Criterion) {
    let shape = GridShape::new(64, 64);
    c.bench_function("sim_64x64_wave_skip", |b| {
        let mut net = Network::new(NocConfig::new(shape, Topology::Torus));
        b.iter(|| black_box(torus_64x64_serialization_wave(&mut net, true)))
    });
    c.bench_function("sim_64x64_wave_tick", |b| {
        let mut net = Network::new(NocConfig::new(shape, Topology::Torus));
        b.iter(|| black_box(torus_64x64_serialization_wave(&mut net, false)))
    });
}

/// The ISSUE-10 acceptance case: the due-only calendar walk must sustain at
/// least 1.3x the cycles/sec of the preserved full calendar walk
/// (`RouterScheduler::CalendarScan`, the pre-change implementation) on the
/// dense convergecast waves at 128x128 and up, where the per-cycle walk
/// dominates (measured ~1.5x at 128x128 and ~1.9x on the 256x256 rung in
/// this container).  The 256x256 rung is the new regime this PR adds:
/// 65,536 routers, almost all of them active (holding backpressured
/// flits) for the whole drain, so the full walk's O(active) stamp-compare
/// pass is the bulk of the cycle budget — it touches ~58x the routers the
/// due-only walk does.  Both schedulers produce the bit-identical
/// forwarding schedule (the property and equivalence suites pin that, and
/// each wave's modelled cycle count is equal by construction), so time per
/// iteration is inversely proportional to cycles/sec; compare
/// `sim_<side>_wave_calendar/due_only` against `.../full_walk`.  The wave
/// itself is the shared [`dalorex_bench::waves::convergecast_wave`], the
/// exact traffic `perf_snapshot`'s in-binary A/B times.
fn bench_noc_calendar_walk(c: &mut Criterion) {
    let bench_mode = std::env::args().any(|a| a == "--bench");
    for (real_side, group_name) in [
        (64usize, "sim_64x64_wave_calendar"),
        (128, "sim_128x128_wave_calendar"),
        (256, "sim_256x256_wave_calendar"),
    ] {
        // Under plain `cargo test` the criterion shim smoke-runs each rung
        // once in the debug profile; the 128x128/256x256 waves take minutes
        // there, so shrink every group to an 8x8 smoke — the real
        // measurement only happens under `cargo bench`.  The 256x256 wave
        // runs ~1 minute per iteration even in release, so its rung takes
        // one sample instead of three.
        let side = if bench_mode { real_side } else { 8 };
        let mut group = c.benchmark_group(group_name);
        group.sample_size(if bench_mode && real_side >= 256 { 1 } else { 3 });
        for (name, scheduler) in [
            ("due_only", RouterScheduler::Calendar),
            ("full_walk", RouterScheduler::CalendarScan),
        ] {
            group.bench_function(name, |b| {
                let mut net = dalorex_bench::waves::convergecast_net(side, scheduler);
                b.iter(|| black_box(dalorex_bench::waves::convergecast_wave(&mut net, side)))
            });
        }
        group.finish();
    }
}

/// The ISSUE-3 acceptance case: end-to-end `Simulation::run` on a
/// tile-bound 64x64 SSSP sweep (RMAT scale 14, degree 8 — a few vertices
/// per tile, so the per-cycle TSU path, not the kernel bodies, dominates).
/// `Simulation::run` drives the allocation-free tile path (ring-buffer
/// queues, inline payloads, O(1) idle tracking, incremental scheduling,
/// parked-injection elision) under the skip-to-next-event engine;
/// `Simulation::run_ticked` is the same tile path ticking every cycle (the
/// PR 3 engine), and `Simulation::run_reference` the preserved pre-overhaul
/// path.  All three produce cycle-exact identical outcomes (the
/// equivalence suite pins that), so per-iteration time is inversely
/// proportional to cycles/sec; the hot path must sustain at least 1.5x the
/// reference's throughput (measured ~2.7x in this container; this dense
/// SSSP run has deliveries on almost every cycle, so the *skip* engine's
/// extra win over `run_ticked` here is modest — the skip acceptance case
/// is the fabric-bound `sim_64x64_wave_*` pair).
fn bench_sim_tile_path_64x64(c: &mut Criterion) {
    // Under plain `cargo test` the criterion shim smoke-runs each bench
    // once in the debug profile (with debug assertions); the full 64x64
    // case takes minutes there, so shrink it to an 8x8 smoke — the real
    // measurement only happens under `cargo bench`.
    let bench_mode = std::env::args().any(|a| a == "--bench");
    let (scale, side) = if bench_mode { (14, 64) } else { (10, 8) };
    let graph = RmatConfig::new(scale, 8).seed(11).build().unwrap();
    let config = SimConfigBuilder::new(GridConfig::square(side))
        .scratchpad_bytes(1 << 20)
        .build()
        .unwrap();
    let sim = Simulation::new(config, &graph).unwrap();
    let mut group = c.benchmark_group("sim_64x64_sssp");
    group.sample_size(3);
    if engine_selected(Engine::Skip) {
        group.bench_function("tile_path_incremental", |b| {
            b.iter(|| black_box(sim.run(&SsspKernel::new(0)).unwrap().cycles))
        });
    }
    if engine_selected(Engine::Ticked) {
        group.bench_function("tile_path_ticked", |b| {
            b.iter(|| black_box(sim.run_ticked(&SsspKernel::new(0)).unwrap().cycles))
        });
    }
    if engine_selected(Engine::Reference) {
        group.bench_function("tile_path_reference_scan", |b| {
            b.iter(|| black_box(sim.run_reference(&SsspKernel::new(0)).unwrap().cycles))
        });
    }
    group.finish();
}

/// The ISSUE-5 acceptance case: the calendar engine must sustain at least
/// 1.3x the end-to-end cycles/sec of the skip engine on the dense middle
/// of 64x64 SSSP — the regime where deliveries land nearly every cycle, so
/// whole-chip skipping barely helps (~1.07x over ticking) and the
/// full-network router scan dominates.  Both engines produce the identical
/// modelled schedule (the four-engine equivalence square pins that), so
/// per-iteration time is inversely proportional to cycles/sec; compare
/// `sim_64x64_sssp_dense/engine_calendar` against `.../engine_skip`.
fn bench_sim_calendar_64x64(c: &mut Criterion) {
    let bench_mode = std::env::args().any(|a| a == "--bench");
    let (scale, side) = if bench_mode { (14, 64) } else { (10, 8) };
    let graph = RmatConfig::new(scale, 8).seed(11).build().unwrap();
    let config = SimConfigBuilder::new(GridConfig::square(side))
        .scratchpad_bytes(1 << 20)
        .build()
        .unwrap();
    let sim = Simulation::new(config, &graph).unwrap();
    let mut group = c.benchmark_group("sim_64x64_sssp_dense");
    group.sample_size(3);
    for engine in [Engine::Calendar, Engine::Skip] {
        if !engine_selected(engine) {
            continue;
        }
        group.bench_function(format!("engine_{}", engine.name()), |b| {
            b.iter(|| {
                black_box(
                    sim.run_with_engine(&SsspKernel::new(0), engine)
                        .unwrap()
                        .cycles,
                )
            })
        });
    }
    group.finish();
}

/// The ISSUE-6 acceptance case: the parallel engine at 4 workers must
/// sustain at least 2x the end-to-end cycles/sec of the best
/// single-threaded engine on dense 128x128 SSSP (RMAT scale 16, degree 8 —
/// the same ~4 vertices/tile density as the 64x64 dense pair, scaled to
/// 16,384 tiles so each cycle's tile phase is wide enough to amortise the
/// per-cycle barrier), and at 1 worker must stay within 10% of the skip
/// engine (the pool is bypassed entirely there, so the residue is the
/// calendar network walk plus the intent-replay pass).  All rungs model
/// the identical schedule (the five-engine equivalence square pins that),
/// so per-iteration time is inversely proportional to cycles/sec.  Note:
/// measuring the 4-worker rung needs a machine where
/// `std::thread::available_parallelism()` >= 4 — on a single-core
/// container the parallel rungs still run (and stay bit-identical) but
/// the speedup cannot manifest.  `--engine=parallel:N` overrides the
/// worker count of the multi-worker rung.
fn bench_sim_parallel_128x128(c: &mut Criterion) {
    let bench_mode = std::env::args().any(|a| a == "--bench");
    // The 128x128 setup (a scale-16 graph feeding a 16,384-tile simulator)
    // is heavy enough that a bench-mode name filter excluding this whole
    // group should skip it *before* construction — the criterion shim only
    // filters at `bench_function` granularity.  Mirror its filter rule
    // (first positional argument, bench mode only) against the rung names.
    if bench_mode {
        let filter = std::env::args()
            .skip(1)
            .find(|a| a != "--bench" && !a.starts_with('-'));
        if let Some(filter) = filter {
            let multi = flag_workers().unwrap_or(4);
            let rungs = [
                format!("sim_128x128_sssp_dense/engine_parallel_{multi}w"),
                "sim_128x128_sssp_dense/engine_parallel_1w".to_string(),
                "sim_128x128_sssp_dense/engine_calendar".to_string(),
                "sim_128x128_sssp_dense/engine_skip".to_string(),
            ];
            if !rungs.iter().any(|name| name.contains(&filter)) {
                return;
            }
        }
    }
    let (scale, side) = if bench_mode { (16, 128) } else { (10, 8) };
    let graph = RmatConfig::new(scale, 8).seed(11).build().unwrap();
    let config = SimConfigBuilder::new(GridConfig::square(side))
        .scratchpad_bytes(1 << 20)
        .build()
        .unwrap();
    let sim = Simulation::new(config, &graph).unwrap();
    let mut group = c.benchmark_group("sim_128x128_sssp_dense");
    group.sample_size(3);
    if engine_selected(Engine::Parallel { workers: 0 }) {
        let multi = flag_workers().unwrap_or(4);
        for workers in [multi, 1] {
            group.bench_function(format!("engine_parallel_{workers}w"), |b| {
                b.iter(|| {
                    black_box(
                        sim.run_with_engine(&SsspKernel::new(0), Engine::Parallel { workers })
                            .unwrap()
                            .cycles,
                    )
                })
            });
            if multi == 1 {
                break;
            }
        }
    }
    for engine in [Engine::Calendar, Engine::Skip] {
        if !engine_selected(engine) {
            continue;
        }
        group.bench_function(format!("engine_{}", engine.name()), |b| {
            b.iter(|| {
                black_box(
                    sim.run_with_engine(&SsspKernel::new(0), engine)
                        .unwrap()
                        .cycles,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rmat_generation,
    bench_csr_round_trip,
    bench_placement_mapping,
    bench_word_queue,
    bench_noc_uniform_traffic,
    bench_noc_cycle_64x64,
    bench_noc_skip_64x64,
    bench_noc_calendar_walk,
    bench_sim_tile_path_64x64,
    bench_sim_calendar_64x64,
    bench_sim_parallel_128x128
);
criterion_main!(benches);
