//! Criterion micro-benchmarks for the simulator's hot paths: graph
//! generation, CSR construction, data-placement arithmetic, queue
//! operations and raw NoC message movement.  These guard the performance of
//! the substrate the figure experiments are built on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dalorex_graph::generators::rmat::RmatConfig;
use dalorex_graph::CsrGraph;
use dalorex_noc::message::Message;
use dalorex_noc::network::Network;
use dalorex_noc::topology::{GridShape, Topology};
use dalorex_noc::NocConfig;
use dalorex_sim::placement::{ArraySpace, Placement, VertexPlacement};
use dalorex_sim::queues::WordQueue;

fn bench_rmat_generation(c: &mut Criterion) {
    c.bench_function("rmat_scale10_generation", |b| {
        b.iter(|| {
            let graph = RmatConfig::new(10, 8).seed(7).build().unwrap();
            black_box(graph.num_edges())
        })
    });
}

fn bench_csr_round_trip(c: &mut Criterion) {
    let edges = RmatConfig::new(10, 8).seed(7).build_edge_list().unwrap();
    c.bench_function("csr_from_edge_list_scale10", |b| {
        b.iter(|| black_box(CsrGraph::from_edge_list(&edges).num_edges()))
    });
}

fn bench_placement_mapping(c: &mut Criterion) {
    let placement = Placement::new(256, 1 << 20, 10 << 20, VertexPlacement::Interleaved);
    c.bench_function("placement_owner_and_local_1M_lookups", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in (0..(1 << 20)).step_by(17) {
                acc += placement.owner(ArraySpace::Vertex, i);
                acc += placement.to_local(ArraySpace::Edge, i);
            }
            black_box(acc)
        })
    });
}

fn bench_word_queue(c: &mut Criterion) {
    c.bench_function("word_queue_push_pop_4k", |b| {
        b.iter(|| {
            let mut queue = WordQueue::new(4096);
            for i in 0..1024u32 {
                queue.try_push(&[i, i + 1, i + 2]);
            }
            let mut acc = 0u32;
            while let Some(word) = queue.pop_word() {
                acc = acc.wrapping_add(word);
            }
            black_box(acc)
        })
    });
}

fn bench_noc_uniform_traffic(c: &mut Criterion) {
    c.bench_function("torus_8x8_uniform_traffic_drain", |b| {
        b.iter(|| {
            let mut net = Network::new(NocConfig::new(GridShape::new(8, 8), Topology::Torus));
            for src in 0..64usize {
                let dst = (src * 29 + 7) % 64;
                let _ = net.try_inject(src, Message::new(dst, 0, vec![src as u32, 1]));
            }
            let mut cycles = 0;
            while net.in_flight() > 0 && cycles < 10_000 {
                net.cycle();
                cycles += 1;
            }
            for tile in 0..64 {
                while net.pop_delivered(tile).is_some() {}
            }
            black_box(net.stats().delivered_messages)
        })
    });
}

criterion_group!(
    benches,
    bench_rmat_generation,
    bench_csr_round_trip,
    bench_placement_mapping,
    bench_word_queue,
    bench_noc_uniform_traffic
);
criterion_main!(benches);
