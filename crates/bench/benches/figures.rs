//! Criterion benches mirroring each figure of the paper's evaluation at a
//! small, fixed scale.  They execute exactly the code paths the figure
//! binaries sweep (`fig05_ablation` … `fig10_heatmaps`) so that
//! `cargo bench --workspace` both regression-tests the harness and records
//! indicative timings for every experiment; the binaries remain the way to
//! regenerate the full tables.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dalorex_baseline::ablation::{run_rung, AblationRung};
use dalorex_baseline::roofline::BandwidthRoofline;
use dalorex_baseline::Workload;
use dalorex_bench::runner::{run_dalorex, RunOptions};
use dalorex_graph::generators::rmat::RmatConfig;
use dalorex_graph::CsrGraph;
use dalorex_noc::Topology;

const SCRATCHPAD: usize = 1 << 20;

fn bench_graph() -> CsrGraph {
    RmatConfig::new(9, 8).seed(42).build().unwrap()
}

fn fig5_ablation_endpoints(c: &mut Criterion) {
    let graph = bench_graph();
    let mut group = c.benchmark_group("fig05_ablation");
    group.sample_size(10);
    group.bench_function("tesseract_bfs", |b| {
        b.iter(|| {
            let outcome = run_rung(
                AblationRung::Tesseract,
                &graph,
                Workload::Bfs { root: 0 },
                4,
                SCRATCHPAD,
            )
            .unwrap();
            black_box(outcome.cycles)
        })
    });
    group.bench_function("dalorex_full_bfs", |b| {
        b.iter(|| {
            let outcome = run_rung(
                AblationRung::Dalorex,
                &graph,
                Workload::Bfs { root: 0 },
                4,
                SCRATCHPAD,
            )
            .unwrap();
            black_box(outcome.cycles)
        })
    });
    group.finish();
}

fn fig6_strong_scaling_point(c: &mut Criterion) {
    let graph = bench_graph();
    let mut group = c.benchmark_group("fig06_scaling");
    group.sample_size(10);
    for side in [2usize, 4, 8] {
        group.bench_function(format!("bfs_{}tiles", side * side), |b| {
            b.iter(|| {
                let outcome = run_dalorex(
                    &graph,
                    Workload::Bfs { root: 0 },
                    RunOptions::new(side, SCRATCHPAD),
                )
                .unwrap();
                black_box(outcome.cycles)
            })
        });
    }
    group.finish();
}

fn fig7_throughput_point(c: &mut Criterion) {
    let graph = bench_graph();
    let mut group = c.benchmark_group("fig07_throughput");
    group.sample_size(10);
    for workload in [Workload::Spmv, Workload::PageRank { epochs: 2 }] {
        group.bench_function(workload.name().to_lowercase(), |b| {
            b.iter(|| {
                let outcome =
                    run_dalorex(&graph, workload, RunOptions::new(4, SCRATCHPAD)).unwrap();
                black_box(outcome.stats.edges_per_second(1.0e9))
            })
        });
    }
    group.finish();
}

fn fig8_noc_comparison_point(c: &mut Criterion) {
    let graph = bench_graph();
    let mut group = c.benchmark_group("fig08_noc");
    group.sample_size(10);
    for topology in [Topology::Mesh, Topology::Torus, Topology::TorusRuche { factor: 4 }] {
        group.bench_function(topology.name().to_lowercase(), |b| {
            b.iter(|| {
                let outcome = run_dalorex(
                    &graph,
                    Workload::Sssp { root: 0 },
                    RunOptions::new(8, SCRATCHPAD).with_topology(topology),
                )
                .unwrap();
                black_box(outcome.cycles)
            })
        });
    }
    group.finish();
}

fn fig9_energy_breakdown_point(c: &mut Criterion) {
    let graph = bench_graph();
    let mut group = c.benchmark_group("fig09_energy_breakdown");
    group.sample_size(10);
    group.bench_function("wcc_energy_shares", |b| {
        b.iter(|| {
            let outcome =
                run_dalorex(&graph, Workload::Wcc, RunOptions::new(4, SCRATCHPAD)).unwrap();
            black_box(outcome.energy.shares_percent())
        })
    });
    group.finish();
}

fn fig10_heatmap_point(c: &mut Criterion) {
    let graph = bench_graph();
    let mut group = c.benchmark_group("fig10_heatmaps");
    group.sample_size(10);
    for topology in [Topology::Mesh, Topology::Torus] {
        group.bench_function(format!("sssp_utilization_{}", topology.name().to_lowercase()), |b| {
            b.iter(|| {
                let outcome = run_dalorex(
                    &graph,
                    Workload::Sssp { root: 0 },
                    RunOptions::new(8, SCRATCHPAD).with_topology(topology),
                )
                .unwrap();
                black_box(outcome.stats.router_utilization_grid().variation())
            })
        });
    }
    group.finish();
}

fn roofline_analysis(c: &mut Criterion) {
    c.bench_function("polygraph_roofline_sweep", |b| {
        b.iter(|| {
            let roofline = BandwidthRoofline::polygraph_like();
            let total: f64 = (1..=128).map(|cores| roofline.achievable_edges_per_s(cores)).sum();
            black_box(total)
        })
    });
}

criterion_group!(
    figures,
    fig5_ablation_endpoints,
    fig6_strong_scaling_point,
    fig7_throughput_point,
    fig8_noc_comparison_point,
    fig9_energy_breakdown_point,
    fig10_heatmap_point,
    roofline_analysis
);
criterion_main!(figures);
