//! Benchmark harness for the Dalorex reproduction.
//!
//! Every table and figure of the paper's evaluation (Section V) has a
//! regeneration target in this crate:
//!
//! | Paper artefact | Binary (`cargo run -p dalorex-bench --release --bin …`) |
//! |---|---|
//! | Figure 5 (performance & energy vs. Tesseract, ablation ladder) + the Section V-A geomean factors | `fig05_ablation` |
//! | Figure 6 (BFS strong scaling: runtime and energy vs. core count) + the Section V-B knee points | `fig06_scaling` |
//! | Figure 7 (throughput and memory bandwidth vs. grid size) | `fig07_throughput` |
//! | Figure 8 (mesh vs. torus vs. torus-ruche speedups) | `fig08_noc` |
//! | Figure 9 (energy breakdown: logic / memory / network) | `fig09_energy_breakdown` |
//! | Figure 10 (PU and router utilization heatmaps) | `fig10_heatmaps` |
//! | Section V-A area / power-density claims | `area_report` |
//!
//! All binaries print aligned tables (and `--csv` prints machine-readable
//! CSV; `--json <path>` writes the underlying [`report::Measurement`]s).
//! By default they run at a reduced *reproduction scale* so the whole
//! suite completes on a laptop; set `DALOREX_SCALE_SHIFT` (smaller shift =
//! bigger graphs, 0 = the paper's original sizes) and `DALOREX_MAX_SIDE`
//! to push the experiments toward the paper's scale.  The scaling figures
//! (`fig06_scaling`, `fig07_throughput`) additionally accept
//! `--max-side <n>` (reach the paper's 32x32 / 64x64 grids in one
//! invocation) and `--drains <a,b,...>` (sweep the endpoint bandwidth,
//! messages per tile per cycle); the drain budget and the NoC's
//! injection-rejection count are emitted into the JSON report.  Every
//! figure binary takes `--engine <reference|ticked|skip|calendar|parallel[:N]>`
//! to select the cycle engine (with `DALOREX_ENGINE` as the environment
//! default when the flag is absent) — the tables are engine-independent
//! (the schedules are bit-identical), so the flag exists for A/B
//! wall-clock timing via the stderr line each binary prints.
//! `docs/FIGURES.md` maps every binary to its paper figure, flags and
//! output shape.
//!
//! The crate itself is thin: [`cli`] owns the shared flag parsing,
//! [`datasets`] builds the catalogued graphs at reproduction scale,
//! [`runner`] configures and runs one simulation per figure cell, and
//! [`report`] renders tables/CSV/JSON.
//!
//! The Criterion benches under `benches/` exercise the same code paths at
//! small fixed sizes so `cargo bench --workspace` provides regression
//! tracking for the simulator's hot loops.  `sim_microbench`'s
//! `torus_64x64_cycle_*` pair measures the event-driven `Network::cycle`
//! against the pre-overhaul reference scan on a dense 64x64 torus (the
//! ≥2x acceptance case for the hot-path overhaul), and its
//! `sim_64x64_sssp_dense/engine_*` pair measures the calendar engine
//! against the skip engine on the dense 64x64 SSSP middle (the ≥1.3x
//! acceptance case for the calendar router scheduler).  Its
//! `sim_128x128_sssp_dense/engine_*` rungs measure the parallel engine
//! (multi-worker and 1-worker) against the calendar and skip engines on
//! dense 128x128 SSSP — the ≥2x-at-4-workers acceptance case for the
//! deterministic parallel engine (needs a machine with at least 4 cores
//! to manifest).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod datasets;
pub mod report;
pub mod runner;
pub mod waves;
