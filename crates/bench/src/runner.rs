//! Shared simulation runners for the figure binaries and Criterion benches.

use dalorex_baseline::Workload;
use dalorex_graph::CsrGraph;
use dalorex_noc::Topology;
use dalorex_sim::config::{BarrierMode, Engine, GridConfig, SimConfigBuilder};
use dalorex_sim::engine::SimOutcome;
use dalorex_sim::{FaultPlan, SimError, Simulation, VerifyMode};

/// Options for a single Dalorex run used by the figure binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Grid side (the run uses `side x side` tiles).
    pub side: usize,
    /// NoC topology; `None` selects the paper default for the grid size.
    pub topology: Option<Topology>,
    /// Scratchpad bytes per tile.
    pub scratchpad_bytes: usize,
    /// Endpoint bandwidth: messages drained/injected per tile per cycle
    /// (default 1, the paper's single local router port).
    pub endpoint_drains: usize,
    /// Cycle engine driving the run (default [`Engine::Skip`]; every
    /// engine models the identical schedule, so this only changes
    /// simulator wall-clock — the figure binaries expose it as
    /// `--engine`).
    pub engine: Engine,
    /// Fault plan the run is driven under (default empty — no faults; the
    /// figure binaries expose it as `--faults`).  Unlike `engine`, a
    /// non-empty plan *does* change the modelled schedule — identically on
    /// every engine.
    pub faults: FaultPlan,
    /// How the static task-graph verifier treats its findings when the
    /// run is built (default [`VerifyMode::Warn`]; the figure binaries
    /// expose it as `--verify` / `DALOREX_VERIFY`).
    pub verify: VerifyMode,
}

impl RunOptions {
    /// Creates options for a `side x side` grid with the paper-default
    /// topology.
    pub fn new(side: usize, scratchpad_bytes: usize) -> Self {
        RunOptions {
            side,
            topology: None,
            scratchpad_bytes,
            endpoint_drains: 1,
            engine: Engine::default(),
            faults: FaultPlan::empty(),
            verify: VerifyMode::default(),
        }
    }

    /// Overrides the topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Overrides the endpoint-drain budget (messages per tile per cycle).
    pub fn with_endpoint_drains(mut self, drains: usize) -> Self {
        self.endpoint_drains = drains;
        self
    }

    /// Overrides the cycle engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the static-verifier mode.
    pub fn with_verify(mut self, verify: VerifyMode) -> Self {
        self.verify = verify;
        self
    }
}

/// Runs one workload on the full-Dalorex configuration (interleaved
/// placement, traffic-aware scheduling, barrierless unless the workload
/// needs a barrier).
///
/// # Errors
///
/// Propagates simulator errors (most commonly the dataset not fitting the
/// per-tile scratchpad for the requested grid).
pub fn run_dalorex(
    graph: &CsrGraph,
    workload: Workload,
    options: RunOptions,
) -> Result<SimOutcome, SimError> {
    let prepared = workload.prepare_graph(graph);
    let grid = GridConfig::square(options.side);
    let mut builder = SimConfigBuilder::new(grid)
        .scratchpad_bytes(options.scratchpad_bytes)
        .endpoint_drains_per_cycle(options.endpoint_drains)
        .engine(options.engine)
        .faults(options.faults.clone())
        .verify(options.verify)
        .barrier_mode(if workload.requires_barrier() {
            BarrierMode::EpochBarrier
        } else {
            BarrierMode::Barrierless
        });
    if let Some(topology) = options.topology {
        builder = builder.topology(topology);
    }
    let config = builder.build()?;
    let sim = Simulation::new(config, &prepared)?;
    let kernel = workload.kernel();
    sim.run(kernel.as_ref())
}

/// Grid sides swept by the scaling figures, doubling the tile count at each
/// step (1, 2, 4, ... up to `max_side`), mirroring the paper's powers of
/// four in tile count.
pub fn scaling_sides(max_side: usize) -> Vec<usize> {
    let mut sides = Vec::new();
    let mut side = 1;
    while side <= max_side {
        sides.push(side);
        side *= 2;
    }
    sides
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalorex_graph::generators::rmat::RmatConfig;

    #[test]
    fn run_dalorex_completes_for_every_workload_on_a_tiny_grid() {
        let graph = RmatConfig::new(7, 5).seed(3).build().unwrap();
        for workload in [
            Workload::Bfs { root: 0 },
            Workload::PageRank { epochs: 2 },
            Workload::Spmv,
        ] {
            let outcome =
                run_dalorex(&graph, workload, RunOptions::new(2, 1 << 20)).unwrap();
            assert!(outcome.cycles > 0, "{workload:?}");
        }
    }

    #[test]
    fn topology_override_is_honoured() {
        let graph = RmatConfig::new(7, 5).seed(3).build().unwrap();
        let mesh = run_dalorex(
            &graph,
            Workload::Bfs { root: 0 },
            RunOptions::new(4, 1 << 20).with_topology(Topology::Mesh),
        )
        .unwrap();
        let torus = run_dalorex(
            &graph,
            Workload::Bfs { root: 0 },
            RunOptions::new(4, 1 << 20).with_topology(Topology::Torus),
        )
        .unwrap();
        assert!(mesh.cycles > 0 && torus.cycles > 0);
    }

    #[test]
    fn scaling_sides_double_up_to_the_cap() {
        assert_eq!(scaling_sides(16), vec![1, 2, 4, 8, 16]);
        assert_eq!(scaling_sides(1), vec![1]);
        assert_eq!(scaling_sides(12), vec![1, 2, 4, 8]);
        assert_eq!(scaling_sides(64), vec![1, 2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn every_engine_produces_the_identical_outcome() {
        let graph = RmatConfig::new(7, 5).seed(3).build().unwrap();
        let workload = Workload::Bfs { root: 0 };
        let base = run_dalorex(&graph, workload, RunOptions::new(2, 1 << 20)).unwrap();
        for engine in Engine::ALL {
            let outcome = run_dalorex(
                &graph,
                workload,
                RunOptions::new(2, 1 << 20).with_engine(engine),
            )
            .unwrap();
            assert_eq!(outcome.cycles, base.cycles, "cycles diverged on {engine}");
            assert_eq!(outcome.stats, base.stats, "stats diverged on {engine}");
            assert_eq!(outcome.output, base.output, "output diverged on {engine}");
        }
    }

    #[test]
    fn fault_plan_override_reaches_the_simulator() {
        let graph = RmatConfig::new(7, 5).seed(3).build().unwrap();
        let plan: FaultPlan = "stall:tile=0,start=10,end=200".parse().unwrap();
        let faulted = run_dalorex(
            &graph,
            Workload::Bfs { root: 0 },
            RunOptions::new(2, 1 << 20).with_faults(plan),
        )
        .unwrap();
        let clean = run_dalorex(&graph, Workload::Bfs { root: 0 }, RunOptions::new(2, 1 << 20))
            .unwrap();
        // Faults delay, never drop: same answer, a non-empty impact report.
        assert_eq!(faulted.output, clean.output);
        assert!(!faulted.fault.is_empty());
        assert!(clean.fault.is_empty());
    }

    #[test]
    fn verify_deny_passes_on_shipped_workloads() {
        use dalorex_sim::VerifyMode;
        let graph = RmatConfig::new(7, 5).seed(3).build().unwrap();
        // Zero false positives: the shipped kernels must run under the
        // strictest verifier mode.
        let outcome = run_dalorex(
            &graph,
            Workload::Bfs { root: 0 },
            RunOptions::new(2, 1 << 20).with_verify(VerifyMode::Deny),
        )
        .unwrap();
        assert!(outcome.cycles > 0);
    }

    #[test]
    fn endpoint_drains_override_reaches_the_simulator() {
        let graph = RmatConfig::new(7, 5).seed(3).build().unwrap();
        let single = run_dalorex(
            &graph,
            Workload::Bfs { root: 0 },
            RunOptions::new(2, 1 << 20),
        )
        .unwrap();
        let wide = run_dalorex(
            &graph,
            Workload::Bfs { root: 0 },
            RunOptions::new(2, 1 << 20).with_endpoint_drains(4),
        )
        .unwrap();
        // A wider endpoint helps or roughly ties on the same workload
        // (message-ordering effects can cost a few cycles either way).
        assert!(
            wide.cycles <= single.cycles + single.cycles / 10,
            "4-drain run ({}) far slower than single-drain run ({})",
            wide.cycles,
            single.cycles
        );
        assert!(wide.cycles > 0 && single.cycles > 0);
    }
}
