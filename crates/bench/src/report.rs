//! Table and CSV reporting used by the figure binaries.

use serde::Serialize;

/// A simple aligned-text table, printed like the rows of a paper figure.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header's.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, width)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:>width$}"));
            }
            out.push('\n');
        };
        render(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render(row, &widths, &mut out);
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the table as text, or CSV when the command line contains
    /// `--csv`.
    pub fn print(&self, title: &str) {
        let csv = std::env::args().any(|a| a == "--csv");
        println!("# {title}");
        if csv {
            print!("{}", self.to_csv());
        } else {
            print!("{}", self.to_text());
        }
        println!();
    }
}

/// One measured cell of a figure, serializable for downstream plotting.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct Measurement {
    /// Which figure or table this belongs to ("fig5-perf", "fig6", ...).
    pub experiment: String,
    /// Workload name.
    pub workload: String,
    /// Dataset label.
    pub dataset: String,
    /// Configuration label (ablation rung, topology, grid size, ...).
    pub configuration: String,
    /// Runtime in cycles.
    pub cycles: u64,
    /// Energy in Joules.
    pub energy_j: f64,
    /// Figure-specific value (speedup, edges/s, percentage, ...), if any.
    pub value: f64,
}

/// Writes measurements as a JSON array to `path` (used with `--json <path>`).
///
/// # Errors
///
/// Propagates I/O and serialization errors.
pub fn write_json(path: &str, measurements: &[Measurement]) -> Result<(), Box<dyn std::error::Error>> {
    let json = serde_json::to_string_pretty(measurements)?;
    std::fs::write(path, json)?;
    Ok(())
}

/// Formats a ratio the way the paper quotes factors ("6.2x").
pub fn format_factor(factor: f64) -> String {
    if factor >= 100.0 {
        format!("{factor:.0}x")
    } else {
        format!("{factor:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_text_and_csv() {
        let mut table = Table::new(vec!["config", "cycles"]);
        table.push_row(vec!["Tesseract".to_string(), "100".to_string()]);
        table.push_row(vec!["Dalorex".to_string(), "5".to_string()]);
        let text = table.to_text();
        assert!(text.contains("Tesseract"));
        assert!(text.lines().count() >= 4);
        let csv = table.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "config,cycles");
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut table = Table::new(vec!["a", "b"]);
        table.push_row(vec!["only one"]);
    }

    #[test]
    fn factors_format_like_the_paper() {
        assert_eq!(format_factor(6.23), "6.2x");
        assert_eq!(format_factor(221.4), "221x");
    }

    #[test]
    fn measurements_serialize() {
        let m = Measurement {
            experiment: "fig5-perf".into(),
            workload: "BFS".into(),
            dataset: "R22".into(),
            configuration: "Dalorex".into(),
            cycles: 123,
            energy_j: 0.5,
            value: 221.0,
        };
        let json = serde_json::to_string(&m).unwrap();
        assert!(json.contains("fig5-perf"));
    }
}
