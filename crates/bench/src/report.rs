//! Table and CSV reporting used by the figure binaries.

/// A simple aligned-text table, printed like the rows of a paper figure.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header's.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, width)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:>width$}"));
            }
            out.push('\n');
        };
        render(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render(row, &widths, &mut out);
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the table as text, or CSV when the command line contains
    /// `--csv`.
    pub fn print(&self, title: &str) {
        let csv = std::env::args().any(|a| a == "--csv");
        println!("# {title}");
        if csv {
            print!("{}", self.to_csv());
        } else {
            print!("{}", self.to_text());
        }
        println!();
    }
}

/// One measured cell of a figure, serializable for downstream plotting.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Which figure or table this belongs to ("fig5-perf", "fig6", ...).
    pub experiment: String,
    /// Workload name.
    pub workload: String,
    /// Dataset label.
    pub dataset: String,
    /// Configuration label (ablation rung, topology, grid size, ...).
    pub configuration: String,
    /// Runtime in cycles.
    pub cycles: u64,
    /// Energy in Joules.
    pub energy_j: f64,
    /// Figure-specific value (speedup, edges/s, percentage, ...), if any.
    pub value: f64,
    /// Endpoint bandwidth the run used (messages drained/injected per tile
    /// per cycle); 1 is the paper's single-local-port tile.
    pub endpoint_drains: usize,
    /// Injection attempts the NoC rejected with back-pressure during the
    /// run (total across tiles).
    pub rejected_injections: u64,
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a float as JSON (finite values only; NaN/inf become null).
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        // `{:?}` round-trips f64 exactly and always includes a decimal
        // point or exponent, keeping the output valid JSON numbers.
        format!("{value:?}")
    } else {
        "null".to_string()
    }
}

impl Measurement {
    /// Serializes this measurement as a JSON object.
    ///
    /// The environment this reproduction builds in has no registry access,
    /// so the serialization is hand-rolled rather than pulled from serde;
    /// the output is plain JSON consumable by any plotting pipeline.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"experiment\":\"{}\",\"workload\":\"{}\",\"dataset\":\"{}\",",
                "\"configuration\":\"{}\",\"cycles\":{},\"energy_j\":{},\"value\":{},",
                "\"endpoint_drains\":{},\"rejected_injections\":{}}}"
            ),
            json_escape(&self.experiment),
            json_escape(&self.workload),
            json_escape(&self.dataset),
            json_escape(&self.configuration),
            self.cycles,
            json_f64(self.energy_j),
            json_f64(self.value),
            self.endpoint_drains,
            self.rejected_injections,
        )
    }
}

/// Renders measurements as a pretty-printed JSON array.
pub fn to_json_array(measurements: &[Measurement]) -> String {
    let mut out = String::from("[\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&m.to_json());
        if i + 1 < measurements.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Writes measurements as a JSON array to `path` (the destination of the
/// figure binaries' `--json <path>` flag; see [`json_output_path`]).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_json(path: &str, measurements: &[Measurement]) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::write(path, to_json_array(measurements))?;
    Ok(())
}

/// Returns the value of `--<name> <value>` or `--<name>=<value>` on the
/// command line, if present.  The figure binaries use this for their sweep
/// flags (`--json <path>`, `--max-side <n>`, `--drains <a,b,...>`).
pub fn flag_value(name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let assigned = format!("--{name}=");
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == flag {
            // A following token that is itself a flag means the value was
            // forgotten; surface that instead of consuming the other flag.
            let value = args.next().filter(|v| !v.starts_with("--"));
            if value.is_none() {
                eprintln!("flag {flag} is missing its value");
            }
            return value;
        }
        if let Some(value) = arg.strip_prefix(&assigned) {
            return Some(value.to_string());
        }
    }
    None
}

/// Parses the `--json <path>` command-line flag used by the figure
/// binaries to persist their measurements as JSON next to the printed
/// table.  Returns `None` when the flag is absent or has no value.
pub fn json_output_path() -> Option<String> {
    flag_value("json")
}

/// Default endpoint budget (messages drained/injected per tile per cycle)
/// for the figure binaries whose comparison must run *fabric-bound*:
/// `fig08_noc`, `fig09_energy_breakdown` and `fig10_heatmaps` all pass
/// `&[FABRIC_BOUND_DRAINS]` to [`drains_flag_or`].  Two is the smallest
/// budget at which the dense runs stop being serialized by the single
/// local router port; retune it here, in one place, if larger grids ever
/// move the knee.
pub const FABRIC_BOUND_DRAINS: usize = 2;

/// Parses the `--drains <a,b,...>` flag: the endpoint-drain budgets a
/// figure binary sweeps (default just `[1]`, the paper's single-port
/// tile).  Invalid or zero entries are dropped with a warning on stderr
/// so a typo'd sweep never silently measures the wrong configurations.
pub fn drains_flag() -> Vec<usize> {
    drains_flag_or(&[1])
}

/// Like [`drains_flag`], with a caller-chosen default sweep for binaries
/// whose figure is not measured at the paper's single-port endpoint —
/// `fig08_noc`, `fig09_energy_breakdown` and `fig10_heatmaps` default to
/// [`FABRIC_BOUND_DRAINS`] so their comparisons run fabric-bound rather
/// than endpoint-bound.
pub fn drains_flag_or(default: &[usize]) -> Vec<usize> {
    let mut parsed = Vec::new();
    if let Some(list) = flag_value("drains") {
        for entry in list.split(',') {
            match entry.trim().parse::<usize>() {
                Ok(drains) if drains > 0 => parsed.push(drains),
                _ => eprintln!("ignoring invalid --drains entry {entry:?} (want a positive integer)"),
            }
        }
    }
    if parsed.is_empty() {
        default.to_vec()
    } else {
        parsed
    }
}

/// Parses the `--max-side <n>` flag overriding the `DALOREX_MAX_SIDE`
/// environment variable, so one invocation can push a sweep to 32x32 or
/// 64x64 grids without touching the environment.  An unparsable value is
/// reported on stderr rather than silently falling back to the default.
pub fn max_side_flag() -> Option<usize> {
    let value = flag_value("max-side")?;
    match value.parse::<usize>() {
        Ok(side) if side > 0 => Some(side),
        _ => {
            eprintln!("ignoring invalid --max-side value {value:?} (want a positive integer)");
            None
        }
    }
}

/// Writes `measurements` to the path given by `--json <path>`, if any.
/// Used by the figure binaries after printing their tables; on a write
/// failure it reports the error and exits nonzero so that pipelines like
/// `fig07_throughput -- --json out.json && plot out.json` do not proceed
/// without the file.
pub fn write_json_if_requested(measurements: &[Measurement]) {
    let Some(path) = json_output_path() else {
        return;
    };
    match write_json(&path, measurements) {
        Ok(()) => eprintln!("wrote {} measurements to {path}", measurements.len()),
        Err(err) => {
            eprintln!("failed to write JSON to {path}: {err}");
            std::process::exit(1);
        }
    }
}

/// Formats a ratio the way the paper quotes factors ("6.2x").
pub fn format_factor(factor: f64) -> String {
    if factor >= 100.0 {
        format!("{factor:.0}x")
    } else {
        format!("{factor:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_text_and_csv() {
        let mut table = Table::new(vec!["config", "cycles"]);
        table.push_row(vec!["Tesseract".to_string(), "100".to_string()]);
        table.push_row(vec!["Dalorex".to_string(), "5".to_string()]);
        let text = table.to_text();
        assert!(text.contains("Tesseract"));
        assert!(text.lines().count() >= 4);
        let csv = table.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "config,cycles");
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut table = Table::new(vec!["a", "b"]);
        table.push_row(vec!["only one"]);
    }

    #[test]
    fn factors_format_like_the_paper() {
        assert_eq!(format_factor(6.23), "6.2x");
        assert_eq!(format_factor(221.4), "221x");
    }

    #[test]
    fn drains_flag_defaults_to_single_port() {
        // The test harness never passes --drains.
        assert_eq!(drains_flag(), vec![1]);
        assert_eq!(max_side_flag(), None);
        assert_eq!(flag_value("no-such-flag"), None);
    }

    #[test]
    fn measurements_serialize() {
        let m = Measurement {
            experiment: "fig5-perf".into(),
            workload: "BFS".into(),
            dataset: "R22".into(),
            configuration: "Dalorex".into(),
            cycles: 123,
            energy_j: 0.5,
            value: 221.0,
            endpoint_drains: 2,
            rejected_injections: 17,
        };
        let json = m.to_json();
        assert!(json.contains("fig5-perf"));
        assert!(json.contains("\"cycles\":123"));
        assert!(json.contains("\"energy_j\":0.5"));
        assert!(json.contains("\"endpoint_drains\":2"));
        assert!(json.contains("\"rejected_injections\":17"));
        let array = to_json_array(&[m.clone(), m]);
        assert!(array.starts_with('['));
        assert!(array.ends_with(']'));
        assert_eq!(array.matches("fig5-perf").count(), 2);
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        let m = Measurement {
            experiment: "quote\"back\\slash\nnewline".into(),
            workload: "W".into(),
            dataset: "D".into(),
            configuration: "C".into(),
            cycles: 1,
            energy_j: f64::NAN,
            value: 1.0,
            endpoint_drains: 1,
            rejected_injections: 0,
        };
        let json = m.to_json();
        assert!(json.contains("quote\\\"back\\\\slash\\nnewline"));
        assert!(json.contains("\"energy_j\":null"));
    }
}
