//! Table, CSV and JSON reporting used by the figure binaries (their shared
//! command-line flags live in [`crate::cli`]).

/// A simple aligned-text table, printed like the rows of a paper figure.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header's.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, width)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:>width$}"));
            }
            out.push('\n');
        };
        render(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render(row, &widths, &mut out);
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the table as aligned text, or as CSV when `csv` is set (the
    /// figure binaries pass [`crate::cli::FigureCli`]'s parsed `--csv`
    /// flag, the single source of truth for the format).
    pub fn print(&self, title: &str, csv: bool) {
        println!("# {title}");
        if csv {
            print!("{}", self.to_csv());
        } else {
            print!("{}", self.to_text());
        }
        println!();
    }
}

/// The memory-report columns a figure row may carry, mirroring the
/// subsystem lines of [`dalorex_sim::MemoryReport`] (the physical lines
/// only — the calendar line is simulator bookkeeping, not modeled
/// hardware, so it stays out of the figure schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryColumns {
    /// Total modeled bytes across every subsystem line.
    pub modeled_bytes: usize,
    /// The distributed CSR chunks.
    pub csr_bytes: usize,
    /// Per-tile arena slabs (materialized tiles only, under lazy
    /// allocation).
    pub tile_arena_bytes: usize,
    /// Tiles whose arena was materialized during the run.
    pub materialized_tiles: usize,
    /// Total tiles in the grid.
    pub total_tiles: usize,
    /// Router port + ejection buffers across the fabric.
    pub noc_buffer_bytes: usize,
}

impl MemoryColumns {
    /// Extracts the figure columns from a run's memory report.
    pub fn from_report(report: &dalorex_sim::MemoryReport) -> Self {
        MemoryColumns {
            modeled_bytes: report.modeled_total_bytes(),
            csr_bytes: report.csr_bytes,
            tile_arena_bytes: report.tile_arena_bytes,
            materialized_tiles: report.materialized_tiles,
            total_tiles: report.total_tiles,
            noc_buffer_bytes: report.noc_buffer_bytes,
        }
    }
}

/// The walk-efficiency columns a figure row may carry: how much per-cycle
/// router-walk work the run's scheduler actually did (ISSUE 10).  These
/// are simulator-efficiency counters — the modeled schedule is identical
/// across schedulers — so the BENCH series can show the due-only walk's
/// win (and catch a regression) without touching the figure numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkColumns {
    /// Routers the walk visited (list entries read or heap pops), summed
    /// over all cycles.
    pub routers_visited: u64,
    /// Routers the walk actually port-scanned.  Equal to `routers_visited`
    /// under the scan scheduler; the gap is the work the due stamps saved.
    pub routers_scanned: u64,
    /// Cycles whose walk was elided outright (calendar fast path).
    pub walks_elided: u64,
}

impl WalkColumns {
    /// Extracts the walk columns from a run's NoC statistics.
    pub fn from_stats(stats: &dalorex_noc::NocStats) -> Self {
        WalkColumns {
            routers_visited: stats.walk_routers_visited,
            routers_scanned: stats.walk_routers_scanned,
            walks_elided: stats.walks_elided,
        }
    }
}

/// One measured cell of a figure, serializable for downstream plotting.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Which figure or table this belongs to ("fig5-perf", "fig6", ...).
    pub experiment: String,
    /// Workload name.
    pub workload: String,
    /// Dataset label.
    pub dataset: String,
    /// Configuration label (ablation rung, topology, grid size, ...).
    pub configuration: String,
    /// Runtime in cycles.
    pub cycles: u64,
    /// Energy in Joules.
    pub energy_j: f64,
    /// Figure-specific value (speedup, edges/s, percentage, ...), if any.
    pub value: f64,
    /// Endpoint bandwidth the run used (messages drained/injected per tile
    /// per cycle); 1 is the paper's single-local-port tile.
    pub endpoint_drains: usize,
    /// Injection attempts the NoC rejected with back-pressure during the
    /// run (total across tiles).
    pub rejected_injections: u64,
    /// Modeled memory footprint of the run, when the producing binary
    /// reports one (`None` for analytical baselines and figures that
    /// aggregate across runs).
    pub memory: Option<MemoryColumns>,
    /// Peak resident-set size of the measuring *process* when the row was
    /// taken (the VmHWM high-water mark, so it only ever grows across a
    /// run's rows).  `perf_snapshot` reports it next to `modeled_bytes` to
    /// catch the simulator's own footprint regressing; the figure binaries
    /// leave it `None`.
    pub peak_rss_bytes: Option<usize>,
    /// Walk-efficiency counters of the run's router scheduler, when the
    /// producing binary reports them (`None` for analytical baselines and
    /// aggregated rows).
    pub walk: Option<WalkColumns>,
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a float as JSON (finite values only; NaN/inf become null).
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        // `{:?}` round-trips f64 exactly and always includes a decimal
        // point or exponent, keeping the output valid JSON numbers.
        format!("{value:?}")
    } else {
        "null".to_string()
    }
}

impl Measurement {
    /// Serializes this measurement as a JSON object.
    ///
    /// The environment this reproduction builds in has no registry access,
    /// so the serialization is hand-rolled rather than pulled from serde;
    /// the output is plain JSON consumable by any plotting pipeline.
    pub fn to_json(&self) -> String {
        let memory = match &self.memory {
            Some(m) => format!(
                concat!(
                    ",\"memory\":{{\"modeled_bytes\":{},\"csr_bytes\":{},",
                    "\"tile_arena_bytes\":{},\"materialized_tiles\":{},",
                    "\"total_tiles\":{},\"noc_buffer_bytes\":{}}}"
                ),
                m.modeled_bytes,
                m.csr_bytes,
                m.tile_arena_bytes,
                m.materialized_tiles,
                m.total_tiles,
                m.noc_buffer_bytes,
            ),
            None => String::new(),
        };
        let peak_rss = match self.peak_rss_bytes {
            Some(bytes) => format!(",\"peak_rss_bytes\":{bytes}"),
            None => String::new(),
        };
        let walk = match &self.walk {
            Some(w) => format!(
                concat!(
                    ",\"walk\":{{\"routers_visited\":{},",
                    "\"routers_scanned\":{},\"walks_elided\":{}}}"
                ),
                w.routers_visited, w.routers_scanned, w.walks_elided,
            ),
            None => String::new(),
        };
        format!(
            concat!(
                "{{\"experiment\":\"{}\",\"workload\":\"{}\",\"dataset\":\"{}\",",
                "\"configuration\":\"{}\",\"cycles\":{},\"energy_j\":{},\"value\":{},",
                "\"endpoint_drains\":{},\"rejected_injections\":{}{}{}{}}}"
            ),
            json_escape(&self.experiment),
            json_escape(&self.workload),
            json_escape(&self.dataset),
            json_escape(&self.configuration),
            self.cycles,
            json_f64(self.energy_j),
            json_f64(self.value),
            self.endpoint_drains,
            self.rejected_injections,
            memory,
            peak_rss,
            walk,
        )
    }
}

/// Renders measurements as a pretty-printed JSON array.
pub fn to_json_array(measurements: &[Measurement]) -> String {
    let mut out = String::from("[\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&m.to_json());
        if i + 1 < measurements.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Writes measurements as a JSON array to `path` (the destination of the
/// figure binaries' `--json <path>` flag; see
/// [`crate::cli::FigureCli::write_json_if_requested`]).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_json(path: &str, measurements: &[Measurement]) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::write(path, to_json_array(measurements))?;
    Ok(())
}

/// Formats a ratio the way the paper quotes factors ("6.2x").
pub fn format_factor(factor: f64) -> String {
    if factor >= 100.0 {
        format!("{factor:.0}x")
    } else {
        format!("{factor:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_text_and_csv() {
        let mut table = Table::new(vec!["config", "cycles"]);
        table.push_row(vec!["Tesseract".to_string(), "100".to_string()]);
        table.push_row(vec!["Dalorex".to_string(), "5".to_string()]);
        let text = table.to_text();
        assert!(text.contains("Tesseract"));
        assert!(text.lines().count() >= 4);
        let csv = table.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "config,cycles");
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut table = Table::new(vec!["a", "b"]);
        table.push_row(vec!["only one"]);
    }

    #[test]
    fn factors_format_like_the_paper() {
        assert_eq!(format_factor(6.23), "6.2x");
        assert_eq!(format_factor(221.4), "221x");
    }

    #[test]
    fn measurements_serialize() {
        let m = Measurement {
            experiment: "fig5-perf".into(),
            workload: "BFS".into(),
            dataset: "R22".into(),
            configuration: "Dalorex".into(),
            cycles: 123,
            energy_j: 0.5,
            value: 221.0,
            endpoint_drains: 2,
            rejected_injections: 17,
            memory: Some(MemoryColumns {
                modeled_bytes: 1000,
                csr_bytes: 600,
                tile_arena_bytes: 300,
                materialized_tiles: 3,
                total_tiles: 16,
                noc_buffer_bytes: 100,
            }),
            peak_rss_bytes: Some(4096),
            walk: Some(WalkColumns {
                routers_visited: 500,
                routers_scanned: 40,
                walks_elided: 9,
            }),
        };
        let json = m.to_json();
        assert!(json.contains("fig5-perf"));
        assert!(json.contains("\"cycles\":123"));
        assert!(json.contains("\"energy_j\":0.5"));
        assert!(json.contains("\"endpoint_drains\":2"));
        assert!(json.contains("\"rejected_injections\":17"));
        assert!(json.contains("\"memory\":{\"modeled_bytes\":1000"));
        assert!(json.contains("\"materialized_tiles\":3"));
        assert!(json.contains("\"peak_rss_bytes\":4096"));
        assert!(json.contains("\"walk\":{\"routers_visited\":500"));
        assert!(json.contains("\"walks_elided\":9"));
        let array = to_json_array(&[m.clone(), m]);
        assert!(array.starts_with('['));
        assert!(array.ends_with(']'));
        assert_eq!(array.matches("fig5-perf").count(), 2);
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        let m = Measurement {
            experiment: "quote\"back\\slash\nnewline".into(),
            workload: "W".into(),
            dataset: "D".into(),
            configuration: "C".into(),
            cycles: 1,
            energy_j: f64::NAN,
            value: 1.0,
            endpoint_drains: 1,
            rejected_injections: 0,
            memory: None,
            peak_rss_bytes: None,
            walk: None,
        };
        let json = m.to_json();
        assert!(json.contains("quote\\\"back\\\\slash\\nnewline"));
        assert!(json.contains("\"energy_j\":null"));
        assert!(!json.contains("\"memory\""), "absent report emits no key");
        assert!(!json.contains("peak_rss"), "absent RSS emits no key");
        assert!(!json.contains("\"walk\""), "absent walk emits no key");
    }
}
