//! Shared synthetic NoC traffic waves for the benchmark binaries and the
//! criterion micro-benchmarks, so the in-binary A/B snapshots and the
//! `cargo bench` rungs time the exact same traffic.

use dalorex_noc::message::Message;
use dalorex_noc::network::Network;
use dalorex_noc::topology::{GridShape, Topology};
use dalorex_noc::{NocConfig, RouterScheduler};

/// A fresh `side`x`side` torus under the given router scheduler, ready for
/// [`convergecast_wave`].
pub fn convergecast_net(side: usize, scheduler: RouterScheduler) -> Network {
    Network::new(
        NocConfig::new(GridShape::new(side, side), Topology::Torus)
            .with_router_scheduler(scheduler),
    )
}

/// One dense convergecast wave: every tile sends sixteen 4-flit messages
/// at two hotspot tiles (opposite quadrant corners) — the vertex-owner
/// convergecast shape Dalorex traffic actually takes, at saturation.  The
/// hotspots' ejection links serialize the drain, so for most of the wave
/// almost every router is *active* (it still holds queued flits) but
/// *blocked* on a busy downstream link — not due until the link frees.
/// That is the regime where the full calendar walk
/// ([`RouterScheduler::CalendarScan`]: visit every active router every
/// cycle, stamp-compare each) pays O(active) per cycle while the due-only
/// walk ([`RouterScheduler::Calendar`]) pays O(due): the handful of
/// routers on the drain frontier.  Measured on the dense 128x128 wave the
/// full walk touches ~29x the routers the due-only walk does (and ~58x on
/// 256x256), with bit-identical schedules and statistics.
///
/// Returns the modelled cycle count of the drain, which is identical for
/// both schedulers by construction (asserted by the callers).
pub fn convergecast_wave(net: &mut Network, side: usize) -> u64 {
    let n = side * side;
    let half = side / 2;
    let hotspots = [0, half * side + half];
    for src in 0..n {
        for k in 1..17usize {
            let dst = hotspots[(src + k) % 2];
            if dst != src {
                let _ = net.try_inject(src, Message::new(dst, k % 4, vec![src as u32; 4]));
            }
        }
    }
    // The hotspot endpoints drain one message per cycle (the tile-simulator
    // consumption pattern); without the per-cycle pops their 16-flit
    // ejection buffers fill and backpressure parks the whole wave forever.
    let mut cycles = 0u64;
    while net.in_flight() > 0 {
        net.cycle();
        for &tile in &hotspots {
            net.pop_delivered(tile);
        }
        cycles += 1;
        assert!(cycles < 100 * n as u64 + 100_000, "wave failed to drain");
    }
    for tile in 0..n {
        while net.pop_delivered(tile).is_some() {}
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The wave drains to empty under both schedulers with the identical
    /// modelled cycle count and statistics (walk counters excepted — the
    /// `NocStats` equality deliberately ignores those).
    #[test]
    fn convergecast_wave_is_scheduler_invariant() {
        let side = 8;
        let mut due_only = convergecast_net(side, RouterScheduler::Calendar);
        let mut full_walk = convergecast_net(side, RouterScheduler::CalendarScan);
        let due_cycles = convergecast_wave(&mut due_only, side);
        let full_cycles = convergecast_wave(&mut full_walk, side);
        assert_eq!(due_cycles, full_cycles);
        assert_eq!(due_only.stats(), full_walk.stats());
        assert_eq!(due_only.in_flight(), 0);
        // The full walk must have visited strictly more routers than the
        // due-only walk even on this small smoke grid — that delta is the
        // entire point of the due-only scheduler.
        assert!(
            full_walk.stats().walk_routers_visited > due_only.stats().walk_routers_visited,
            "full walk visited {} routers, due-only {}",
            full_walk.stats().walk_routers_visited,
            due_only.stats().walk_routers_visited,
        );
        assert_eq!(
            due_only.stats().walk_routers_scanned,
            full_walk.stats().walk_routers_scanned,
        );
    }
}
