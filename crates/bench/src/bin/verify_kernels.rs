//! Static verification of every shipped kernel: runs the `dalorex-verify`
//! pass pipeline ([`dalorex_sim::verify`]) over each workload's task graph
//! and prints the diagnostic table — no simulation, no dataset, no cycles.
//!
//! Usage:
//! ```text
//! cargo run -p dalorex-bench --bin verify_kernels -- [--csv] [--verify <off|warn|deny>]
//! ```
//!
//! Under `--verify deny` (what CI runs) any error-severity finding on any
//! shipped kernel exits 1 after the full table has printed, so one broken
//! kernel does not hide another's findings.  `--verify off` restricts the
//! table to structural findings, mirroring what a run under that mode
//! would enforce.  Every diagnostic is also listed, one per line, under
//! the summary table.

use dalorex_baseline::Workload;
use dalorex_bench::cli::FigureCli;
use dalorex_bench::report::Table;
use dalorex_sim::verify::{verify_kernel, VerifyContext, VerifyMode};

fn main() {
    let cli = FigureCli::parse();
    let ctx = VerifyContext::paper_default();

    let mut table = Table::new(vec![
        "kernel",
        "tasks",
        "channels",
        "errors",
        "warnings",
        "suppressed",
        "codes",
    ]);
    let mut failed = false;
    let mut details: Vec<String> = Vec::new();

    for workload in Workload::full_set() {
        let kernel = workload.kernel();
        let mut report = verify_kernel(kernel.as_ref(), &ctx);
        if cli.verify == VerifyMode::Off {
            report.diagnostics.retain(|d| d.structural);
        }
        let errors = report.errors().count();
        let warnings = report.warnings().count();
        if errors > 0 {
            failed = true;
        }
        let mut codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        codes.dedup();
        table.push_row(vec![
            workload.name().to_string(),
            kernel.tasks().len().to_string(),
            kernel.channels().len().to_string(),
            errors.to_string(),
            warnings.to_string(),
            report.suppressed.to_string(),
            if codes.is_empty() {
                "clean".to_string()
            } else {
                codes.join(" ")
            },
        ]);
        for diag in &report.diagnostics {
            details.push(format!("{}: {diag}", report.kernel));
        }
    }

    table.print("Static verification of shipped kernels", cli.csv);
    for line in &details {
        println!("{line}");
    }

    if failed && cli.verify == VerifyMode::Deny {
        eprintln!("verify_kernels: error-severity findings under --verify deny");
        std::process::exit(1);
    }
}
