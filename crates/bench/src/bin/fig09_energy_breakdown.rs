//! Figure 9: breakdown of the energy consumed by the computing logic, the
//! SRAM cells and the network, as a percentage of the total, for all five
//! applications across four datasets.
//!
//! Usage:
//! ```text
//! cargo run -p dalorex-bench --release --bin fig09_energy_breakdown -- \
//!     [--csv] [--json <path>] [--max-side <n>] [--drains <a,b,...>] [--engine <name>]
//! ```
//!
//! `--max-side` overrides `DALOREX_MAX_SIDE` for the RMAT-26 grid (the
//! other datasets run at a quarter of it, floored at 4, like `fig08_noc`).
//!
//! Like `fig08_noc`, the runs default to an endpoint budget of **2**
//! drains/injections per tile per cycle so the breakdown reflects the
//! fabric-bound regime the rest of the suite measures; pass `--drains 1`
//! for the paper's single-port endpoint (an endpoint-bound run idles the
//! PUs and shifts the breakdown toward static SRAM energy).  The budget of
//! every row is emitted in the table and in the `--json` measurements.

use dalorex_baseline::Workload;
use dalorex_bench::cli::{FigureCli, FABRIC_BOUND_DRAINS};
use dalorex_bench::datasets;
use dalorex_bench::report::{Measurement, MemoryColumns, Table, WalkColumns};
use dalorex_bench::runner::{run_dalorex, RunOptions};
use dalorex_graph::datasets::DatasetLabel;

fn main() {
    let cli = FigureCli::parse();
    let labels = [
        DatasetLabel::Wikipedia,
        DatasetLabel::LiveJournal,
        DatasetLabel::Rmat(22),
        DatasetLabel::Rmat(26),
    ];
    let max_side = cli.max_side.unwrap_or_else(datasets::max_grid_side);
    let drains_sweep = cli.drains_or(&[FABRIC_BOUND_DRAINS]);

    let mut table = Table::new(vec![
        "app",
        "dataset",
        "tiles",
        "drains",
        "logic-%",
        "memory-%",
        "network-%",
        "total-J",
    ]);
    let mut measurements = Vec::new();

    for workload in Workload::full_set() {
        for label in labels {
            let side = if matches!(label, DatasetLabel::Rmat(26)) {
                max_side
            } else {
                (max_side / 4).max(4)
            };
            let graph = datasets::build(label);
            let scratchpad = datasets::fitting_scratchpad_bytes(&graph, side * side);
            for &drains in &drains_sweep {
                let options = RunOptions::new(side, scratchpad)
                    .with_endpoint_drains(drains)
                    .with_engine(cli.engine)
                    .with_faults(cli.faults.clone())
                    .with_verify(cli.verify);
                let outcome = match run_dalorex(&graph, workload, options) {
                    Ok(outcome) => outcome,
                    Err(err) => {
                        eprintln!(
                            "skipping {} / {} / {drains} drains: {err}",
                            workload.name(),
                            label.as_str()
                        );
                        continue;
                    }
                };
                let (logic, memory, network) = outcome.energy.shares_percent();
                table.push_row(vec![
                    workload.name().to_string(),
                    label.as_str(),
                    (side * side).to_string(),
                    drains.to_string(),
                    format!("{logic:.1}"),
                    format!("{memory:.1}"),
                    format!("{network:.1}"),
                    format!("{:.3e}", outcome.total_energy_j()),
                ]);
                measurements.push(Measurement {
                    experiment: "fig9".to_string(),
                    workload: workload.name().to_string(),
                    dataset: label.as_str(),
                    configuration: format!("{} tiles", side * side),
                    cycles: outcome.cycles,
                    energy_j: outcome.total_energy_j(),
                    value: network,
                    endpoint_drains: drains,
                    rejected_injections: outcome.stats.noc.total_injection_rejections(),
                    memory: Some(MemoryColumns::from_report(&outcome.memory)),
                    peak_rss_bytes: None,
                    walk: Some(WalkColumns::from_stats(&outcome.stats.noc)),
                });
            }
        }
    }

    table.print(
        "Figure 9: energy breakdown (logic / memory / network), % of total (endpoint budget per row in the drains column)",
        cli.csv,
    );
    cli.write_json_if_requested(&measurements);
    cli.report_wall_clock();
}
