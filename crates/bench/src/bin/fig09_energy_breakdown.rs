//! Figure 9: breakdown of the energy consumed by the computing logic, the
//! SRAM cells and the network, as a percentage of the total, for all five
//! applications across four datasets.
//!
//! Usage:
//! ```text
//! cargo run -p dalorex-bench --release --bin fig09_energy_breakdown [-- --csv]
//! ```

use dalorex_baseline::Workload;
use dalorex_bench::datasets;
use dalorex_bench::report::Table;
use dalorex_bench::runner::{run_dalorex, RunOptions};
use dalorex_graph::datasets::DatasetLabel;

fn main() {
    let labels = [
        DatasetLabel::Wikipedia,
        DatasetLabel::LiveJournal,
        DatasetLabel::Rmat(22),
        DatasetLabel::Rmat(26),
    ];
    let max_side = datasets::max_grid_side();

    let mut table = Table::new(vec![
        "app",
        "dataset",
        "tiles",
        "logic-%",
        "memory-%",
        "network-%",
        "total-J",
    ]);

    for workload in Workload::full_set() {
        for label in labels {
            let side = if matches!(label, DatasetLabel::Rmat(26)) {
                max_side
            } else {
                (max_side / 4).max(4)
            };
            let graph = datasets::build(label);
            let scratchpad = datasets::fitting_scratchpad_bytes(&graph, side * side);
            let outcome = match run_dalorex(&graph, workload, RunOptions::new(side, scratchpad)) {
                Ok(outcome) => outcome,
                Err(err) => {
                    eprintln!("skipping {} / {}: {err}", workload.name(), label.as_str());
                    continue;
                }
            };
            let (logic, memory, network) = outcome.energy.shares_percent();
            table.push_row(vec![
                workload.name().to_string(),
                label.as_str(),
                (side * side).to_string(),
                format!("{logic:.1}"),
                format!("{memory:.1}"),
                format!("{network:.1}"),
                format!("{:.3e}", outcome.total_energy_j()),
            ]);
        }
    }

    table.print("Figure 9: energy breakdown (logic / memory / network), % of total");
}
