//! Section V-A area and power-density claims:
//!
//! * a 16x16 Dalorex with 4.2 MB per tile occupies roughly 305 mm², an
//!   order of magnitude less silicon than the ~3616 mm² of 16 HMC cubes;
//! * power density stays below 300 mW/mm², far under the ~1.5 W/mm²
//!   air-cooling limit;
//! * the torus NoC costs ~0.2% extra area over the mesh and the ruche-torus
//!   ~1.2% more (Section V-C), on 4 MB tiles.
//!
//! Usage:
//! ```text
//! cargo run -p dalorex-bench --release --bin area_report [-- --csv]
//! ```

use dalorex_bench::cli::FigureCli;
use dalorex_bench::report::Table;
use dalorex_noc::Topology;
use dalorex_sim::area::{AreaConstants, AreaModel};

fn main() {
    let cli = FigureCli::parse();
    let tile_bytes = (4.2 * 1024.0 * 1024.0) as usize;
    let mut table = Table::new(vec![
        "configuration",
        "tiles",
        "MB/tile",
        "chip-mm2",
        "NoC-area-%",
        "power-density mW/mm2 @50W",
    ]);

    for (label, tiles, topology) in [
        ("Dalorex 16x16 (paper)", 256, Topology::Torus),
        ("Dalorex 16x16 mesh", 256, Topology::Mesh),
        (
            "Dalorex 64x64 ruche-torus",
            4096,
            Topology::TorusRuche { factor: 4 },
        ),
    ] {
        let model = AreaModel::new(AreaConstants::paper_7nm(), tiles, tile_bytes, topology);
        table.push_row(vec![
            label.to_string(),
            tiles.to_string(),
            "4.2".to_string(),
            format!("{:.0}", model.chip_mm2()),
            format!("{:.2}", model.noc_area_percent()),
            format!("{:.0}", model.power_density_mw_per_mm2(50.0)),
        ]);
    }

    table.print(
        "Section V-A area and power density (paper: ~305 mm2, < 300 mW/mm2; Tesseract aggregate ~3616 mm2)",
        cli.csv,
    );
}
