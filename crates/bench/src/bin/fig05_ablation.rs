//! Figure 5 + Section V-A: performance and energy improvement over
//! Tesseract for the eight-configuration ablation ladder, across four
//! applications (BFS, WCC, PageRank, SSSP) and four datasets (AZ, WK, LJ,
//! R22), all at an equal processor count.
//!
//! Usage:
//! ```text
//! cargo run -p dalorex-bench --release --bin fig05_ablation -- \
//!     [--csv] [--json <path>] [--geomean] [--engine <name>]
//! ```
//!
//! The paper's headline numbers derived from this figure are the compounded
//! geomean factors of Section V-A (performance: 6.2x, 4.7x, 2.6x, 1.7x,
//! 1.8x -> 221x; energy -> 325x); pass `--geomean` (default on) to print
//! the reproduction's factors next to the paper's.

use dalorex_baseline::ablation::{geomean, run_rung_with_engine, AblationOutcome, AblationRung};
use dalorex_baseline::Workload;
use dalorex_bench::cli::FigureCli;
use dalorex_bench::datasets;
use dalorex_bench::report::{format_factor, Measurement, MemoryColumns, Table};
use dalorex_graph::datasets::DatasetLabel;
use std::collections::BTreeMap;

fn grid_side() -> usize {
    // The paper uses 16x16 = 256 cores to match Tesseract; reduced-scale
    // runs default to 8x8 so the whole matrix stays fast on one machine.
    std::env::var("DALOREX_FIG5_SIDE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| if datasets::scale_shift() <= 4 { 16 } else { 8 })
}

fn main() {
    let cli = FigureCli::parse();
    let side = grid_side();
    let workloads = Workload::figure5_set();
    let labels = DatasetLabel::figure5_set();

    let mut perf = Table::new(vec!["app", "dataset", "config", "cycles", "perf-improvement"]);
    let mut energy = Table::new(vec!["app", "dataset", "config", "energy-J", "energy-improvement"]);
    // (rung -> improvements over the previous rung), for the geomean ladder.
    let mut step_speedups: BTreeMap<AblationRung, Vec<f64>> = BTreeMap::new();
    let mut step_energy: BTreeMap<AblationRung, Vec<f64>> = BTreeMap::new();
    let mut full_speedups = Vec::new();
    let mut full_energy_gains = Vec::new();
    let mut measurements = Vec::new();

    for workload in workloads {
        for label in labels {
            let graph = datasets::build(label);
            let scratchpad = datasets::fitting_scratchpad_bytes(&graph, side * side);
            let mut baseline: Option<AblationOutcome> = None;
            let mut previous: Option<AblationOutcome> = None;
            for rung in AblationRung::ALL {
                let outcome = match run_rung_with_engine(
                    rung, &graph, workload, side, scratchpad, cli.engine,
                ) {
                    Ok(outcome) => outcome,
                    Err(err) => {
                        eprintln!(
                            "skipping {} / {} / {}: {err}",
                            workload.name(),
                            label.as_str(),
                            rung.label()
                        );
                        continue;
                    }
                };
                let tesseract = *baseline.get_or_insert(outcome);
                let speedup = outcome.speedup_over(&tesseract);
                let energy_gain = outcome.energy_gain_over(&tesseract);
                perf.push_row(vec![
                    workload.name().to_string(),
                    label.as_str(),
                    rung.label().to_string(),
                    outcome.cycles.to_string(),
                    format!("{speedup:.2}"),
                ]);
                energy.push_row(vec![
                    workload.name().to_string(),
                    label.as_str(),
                    rung.label().to_string(),
                    format!("{:.3e}", outcome.energy_j),
                    format!("{energy_gain:.2}"),
                ]);
                measurements.push(Measurement {
                    experiment: "fig5".to_string(),
                    workload: workload.name().to_string(),
                    dataset: label.as_str(),
                    configuration: rung.label().to_string(),
                    cycles: outcome.cycles,
                    energy_j: outcome.energy_j,
                    value: speedup,
                    endpoint_drains: if rung == AblationRung::WideEndpoint { 2 } else { 1 },
                    rejected_injections: 0,
                    // The analytical Tesseract rungs carry no memory model,
                    // so their rows omit the memory object entirely.
                    memory: outcome.memory.map(|r| MemoryColumns::from_report(&r)),
                    peak_rss_bytes: None,
                    // The ablation outcome aggregates to cycles + energy
                    // (the Tesseract rungs are analytical), so no walk
                    // counters here.
                    walk: None,
                });
                if let Some(prev) = previous {
                    step_speedups
                        .entry(rung)
                        .or_default()
                        .push(prev.cycles as f64 / outcome.cycles.max(1) as f64);
                    step_energy
                        .entry(rung)
                        .or_default()
                        .push(prev.energy_j / outcome.energy_j.max(f64::MIN_POSITIVE));
                }
                if rung == AblationRung::Dalorex {
                    full_speedups.push(speedup);
                    full_energy_gains.push(energy_gain);
                }
                previous = Some(outcome);
            }
        }
    }

    perf.print(
        &format!("Figure 5 (top): performance improvement over Tesseract, {side}x{side} tiles"),
        cli.csv,
    );
    energy.print(
        &format!("Figure 5 (bottom): energy improvement over Tesseract, {side}x{side} tiles"),
        cli.csv,
    );

    // Section V-A compound factors.
    let mut ladder = Table::new(vec!["step", "paper (perf)", "measured (perf)", "paper (energy)", "measured (energy)"]);
    let paper_perf: &[(&str, &str)] = &[
        ("Data-Local", "6.2x"),
        ("Basic-TSU", "4.7x"),
        ("Uniform-Distr", "2.6x"),
        ("Traffic-Aware", "1.7x"),
        ("Torus-NoC + barrierless", "1.8x"),
    ];
    let steps = [
        AblationRung::DataLocal,
        AblationRung::BasicTsu,
        AblationRung::UniformDistr,
        AblationRung::TrafficAware,
        AblationRung::TorusNoc,
    ];
    for (i, step) in steps.iter().enumerate() {
        let mut perf_ratio = geomean(step_speedups.get(step).map(Vec::as_slice).unwrap_or(&[]));
        let mut energy_ratio = geomean(step_energy.get(step).map(Vec::as_slice).unwrap_or(&[]));
        // The paper folds the Torus-NoC and barrier-removal steps into one
        // reported 1.8x factor; combine them the same way.
        if *step == AblationRung::TorusNoc {
            perf_ratio *= geomean(
                step_speedups
                    .get(&AblationRung::Dalorex)
                    .map(Vec::as_slice)
                    .unwrap_or(&[1.0]),
            );
            energy_ratio *= geomean(
                step_energy
                    .get(&AblationRung::Dalorex)
                    .map(Vec::as_slice)
                    .unwrap_or(&[1.0]),
            );
        }
        ladder.push_row(vec![
            paper_perf[i].0.to_string(),
            paper_perf[i].1.to_string(),
            format_factor(perf_ratio),
            "-".to_string(),
            format_factor(energy_ratio),
        ]);
    }
    ladder.push_row(vec![
        "TOTAL (Dalorex vs Tesseract)".to_string(),
        "221x".to_string(),
        format_factor(geomean(&full_speedups)),
        "325x".to_string(),
        format_factor(geomean(&full_energy_gains)),
    ]);
    // The beyond-paper Wide-Endpoint rung: how much of full Dalorex's
    // remaining runtime is endpoint serialization (2 drains/injections per
    // tile per cycle instead of the paper's single local router port).
    ladder.push_row(vec![
        "Wide-Endpoint (beyond paper)".to_string(),
        "-".to_string(),
        format_factor(geomean(
            step_speedups
                .get(&AblationRung::WideEndpoint)
                .map(Vec::as_slice)
                .unwrap_or(&[]),
        )),
        "-".to_string(),
        format_factor(geomean(
            step_energy
                .get(&AblationRung::WideEndpoint)
                .map(Vec::as_slice)
                .unwrap_or(&[]),
        )),
    ]);
    ladder.print(
        "Section V-A: compounded geomean improvement factors (plus the beyond-paper wide-endpoint step)",
        cli.csv,
    );
    cli.write_json_if_requested(&measurements);
    cli.report_wall_clock();
}
