//! Figure 11 (reproduction extension): graceful degradation under
//! deterministic fault injection — runtime slowdown as a function of fault
//! count and outage duration.
//!
//! Usage:
//! ```text
//! cargo run -p dalorex-bench --release --bin fig11_resilience -- \
//!     [--csv] [--json <path>] [--max-side <n>] [--engine <name>] [--faults <plan>]
//! ```
//!
//! The sweep runs SSSP on a fixed grid (`--max-side` sets the side,
//! default 8) and layers deterministic fault plans on top of the baseline:
//! for every (fault count × outage duration) cell it opens `count` windows
//! of `duration` cycles — alternating whole-router link outages and router
//! stalls, spread over distinct tiles with staggered onsets — and reports
//! the slowdown against the fault-free run, the throughput loss, and the
//! cycles of delay the fabric attributed to the injected windows.
//!
//! `--faults` composes: a user-supplied plan becomes the *baseline* (and
//! is included in every sweep cell), so the figure then measures the
//! marginal impact of the swept windows on an already-faulted machine.
//! All five engines apply a plan bit-identically, so `--engine` changes
//! wall-clock only, never the table.

use dalorex_baseline::Workload;
use dalorex_bench::cli::FigureCli;
use dalorex_bench::datasets;
use dalorex_bench::report::{format_factor, Measurement, Table, WalkColumns};
use dalorex_bench::runner::{run_dalorex, RunOptions};
use dalorex_graph::datasets::DatasetLabel;
use dalorex_sim::{FaultEvent, FaultPlan, FaultReport};

/// Outage/stall window lengths swept, in cycles.
const DURATIONS: [u64; 3] = [100, 400, 1600];

/// Concurrent fault counts swept.
const COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Builds the plan of one sweep cell: the user's base plan plus `count`
/// windows of `duration` cycles, alternating whole-router link outages and
/// router stalls, spread over distinct tiles with staggered onsets (so the
/// windows overlap the early wavefront without all opening at once).
fn sweep_plan(base: &FaultPlan, num_tiles: usize, count: usize, duration: u64) -> FaultPlan {
    let mut plan = base.clone();
    for k in 0..count {
        let tile = (k * num_tiles / count) % num_tiles;
        let start = 100 + 37 * k as u64;
        let end = start + duration;
        plan.events.push(if k % 2 == 0 {
            FaultEvent::LinkOutage {
                tile,
                port: None,
                start,
                end,
            }
        } else {
            FaultEvent::RouterStall { tile, start, end }
        });
    }
    plan
}

fn main() {
    let cli = FigureCli::parse();
    let side = cli.max_side.unwrap_or(8).clamp(2, 64);
    let tiles = side * side;
    let label = DatasetLabel::Rmat(20);
    let graph = datasets::build(label);
    let scratchpad = datasets::fitting_scratchpad_bytes(&graph, tiles);
    let workload = Workload::Sssp { root: 0 };
    let options = |plan: FaultPlan| {
        RunOptions::new(side, scratchpad)
            .with_engine(cli.engine)
            .with_faults(plan)
            .with_verify(cli.verify)
    };

    let baseline = match run_dalorex(&graph, workload, options(cli.faults.clone())) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("baseline run failed on {tiles} tiles: {err}");
            std::process::exit(1);
        }
    };

    let mut table = Table::new(vec![
        "faults",
        "duration",
        "cycles",
        "slowdown",
        "throughput-loss",
        "delayed-cycles",
    ]);
    let mut measurements = vec![Measurement {
        experiment: "fig11".to_string(),
        workload: workload.name().to_string(),
        dataset: label.as_str(),
        configuration: "baseline".to_string(),
        cycles: baseline.cycles,
        energy_j: baseline.total_energy_j(),
        value: 1.0,
        endpoint_drains: 1,
        rejected_injections: baseline.stats.noc.total_injection_rejections(),
        memory: None,
        peak_rss_bytes: None,
        walk: Some(WalkColumns::from_stats(&baseline.stats.noc)),
    }];

    for &duration in &DURATIONS {
        for &count in &COUNTS {
            let plan = sweep_plan(&cli.faults, tiles, count, duration);
            let outcome = match run_dalorex(&graph, workload, options(plan)) {
                Ok(outcome) => outcome,
                Err(err) => {
                    eprintln!("skipping {count} faults x {duration} cycles: {err}");
                    continue;
                }
            };
            let slowdown = outcome.cycles as f64 / baseline.cycles.max(1) as f64;
            let loss = FaultReport::throughput_loss(baseline.cycles, outcome.cycles);
            table.push_row(vec![
                count.to_string(),
                duration.to_string(),
                outcome.cycles.to_string(),
                format_factor(slowdown),
                format!("{:.1}%", loss * 100.0),
                outcome.fault.total_delayed_cycles().to_string(),
            ]);
            measurements.push(Measurement {
                experiment: "fig11".to_string(),
                workload: workload.name().to_string(),
                dataset: label.as_str(),
                configuration: format!("{count} faults x {duration} cycles"),
                cycles: outcome.cycles,
                energy_j: outcome.total_energy_j(),
                value: slowdown,
                endpoint_drains: 1,
                rejected_injections: outcome.stats.noc.total_injection_rejections(),
                memory: None,
                peak_rss_bytes: None,
                walk: Some(WalkColumns::from_stats(&outcome.stats.noc)),
            });
        }
    }

    table.print(
        &format!(
            "Figure 11: SSSP resilience on {tiles} tiles ({} — baseline {} cycles)",
            label.as_str(),
            baseline.cycles
        ),
        cli.csv,
    );
    cli.write_json_if_requested(&measurements);
    cli.report_wall_clock();
}
