//! Figure 8: performance improvement of the 2D torus and the torus with
//! ruche channels over the 2D mesh, for all five applications on the
//! Wikipedia, LiveJournal, RMAT-22 and RMAT-26 datasets.
//!
//! Usage:
//! ```text
//! cargo run -p dalorex-bench --release --bin fig08_noc -- \
//!     [--csv] [--json <path>] [--max-side <n>] [--drains <a,b,...>] [--engine <name>]
//! ```
//!
//! `--max-side` overrides `DALOREX_MAX_SIDE` for the RMAT-26 grid (the
//! other datasets run at a quarter of it, floored at 4, as in the paper).
//!
//! Topology only differentiates once the fabric, not the endpoint, is the
//! bottleneck — at one message per tile per cycle the single local router
//! port serializes everything and the three topologies converge (the
//! ROADMAP's "endpoint-bound on small grids" observation).  This figure
//! therefore defaults to an endpoint budget of **2** drains/injections per
//! tile per cycle, the smallest value at which the dense runs go
//! fabric-bound; `--drains` overrides (pass `--drains 1` for the paper's
//! single-port endpoint).  The drain budget of every row is emitted in the
//! table and in the `--json` measurements, like fig06/fig07.

use dalorex_baseline::Workload;
use dalorex_bench::cli::{FigureCli, FABRIC_BOUND_DRAINS};
use dalorex_bench::datasets;
use dalorex_bench::report::{Measurement, MemoryColumns, Table, WalkColumns};
use dalorex_bench::runner::{run_dalorex, RunOptions};
use dalorex_graph::datasets::DatasetLabel;
use dalorex_noc::Topology;

fn main() {
    let cli = FigureCli::parse();
    let labels = [
        DatasetLabel::Wikipedia,
        DatasetLabel::LiveJournal,
        DatasetLabel::Rmat(22),
        DatasetLabel::Rmat(26),
    ];
    let topologies = [
        Topology::Mesh,
        Topology::Torus,
        Topology::TorusRuche { factor: 4 },
    ];
    let max_side = cli.max_side.unwrap_or_else(datasets::max_grid_side);
    let drains_sweep = cli.drains_or(&[FABRIC_BOUND_DRAINS]);

    let mut table = Table::new(vec![
        "app",
        "dataset",
        "tiles",
        "drains",
        "topology",
        "cycles",
        "speedup-vs-mesh",
    ]);
    let mut measurements = Vec::new();

    for workload in Workload::full_set() {
        for label in labels {
            // The paper runs RMAT-26 on 64x64 tiles and the rest on 16x16;
            // scale both down proportionally to the configured cap.
            let side = if matches!(label, DatasetLabel::Rmat(26)) {
                max_side
            } else {
                (max_side / 4).max(4)
            };
            let graph = datasets::build(label);
            let scratchpad = datasets::fitting_scratchpad_bytes(&graph, side * side);
            for &drains in &drains_sweep {
                let mut mesh_cycles: Option<u64> = None;
                for topology in topologies {
                    let options = RunOptions::new(side, scratchpad)
                        .with_topology(topology)
                        .with_endpoint_drains(drains)
                        .with_engine(cli.engine)
                    .with_faults(cli.faults.clone())
                    .with_verify(cli.verify);
                    let outcome = match run_dalorex(&graph, workload, options) {
                        Ok(outcome) => outcome,
                        Err(err) => {
                            eprintln!(
                                "skipping {} / {} / {} / {drains} drains: {err}",
                                workload.name(),
                                label.as_str(),
                                topology.name()
                            );
                            continue;
                        }
                    };
                    let mesh = *mesh_cycles.get_or_insert(outcome.cycles);
                    let speedup = mesh as f64 / outcome.cycles.max(1) as f64;
                    table.push_row(vec![
                        workload.name().to_string(),
                        label.as_str(),
                        (side * side).to_string(),
                        drains.to_string(),
                        topology.name().to_string(),
                        outcome.cycles.to_string(),
                        format!("{speedup:.2}"),
                    ]);
                    measurements.push(Measurement {
                        experiment: "fig8".to_string(),
                        workload: workload.name().to_string(),
                        dataset: label.as_str(),
                        configuration: format!("{} tiles, {}", side * side, topology.name()),
                        cycles: outcome.cycles,
                        energy_j: outcome.total_energy_j(),
                        value: speedup,
                        endpoint_drains: drains,
                        rejected_injections: outcome.stats.noc.total_injection_rejections(),
                        memory: Some(MemoryColumns::from_report(&outcome.memory)),
                        peak_rss_bytes: None,
                        walk: Some(WalkColumns::from_stats(&outcome.stats.noc)),
                    });
                }
            }
        }
    }

    table.print(
        "Figure 8: Torus and Torus-Ruche performance improvement over Mesh (fabric-bound endpoint budget)",
        cli.csv,
    );
    cli.write_json_if_requested(&measurements);
    cli.report_wall_clock();
}
