//! Figure 8: performance improvement of the 2D torus and the torus with
//! ruche channels over the 2D mesh, for all five applications on the
//! Wikipedia, LiveJournal, RMAT-22 and RMAT-26 datasets.
//!
//! Usage:
//! ```text
//! cargo run -p dalorex-bench --release --bin fig08_noc [-- --csv]
//! ```

use dalorex_baseline::Workload;
use dalorex_bench::datasets;
use dalorex_bench::report::Table;
use dalorex_bench::runner::{run_dalorex, RunOptions};
use dalorex_graph::datasets::DatasetLabel;
use dalorex_noc::Topology;

fn main() {
    let labels = [
        DatasetLabel::Wikipedia,
        DatasetLabel::LiveJournal,
        DatasetLabel::Rmat(22),
        DatasetLabel::Rmat(26),
    ];
    let topologies = [
        Topology::Mesh,
        Topology::Torus,
        Topology::TorusRuche { factor: 4 },
    ];
    let max_side = datasets::max_grid_side();

    let mut table = Table::new(vec![
        "app",
        "dataset",
        "tiles",
        "topology",
        "cycles",
        "speedup-vs-mesh",
    ]);

    for workload in Workload::full_set() {
        for label in labels {
            // The paper runs RMAT-26 on 64x64 tiles and the rest on 16x16;
            // scale both down proportionally to the configured cap.
            let side = if matches!(label, DatasetLabel::Rmat(26)) {
                max_side
            } else {
                (max_side / 4).max(4)
            };
            let graph = datasets::build(label);
            let scratchpad = datasets::fitting_scratchpad_bytes(&graph, side * side);
            let mut mesh_cycles: Option<u64> = None;
            for topology in topologies {
                let outcome = match run_dalorex(
                    &graph,
                    workload,
                    RunOptions::new(side, scratchpad).with_topology(topology),
                ) {
                    Ok(outcome) => outcome,
                    Err(err) => {
                        eprintln!(
                            "skipping {} / {} / {}: {err}",
                            workload.name(),
                            label.as_str(),
                            topology.name()
                        );
                        continue;
                    }
                };
                let mesh = *mesh_cycles.get_or_insert(outcome.cycles);
                table.push_row(vec![
                    workload.name().to_string(),
                    label.as_str(),
                    (side * side).to_string(),
                    topology.name().to_string(),
                    outcome.cycles.to_string(),
                    format!("{:.2}", mesh as f64 / outcome.cycles.max(1) as f64),
                ]);
            }
        }
    }

    table.print("Figure 8: Torus and Torus-Ruche performance improvement over Mesh");
}
