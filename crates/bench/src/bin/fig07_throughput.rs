//! Figure 7: throughput (edges/s and operations/s) and average memory
//! bandwidth while strong-scaling the largest RMAT dataset across grid
//! sizes, for all five applications.
//!
//! Usage:
//! ```text
//! cargo run -p dalorex-bench --release --bin fig07_throughput [-- --csv] [-- --json <path>]
//! ```

use dalorex_baseline::Workload;
use dalorex_bench::datasets;
use dalorex_bench::report::{write_json_if_requested, Measurement, Table};
use dalorex_bench::runner::{run_dalorex, scaling_sides, RunOptions};
use dalorex_graph::datasets::DatasetLabel;
use dalorex_sim::energy::EnergyConstants;

fn main() {
    let max_side = datasets::max_grid_side();
    // The paper scales RMAT-26; the catalog reduces it while keeping it the
    // largest dataset of the suite.
    let label = DatasetLabel::Rmat(26);
    let graph = datasets::build(label);
    let clock = EnergyConstants::paper_7nm().clock_hz;

    let mut table = Table::new(vec![
        "app",
        "tiles",
        "edges/s",
        "operations/s",
        "avg-memory-BW (B/s)",
        "peak-memory-BW (B/s)",
    ]);
    let mut measurements = Vec::new();

    for workload in Workload::full_set() {
        // Start the sweep at 16 tiles as the paper starts at 256; small
        // grids make the reduced dataset trivially fast.
        for side in scaling_sides(max_side).into_iter().filter(|&s| s >= 4) {
            let tiles = side * side;
            let scratchpad = datasets::fitting_scratchpad_bytes(&graph, tiles);
            let outcome = match run_dalorex(&graph, workload, RunOptions::new(side, scratchpad)) {
                Ok(outcome) => outcome,
                Err(err) => {
                    eprintln!("skipping {} on {tiles} tiles: {err}", workload.name());
                    continue;
                }
            };
            let peak = tiles as f64 * 8.0 * clock;
            table.push_row(vec![
                workload.name().to_string(),
                tiles.to_string(),
                format!("{:.3e}", outcome.stats.edges_per_second(clock)),
                format!("{:.3e}", outcome.stats.operations_per_second(clock)),
                format!("{:.3e}", outcome.memory_bandwidth_bytes_per_s),
                format!("{peak:.3e}"),
            ]);
            measurements.push(Measurement {
                experiment: "fig7".to_string(),
                workload: workload.name().to_string(),
                dataset: label.as_str(),
                configuration: format!("{tiles} tiles"),
                cycles: outcome.cycles,
                energy_j: outcome.total_energy_j(),
                value: outcome.stats.edges_per_second(clock),
            });
        }
    }

    table.print(&format!(
        "Figure 7: throughput and memory bandwidth scaling ({} at reproduction scale)",
        label.as_str()
    ));
    write_json_if_requested(&measurements);
}
