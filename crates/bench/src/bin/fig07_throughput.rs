//! Figure 7: throughput (edges/s and operations/s) and average memory
//! bandwidth while strong-scaling the largest RMAT dataset across grid
//! sizes, for all five applications.
//!
//! Usage:
//! ```text
//! cargo run -p dalorex-bench --release --bin fig07_throughput -- \
//!     [--csv] [--json <path>] [--max-side <n>] [--drains <a,b,...>] [--engine <name>]
//! ```
//!
//! `--max-side` overrides `DALOREX_MAX_SIDE` (set it to 32 or 64 to sweep
//! the paper's 32x32 and 64x64 grids), and `--drains` sweeps the endpoint
//! bandwidth (messages drained/injected per tile per cycle; default 1, the
//! paper's single local router port).  The drain budget and the NoC's
//! injection-rejection count are emitted into the JSON report.
//! `--engine <reference|ticked|skip|calendar>` selects the cycle engine —
//! the tables are engine-independent, so run the sweep twice with
//! different engines and compare the stderr wall-clock lines to A/B them.

use dalorex_baseline::Workload;
use dalorex_bench::cli::FigureCli;
use dalorex_bench::datasets;
use dalorex_bench::report::{Measurement, Table};
use dalorex_bench::runner::{run_dalorex, scaling_sides, RunOptions};
use dalorex_graph::datasets::DatasetLabel;
use dalorex_sim::energy::EnergyConstants;

fn main() {
    let cli = FigureCli::parse();
    let max_side = cli.max_side.unwrap_or_else(datasets::max_grid_side);
    let drains_sweep = cli.drains();
    // The paper scales RMAT-26; the catalog reduces it while keeping it the
    // largest dataset of the suite.
    let label = DatasetLabel::Rmat(26);
    let graph = datasets::build(label);
    let clock = EnergyConstants::paper_7nm().clock_hz;

    let mut table = Table::new(vec![
        "app",
        "tiles",
        "drains",
        "edges/s",
        "operations/s",
        "avg-memory-BW (B/s)",
        "peak-memory-BW (B/s)",
    ]);
    let mut measurements = Vec::new();

    for workload in Workload::full_set() {
        // Start the sweep at 16 tiles as the paper starts at 256; small
        // grids make the reduced dataset trivially fast.
        for side in scaling_sides(max_side).into_iter().filter(|&s| s >= 4) {
            for &drains in &drains_sweep {
                let tiles = side * side;
                let scratchpad = datasets::fitting_scratchpad_bytes(&graph, tiles);
                let options = RunOptions::new(side, scratchpad)
                    .with_endpoint_drains(drains)
                    .with_engine(cli.engine);
                let outcome = match run_dalorex(&graph, workload, options) {
                    Ok(outcome) => outcome,
                    Err(err) => {
                        eprintln!("skipping {} on {tiles} tiles: {err}", workload.name());
                        continue;
                    }
                };
                let peak = tiles as f64 * 8.0 * clock;
                table.push_row(vec![
                    workload.name().to_string(),
                    tiles.to_string(),
                    drains.to_string(),
                    format!("{:.3e}", outcome.stats.edges_per_second(clock)),
                    format!("{:.3e}", outcome.stats.operations_per_second(clock)),
                    format!("{:.3e}", outcome.memory_bandwidth_bytes_per_s),
                    format!("{peak:.3e}"),
                ]);
                measurements.push(Measurement {
                    experiment: "fig7".to_string(),
                    workload: workload.name().to_string(),
                    dataset: label.as_str(),
                    configuration: format!("{tiles} tiles, {drains} drains"),
                    cycles: outcome.cycles,
                    energy_j: outcome.total_energy_j(),
                    value: outcome.stats.edges_per_second(clock),
                    endpoint_drains: drains,
                    rejected_injections: outcome.stats.noc.total_injection_rejections(),
                });
            }
        }
    }

    table.print(
        &format!(
            "Figure 7: throughput and memory bandwidth scaling ({} at reproduction scale)",
            label.as_str()
        ),
        cli.csv,
    );
    cli.write_json_if_requested(&measurements);
    cli.report_wall_clock();
}
