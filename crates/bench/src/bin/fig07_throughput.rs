//! Figure 7: throughput (edges/s and operations/s) and average memory
//! bandwidth while strong-scaling the largest RMAT dataset across grid
//! sizes, for all five applications.
//!
//! Usage:
//! ```text
//! cargo run -p dalorex-bench --release --bin fig07_throughput -- \
//!     [--csv] [--json <path>] [--max-side <n>] [--drains <a,b,...>] [--engine <name>]
//! ```
//!
//! `--max-side` overrides `DALOREX_MAX_SIDE` (set it to 32 or 64 to sweep
//! the paper's 32x32 and 64x64 grids), and `--drains` sweeps the endpoint
//! bandwidth (messages drained/injected per tile per cycle; default 1, the
//! paper's single local router port).  The drain budget and the NoC's
//! injection-rejection count are emitted into the JSON report.
//! `--engine <reference|ticked|skip|calendar>` selects the cycle engine —
//! the tables are engine-independent, so run the sweep twice with
//! different engines and compare the stderr wall-clock lines to A/B them.
//!
//! `--max-side 32` additionally unlocks the *paper-scale rung*: SSSP over
//! a 1M-vertex (~16M-edge) scale-free graph on the full grid, with the
//! run's per-subsystem memory report printed alongside the throughput
//! tables (`--max-side 64` raises it to 4M vertices, the
//! Wikipedia/LiveJournal size class).  Lazy tile arenas are what make this
//! rung CI-feasible: only tiles that saw activity are priced.

use dalorex_baseline::Workload;
use dalorex_bench::cli::FigureCli;
use dalorex_bench::datasets;
use dalorex_bench::report::{Measurement, MemoryColumns, Table, WalkColumns};
use dalorex_bench::runner::{run_dalorex, scaling_sides, RunOptions};
use dalorex_graph::datasets::DatasetLabel;
use dalorex_graph::generators::realworld::ScaleFreeConfig;
use dalorex_sim::energy::EnergyConstants;

fn main() {
    let cli = FigureCli::parse();
    let max_side = cli.max_side.unwrap_or_else(datasets::max_grid_side);
    let drains_sweep = cli.drains();
    // The paper scales RMAT-26; the catalog reduces it while keeping it the
    // largest dataset of the suite.
    let label = DatasetLabel::Rmat(26);
    let graph = datasets::build(label);
    let clock = EnergyConstants::paper_7nm().clock_hz;

    let mut table = Table::new(vec![
        "app",
        "tiles",
        "drains",
        "edges/s",
        "operations/s",
        "avg-memory-BW (B/s)",
        "peak-memory-BW (B/s)",
    ]);
    let mut measurements = Vec::new();

    for workload in Workload::full_set() {
        // Start the sweep at 16 tiles as the paper starts at 256; small
        // grids make the reduced dataset trivially fast.
        for side in scaling_sides(max_side).into_iter().filter(|&s| s >= 4) {
            for &drains in &drains_sweep {
                let tiles = side * side;
                let scratchpad = datasets::fitting_scratchpad_bytes(&graph, tiles);
                let options = RunOptions::new(side, scratchpad)
                    .with_endpoint_drains(drains)
                    .with_engine(cli.engine)
                    .with_faults(cli.faults.clone())
                    .with_verify(cli.verify);
                let outcome = match run_dalorex(&graph, workload, options) {
                    Ok(outcome) => outcome,
                    Err(err) => {
                        eprintln!("skipping {} on {tiles} tiles: {err}", workload.name());
                        continue;
                    }
                };
                let peak = tiles as f64 * 8.0 * clock;
                table.push_row(vec![
                    workload.name().to_string(),
                    tiles.to_string(),
                    drains.to_string(),
                    format!("{:.3e}", outcome.stats.edges_per_second(clock)),
                    format!("{:.3e}", outcome.stats.operations_per_second(clock)),
                    format!("{:.3e}", outcome.memory_bandwidth_bytes_per_s),
                    format!("{peak:.3e}"),
                ]);
                measurements.push(Measurement {
                    experiment: "fig7".to_string(),
                    workload: workload.name().to_string(),
                    dataset: label.as_str(),
                    configuration: format!("{tiles} tiles, {drains} drains"),
                    cycles: outcome.cycles,
                    energy_j: outcome.total_energy_j(),
                    value: outcome.stats.edges_per_second(clock),
                    endpoint_drains: drains,
                    rejected_injections: outcome.stats.noc.total_injection_rejections(),
                    memory: Some(MemoryColumns::from_report(&outcome.memory)),
                    peak_rss_bytes: None,
                    walk: Some(WalkColumns::from_stats(&outcome.stats.noc)),
                });
            }
        }
    }

    table.print(
        &format!(
            "Figure 7: throughput and memory bandwidth scaling ({} at reproduction scale)",
            label.as_str()
        ),
        cli.csv,
    );
    paper_scale_rung(&cli, max_side, clock, &mut measurements);
    cli.write_json_if_requested(&measurements);
    cli.report_wall_clock();
}

/// The dataset size of the paper-scale rung unlocked by `--max-side`:
/// nothing below 32 (the default sweep stays CI-trivial), 1M vertices /
/// ~16M edges at 32x32 (about 1k vertices per tile, the paper's
/// parallelization knee), and 4M — the Wikipedia/LiveJournal size class —
/// at 64x64 and beyond.
fn paper_scale_vertices(max_side: usize) -> Option<usize> {
    match max_side {
        side if side >= 64 => Some(4_000_000),
        side if side >= 32 => Some(1_000_000),
        _ => None,
    }
}

/// Runs SSSP over a paper-sized scale-free graph on the largest requested
/// grid and prints the run's memory report — the end-to-end demonstration
/// that lazy tile arenas keep paper-scale datasets inside a CI machine.
/// Skipped below `--max-side 32`.
fn paper_scale_rung(
    cli: &FigureCli,
    max_side: usize,
    clock: f64,
    measurements: &mut Vec<Measurement>,
) {
    let Some(vertices) = paper_scale_vertices(max_side) else {
        return;
    };
    let graph = ScaleFreeConfig::new(vertices, 12)
        .seed(7)
        .build()
        .expect("the paper-scale configuration is valid");
    let workload = Workload::Sssp { root: 0 };
    let tiles = max_side * max_side;
    let scratchpad = datasets::fitting_scratchpad_bytes(&graph, tiles);
    let options = RunOptions::new(max_side, scratchpad)
        .with_engine(cli.engine)
        .with_faults(cli.faults.clone())
                    .with_verify(cli.verify);
    let outcome = match run_dalorex(&graph, workload, options) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("skipping the paper-scale rung on {tiles} tiles: {err}");
            return;
        }
    };
    let memory = &outcome.memory;
    let mut table = Table::new(vec!["line", "bytes"]);
    table.push_row(vec!["CSR chunks".to_string(), memory.csr_bytes.to_string()]);
    table.push_row(vec![
        format!(
            "tile arenas ({}/{} materialized)",
            memory.materialized_tiles, memory.total_tiles
        ),
        memory.tile_arena_bytes.to_string(),
    ]);
    table.push_row(vec![
        "NoC buffers".to_string(),
        memory.noc_buffer_bytes.to_string(),
    ]);
    table.push_row(vec![
        "modeled total".to_string(),
        memory.modeled_total_bytes().to_string(),
    ]);
    table.print(
        &format!(
            "Paper-scale rung: SSSP over a {vertices}-vertex / {}-edge scale-free graph \
             on {tiles} tiles ({} cycles) — memory report",
            graph.num_edges(),
            outcome.cycles
        ),
        cli.csv,
    );
    measurements.push(Measurement {
        experiment: "fig7-paper-scale".to_string(),
        workload: workload.name().to_string(),
        dataset: format!("scale-free-{vertices}"),
        configuration: format!("{tiles} tiles, 1 drains"),
        cycles: outcome.cycles,
        energy_j: outcome.total_energy_j(),
        value: outcome.stats.edges_per_second(clock),
        endpoint_drains: 1,
        rejected_injections: outcome.stats.noc.total_injection_rejections(),
        memory: Some(MemoryColumns::from_report(memory)),
        peak_rss_bytes: None,
        walk: Some(WalkColumns::from_stats(&outcome.stats.noc)),
    });
}
