//! Engine performance snapshot: wall-clock cycles/sec for every cycle
//! engine on representative workloads, emitted as the repo's
//! `BENCH_<n>.json` series so engine-throughput regressions are visible
//! in review diffs.
//!
//! Usage:
//! ```text
//! cargo run -p dalorex-bench --release --bin perf_snapshot -- \
//!     [--csv] [--json <path>] [--full]
//! ```
//!
//! Each row runs one (engine, workload) cell `REPS` times and reports the
//! best wall-clock (least-noise) repetition; `value` in the JSON is
//! modelled cycles per wall-clock second.  The modelled cycle counts are
//! engine-independent (the five-engine equivalence square pins that), so
//! cycles/sec comparisons across engines are exact throughput ratios —
//! and the binary *asserts* the equality per cell: any engine disagreeing
//! on the modelled cycle count aborts the snapshot, so a stale
//! `BENCH_<n>.json` can never paper over an equivalence break.
//!
//! Each row also carries the run's modeled memory footprint
//! (`modeled_bytes`, from the per-subsystem memory report) next to the
//! process's peak resident set (`peak_rss`, the `VmHWM` high-water mark on
//! Linux, absent elsewhere): the first is the memory the simulated machine
//! would need, the second is what the simulator itself costs — the pair
//! catches host-footprint regressions that the modeled numbers cannot see.
//!
//! Two workloads run by default: a light 32x32 SSSP (every engine,
//! including the reference oracle) and the dense 64x64 SSSP middle (the
//! event-path engines only — the reference scan takes minutes there and
//! its ratio is already covered by the light cell).  `--full` adds the
//! 128x128 dense grid from the `sim_128x128_sssp_dense` microbench pair.
//!
//! After the engine matrix comes the *calendar-walk rung*: the due-only
//! calendar walk vs the preserved pre-change full walk on the dense
//! 128x128 convergecast wave (`--full` adds 256x256) — identical cycles
//! and identical NoC statistics asserted in-binary, the wall-clock ratio
//! emitted as the `calendar-walk-speedup` row (floor 1.3x on 128x128+,
//! recorded rather than asserted).
//!
//! The snapshot ends with the *zero-fault-overhead rung*: the light cell
//! rerun under an armed-but-never-firing fault plan (windows parked far
//! beyond the run's horizon) against the empty-plan hot path.  The two
//! must model the identical cycle count — armed-idle plans are
//! schedule-invisible, asserted here where the numbers are published —
//! and the wall-clock ratio is emitted as the `fault-overhead` row
//! (target <= 1.02; a ratio above 1.25 aborts the snapshot).
//!
//! The parallel rungs' speedup depends on the host:
//! `std::thread::available_parallelism()` is printed on stderr, and on a
//! single-core machine `parallel:4` is expected to *lose* to skip (four
//! sharded tile phases run back-to-back on one core, plus the replay
//! pass) — the bit-identical schedule is the point, the speedup needs
//! cores.
use dalorex_bench::cli::FigureCli;
use dalorex_bench::report::{Measurement, MemoryColumns, Table, WalkColumns};
use dalorex_graph::generators::rmat::RmatConfig;
use dalorex_graph::CsrGraph;
use dalorex_kernels::SsspKernel;
use dalorex_sim::config::{Engine, GridConfig, SimConfigBuilder};
use dalorex_sim::{FaultPlan, Simulation};
use std::time::Instant;

/// Repetitions per cell; the fastest is reported.
const REPS: usize = 2;

/// Engines timed on every workload (event-path engines).
const EVENT_ENGINES: [Engine; 4] = [
    Engine::Skip,
    Engine::Calendar,
    Engine::Parallel { workers: 1 },
    Engine::Parallel { workers: 4 },
];

struct Cell {
    dataset: String,
    side: usize,
    graph: CsrGraph,
    engines: Vec<Engine>,
}

/// The process's peak resident-set size in bytes: `VmHWM` from
/// `/proc/self/status` on Linux, `None` where that file does not exist.
/// The high-water mark is process-wide, so across a snapshot's rows it
/// only ever grows — the last row of a dataset bounds the simulator's own
/// footprint for every engine on that dataset.
fn peak_rss_bytes() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: usize = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn main() {
    let cli = FigureCli::parse();
    let full = std::env::args().any(|a| a == "--full");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("host parallelism: {cores} (parallel-engine speedup needs >= its worker count)");

    let mut cells = vec![
        Cell {
            dataset: "RMAT-12".to_string(),
            side: 32,
            graph: RmatConfig::new(12, 8).seed(11).build().unwrap(),
            engines: std::iter::once(Engine::Reference)
                .chain(std::iter::once(Engine::Ticked))
                .chain(EVENT_ENGINES)
                .collect(),
        },
        Cell {
            dataset: "RMAT-14".to_string(),
            side: 64,
            graph: RmatConfig::new(14, 8).seed(11).build().unwrap(),
            engines: EVENT_ENGINES.to_vec(),
        },
    ];
    if full {
        cells.push(Cell {
            dataset: "RMAT-16".to_string(),
            side: 128,
            graph: RmatConfig::new(16, 8).seed(11).build().unwrap(),
            engines: EVENT_ENGINES.to_vec(),
        });
    }

    let mut table = Table::new(vec![
        "workload",
        "dataset",
        "tiles",
        "engine",
        "cycles",
        "best wall (s)",
        "cycles/sec",
        "modeled-bytes",
        "peak-rss",
    ]);
    let mut measurements = Vec::new();

    for cell in &cells {
        let config = SimConfigBuilder::new(GridConfig::square(cell.side))
            .scratchpad_bytes(1 << 20)
            .build()
            .unwrap();
        let sim = Simulation::new(config, &cell.graph).unwrap();
        // The first engine's modelled cycle count anchors the per-cell
        // equivalence assertion below.
        let mut cell_cycles: Option<u64> = None;
        for &engine in &cell.engines {
            let mut cycles = 0;
            let mut energy_j = 0.0;
            let mut rejections = 0;
            let mut modeled_bytes = 0;
            let mut memory = None;
            let mut walk = None;
            let mut best = f64::INFINITY;
            for _ in 0..REPS {
                let started = Instant::now();
                let outcome = sim.run_with_engine(&SsspKernel::new(0), engine).unwrap();
                best = best.min(started.elapsed().as_secs_f64());
                cycles = outcome.cycles;
                energy_j = outcome.total_energy_j();
                rejections = outcome.stats.noc.total_injection_rejections();
                modeled_bytes = outcome.memory.modeled_total_bytes();
                memory = Some(MemoryColumns::from_report(&outcome.memory));
                walk = Some(WalkColumns::from_stats(&outcome.stats.noc));
            }
            // The equivalence square's guarantee, enforced where the
            // numbers are published: every engine models the same cycle
            // count, or the snapshot dies instead of writing BENCH_<n>.json.
            let anchor = *cell_cycles.get_or_insert(cycles);
            assert_eq!(
                cycles, anchor,
                "{}: engine {engine} modelled {cycles} cycles but {} modelled {anchor} — \
                 the engines have diverged; fix the equivalence break before snapshotting",
                cell.dataset, cell.engines[0]
            );
            let peak_rss = peak_rss_bytes();
            let throughput = cycles as f64 / best;
            table.push_row(vec![
                "SSSP".to_string(),
                cell.dataset.clone(),
                (cell.side * cell.side).to_string(),
                engine.to_string(),
                cycles.to_string(),
                format!("{best:.3}"),
                format!("{throughput:.3e}"),
                modeled_bytes.to_string(),
                peak_rss.map_or_else(|| "-".to_string(), |b| b.to_string()),
            ]);
            measurements.push(Measurement {
                experiment: "engine-throughput".to_string(),
                workload: "SSSP".to_string(),
                dataset: cell.dataset.clone(),
                configuration: format!("{} tiles, engine {engine}", cell.side * cell.side),
                cycles,
                energy_j,
                value: throughput,
                endpoint_drains: 1,
                rejected_injections: rejections,
                memory,
                peak_rss_bytes: peak_rss,
                walk,
            });
        }
    }

    // The ISSUE 10 A/B: due-only calendar walk vs the preserved full-walk
    // baseline, in-binary, on the dense convergecast wave where the walk
    // dominates.  128x128 is the acceptance regime (floor 1.3x); `--full`
    // adds the 256x256 rung, where the walk is the bulk of the cycle.
    due_only_walk_rung(&mut measurements, 128);
    if full {
        due_only_walk_rung(&mut measurements, 256);
    }

    fault_overhead_rung(&mut measurements);

    table.print(
        &format!("Engine throughput snapshot (modelled cycles per wall-clock second, host parallelism {cores})"),
        cli.csv,
    );
    cli.write_json_if_requested(&measurements);
    cli.report_wall_clock();
}

/// The due-only walk A/B rung (ISSUE 10): the due-only calendar walk
/// (`RouterScheduler::Calendar`) against the preserved pre-change full
/// calendar walk (`RouterScheduler::CalendarScan`), same binary, same
/// traffic — the shared dense convergecast wave
/// ([`dalorex_bench::waves::convergecast_wave`], the exact wave the
/// `sim_<side>_wave_calendar` microbench pairs time).  Both must model the
/// identical cycle count *and* identical NoC statistics — the walk is a
/// simulator optimization, not a schedule change — and the wall-clock
/// ratio (full-walk time / due-only time) is emitted as the
/// `calendar-walk-speedup` row.  The acceptance floor for the dense
/// 128x128-and-up regime is 1.3x (measured ~1.5x at 128x128 and ~1.9x at
/// 256x256 in this container); the snapshot records the ratio rather than
/// asserting it so a noisy CI host cannot turn a perf target into a flake
/// (the BENCH series is where the number is reviewed).
fn due_only_walk_rung(measurements: &mut Vec<Measurement>, side: usize) {
    use dalorex_bench::waves::{convergecast_net, convergecast_wave};
    use dalorex_noc::RouterScheduler;

    // One 256x256 wave runs ~1 minute per scheduler even in release, so
    // the big rung takes a single repetition.
    let reps = if side >= 256 { 1 } else { REPS };
    let time = |scheduler: RouterScheduler| {
        let mut best = f64::INFINITY;
        let mut cycles = 0;
        let mut stats = None;
        for _ in 0..reps {
            let mut net = convergecast_net(side, scheduler);
            let started = Instant::now();
            cycles = convergecast_wave(&mut net, side);
            best = best.min(started.elapsed().as_secs_f64());
            stats = Some(net.stats().clone());
        }
        (cycles, best, stats.unwrap())
    };
    let (full_cycles, full_best, full_stats) = time(RouterScheduler::CalendarScan);
    let (due_cycles, due_best, due_stats) = time(RouterScheduler::Calendar);
    assert_eq!(
        due_cycles, full_cycles,
        "{side}x{side}: the due-only walk modelled {due_cycles} cycles but the full-walk \
         baseline modelled {full_cycles} — the walk changed the schedule; fix the \
         equivalence break before snapshotting"
    );
    // NocStats equality deliberately ignores the walk counters, so this is
    // the full forwarding/delivery/energy ledger agreeing bit-for-bit.
    assert_eq!(
        due_stats, full_stats,
        "{side}x{side}: the due-only walk changed the modelled NoC statistics"
    );
    let speedup = full_best / due_best;
    eprintln!(
        "due-only calendar walk ({side}x{side} convergecast): {speedup:.2}x cycles/sec \
         over the full-walk baseline (floor 1.3x on 128x128+)"
    );
    let tiles = side * side;
    for (label, best, stats) in [
        ("full-walk", full_best, &full_stats),
        ("due-only", due_best, &due_stats),
    ] {
        measurements.push(Measurement {
            experiment: "calendar-walk".to_string(),
            workload: "convergecast-wave".to_string(),
            dataset: "synthetic".to_string(),
            configuration: format!("{tiles} tiles, {label}"),
            cycles: full_cycles,
            energy_j: 0.0,
            value: full_cycles as f64 / best,
            endpoint_drains: 1,
            rejected_injections: 0,
            memory: None,
            peak_rss_bytes: peak_rss_bytes(),
            walk: Some(WalkColumns::from_stats(stats)),
        });
    }
    measurements.push(Measurement {
        experiment: "calendar-walk-speedup".to_string(),
        workload: "convergecast-wave".to_string(),
        dataset: "synthetic".to_string(),
        configuration: format!("{tiles} tiles, due-only over full-walk"),
        cycles: full_cycles,
        energy_j: 0.0,
        value: speedup,
        endpoint_drains: 1,
        rejected_injections: 0,
        memory: None,
        peak_rss_bytes: peak_rss_bytes(),
        walk: None,
    });
}

/// The zero-fault-overhead rung: the light cell under an armed-but-idle
/// fault plan (one window of every kind, all parked billions of cycles
/// past the run) against the empty-plan hot path, on the skip engine.
/// Asserts the armed-idle plan is schedule-invisible and that the
/// fault-state checks cost at most 25% wall-clock (the target is 2%; the
/// hard cap only exists to survive noisy CI hosts without letting a real
/// regression through).
fn fault_overhead_rung(measurements: &mut Vec<Measurement>) {
    const RUNG_REPS: usize = 3;
    let graph = RmatConfig::new(12, 8).seed(11).build().unwrap();
    let armed: FaultPlan = "link:tile=5,start=4000000000,end=4000000100;\
                            stall:tile=9,start=4000000000,end=4000000100;\
                            slow:tile=3,factor=4,start=4000000000,end=4000000100;\
                            throttle:tile=7,budget=1,start=4000000000,end=4000000100"
        .parse()
        .unwrap();
    let time = |plan: FaultPlan| {
        let config = SimConfigBuilder::new(GridConfig::square(32))
            .scratchpad_bytes(1 << 20)
            .faults(plan)
            .build()
            .unwrap();
        let sim = Simulation::new(config, &graph).unwrap();
        let mut best = f64::INFINITY;
        let mut cycles = 0;
        for _ in 0..RUNG_REPS {
            let started = Instant::now();
            let outcome = sim
                .run_with_engine(&SsspKernel::new(0), Engine::Skip)
                .unwrap();
            best = best.min(started.elapsed().as_secs_f64());
            cycles = outcome.cycles;
        }
        (cycles, best)
    };
    let (empty_cycles, empty_best) = time(FaultPlan::empty());
    let (armed_cycles, armed_best) = time(armed);
    assert_eq!(
        armed_cycles, empty_cycles,
        "an armed-but-idle fault plan moved the schedule ({armed_cycles} vs {empty_cycles} \
         cycles) — armed-idle plans must be schedule-invisible"
    );
    let ratio = armed_best / empty_best;
    eprintln!(
        "zero-fault overhead (armed-idle / empty plan, skip engine): {ratio:.3} \
         (target <= 1.02, hard cap 1.25)"
    );
    assert!(
        ratio <= 1.25,
        "armed-idle fault checks cost {ratio:.3}x wall-clock on the empty-plan hot path — \
         fix the fast path before snapshotting"
    );
    measurements.push(Measurement {
        experiment: "fault-overhead".to_string(),
        workload: "SSSP".to_string(),
        dataset: "RMAT-12".to_string(),
        configuration: "armed-idle vs empty plan, 1024 tiles, engine skip".to_string(),
        cycles: empty_cycles,
        energy_j: 0.0,
        value: ratio,
        endpoint_drains: 1,
        rejected_injections: 0,
        memory: None,
        peak_rss_bytes: peak_rss_bytes(),
        walk: None,
    });
}
