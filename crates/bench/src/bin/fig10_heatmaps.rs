//! Figure 10: heatmaps of PU and router utilization (as a percentage of
//! runtime) while running SSSP on RMAT-22, on a 16x16 grid connected by a
//! mesh versus a torus.  The paper's point is visual: the mesh concentrates
//! router load toward the centre of the grid and starves the PUs, while the
//! torus spreads it uniformly.  We print ASCII heatmaps (0–9 intensity
//! buckets) plus the summary statistics that quantify the same contrast.
//!
//! Usage:
//! ```text
//! cargo run -p dalorex-bench --release --bin fig10_heatmaps [-- --csv]
//! ```

use dalorex_baseline::Workload;
use dalorex_bench::datasets;
use dalorex_bench::report::Table;
use dalorex_graph::datasets::DatasetLabel;
use dalorex_noc::Topology;
use dalorex_sim::config::{BarrierMode, GridConfig, SimConfigBuilder};
use dalorex_sim::Simulation;

fn main() {
    let side = datasets::max_grid_side().clamp(4, 16);
    let graph = datasets::build(DatasetLabel::Rmat(22));
    let workload = Workload::Sssp { root: 0 };
    let scratchpad = datasets::fitting_scratchpad_bytes(&graph, side * side);

    let mut summary = Table::new(vec![
        "topology",
        "cycles",
        "mean-PU-util-%",
        "router-util-variation",
        "max-router-util-%",
    ]);

    for topology in [Topology::Mesh, Topology::Torus] {
        let config = SimConfigBuilder::new(GridConfig::square(side))
            .scratchpad_bytes(scratchpad)
            .topology(topology)
            .barrier_mode(BarrierMode::Barrierless)
            .build()
            .expect("valid configuration");
        let sim = Simulation::new(config, &graph).expect("dataset fits");
        let kernel = workload.kernel();
        let outcome = sim.run(kernel.as_ref()).expect("simulation completes");
        let pu = outcome.stats.pu_utilization_grid();
        let routers = outcome.stats.router_utilization_grid();
        println!(
            "## {} — PU utilization heatmap ({side}x{side} tiles, SSSP on {})",
            topology.name(),
            DatasetLabel::Rmat(22).as_str()
        );
        print!("{}", pu.to_ascii());
        println!(
            "## {} — router utilization heatmap ({side}x{side} tiles)",
            topology.name()
        );
        print!("{}", routers.to_ascii());
        println!();
        summary.push_row(vec![
            topology.name().to_string(),
            outcome.cycles.to_string(),
            format!("{:.1}", 100.0 * outcome.stats.mean_pu_utilization()),
            format!("{:.3}", routers.variation()),
            format!("{:.1}", 100.0 * routers.max()),
        ]);
    }

    summary.print("Figure 10 summary: mesh concentrates load (higher variation), torus spreads it");
}
