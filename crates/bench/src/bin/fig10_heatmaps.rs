//! Figure 10: heatmaps of PU and router utilization (as a percentage of
//! runtime) while running SSSP on RMAT-22, on a 16x16 grid connected by a
//! mesh versus a torus.  The paper's point is visual: the mesh concentrates
//! router load toward the centre of the grid and starves the PUs, while the
//! torus spreads it uniformly.  We print ASCII heatmaps (0–9 intensity
//! buckets) plus the summary statistics that quantify the same contrast.
//!
//! Usage:
//! ```text
//! cargo run -p dalorex-bench --release --bin fig10_heatmaps -- \
//!     [--csv] [--json <path>] [--max-side <n>] [--drains <a,b,...>] [--engine <name>]
//! ```
//!
//! `--max-side` overrides `DALOREX_MAX_SIDE`, **clamped to 4..=16**: the
//! heatmaps are printed one ASCII digit per tile, so larger grids would
//! not fit a terminal (the paper's own Figure 10 is a 16x16 grid).  A
//! clamped value is reported on stderr.
//!
//! Like `fig08_noc`, the runs default to an endpoint budget of **2**
//! drains/injections per tile per cycle so the mesh-vs-torus contrast is
//! fabric-bound (at a single-port endpoint the local port serializes both
//! topologies equally and the heatmaps flatten); pass `--drains 1` for the
//! paper's single-port tile.  The budget of every row is emitted in the
//! summary table and in the `--json` measurements.

use dalorex_baseline::Workload;
use dalorex_bench::cli::{FigureCli, FABRIC_BOUND_DRAINS};
use dalorex_bench::datasets;
use dalorex_bench::report::{Measurement, MemoryColumns, Table, WalkColumns};
use dalorex_graph::datasets::DatasetLabel;
use dalorex_noc::Topology;
use dalorex_sim::config::{BarrierMode, GridConfig, SimConfigBuilder};
use dalorex_sim::Simulation;

fn main() {
    let cli = FigureCli::parse();
    let requested = cli.max_side.unwrap_or_else(datasets::max_grid_side);
    let side = requested.clamp(4, 16);
    if side != requested {
        eprintln!("clamping grid side {requested} to {side} (ASCII heatmaps are one digit per tile)");
    }
    let graph = datasets::build(DatasetLabel::Rmat(22));
    let workload = Workload::Sssp { root: 0 };
    let scratchpad = datasets::fitting_scratchpad_bytes(&graph, side * side);
    let drains_sweep = cli.drains_or(&[FABRIC_BOUND_DRAINS]);

    let mut summary = Table::new(vec![
        "topology",
        "drains",
        "cycles",
        "mean-PU-util-%",
        "router-util-variation",
        "max-router-util-%",
    ]);
    let mut measurements = Vec::new();

    for &drains in &drains_sweep {
        for topology in [Topology::Mesh, Topology::Torus] {
            let config = SimConfigBuilder::new(GridConfig::square(side))
                .scratchpad_bytes(scratchpad)
                .topology(topology)
                .barrier_mode(BarrierMode::Barrierless)
                .endpoint_drains_per_cycle(drains)
                .engine(cli.engine)
                .verify(cli.verify)
                .build()
                .expect("valid configuration");
            let sim = Simulation::new(config, &graph).expect("dataset fits");
            let kernel = workload.kernel();
            let outcome = sim.run(kernel.as_ref()).expect("simulation completes");
            let pu = outcome.stats.pu_utilization_grid();
            let routers = outcome.stats.router_utilization_grid();
            println!(
                "## {} — PU utilization heatmap ({side}x{side} tiles, SSSP on {}, {drains} drains/cycle)",
                topology.name(),
                DatasetLabel::Rmat(22).as_str()
            );
            print!("{}", pu.to_ascii());
            println!(
                "## {} — router utilization heatmap ({side}x{side} tiles, {drains} drains/cycle)",
                topology.name()
            );
            print!("{}", routers.to_ascii());
            println!();
            summary.push_row(vec![
                topology.name().to_string(),
                drains.to_string(),
                outcome.cycles.to_string(),
                format!("{:.1}", 100.0 * outcome.stats.mean_pu_utilization()),
                format!("{:.3}", routers.variation()),
                format!("{:.1}", 100.0 * routers.max()),
            ]);
            measurements.push(Measurement {
                experiment: "fig10".to_string(),
                workload: workload.name().to_string(),
                dataset: DatasetLabel::Rmat(22).as_str(),
                configuration: format!("{} tiles, {}", side * side, topology.name()),
                cycles: outcome.cycles,
                energy_j: outcome.total_energy_j(),
                value: routers.variation(),
                endpoint_drains: drains,
                rejected_injections: outcome.stats.noc.total_injection_rejections(),
                memory: Some(MemoryColumns::from_report(&outcome.memory)),
                peak_rss_bytes: None,
                walk: Some(WalkColumns::from_stats(&outcome.stats.noc)),
            });
        }
    }

    summary.print(
        "Figure 10 summary: mesh concentrates load (higher variation), torus spreads it (endpoint budget per row in the drains column)",
        cli.csv,
    );
    cli.write_json_if_requested(&measurements);
    cli.report_wall_clock();
}
