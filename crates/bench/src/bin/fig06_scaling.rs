//! Figure 6 + Section V-B: strong scaling of BFS over RMAT datasets —
//! runtime (cycles) and energy (Joules) as the tile count grows, with the
//! per-tile memory annotation, plus the two knee points the paper calls
//! out: performance stops scaling when a tile holds fewer than ~1,000
//! vertices, and energy is minimal around ~10,000 vertices per tile.
//!
//! Usage:
//! ```text
//! cargo run -p dalorex-bench --release --bin fig06_scaling -- \
//!     [--csv] [--json <path>] [--max-side <n>] [--drains <a,b,...>] [--engine <name>]
//! ```
//!
//! `--max-side` overrides `DALOREX_MAX_SIDE` (32 or 64 reach the paper's
//! 32x32 and 64x64 grids), and `--drains` sweeps the endpoint bandwidth
//! (messages drained/injected per tile per cycle).  Measurements, including
//! the drain budget and the NoC's injection-rejection count, are written by
//! `--json <path>`.  `--engine <reference|ticked|skip|calendar>` selects
//! the cycle engine for A/B wall-clock timing (the figures themselves are
//! engine-independent).

use dalorex_baseline::Workload;
use dalorex_bench::cli::FigureCli;
use dalorex_bench::datasets;
use dalorex_bench::report::{Measurement, MemoryColumns, Table, WalkColumns};
use dalorex_bench::runner::{run_dalorex, scaling_sides, RunOptions};
use dalorex_graph::datasets::DatasetLabel;

fn main() {
    let cli = FigureCli::parse();
    let max_side = cli.max_side.unwrap_or_else(datasets::max_grid_side);
    let drains_sweep = cli.drains();
    let labels = DatasetLabel::figure6_set();
    let workload = Workload::Bfs { root: 0 };

    let mut table = Table::new(vec![
        "dataset",
        "tiles",
        "drains",
        "vertices/tile",
        "KB/tile",
        "runtime-cycles",
        "energy-J",
    ]);
    let mut knees = Table::new(vec![
        "dataset",
        "fastest tiles",
        "vertices/tile at perf limit",
        "energy-optimal tiles",
        "vertices/tile at energy optimum",
    ]);
    let mut measurements = Vec::new();

    for label in labels {
        let graph = datasets::build(label);
        // The knee detection tracks the drains=1 rows only: the paper's
        // Section V-B comparison is made at the single-local-port endpoint
        // bandwidth, so knees from wider endpoints would describe a
        // different machine.  A sweep without drains=1 prints no knees.
        let mut best_cycles: Option<(usize, u64)> = None;
        let mut best_energy: Option<(usize, f64)> = None;
        for side in scaling_sides(max_side) {
            for &drains in &drains_sweep {
                let tiles = side * side;
                let scratchpad = datasets::fitting_scratchpad_bytes(&graph, tiles);
                let options = RunOptions::new(side, scratchpad)
                    .with_endpoint_drains(drains)
                    .with_engine(cli.engine)
                    .with_faults(cli.faults.clone())
                    .with_verify(cli.verify);
                let outcome = match run_dalorex(&graph, workload, options) {
                    Ok(outcome) => outcome,
                    Err(err) => {
                        eprintln!("skipping {} on {tiles} tiles: {err}", label.as_str());
                        continue;
                    }
                };
                let vertices_per_tile = graph.num_vertices().div_ceil(tiles);
                let kb_per_tile = (2 * graph.num_vertices().div_ceil(tiles)
                    + 2 * graph.num_edges().div_ceil(tiles))
                    * 4
                    / 1024;
                let energy = outcome.total_energy_j();
                table.push_row(vec![
                    label.as_str(),
                    tiles.to_string(),
                    drains.to_string(),
                    vertices_per_tile.to_string(),
                    kb_per_tile.to_string(),
                    outcome.cycles.to_string(),
                    format!("{energy:.3e}"),
                ]);
                measurements.push(Measurement {
                    experiment: "fig6".to_string(),
                    workload: workload.name().to_string(),
                    dataset: label.as_str(),
                    configuration: format!("{tiles} tiles, {drains} drains"),
                    cycles: outcome.cycles,
                    energy_j: energy,
                    value: vertices_per_tile as f64,
                    endpoint_drains: drains,
                    rejected_injections: outcome.stats.noc.total_injection_rejections(),
                    memory: Some(MemoryColumns::from_report(&outcome.memory)),
                    peak_rss_bytes: None,
                    walk: Some(WalkColumns::from_stats(&outcome.stats.noc)),
                });
                if drains != 1 {
                    continue;
                }
                if best_cycles.map(|(_, c)| outcome.cycles < c).unwrap_or(true) {
                    best_cycles = Some((tiles, outcome.cycles));
                }
                if best_energy.map(|(_, e)| energy < e).unwrap_or(true) {
                    best_energy = Some((tiles, energy));
                }
            }
        }
        if let (Some((perf_tiles, _)), Some((energy_tiles, _))) = (best_cycles, best_energy) {
            knees.push_row(vec![
                label.as_str(),
                perf_tiles.to_string(),
                graph.num_vertices().div_ceil(perf_tiles).to_string(),
                energy_tiles.to_string(),
                graph.num_vertices().div_ceil(energy_tiles).to_string(),
            ]);
        }
    }

    table.print(
        "Figure 6: BFS strong scaling on RMAT datasets (runtime and energy)",
        cli.csv,
    );
    knees.print(
        "Section V-B knees (computed from the drains=1 rows, the paper's endpoint bandwidth): paper reports the parallelization limit near ~1k vertices/tile and the energy optimum near ~10k vertices/tile",
        cli.csv,
    );
    cli.write_json_if_requested(&measurements);
    cli.report_wall_clock();
}
