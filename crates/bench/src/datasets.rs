//! Dataset construction for the figure binaries, honouring the
//! reproduction-scale environment variables.

use dalorex_graph::datasets::{DatasetCatalog, DatasetLabel};
use dalorex_graph::CsrGraph;

/// Default number of powers of two subtracted from each dataset's original
/// size (1024× fewer vertices than the paper).
pub const DEFAULT_SCALE_SHIFT: u32 = 10;

/// Reads the reproduction scale shift from `DALOREX_SCALE_SHIFT`
/// (default [`DEFAULT_SCALE_SHIFT`]; `0` reproduces the paper's sizes).
pub fn scale_shift() -> u32 {
    std::env::var("DALOREX_SCALE_SHIFT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SCALE_SHIFT)
}

/// Reads the largest grid side allowed for sweeps from `DALOREX_MAX_SIDE`
/// (default 16, i.e. up to 256 tiles; the paper sweeps up to 128).
pub fn max_grid_side() -> usize {
    std::env::var("DALOREX_MAX_SIDE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

/// The dataset catalog at the configured reproduction scale.
pub fn catalog() -> DatasetCatalog {
    DatasetCatalog::new().with_scale_shift(scale_shift())
}

/// Builds a labelled dataset at the configured reproduction scale.
///
/// # Panics
///
/// Panics if the generator rejects its configuration, which cannot happen
/// for the catalogued labels.
pub fn build(label: DatasetLabel) -> CsrGraph {
    catalog()
        .build(label)
        .expect("catalogued dataset configurations are valid")
}

/// A scratchpad size, in bytes, large enough for `graph` distributed over
/// `tiles` tiles (with the code/queue reserve the simulator requires),
/// rounded up to a power of two of at least 256 KiB.  The figure binaries
/// use this instead of the 4 MiB default so that small reproduction-scale
/// runs report sensible leakage energy.
pub fn fitting_scratchpad_bytes(graph: &CsrGraph, tiles: usize) -> usize {
    let per_tile_words =
        (2 * graph.num_vertices().div_ceil(tiles) + 2 * graph.num_edges().div_ceil(tiles)) * 4;
    let kernel_state = 16 * graph.num_vertices().div_ceil(tiles);
    let required = per_tile_words + kernel_state + 128 * 1024;
    required.next_power_of_two().max(256 * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_shift_defaults_when_env_is_unset() {
        // The test environment does not set the variable.
        assert!(scale_shift() >= 1 || std::env::var("DALOREX_SCALE_SHIFT").is_ok());
        assert!(max_grid_side() >= 2);
    }

    #[test]
    fn builds_reduced_datasets() {
        let graph = build(DatasetLabel::Rmat(16));
        assert!(graph.num_vertices() >= 64);
        assert!(graph.num_edges() > 0);
    }

    #[test]
    fn fitting_scratchpad_is_large_enough_and_power_of_two() {
        let graph = build(DatasetLabel::Amazon);
        let bytes = fitting_scratchpad_bytes(&graph, 16);
        assert!(bytes >= 256 * 1024);
        assert_eq!(bytes.count_ones(), 1);
    }
}
