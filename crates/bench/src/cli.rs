//! Shared command-line parsing for the figure binaries.
//!
//! Every `fig*` binary takes the same hand-rolled flags; this module owns
//! them in one place so a new knob (like `--engine`) lands everywhere at
//! once:
//!
//! * `--csv` — print tables as CSV instead of aligned text.
//! * `--json <path>` — persist the run's [`crate::report::Measurement`]s.
//! * `--max-side <n>` — cap of the grid sweep (overrides
//!   `DALOREX_MAX_SIDE`).
//! * `--drains <a,b,...>` — endpoint-bandwidth sweep (messages per tile
//!   per cycle).
//! * `--engine <reference|ticked|skip|calendar>` — the cycle engine to
//!   drive every run with.  All engines model the identical schedule, so
//!   the printed figures do not change; the flag exists for A/B *timing*
//!   of the big sweeps (run the same figure twice with different engines
//!   and compare the wall-clock line each binary prints on stderr).
//!
//! Parse once with [`FigureCli::parse`] at the top of `main`.

use dalorex_sim::Engine;
use std::time::Instant;

/// Default endpoint budget (messages drained/injected per tile per cycle)
/// for the figure binaries whose comparison must run *fabric-bound*:
/// `fig08_noc`, `fig09_energy_breakdown` and `fig10_heatmaps` all pass
/// `&[FABRIC_BOUND_DRAINS]` to [`FigureCli::drains_or`].  Two is the
/// smallest budget at which the dense runs stop being serialized by the
/// single local router port; retune it here, in one place, if larger
/// grids ever move the knee.
pub const FABRIC_BOUND_DRAINS: usize = 2;

/// The figure binaries' common command-line flags, parsed once.
#[derive(Debug, Clone)]
pub struct FigureCli {
    /// `--csv`: print CSV instead of aligned text.
    pub csv: bool,
    /// `--json <path>`: where to persist the measurements, if anywhere.
    pub json: Option<String>,
    /// `--max-side <n>`: sweep cap override, if given.
    pub max_side: Option<usize>,
    /// `--engine <name>`: the cycle engine every run uses (default
    /// [`Engine::Skip`]).
    pub engine: Engine,
    drains: Option<Vec<usize>>,
    started: Instant,
}

impl FigureCli {
    /// Parses the common flags from the process arguments.  Invalid values
    /// are reported on stderr and fall back to the defaults rather than
    /// silently measuring the wrong configuration — except `--engine`,
    /// where a typo aborts (an A/B timing run with the wrong engine is
    /// exactly the silent mistake the flag exists to avoid).
    pub fn parse() -> Self {
        let engine = match flag_value("engine") {
            None if std::env::args().any(|a| a == "--engine") => {
                // The flag is present but its value is missing (or the next
                // token is another flag): aborting beats silently timing
                // the default engine under the wrong label.
                eprintln!("--engine requires a value (reference, ticked, skip or calendar)");
                std::process::exit(2);
            }
            None => Engine::default(),
            Some(name) => match name.parse() {
                Ok(engine) => engine,
                Err(err) => {
                    eprintln!("{err}");
                    std::process::exit(2);
                }
            },
        };
        FigureCli {
            csv: std::env::args().any(|a| a == "--csv"),
            json: flag_value("json"),
            max_side: max_side_flag(),
            engine,
            drains: drains_flag(),
            started: Instant::now(),
        }
    }

    /// The `--drains` sweep, or `[1]` (the paper's single-port endpoint)
    /// when the flag is absent.
    pub fn drains(&self) -> Vec<usize> {
        self.drains_or(&[1])
    }

    /// The `--drains` sweep, with a caller-chosen default for binaries
    /// whose figure is not measured at the paper's single-port endpoint
    /// (`fig08`/`fig09`/`fig10` default to [`FABRIC_BOUND_DRAINS`]).
    pub fn drains_or(&self, default: &[usize]) -> Vec<usize> {
        match &self.drains {
            Some(sweep) => sweep.clone(),
            None => default.to_vec(),
        }
    }

    /// Writes `measurements` to the `--json` path, if one was given.  On a
    /// write failure it reports the error and exits nonzero so that
    /// pipelines like `fig07_throughput -- --json out.json && plot
    /// out.json` do not proceed without the file.
    pub fn write_json_if_requested(&self, measurements: &[crate::report::Measurement]) {
        let Some(path) = &self.json else {
            return;
        };
        match crate::report::write_json(path, measurements) {
            Ok(()) => eprintln!("wrote {} measurements to {path}", measurements.len()),
            Err(err) => {
                eprintln!("failed to write JSON to {path}: {err}");
                std::process::exit(1);
            }
        }
    }

    /// Prints the engine + wall-clock line the `--engine` A/B workflow
    /// compares, on stderr (the tables on stdout stay engine-independent
    /// because the modelled schedule is).  Call at the end of `main`.
    pub fn report_wall_clock(&self) {
        eprintln!(
            "engine: {} | wall-clock: {:.2?}",
            self.engine,
            self.started.elapsed()
        );
    }
}

/// Returns the value of `--<name> <value>` or `--<name>=<value>` on the
/// command line, if present.
pub fn flag_value(name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let assigned = format!("--{name}=");
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == flag {
            // A following token that is itself a flag means the value was
            // forgotten; surface that instead of consuming the other flag.
            let value = args.next().filter(|v| !v.starts_with("--"));
            if value.is_none() {
                eprintln!("flag {flag} is missing its value");
            }
            return value;
        }
        if let Some(value) = arg.strip_prefix(&assigned) {
            return Some(value.to_string());
        }
    }
    None
}

/// Parses the `--drains <a,b,...>` flag into a sweep, if given.  Invalid
/// or zero entries are dropped with a warning on stderr so a typo'd sweep
/// never silently measures the wrong configurations; an entirely invalid
/// list counts as absent.
fn drains_flag() -> Option<Vec<usize>> {
    let list = flag_value("drains")?;
    let mut parsed = Vec::new();
    for entry in list.split(',') {
        match entry.trim().parse::<usize>() {
            Ok(drains) if drains > 0 => parsed.push(drains),
            _ => eprintln!("ignoring invalid --drains entry {entry:?} (want a positive integer)"),
        }
    }
    if parsed.is_empty() {
        None
    } else {
        Some(parsed)
    }
}

/// Parses the `--max-side <n>` flag overriding the `DALOREX_MAX_SIDE`
/// environment variable, so one invocation can push a sweep to 32x32 or
/// 64x64 grids without touching the environment.  An unparsable value is
/// reported on stderr rather than silently falling back to the default.
fn max_side_flag() -> Option<usize> {
    let value = flag_value("max-side")?;
    match value.parse::<usize>() {
        Ok(side) if side > 0 => Some(side),
        _ => {
            eprintln!("ignoring invalid --max-side value {value:?} (want a positive integer)");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_when_no_flags_are_passed() {
        // The test harness never passes the figure flags.
        let cli = FigureCli::parse();
        assert!(!cli.csv);
        assert_eq!(cli.json, None);
        assert_eq!(cli.max_side, None);
        assert_eq!(cli.engine, Engine::Skip);
        assert_eq!(cli.drains(), vec![1]);
        assert_eq!(cli.drains_or(&[FABRIC_BOUND_DRAINS]), vec![2]);
        assert_eq!(flag_value("no-such-flag"), None);
    }
}
