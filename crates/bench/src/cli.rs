//! Shared command-line parsing for the figure binaries.
//!
//! Every `fig*` binary takes the same hand-rolled flags; this module owns
//! them in one place so a new knob (like `--engine`) lands everywhere at
//! once:
//!
//! * `--csv` — print tables as CSV instead of aligned text.
//! * `--json <path>` — persist the run's [`crate::report::Measurement`]s.
//! * `--max-side <n>` — cap of the grid sweep (overrides
//!   `DALOREX_MAX_SIDE`).
//! * `--drains <a,b,...>` — endpoint-bandwidth sweep (messages per tile
//!   per cycle).
//! * `--engine <reference|ticked|skip|calendar|parallel[:N]>` — the cycle
//!   engine to drive every run with (`parallel:N` pins the worker-pool
//!   size; bare `parallel` auto-detects it).  All engines model the
//!   identical schedule, so the printed figures do not change; the flag
//!   exists for A/B *timing* of the big sweeps (run the same figure twice
//!   with different engines and compare the wall-clock line each binary
//!   prints on stderr).  The `DALOREX_ENGINE` environment variable
//!   supplies a default when the flag is absent — handy for timing a whole
//!   figure pipeline without editing every invocation — and the flag wins
//!   when both are given.
//! * `--faults <plan-file|spec>` — a deterministic fault plan every run is
//!   driven under.  The value is tried as a file path first (a plan file
//!   in the [`dalorex_sim::FaultPlan`] spec syntax, `#` comments and
//!   newlines allowed) and falls back to an inline `;`-separated spec
//!   (`"stall:tile=3,start=50,end=400;random:seed=7,count=4,horizon=2000"`).
//!   The `DALOREX_FAULTS` environment variable supplies a default exactly
//!   like `DALOREX_ENGINE` does for `--engine`, and the flag wins.  All
//!   five engines apply a plan bit-identically, so `--engine` A/B timing
//!   stays valid under faults.
//! * `--verify <off|warn|deny>` — how the static task-graph verifier
//!   ([`dalorex_sim::verify`]) treats its findings when each run is built:
//!   `warn` (the default) prints them, `deny` makes any error-severity
//!   finding fatal before the first simulated cycle, `off` skips the
//!   analysis passes.  The `DALOREX_VERIFY` environment variable supplies
//!   a default exactly like `DALOREX_ENGINE`, and the flag wins.
//!
//! Parse once with [`FigureCli::parse`] at the top of `main`.
//!
//! # Error policy
//!
//! A malformed value for a flag that selects *what gets measured* aborts
//! with exit code 2 and a single diagnostic on stderr: silently measuring
//! the wrong configuration (or timing the wrong engine under an A/B
//! label) is exactly the mistake these flags exist to avoid.  This covers
//! `--engine` (unknown name, missing or empty value, bad env default),
//! `--faults` (unreadable plan file, malformed spec, bad env default),
//! `--verify` (unknown mode, missing value, bad env default) and
//! `--drains` (missing value or no valid entry).  Individually invalid
//! `--drains` entries alongside valid ones are dropped with a warning so a
//! long sweep survives one typo, but the run never proceeds on an empty
//! sweep.

use dalorex_sim::{Engine, FaultPlan, VerifyMode};
use std::time::Instant;

/// Default endpoint budget (messages drained/injected per tile per cycle)
/// for the figure binaries whose comparison must run *fabric-bound*:
/// `fig08_noc`, `fig09_energy_breakdown` and `fig10_heatmaps` all pass
/// `&[FABRIC_BOUND_DRAINS]` to [`FigureCli::drains_or`].  Two is the
/// smallest budget at which the dense runs stop being serialized by the
/// single local router port; retune it here, in one place, if larger
/// grids ever move the knee.
pub const FABRIC_BOUND_DRAINS: usize = 2;

/// The figure binaries' common command-line flags, parsed once.
#[derive(Debug, Clone)]
pub struct FigureCli {
    /// `--csv`: print CSV instead of aligned text.
    pub csv: bool,
    /// `--json <path>`: where to persist the measurements, if anywhere.
    pub json: Option<String>,
    /// `--max-side <n>`: sweep cap override, if given.
    pub max_side: Option<usize>,
    /// `--engine <name>` (or the `DALOREX_ENGINE` default): the cycle
    /// engine every run uses (default [`Engine::Skip`]).
    pub engine: Engine,
    /// `--faults <plan-file|spec>` (or the `DALOREX_FAULTS` default): the
    /// fault plan every run is driven under (default empty — no faults).
    pub faults: FaultPlan,
    /// `--verify <off|warn|deny>` (or the `DALOREX_VERIFY` default): how
    /// strictly the static task-graph verifier treats its findings when
    /// each run is built (default [`VerifyMode::Warn`]).
    pub verify: VerifyMode,
    drains: Option<Vec<usize>>,
    started: Instant,
}

/// Outcome of looking a flag up in an argument list: distinguishes "the
/// user never mentioned the flag" from "the flag is there but the value
/// is not" so the two produce different diagnostics.
#[derive(Debug, PartialEq, Eq)]
enum FlagLookup {
    /// The flag does not appear.
    Absent,
    /// The flag appears with no usable value: bare at the end of the
    /// line, followed by another flag, or written `--flag=` with nothing
    /// after the `=`.
    ValueMissing,
    /// The flag appears with this value.
    Value(String),
}

impl FigureCli {
    /// Parses the common flags from the process arguments and the
    /// `DALOREX_ENGINE` environment default.  See the module docs for the
    /// error policy; on a fatal parse error the single diagnostic goes to
    /// stderr and the process exits with code 2.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let env_engine = std::env::var("DALOREX_ENGINE").ok();
        let env_faults = std::env::var("DALOREX_FAULTS").ok();
        let env_verify = std::env::var("DALOREX_VERIFY").ok();
        match Self::parse_from(
            &args,
            env_engine.as_deref(),
            env_faults.as_deref(),
            env_verify.as_deref(),
        ) {
            Ok(cli) => cli,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }

    /// The testable core of [`FigureCli::parse`]: pure over an argument
    /// slice (without the program name) and optional `DALOREX_ENGINE` /
    /// `DALOREX_FAULTS` / `DALOREX_VERIFY` values, returning the
    /// diagnostic instead of exiting.
    fn parse_from(
        args: &[String],
        env_engine: Option<&str>,
        env_faults: Option<&str>,
        env_verify: Option<&str>,
    ) -> Result<Self, String> {
        let engine = match lookup_flag(args, "engine") {
            FlagLookup::Value(name) => name.parse::<Engine>()?,
            FlagLookup::ValueMissing => return Err(engine_value_missing()),
            FlagLookup::Absent => match env_engine {
                // The env default obeys the same never-silently-mislabel
                // rule as the flag: a typo'd DALOREX_ENGINE aborts.
                Some(name) => name
                    .parse()
                    .map_err(|err: String| format!("DALOREX_ENGINE: {err}"))?,
                None => Engine::default(),
            },
        };
        let faults = match lookup_flag(args, "faults") {
            FlagLookup::Value(value) => faults_value_to_plan(&value)?,
            FlagLookup::ValueMissing => return Err(faults_value_missing()),
            FlagLookup::Absent => match env_faults {
                Some(value) => faults_value_to_plan(value)
                    .map_err(|err| format!("DALOREX_FAULTS: {err}"))?,
                None => FaultPlan::empty(),
            },
        };
        let verify = match lookup_flag(args, "verify") {
            FlagLookup::Value(mode) => mode.parse::<VerifyMode>()?,
            FlagLookup::ValueMissing => return Err(verify_value_missing()),
            FlagLookup::Absent => match env_verify {
                Some(mode) => mode
                    .parse()
                    .map_err(|err: String| format!("DALOREX_VERIFY: {err}"))?,
                None => VerifyMode::default(),
            },
        };
        Ok(FigureCli {
            csv: args.iter().any(|a| a == "--csv"),
            json: match lookup_flag(args, "json") {
                FlagLookup::Value(path) => Some(path),
                FlagLookup::ValueMissing => return Err("--json requires a path".to_string()),
                FlagLookup::Absent => None,
            },
            max_side: max_side_flag(args),
            engine,
            faults,
            verify,
            drains: drains_flag(args)?,
            started: Instant::now(),
        })
    }

    /// The `--drains` sweep, or `[1]` (the paper's single-port endpoint)
    /// when the flag is absent.
    pub fn drains(&self) -> Vec<usize> {
        self.drains_or(&[1])
    }

    /// The `--drains` sweep, with a caller-chosen default for binaries
    /// whose figure is not measured at the paper's single-port endpoint
    /// (`fig08`/`fig09`/`fig10` default to [`FABRIC_BOUND_DRAINS`]).
    pub fn drains_or(&self, default: &[usize]) -> Vec<usize> {
        match &self.drains {
            Some(sweep) => sweep.clone(),
            None => default.to_vec(),
        }
    }

    /// Writes `measurements` to the `--json` path, if one was given.  On a
    /// write failure it reports the error and exits nonzero so that
    /// pipelines like `fig07_throughput -- --json out.json && plot
    /// out.json` do not proceed without the file.
    pub fn write_json_if_requested(&self, measurements: &[crate::report::Measurement]) {
        let Some(path) = &self.json else {
            return;
        };
        match crate::report::write_json(path, measurements) {
            Ok(()) => eprintln!("wrote {} measurements to {path}", measurements.len()),
            Err(err) => {
                eprintln!("failed to write JSON to {path}: {err}");
                std::process::exit(1);
            }
        }
    }

    /// Prints the engine + wall-clock line the `--engine` A/B workflow
    /// compares, on stderr (the tables on stdout stay engine-independent
    /// because the modelled schedule is).  Call at the end of `main`.
    pub fn report_wall_clock(&self) {
        if self.faults.is_empty() {
            eprintln!(
                "engine: {} | wall-clock: {:.2?}",
                self.engine,
                self.started.elapsed()
            );
        } else {
            // Name the plan so an A/B pair accidentally run under
            // different fault plans cannot be compared unnoticed.
            eprintln!(
                "engine: {} | faults: {} | wall-clock: {:.2?}",
                self.engine,
                self.faults,
                self.started.elapsed()
            );
        }
    }
}

/// The one `--engine`-without-a-value diagnostic (missing value and empty
/// `--engine=` share it).
fn engine_value_missing() -> String {
    "--engine requires a value (reference, ticked, skip, calendar or parallel[:N])".to_string()
}

/// The one `--verify`-without-a-value diagnostic.
fn verify_value_missing() -> String {
    "--verify requires a value (off, warn or deny)".to_string()
}

/// The one `--faults`-without-a-value diagnostic.
fn faults_value_missing() -> String {
    "--faults requires a value (a plan file path or an inline spec like \
     \"stall:tile=3,start=50,end=400\")"
        .to_string()
}

/// Resolves a `--faults` value into a plan: a readable file wins (its
/// *contents* are the spec — a file full of typos must not silently fall
/// back to parsing the file *name*), otherwise the value itself is parsed
/// as an inline spec.
fn faults_value_to_plan(value: &str) -> Result<FaultPlan, String> {
    if let Ok(contents) = std::fs::read_to_string(value) {
        return contents
            .parse()
            .map_err(|err| format!("fault plan file {value:?}: {err}"));
    }
    value.parse().map_err(|err| {
        format!("--faults value {value:?} is neither a readable plan file nor a valid spec: {err}")
    })
}

/// Returns the value of `--<name> <value>` or `--<name>=<value>` on the
/// process command line, if present.  Unlike [`FigureCli::parse`] this
/// cannot distinguish a missing flag from a missing value; it exists for
/// ad-hoc consumers (the microbench harness) — the figure binaries go
/// through `FigureCli`.
pub fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match lookup_flag(&args, name) {
        FlagLookup::Value(value) => Some(value),
        _ => None,
    }
}

/// Looks `--<name>` up in `args`, accepting both the two-token and the
/// `--<name>=<value>` spellings.
fn lookup_flag(args: &[String], name: &str) -> FlagLookup {
    let flag = format!("--{name}");
    let assigned = format!("--{name}=");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if *arg == flag {
            // A following token that is itself a flag means the value was
            // forgotten; surface that instead of consuming the other flag.
            return match iter.next().filter(|v| !v.starts_with("--")) {
                Some(value) => FlagLookup::Value(value.clone()),
                None => FlagLookup::ValueMissing,
            };
        }
        if let Some(value) = arg.strip_prefix(&assigned) {
            if value.is_empty() {
                return FlagLookup::ValueMissing;
            }
            return FlagLookup::Value(value.to_string());
        }
    }
    FlagLookup::Absent
}

/// Parses the `--drains <a,b,...>` flag into a sweep, if given.
/// Individually invalid or zero entries are dropped with a warning; a
/// `--drains` that yields *no* valid entry (including a missing value) is
/// fatal — the run must never proceed on a sweep other than the one the
/// user asked for.
fn drains_flag(args: &[String]) -> Result<Option<Vec<usize>>, String> {
    let list = match lookup_flag(args, "drains") {
        FlagLookup::Absent => return Ok(None),
        FlagLookup::ValueMissing => {
            return Err("--drains requires a value (a comma-separated list of positive integers)"
                .to_string())
        }
        FlagLookup::Value(list) => list,
    };
    let mut parsed = Vec::new();
    for entry in list.split(',') {
        match entry.trim().parse::<usize>() {
            Ok(drains) if drains > 0 => parsed.push(drains),
            _ => eprintln!("ignoring invalid --drains entry {entry:?} (want a positive integer)"),
        }
    }
    if parsed.is_empty() {
        return Err(format!(
            "--drains {list:?} contains no valid entry (want a comma-separated list of \
             positive integers)"
        ));
    }
    Ok(Some(parsed))
}

/// Parses the `--max-side <n>` flag overriding the `DALOREX_MAX_SIDE`
/// environment variable, so one invocation can push a sweep to 32x32 or
/// 64x64 grids without touching the environment.  An unparsable value is
/// reported on stderr rather than silently falling back to the default
/// (the sweep cap only bounds how far a sweep goes — it cannot mislabel a
/// measurement — so it stays a warning, not an abort).
fn max_side_flag(args: &[String]) -> Option<usize> {
    let value = match lookup_flag(args, "max-side") {
        FlagLookup::Absent => return None,
        FlagLookup::ValueMissing => {
            eprintln!("ignoring --max-side with no value (want a positive integer)");
            return None;
        }
        FlagLookup::Value(value) => value,
    };
    match value.parse::<usize>() {
        Ok(side) if side > 0 => Some(side),
        _ => {
            eprintln!("ignoring invalid --max-side value {value:?} (want a positive integer)");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_when_no_flags_are_passed() {
        // The test harness never passes the figure flags.
        let cli = FigureCli::parse();
        assert!(!cli.csv);
        assert_eq!(cli.json, None);
        assert_eq!(cli.max_side, None);
        assert_eq!(cli.engine, Engine::Skip);
        assert_eq!(cli.drains(), vec![1]);
        assert_eq!(cli.drains_or(&[FABRIC_BOUND_DRAINS]), vec![2]);
        assert_eq!(flag_value("no-such-flag"), None);
    }

    #[test]
    fn parses_engine_and_drains() {
        let cli = FigureCli::parse_from(
            &args(&["--engine", "calendar", "--drains", "1,2,4", "--csv"]),
            None,
            None,
            None,
        )
        .unwrap();
        assert!(cli.csv);
        assert_eq!(cli.engine, Engine::Calendar);
        assert_eq!(cli.drains(), vec![1, 2, 4]);

        let cli = FigureCli::parse_from(&args(&["--engine=parallel:3"]), None, None, None).unwrap();
        assert_eq!(cli.engine, Engine::Parallel { workers: 3 });
    }

    #[test]
    fn engine_without_value_is_one_fatal_diagnostic() {
        // Bare flag at the end of the line, flag followed by another
        // flag, and the `--engine=` spelling all produce the same single
        // message (the old parser printed two contradictory lines for the
        // first two and a bare parse error for the third).
        let expected = engine_value_missing();
        for case in [
            args(&["--engine"]),
            args(&["--engine", "--csv"]),
            args(&["--engine="]),
        ] {
            let err = FigureCli::parse_from(&case, None, None, None).unwrap_err();
            assert_eq!(err, expected, "case: {case:?}");
        }
    }

    #[test]
    fn unknown_engine_is_fatal() {
        let err = FigureCli::parse_from(&args(&["--engine", "warp"]), None, None, None).unwrap_err();
        assert!(err.contains("warp"), "diagnostic names the bad value: {err}");
        let err = FigureCli::parse_from(&args(&["--engine", "parallel:zero"]), None, None, None).unwrap_err();
        assert!(err.contains("zero"), "diagnostic names the bad count: {err}");
    }

    #[test]
    fn env_engine_is_the_default_and_the_flag_wins() {
        let cli = FigureCli::parse_from(&[], Some("calendar"), None, None).unwrap();
        assert_eq!(cli.engine, Engine::Calendar);
        let cli =
            FigureCli::parse_from(&args(&["--engine", "ticked"]), Some("calendar"), None, None).unwrap();
        assert_eq!(cli.engine, Engine::Ticked);
        // A broken env default must not silently fall back — unless the
        // flag overrides it, in which case the env value is never parsed.
        let err = FigureCli::parse_from(&[], Some("warp"), None, None).unwrap_err();
        assert!(err.starts_with("DALOREX_ENGINE:"), "{err}");
        let cli = FigureCli::parse_from(&args(&["--engine", "skip"]), Some("warp"), None, None).unwrap();
        assert_eq!(cli.engine, Engine::Skip);
    }

    #[test]
    fn verify_flag_parses_and_defaults_to_warn() {
        let cli = FigureCli::parse_from(&[], None, None, None).unwrap();
        assert_eq!(cli.verify, VerifyMode::Warn);
        let cli = FigureCli::parse_from(&args(&["--verify", "deny"]), None, None, None).unwrap();
        assert_eq!(cli.verify, VerifyMode::Deny);
        let cli = FigureCli::parse_from(&args(&["--verify=off"]), None, None, None).unwrap();
        assert_eq!(cli.verify, VerifyMode::Off);
    }

    #[test]
    fn verify_errors_are_fatal_and_the_flag_wins_over_the_env() {
        let expected = verify_value_missing();
        for case in [
            args(&["--verify"]),
            args(&["--verify", "--csv"]),
            args(&["--verify="]),
        ] {
            let err = FigureCli::parse_from(&case, None, None, None).unwrap_err();
            assert_eq!(err, expected, "case: {case:?}");
        }
        let err =
            FigureCli::parse_from(&args(&["--verify", "strict"]), None, None, None).unwrap_err();
        assert!(err.contains("strict"), "diagnostic names the bad value: {err}");

        // Env default, env error prefix, and flag-wins.
        let cli = FigureCli::parse_from(&[], None, None, Some("deny")).unwrap();
        assert_eq!(cli.verify, VerifyMode::Deny);
        let err = FigureCli::parse_from(&[], None, None, Some("strict")).unwrap_err();
        assert!(err.starts_with("DALOREX_VERIFY:"), "{err}");
        let cli =
            FigureCli::parse_from(&args(&["--verify", "warn"]), None, None, Some("strict")).unwrap();
        assert_eq!(cli.verify, VerifyMode::Warn);
    }

    #[test]
    fn faults_flag_parses_inline_specs_and_defaults_to_empty() {
        let cli = FigureCli::parse_from(&[], None, None, None).unwrap();
        assert!(cli.faults.is_empty());
        let cli = FigureCli::parse_from(
            &args(&["--faults", "stall:tile=3,start=50,end=400;link:tile=1,start=10,end=20"]),
            None,
            None,
            None,
        )
        .unwrap();
        assert_eq!(cli.faults.events.len(), 2);
        let cli =
            FigureCli::parse_from(&args(&["--faults=random:seed=7,count=4,horizon=2000"]), None, None, None)
                .unwrap();
        assert!(cli.faults.random.is_some());
    }

    #[test]
    fn faults_flag_reads_plan_files() {
        let path = std::env::temp_dir().join("dalorex_cli_test_plan.faults");
        std::fs::write(
            &path,
            "# two windows\nstall:tile=3,start=50,end=400\nslow:tile=1,factor=2,start=0,end=100\n",
        )
        .unwrap();
        let path = path.to_str().unwrap().to_string();
        let cli = FigureCli::parse_from(&args(&["--faults", &path]), None, None, None).unwrap();
        assert_eq!(cli.faults.events.len(), 2);
        // A readable file full of garbage is fatal — it must not silently
        // fall back to parsing the file *name* as a spec.
        std::fs::write(&path, "not a fault spec").unwrap();
        let err = FigureCli::parse_from(&args(&["--faults", &path]), None, None, None).unwrap_err();
        assert!(err.contains("fault plan file"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn faults_errors_are_fatal_and_the_flag_wins_over_the_env() {
        let expected = faults_value_missing();
        for case in [args(&["--faults"]), args(&["--faults", "--csv"]), args(&["--faults="])] {
            let err = FigureCli::parse_from(&case, None, None, None).unwrap_err();
            assert_eq!(err, expected, "case: {case:?}");
        }
        let err =
            FigureCli::parse_from(&args(&["--faults", "warp:tile=1"]), None, None, None).unwrap_err();
        assert!(err.contains("warp"), "diagnostic names the bad value: {err}");

        let cli =
            FigureCli::parse_from(&[], None, Some("stall:tile=0,start=1,end=2"), None).unwrap();
        assert_eq!(cli.faults.events.len(), 1);
        let err = FigureCli::parse_from(&[], None, Some("warp:tile=1"), None).unwrap_err();
        assert!(err.starts_with("DALOREX_FAULTS:"), "{err}");
        let cli = FigureCli::parse_from(
            &args(&["--faults", "link:tile=2,start=5,end=9"]),
            None,
            Some("warp:tile=1"),
            None,
        )
        .unwrap();
        assert_eq!(cli.faults.events.len(), 1);
    }

    #[test]
    fn entirely_invalid_drains_list_is_fatal() {
        // The old parser warned per entry and then silently fell back to
        // the default sweep.
        for case in [
            args(&["--drains", "x,y"]),
            args(&["--drains", "0"]),
            args(&["--drains", ""]),
            args(&["--drains"]),
            args(&["--drains", "--csv"]),
        ] {
            let err = FigureCli::parse_from(&case, None, None, None).unwrap_err();
            assert!(err.contains("--drains"), "case {case:?}: {err}");
        }
    }

    #[test]
    fn partially_invalid_drains_list_keeps_the_valid_entries() {
        let cli = FigureCli::parse_from(&args(&["--drains", "1,oops,4"]), None, None, None).unwrap();
        assert_eq!(cli.drains(), vec![1, 4]);
    }

    #[test]
    fn lookup_distinguishes_absent_from_value_missing() {
        assert_eq!(lookup_flag(&[], "engine"), FlagLookup::Absent);
        assert_eq!(
            lookup_flag(&args(&["--engine"]), "engine"),
            FlagLookup::ValueMissing
        );
        assert_eq!(
            lookup_flag(&args(&["--engine="]), "engine"),
            FlagLookup::ValueMissing
        );
        assert_eq!(
            lookup_flag(&args(&["--engine", "skip"]), "engine"),
            FlagLookup::Value("skip".to_string())
        );
        assert_eq!(
            lookup_flag(&args(&["--engine=skip"]), "engine"),
            FlagLookup::Value("skip".to_string())
        );
    }
}
