//! Sequential reference implementations of the evaluated kernels.
//!
//! The paper validates the Dalorex simulator by checking its program output
//! against sequential x86 executions of the GAP benchmark applications
//! (Section IV-A).  These functions play that role here: the simulator's
//! output arrays must match them exactly (BFS/SSSP/WCC/SPMV) or within a
//! convergence tolerance (PageRank).

use crate::csr::CsrGraph;
use crate::{VertexId, Weight};
use std::collections::VecDeque;

/// Sentinel depth/distance for vertices not reachable from the root.
pub const UNREACHED: u32 = u32::MAX;

/// Result of a BFS traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    depths: Vec<u32>,
}

impl BfsResult {
    /// Hop count from the root for every vertex ([`UNREACHED`] if
    /// unreachable).
    pub fn depths(&self) -> &[u32] {
        &self.depths
    }

    /// Number of vertices reachable from the root (including the root).
    pub fn reached(&self) -> usize {
        self.depths.iter().filter(|&&d| d != UNREACHED).count()
    }
}

/// Breadth-first search from `root`, returning hop counts.
///
/// # Panics
///
/// Panics if `root` is out of range for a non-empty graph.
pub fn bfs(graph: &CsrGraph, root: VertexId) -> BfsResult {
    let n = graph.num_vertices();
    let mut depths = vec![UNREACHED; n];
    if n == 0 {
        return BfsResult { depths };
    }
    assert!((root as usize) < n, "bfs root {root} out of range");
    depths[root as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        let next_depth = depths[v as usize] + 1;
        for (dst, _) in graph.neighbors(v) {
            if depths[dst as usize] == UNREACHED {
                depths[dst as usize] = next_depth;
                queue.push_back(dst);
            }
        }
    }
    BfsResult { depths }
}

/// Result of an SSSP computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsspResult {
    distances: Vec<u32>,
}

impl SsspResult {
    /// Shortest distance from the root for every vertex ([`UNREACHED`] if
    /// unreachable).
    pub fn distances(&self) -> &[u32] {
        &self.distances
    }
}

/// Single-source shortest paths from `root` with non-negative integer
/// weights (Dijkstra).
///
/// # Panics
///
/// Panics if `root` is out of range for a non-empty graph.
pub fn sssp(graph: &CsrGraph, root: VertexId) -> SsspResult {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = graph.num_vertices();
    let mut distances = vec![UNREACHED; n];
    if n == 0 {
        return SsspResult { distances };
    }
    assert!((root as usize) < n, "sssp root {root} out of range");
    distances[root as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u32, root)));
    while let Some(Reverse((dist, v))) = heap.pop() {
        if dist > distances[v as usize] {
            continue;
        }
        for (dst, weight) in graph.neighbors(v) {
            let candidate = dist.saturating_add(weight);
            if candidate < distances[dst as usize] {
                distances[dst as usize] = candidate;
                heap.push(Reverse((candidate, dst)));
            }
        }
    }
    SsspResult { distances }
}

/// Result of a weakly-connected-components labelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WccResult {
    labels: Vec<VertexId>,
}

impl WccResult {
    /// Component label per vertex. Two vertices have equal labels iff they
    /// are weakly connected; the label is the smallest vertex id in the
    /// component (the convention of the coloring-based algorithm the paper
    /// uses).
    pub fn labels(&self) -> &[VertexId] {
        &self.labels
    }

    /// Number of distinct components.
    pub fn num_components(&self) -> usize {
        let mut labels = self.labels.clone();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }
}

/// Weakly connected components via label propagation to the minimum vertex
/// id over the undirected closure of the graph.
pub fn wcc(graph: &CsrGraph) -> WccResult {
    let n = graph.num_vertices();
    let mut labels: Vec<VertexId> = (0..n as VertexId).collect();
    if n == 0 {
        return WccResult { labels };
    }
    let transpose = graph.transpose();
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n as VertexId {
            let mut best = labels[v as usize];
            for (dst, _) in graph.neighbors(v).chain(transpose.neighbors(v)) {
                best = best.min(labels[dst as usize]);
            }
            if best < labels[v as usize] {
                labels[v as usize] = best;
                changed = true;
            }
        }
    }
    WccResult { labels }
}

/// Fixed-point scale used for PageRank ranks inside the simulator.
///
/// The Dalorex PU is an integer ALU; the paper's kernels operate on 32-bit
/// words.  We represent ranks in fixed point with this scale (1.0 ==
/// `PAGERANK_ONE`) so that the simulated kernel and the reference produce
/// bit-identical results.
pub const PAGERANK_ONE: u64 = 1 << 20;

/// Damping factor (0.85) in [`PAGERANK_ONE`] fixed point.
pub const PAGERANK_DAMPING: u64 = (85 * PAGERANK_ONE) / 100;

/// Result of a PageRank computation in fixed point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageRankResult {
    ranks: Vec<u64>,
    iterations: usize,
}

impl PageRankResult {
    /// Fixed-point rank per vertex (scale [`PAGERANK_ONE`]).
    pub fn ranks(&self) -> &[u64] {
        &self.ranks
    }

    /// Number of epochs executed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Ranks converted to floating point.
    pub fn ranks_f64(&self) -> Vec<f64> {
        self.ranks
            .iter()
            .map(|&r| r as f64 / PAGERANK_ONE as f64)
            .collect()
    }
}

/// Push-based PageRank with integer fixed-point arithmetic, running a fixed
/// number of epochs (the paper runs PageRank with a barrier per epoch).
///
/// Each epoch, every vertex pushes `damping * rank / out_degree` to its
/// out-neighbors; the new rank is `(1 - damping) + sum(pushed)`.  Vertices
/// with no out-edges push nothing (their rank mass is dropped, as in the
/// GAP push implementation).
pub fn pagerank(graph: &CsrGraph, epochs: usize) -> PageRankResult {
    let n = graph.num_vertices();
    let mut ranks = vec![PAGERANK_ONE; n];
    let base = PAGERANK_ONE - PAGERANK_DAMPING;
    for _ in 0..epochs {
        let mut incoming = vec![0u64; n];
        for v in 0..n as VertexId {
            let degree = graph.out_degree(v) as u64;
            if degree == 0 {
                continue;
            }
            let share = (ranks[v as usize] * PAGERANK_DAMPING / PAGERANK_ONE) / degree;
            for (dst, _) in graph.neighbors(v) {
                incoming[dst as usize] += share;
            }
        }
        for v in 0..n {
            ranks[v] = base + incoming[v];
        }
    }
    PageRankResult {
        ranks,
        iterations: epochs,
    }
}

/// Result of a sparse matrix-vector multiplication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpmvResult {
    values: Vec<u64>,
}

impl SpmvResult {
    /// Output vector entries (`y[i] = sum_j A[i][j] * x[j]`), 64-bit to
    /// avoid overflow on high-degree rows.
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

/// Sparse matrix–vector multiplication `y = A * x`, where `A` is the graph's
/// adjacency matrix with `edge_values` as coefficients.
///
/// # Panics
///
/// Panics if `x.len() != graph.num_vertices()`.
pub fn spmv(graph: &CsrGraph, x: &[Weight]) -> SpmvResult {
    assert_eq!(
        x.len(),
        graph.num_vertices(),
        "input vector length must equal the vertex count"
    );
    let mut values = vec![0u64; graph.num_vertices()];
    for row in 0..graph.num_vertices() as VertexId {
        let mut acc = 0u64;
        for (col, coeff) in graph.neighbors(row) {
            acc += u64::from(coeff) * u64::from(x[col as usize]);
        }
        values[row as usize] = acc;
    }
    SpmvResult { values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::{Edge, EdgeList};

    fn chain() -> CsrGraph {
        // 0 -> 1 -> 2 -> 3 with weights 2, 3, 4.
        let edges = EdgeList::from_edges(
            4,
            [Edge::new(0, 1, 2), Edge::new(1, 2, 3), Edge::new(2, 3, 4)],
        )
        .unwrap();
        CsrGraph::from_edge_list(&edges)
    }

    fn diamond_with_shortcut() -> CsrGraph {
        // 0 -> 1 (1), 0 -> 2 (10), 1 -> 2 (1), 2 -> 3 (1), 1 -> 3 (10)
        let edges = EdgeList::from_edges(
            4,
            [
                Edge::new(0, 1, 1),
                Edge::new(0, 2, 10),
                Edge::new(1, 2, 1),
                Edge::new(2, 3, 1),
                Edge::new(1, 3, 10),
            ],
        )
        .unwrap();
        CsrGraph::from_edge_list(&edges)
    }

    #[test]
    fn bfs_computes_hop_counts() {
        let g = chain();
        let result = bfs(&g, 0);
        assert_eq!(result.depths(), &[0, 1, 2, 3]);
        assert_eq!(result.reached(), 4);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = chain();
        let result = bfs(&g, 2);
        assert_eq!(result.depths(), &[UNREACHED, UNREACHED, 0, 1]);
        assert_eq!(result.reached(), 2);
    }

    #[test]
    fn bfs_empty_graph() {
        let g = CsrGraph::from_edge_list(&EdgeList::new(0));
        assert_eq!(bfs(&g, 0).depths().len(), 0);
    }

    #[test]
    fn sssp_prefers_cheaper_multi_hop_path() {
        let g = diamond_with_shortcut();
        let result = sssp(&g, 0);
        // 0->1 = 1, 0->1->2 = 2 (beats direct 10), 0->1->2->3 = 3 (beats 11).
        assert_eq!(result.distances(), &[0, 1, 2, 3]);
    }

    #[test]
    fn sssp_weights_accumulate() {
        let g = chain();
        assert_eq!(sssp(&g, 0).distances(), &[0, 2, 5, 9]);
    }

    #[test]
    fn wcc_labels_components_by_minimum_vertex() {
        // Two components: {0,1,2} and {3,4}.
        let edges = EdgeList::from_edges(
            5,
            [Edge::new(0, 1, 1), Edge::new(2, 1, 1), Edge::new(4, 3, 1)],
        )
        .unwrap();
        let g = CsrGraph::from_edge_list(&edges);
        let result = wcc(&g);
        assert_eq!(result.labels(), &[0, 0, 0, 3, 3]);
        assert_eq!(result.num_components(), 2);
    }

    #[test]
    fn wcc_isolated_vertices_are_their_own_component() {
        let g = CsrGraph::from_edge_list(&EdgeList::new(3));
        let result = wcc(&g);
        assert_eq!(result.labels(), &[0, 1, 2]);
        assert_eq!(result.num_components(), 3);
    }

    #[test]
    fn pagerank_conserves_base_rank_and_orders_hubs_first() {
        // Star: every leaf points to vertex 0.
        let edges = EdgeList::from_edges(
            5,
            [
                Edge::new(1, 0, 1),
                Edge::new(2, 0, 1),
                Edge::new(3, 0, 1),
                Edge::new(4, 0, 1),
            ],
        )
        .unwrap();
        let g = CsrGraph::from_edge_list(&edges);
        let result = pagerank(&g, 10);
        let ranks = result.ranks();
        assert!(ranks[0] > ranks[1]);
        assert_eq!(ranks[1], ranks[2]);
        assert_eq!(result.iterations(), 10);
    }

    #[test]
    fn pagerank_zero_epochs_returns_initial_ranks() {
        let g = chain();
        let result = pagerank(&g, 0);
        assert!(result.ranks().iter().all(|&r| r == PAGERANK_ONE));
    }

    #[test]
    fn spmv_matches_dense_expansion() {
        let g = diamond_with_shortcut();
        let x = vec![1, 2, 3, 4];
        let result = spmv(&g, &x);
        // Row 0: 1*x[1] + 10*x[2] = 2 + 30 = 32
        // Row 1: 1*x[2] + 10*x[3] = 3 + 40 = 43
        // Row 2: 1*x[3] = 4
        // Row 3: 0
        assert_eq!(result.values(), &[32, 43, 4, 0]);
    }

    #[test]
    #[should_panic(expected = "input vector length")]
    fn spmv_rejects_wrong_vector_length() {
        let g = chain();
        let _ = spmv(&g, &[1, 2]);
    }
}
