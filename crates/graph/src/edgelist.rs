//! Weighted edge-list representation and cleanup utilities.
//!
//! Generators produce edge lists; [`crate::csr::CsrGraph`] is built from
//! them. The paper stores graphs in CSR with four arrays; the edge list is
//! the intermediate, order-insensitive form.

use crate::{GraphError, VertexId, Weight};

/// A single directed, weighted edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight (used by SSSP and SPMV; BFS/WCC/PageRank ignore it).
    pub weight: Weight,
}

impl Edge {
    /// Creates a new edge.
    ///
    /// ```
    /// use dalorex_graph::Edge;
    /// let e = Edge::new(0, 3, 7);
    /// assert_eq!((e.src, e.dst, e.weight), (0, 3, 7));
    /// ```
    pub fn new(src: VertexId, dst: VertexId, weight: Weight) -> Self {
        Edge { src, dst, weight }
    }

    /// Returns the same edge with source and destination swapped.
    pub fn reversed(self) -> Self {
        Edge {
            src: self.dst,
            dst: self.src,
            weight: self.weight,
        }
    }
}

/// A collection of directed edges over a fixed vertex count.
///
/// The vertex count is explicit (rather than inferred from the maximum
/// vertex id) because Dalorex distributes the vertex arrays in equal chunks
/// across tiles: isolated trailing vertices still occupy chunk space.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeList {
    num_vertices: usize,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Creates an edge list from parts, validating that every endpoint is in
    /// range.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfBounds`] if any edge references a
    /// vertex `>= num_vertices`.
    pub fn from_edges(
        num_vertices: usize,
        edges: impl IntoIterator<Item = Edge>,
    ) -> Result<Self, GraphError> {
        let mut list = EdgeList::new(num_vertices);
        for edge in edges {
            list.try_push(edge)?;
        }
        Ok(list)
    }

    /// Number of vertices the list is defined over.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges currently stored.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the list holds no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edges as a slice, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Appends an edge after bounds-checking both endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfBounds`] if either endpoint is out of
    /// range.
    pub fn try_push(&mut self, edge: Edge) -> Result<(), GraphError> {
        let n = self.num_vertices as u64;
        for endpoint in [edge.src, edge.dst] {
            if u64::from(endpoint) >= n {
                return Err(GraphError::VertexOutOfBounds {
                    vertex: u64::from(endpoint),
                    num_vertices: n,
                });
            }
        }
        self.edges.push(edge);
        Ok(())
    }

    /// Appends an edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range. Use [`EdgeList::try_push`]
    /// for a fallible variant.
    pub fn push(&mut self, edge: Edge) {
        self.try_push(edge)
            .expect("edge endpoints must be within the vertex range");
    }

    /// Iterates over the edges.
    pub fn iter(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter()
    }

    /// Removes duplicate `(src, dst)` pairs, keeping the smallest weight,
    /// and removes self-loops. Returns the number of edges removed.
    ///
    /// Real-world and RMAT generators both produce duplicates; the GAP
    /// benchmark's loaders perform the same cleanup.
    pub fn dedup_and_remove_self_loops(&mut self) -> usize {
        let before = self.edges.len();
        self.edges.retain(|e| e.src != e.dst);
        self.edges
            .sort_unstable_by_key(|e| (e.src, e.dst, e.weight));
        self.edges.dedup_by_key(|e| (e.src, e.dst));
        before - self.edges.len()
    }

    /// Adds the reverse of every edge (same weight), producing a symmetric
    /// (undirected) edge set. Does not deduplicate.
    pub fn symmetrize(&mut self) {
        let reversed: Vec<Edge> = self.edges.iter().map(|e| e.reversed()).collect();
        self.edges.extend(reversed);
    }

    /// Sorts edges by `(src, dst)`; useful for deterministic CSR layout.
    pub fn sort(&mut self) {
        self.edges.sort_unstable_by_key(|e| (e.src, e.dst));
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<usize> {
        let mut degrees = vec![0usize; self.num_vertices];
        for edge in &self.edges {
            degrees[edge.src as usize] += 1;
        }
        degrees
    }
}

impl Extend<Edge> for EdgeList {
    fn extend<T: IntoIterator<Item = Edge>>(&mut self, iter: T) {
        for edge in iter {
            self.push(edge);
        }
    }
}

impl<'a> IntoIterator for &'a EdgeList {
    type Item = &'a Edge;
    type IntoIter = std::slice::Iter<'a, Edge>;

    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut list = EdgeList::new(4);
        list.push(Edge::new(0, 1, 5));
        list.push(Edge::new(1, 2, 1));
        assert_eq!(list.num_edges(), 2);
        assert_eq!(list.num_vertices(), 4);
        assert!(!list.is_empty());
    }

    #[test]
    fn try_push_rejects_out_of_bounds() {
        let mut list = EdgeList::new(2);
        let err = list.try_push(Edge::new(0, 2, 1)).unwrap_err();
        assert_eq!(
            err,
            GraphError::VertexOutOfBounds {
                vertex: 2,
                num_vertices: 2
            }
        );
        assert!(list.is_empty());
    }

    #[test]
    #[should_panic(expected = "within the vertex range")]
    fn push_panics_on_out_of_bounds() {
        let mut list = EdgeList::new(1);
        list.push(Edge::new(0, 1, 1));
    }

    #[test]
    fn from_edges_validates() {
        let ok = EdgeList::from_edges(3, [Edge::new(0, 1, 1), Edge::new(2, 0, 2)]);
        assert!(ok.is_ok());
        let err = EdgeList::from_edges(3, [Edge::new(0, 3, 1)]);
        assert!(err.is_err());
    }

    #[test]
    fn dedup_removes_self_loops_and_duplicates() {
        let mut list = EdgeList::from_edges(
            3,
            [
                Edge::new(0, 1, 9),
                Edge::new(0, 1, 3),
                Edge::new(1, 1, 2),
                Edge::new(2, 0, 4),
            ],
        )
        .unwrap();
        let removed = list.dedup_and_remove_self_loops();
        assert_eq!(removed, 2);
        assert_eq!(list.num_edges(), 2);
        // The kept duplicate is the one with the smallest weight.
        let kept = list.iter().find(|e| e.src == 0 && e.dst == 1).unwrap();
        assert_eq!(kept.weight, 3);
    }

    #[test]
    fn symmetrize_doubles_edges() {
        let mut list = EdgeList::from_edges(3, [Edge::new(0, 1, 1), Edge::new(1, 2, 2)]).unwrap();
        list.symmetrize();
        assert_eq!(list.num_edges(), 4);
        assert!(list.iter().any(|e| e.src == 1 && e.dst == 0));
        assert!(list.iter().any(|e| e.src == 2 && e.dst == 1));
    }

    #[test]
    fn out_degrees_counts_sources() {
        let list = EdgeList::from_edges(
            4,
            [Edge::new(0, 1, 1), Edge::new(0, 2, 1), Edge::new(3, 0, 1)],
        )
        .unwrap();
        assert_eq!(list.out_degrees(), vec![2, 0, 0, 1]);
    }

    #[test]
    fn reversed_edge_swaps_endpoints() {
        let e = Edge::new(3, 7, 11);
        let r = e.reversed();
        assert_eq!((r.src, r.dst, r.weight), (7, 3, 11));
    }

    #[test]
    fn extend_and_iter() {
        let mut list = EdgeList::new(5);
        list.extend([Edge::new(0, 1, 1), Edge::new(1, 2, 1)]);
        let collected: Vec<_> = (&list).into_iter().copied().collect();
        assert_eq!(collected.len(), 2);
    }
}
