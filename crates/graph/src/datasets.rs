//! Named dataset catalog.
//!
//! The paper's figures refer to datasets by short labels: `AZ` (Amazon),
//! `WK` (Wikipedia), `LJ` (LiveJournal) and `R16`/`R22`/`R25`/`R26` (RMAT at
//! scale 16/22/25/26).  This module maps those labels to generator
//! configurations.
//!
//! Because the original datasets are far too large to regenerate and
//! simulate on a single machine inside the benchmark harness, every label
//! has a *reproduction scale factor*: the generated graph keeps the original
//! shape (degree distribution, average degree, RMAT parameters) but at a
//! reduced vertex count.  The scale can be raised towards the paper's
//! original sizes via [`DatasetCatalog::with_scale_shift`] or the
//! `DALOREX_FULL` environment variable used by the bench harness.

use crate::csr::CsrGraph;
use crate::generators::realworld::RealWorldDataset;
use crate::generators::rmat::RmatConfig;
use crate::GraphError;

/// A dataset label used by the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetLabel {
    /// Amazon co-purchase network stand-in.
    Amazon,
    /// Wikipedia hyperlink graph stand-in.
    Wikipedia,
    /// LiveJournal social network stand-in.
    LiveJournal,
    /// RMAT graph of the given scale (the paper uses 16, 22, 25, 26).
    Rmat(u32),
}

impl DatasetLabel {
    /// The label string used in the paper's figure axes.
    pub fn as_str(self) -> String {
        match self {
            DatasetLabel::Amazon => "AZ".to_string(),
            DatasetLabel::Wikipedia => "WK".to_string(),
            DatasetLabel::LiveJournal => "LJ".to_string(),
            DatasetLabel::Rmat(scale) => format!("R{scale}"),
        }
    }

    /// Parses a label string (`"AZ"`, `"WK"`, `"LJ"`, `"R22"`, ...).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownDataset`] for unrecognized labels.
    pub fn parse(label: &str) -> Result<Self, GraphError> {
        match label {
            "AZ" => Ok(DatasetLabel::Amazon),
            "WK" => Ok(DatasetLabel::Wikipedia),
            "LJ" => Ok(DatasetLabel::LiveJournal),
            other => {
                if let Some(scale) = other.strip_prefix('R') {
                    if let Ok(scale) = scale.parse::<u32>() {
                        return Ok(DatasetLabel::Rmat(scale));
                    }
                }
                Err(GraphError::UnknownDataset {
                    label: other.to_string(),
                })
            }
        }
    }

    /// The four datasets of Figure 5 (AZ, WK, LJ, R22).
    pub fn figure5_set() -> [DatasetLabel; 4] {
        [
            DatasetLabel::Amazon,
            DatasetLabel::Wikipedia,
            DatasetLabel::LiveJournal,
            DatasetLabel::Rmat(22),
        ]
    }

    /// The four RMAT datasets of Figure 6 (R16, R22, R25, R26).
    pub fn figure6_set() -> [DatasetLabel; 4] {
        [
            DatasetLabel::Rmat(16),
            DatasetLabel::Rmat(22),
            DatasetLabel::Rmat(25),
            DatasetLabel::Rmat(26),
        ]
    }
}

/// Catalog that instantiates labelled datasets at a chosen reproduction
/// scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetCatalog {
    /// How many powers of two to subtract from each dataset's original
    /// vertex-count exponent. Zero reproduces the paper's sizes.
    scale_shift: u32,
    seed: u64,
}

impl Default for DatasetCatalog {
    fn default() -> Self {
        DatasetCatalog::new()
    }
}

impl DatasetCatalog {
    /// Default catalog: datasets are reduced by 2^10 (1024x fewer vertices)
    /// so that the whole figure suite runs on one machine. The degree
    /// structure and generator parameters are unchanged.
    pub fn new() -> Self {
        DatasetCatalog {
            scale_shift: 10,
            seed: 0xDA10,
        }
    }

    /// Catalog at the paper's original sizes (use with care: RMAT-26 needs
    /// roughly 12 GB for the dataset alone).
    pub fn full_scale() -> Self {
        DatasetCatalog {
            scale_shift: 0,
            seed: 0xDA10,
        }
    }

    /// Overrides the scale shift: generated vertex counts are the original
    /// exponent minus `shift`, floored at 2^6 vertices.
    pub fn with_scale_shift(mut self, shift: u32) -> Self {
        self.scale_shift = shift;
        self
    }

    /// Overrides the generator seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The RMAT scale (log2 vertex count) this catalog will use for a label.
    pub fn effective_scale(&self, label: DatasetLabel) -> u32 {
        let original = match label {
            DatasetLabel::Amazon => 18,      // ~262K vertices
            DatasetLabel::Wikipedia => 22,   // ~4.2M vertices
            DatasetLabel::LiveJournal => 22, // ~5.3M vertices (round down to 2^22)
            DatasetLabel::Rmat(scale) => scale,
        };
        original.saturating_sub(self.scale_shift).max(6)
    }

    /// Builds the dataset for `label` at this catalog's scale.
    ///
    /// # Errors
    ///
    /// Propagates generator configuration errors.
    pub fn build(&self, label: DatasetLabel) -> Result<CsrGraph, GraphError> {
        let scale = self.effective_scale(label);
        let num_vertices = 1usize << scale;
        match label {
            DatasetLabel::Amazon => RealWorldDataset::Amazon
                .config(num_vertices)
                .seed(self.seed)
                .build(),
            DatasetLabel::Wikipedia => RealWorldDataset::Wikipedia
                .config(num_vertices)
                .seed(self.seed.wrapping_add(1))
                .build(),
            DatasetLabel::LiveJournal => RealWorldDataset::LiveJournal
                .config(num_vertices)
                .seed(self.seed.wrapping_add(2))
                .build(),
            DatasetLabel::Rmat(_) => RmatConfig::new(scale, 10)
                .seed(self.seed.wrapping_add(3))
                .build(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_strings() {
        for label in [
            DatasetLabel::Amazon,
            DatasetLabel::Wikipedia,
            DatasetLabel::LiveJournal,
            DatasetLabel::Rmat(22),
        ] {
            assert_eq!(DatasetLabel::parse(&label.as_str()).unwrap(), label);
        }
        assert!(DatasetLabel::parse("nope").is_err());
        assert!(DatasetLabel::parse("Rxy").is_err());
    }

    #[test]
    fn figure_sets_match_paper() {
        let f5: Vec<String> = DatasetLabel::figure5_set()
            .iter()
            .map(|l| l.as_str())
            .collect();
        assert_eq!(f5, ["AZ", "WK", "LJ", "R22"]);
        let f6: Vec<String> = DatasetLabel::figure6_set()
            .iter()
            .map(|l| l.as_str())
            .collect();
        assert_eq!(f6, ["R16", "R22", "R25", "R26"]);
    }

    #[test]
    fn catalog_reduces_scale_but_keeps_ordering() {
        let catalog = DatasetCatalog::new();
        // Wikipedia/LiveJournal are larger than Amazon in the original and
        // must stay larger after scaling.
        assert!(
            catalog.effective_scale(DatasetLabel::Wikipedia)
                >= catalog.effective_scale(DatasetLabel::Amazon)
        );
        // The reduced RMAT-26 must be larger than the reduced RMAT-22.
        assert!(
            catalog.effective_scale(DatasetLabel::Rmat(26))
                > catalog.effective_scale(DatasetLabel::Rmat(22))
        );
    }

    #[test]
    fn catalog_builds_small_datasets() {
        let catalog = DatasetCatalog::new().with_scale_shift(14);
        for label in DatasetLabel::figure5_set() {
            let graph = catalog.build(label).unwrap();
            assert!(graph.num_vertices() >= 64);
            assert!(graph.num_edges() > 0, "{} has no edges", label.as_str());
        }
    }

    #[test]
    fn scale_shift_floors_at_64_vertices() {
        let catalog = DatasetCatalog::new().with_scale_shift(30);
        assert_eq!(catalog.effective_scale(DatasetLabel::Rmat(16)), 6);
    }

    #[test]
    fn full_scale_catalog_matches_paper_exponents() {
        let catalog = DatasetCatalog::full_scale();
        assert_eq!(catalog.effective_scale(DatasetLabel::Rmat(26)), 26);
        assert_eq!(catalog.effective_scale(DatasetLabel::Wikipedia), 22);
    }
}
