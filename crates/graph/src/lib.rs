//! Sparse-graph substrate for the Dalorex reproduction.
//!
//! The Dalorex paper (HPCA 2023) evaluates its data-local execution model on
//! graph analytics (BFS, SSSP, PageRank, WCC) and sparse matrix–vector
//! multiplication.  This crate provides everything those experiments need on
//! the data side:
//!
//! * [`csr`] — the Compressed-Sparse-Row representation used by the paper
//!   (four arrays: `ptr`, `edge_idx`, `edge_values`, plus per-vertex state),
//!   including builders from edge lists.
//! * [`edgelist`] — a plain weighted edge-list representation and utilities
//!   to deduplicate, relabel and symmetrize edges.
//! * [`generators`] — synthetic dataset generators: the RMAT/Kronecker
//!   generator used for the paper's RMAT-16/22/25/26 datasets, uniform
//!   Erdős–Rényi graphs, regular grids, and scale-free stand-ins for the
//!   paper's real-world datasets (Amazon, Wikipedia, LiveJournal).
//! * [`mod@reference`] — sequential reference implementations of every evaluated
//!   kernel.  The paper validates its simulator output against sequential
//!   x86 executions; we validate against these functions.
//! * [`stats`] — degree-distribution and partition-balance statistics used to
//!   reason about work balance across tiles.
//! * [`datasets`] — named dataset catalog mapping the paper's dataset labels
//!   (AZ, WK, LJ, R16..R26) to generator configurations at reproduction
//!   scale.
//!
//! # Example
//!
//! ```
//! use dalorex_graph::generators::rmat::RmatConfig;
//! use dalorex_graph::reference;
//!
//! # fn main() -> Result<(), dalorex_graph::GraphError> {
//! let graph = RmatConfig::new(8, 8).seed(42).build()?;
//! let bfs = reference::bfs(&graph, 0);
//! assert_eq!(bfs.depths().len(), graph.num_vertices());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod datasets;
pub mod edgelist;
pub mod generators;
pub mod reference;
pub mod stats;

mod error;

pub use csr::CsrGraph;
pub use edgelist::{Edge, EdgeList};
pub use error::GraphError;

/// Vertex identifier. The paper uses 32-bit indices ("a 32-bit Dalorex can
/// process graphs of up to 2^32 edges"); we use `u32` throughout.
pub type VertexId = u32;

/// Edge weight type. The paper's SSSP and SPMV use integer-valued weights in
/// the simulator; we follow that choice so that all simulator arithmetic is
/// exact and bit-reproducible.
pub type Weight = u32;
