use std::fmt;

/// Error type for graph construction and generation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge references a vertex outside `0..num_vertices`.
    VertexOutOfBounds {
        /// The offending vertex id.
        vertex: u64,
        /// Number of vertices in the graph being built.
        num_vertices: u64,
    },
    /// The CSR arrays are mutually inconsistent (e.g. `ptr` is not monotone,
    /// or its last entry does not equal the edge count).
    InconsistentCsr {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A generator was configured with parameters it cannot satisfy
    /// (e.g. zero vertices, or probabilities that do not sum to 1).
    InvalidGeneratorConfig {
        /// Human-readable description of the invalid parameter.
        reason: String,
    },
    /// The requested dataset label is not in the catalog.
    UnknownDataset {
        /// The label that was requested.
        label: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfBounds {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} is out of bounds for a graph with {num_vertices} vertices"
            ),
            GraphError::InconsistentCsr { reason } => {
                write!(f, "inconsistent CSR arrays: {reason}")
            }
            GraphError::InvalidGeneratorConfig { reason } => {
                write!(f, "invalid generator configuration: {reason}")
            }
            GraphError::UnknownDataset { label } => {
                write!(f, "unknown dataset label: {label}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = GraphError::VertexOutOfBounds {
            vertex: 10,
            num_vertices: 4,
        };
        let msg = err.to_string();
        assert!(msg.contains("10"));
        assert!(msg.contains('4'));

        let err = GraphError::UnknownDataset {
            label: "XX".to_string(),
        };
        assert!(err.to_string().contains("XX"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
