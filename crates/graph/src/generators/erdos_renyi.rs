//! Uniform (Erdős–Rényi-style) random graph generator.
//!
//! RMAT graphs have heavy-tailed degree distributions; a uniform random
//! graph is the opposite extreme.  The Dalorex ablation on data placement
//! (low-order-bit chunking vs. vertex-centric placement) behaves very
//! differently on the two, so tests and ablation benches use both.

use super::{ensure, random_weight};
use crate::csr::CsrGraph;
use crate::edgelist::{Edge, EdgeList};
use crate::{GraphError, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration (builder) for the uniform random graph generator.
///
/// Generates `num_vertices * avg_degree` directed edges with independently
/// uniform endpoints, then removes duplicates and self-loops.
///
/// ```
/// use dalorex_graph::generators::erdos_renyi::UniformConfig;
///
/// # fn main() -> Result<(), dalorex_graph::GraphError> {
/// let graph = UniformConfig::new(256, 4).seed(1).build()?;
/// assert_eq!(graph.num_vertices(), 256);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformConfig {
    num_vertices: usize,
    avg_degree: usize,
    seed: u64,
}

impl UniformConfig {
    /// Creates a configuration for `num_vertices` vertices with an average
    /// out-degree of `avg_degree`.
    pub fn new(num_vertices: usize, avg_degree: usize) -> Self {
        UniformConfig {
            num_vertices,
            avg_degree,
            seed: 0,
        }
    }

    /// Sets the RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidGeneratorConfig`] if the vertex count is
    /// zero, the degree is zero, or the vertex count exceeds `u32` range.
    pub fn build_edge_list(&self) -> Result<EdgeList, GraphError> {
        ensure(self.num_vertices > 0, "vertex count must be non-zero")?;
        ensure(self.avg_degree > 0, "average degree must be non-zero")?;
        ensure(
            self.num_vertices <= u32::MAX as usize,
            "vertex count must fit in 32 bits",
        )?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut edges = EdgeList::new(self.num_vertices);
        let target = self.num_vertices * self.avg_degree;
        for _ in 0..target {
            let src = rng.gen_range(0..self.num_vertices) as VertexId;
            let dst = rng.gen_range(0..self.num_vertices) as VertexId;
            edges.push(Edge::new(src, dst, random_weight(&mut rng)));
        }
        edges.dedup_and_remove_self_loops();
        Ok(edges)
    }

    /// Generates the graph in CSR form.
    ///
    /// # Errors
    ///
    /// See [`UniformConfig::build_edge_list`].
    pub fn build(&self) -> Result<CsrGraph, GraphError> {
        Ok(CsrGraph::from_edge_list(&self.build_edge_list()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        let g = UniformConfig::new(128, 4).seed(7).build().unwrap();
        assert_eq!(g.num_vertices(), 128);
        assert!(g.num_edges() > 128);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = UniformConfig::new(64, 3).seed(5).build().unwrap();
        let b = UniformConfig::new(64, 3).seed(5).build().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn degree_distribution_is_flat_compared_to_rmat() {
        let g = UniformConfig::new(1024, 8).seed(1).build().unwrap();
        let max_degree = (0..g.num_vertices() as VertexId)
            .map(|v| g.out_degree(v))
            .max()
            .unwrap();
        // A uniform graph's max degree stays within a small factor of the
        // mean (Poisson tail), unlike RMAT's power-law tail.
        assert!((max_degree as f64) < 4.0 * g.average_degree());
    }

    #[test]
    fn rejects_invalid_configs() {
        assert!(UniformConfig::new(0, 4).build().is_err());
        assert!(UniformConfig::new(4, 0).build().is_err());
    }
}
