//! Scale-free stand-ins for the paper's real-world datasets.
//!
//! The paper evaluates on three real-world graphs that we cannot ship:
//! Amazon (262K vertices, 1.2M edges), Wikipedia (4.2M vertices, 101M
//! edges) and LiveJournal (5.3M vertices, 79M edges).  What those graphs
//! contribute to the paper's results is their *shape*: a scale-free
//! (power-law) degree distribution with a small set of hot vertices, a
//! given average degree, and a small diameter — these drive work imbalance,
//! NoC endpoint contention, and the number of frontier epochs.
//!
//! [`ScaleFreeConfig`] generates graphs with those shape parameters using a
//! preferential-attachment process (Barabási–Albert with extra random
//! edges), and [`RealWorldDataset`] carries named presets whose average
//! degree and hub skew match the published statistics of each dataset at a
//! configurable (default reduced) scale.  See `DESIGN.md` §3.

use super::{ensure, random_weight};
use crate::csr::CsrGraph;
use crate::edgelist::{Edge, EdgeList};
use crate::{GraphError, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Named real-world dataset whose shape this module reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RealWorldDataset {
    /// Amazon product co-purchase network ("AZ" in the paper's figures):
    /// 262K vertices, 1.2M edges, average degree ~4.7.
    Amazon,
    /// Wikipedia hyperlink graph ("WK"): 4.2M vertices, 101M edges, average
    /// degree ~24; the paper notes its structure leads to more epochs.
    Wikipedia,
    /// LiveJournal social network ("LJ"): 5.3M vertices, 79M edges, average
    /// degree ~15.
    LiveJournal,
}

impl RealWorldDataset {
    /// Average out-degree of the original dataset.
    pub fn average_degree(self) -> usize {
        match self {
            RealWorldDataset::Amazon => 5,
            RealWorldDataset::Wikipedia => 24,
            RealWorldDataset::LiveJournal => 15,
        }
    }

    /// Vertex count of the original dataset.
    pub fn original_vertices(self) -> usize {
        match self {
            RealWorldDataset::Amazon => 262_000,
            RealWorldDataset::Wikipedia => 4_200_000,
            RealWorldDataset::LiveJournal => 5_300_000,
        }
    }

    /// The two-letter label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            RealWorldDataset::Amazon => "AZ",
            RealWorldDataset::Wikipedia => "WK",
            RealWorldDataset::LiveJournal => "LJ",
        }
    }

    /// A scale-free generator configuration matching this dataset's shape at
    /// a reduced vertex count (`num_vertices`).
    pub fn config(self, num_vertices: usize) -> ScaleFreeConfig {
        ScaleFreeConfig::new(num_vertices, self.average_degree()).seed(match self {
            RealWorldDataset::Amazon => 0xA2,
            RealWorldDataset::Wikipedia => 0x31,
            RealWorldDataset::LiveJournal => 0x17,
        })
    }
}

/// Configuration (builder) for the scale-free (preferential attachment)
/// generator.
///
/// Vertices are added one at a time; each new vertex attaches `avg_degree/2`
/// edges to existing vertices chosen proportionally to their current degree
/// (plus one), and the same number of uniformly random edges. This yields a
/// power-law in-degree tail (hot vertices) with the requested average
/// degree, while keeping generation `O(V * degree)`.
///
/// ```
/// use dalorex_graph::generators::realworld::ScaleFreeConfig;
///
/// # fn main() -> Result<(), dalorex_graph::GraphError> {
/// let graph = ScaleFreeConfig::new(512, 8).seed(3).build()?;
/// assert_eq!(graph.num_vertices(), 512);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleFreeConfig {
    num_vertices: usize,
    avg_degree: usize,
    seed: u64,
}

impl ScaleFreeConfig {
    /// Creates a configuration for `num_vertices` vertices with an average
    /// degree of roughly `avg_degree`.
    pub fn new(num_vertices: usize, avg_degree: usize) -> Self {
        ScaleFreeConfig {
            num_vertices,
            avg_degree,
            seed: 0,
        }
    }

    /// Sets the RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidGeneratorConfig`] if fewer than two
    /// vertices or a zero degree is requested, or the vertex count exceeds
    /// 32-bit range.
    pub fn build_edge_list(&self) -> Result<EdgeList, GraphError> {
        ensure(
            self.num_vertices >= 2,
            "scale-free generator needs at least two vertices",
        )?;
        ensure(self.avg_degree > 0, "average degree must be non-zero")?;
        ensure(
            self.num_vertices <= u32::MAX as usize,
            "vertex count must fit in 32 bits",
        )?;

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut edges = EdgeList::new(self.num_vertices);
        // `attachment` holds one entry per existing edge endpoint plus one
        // per vertex, so sampling uniformly from it is degree-proportional
        // sampling (the classic Barabási–Albert urn).
        let mut attachment: Vec<VertexId> = Vec::with_capacity(
            self.num_vertices + self.num_vertices * self.avg_degree,
        );
        attachment.push(0);
        let per_vertex_pref = (self.avg_degree / 2).max(1);
        let per_vertex_rand = self.avg_degree - per_vertex_pref;
        for v in 1..self.num_vertices {
            let v = v as VertexId;
            attachment.push(v);
            for _ in 0..per_vertex_pref {
                let target = attachment[rng.gen_range(0..attachment.len())];
                if target != v {
                    let w = random_weight(&mut rng);
                    edges.push(Edge::new(v, target, w));
                    attachment.push(target);
                    attachment.push(v);
                }
            }
            for _ in 0..per_vertex_rand {
                let target = rng.gen_range(0..u64::from(v)) as VertexId;
                let w = random_weight(&mut rng);
                edges.push(Edge::new(v, target, w));
            }
        }
        // Scale-free web/social graphs are directed but strongly connected in
        // the large; adding the reverse direction for a third of the edges
        // keeps most of the graph reachable from any root, like the paper's
        // BFS/SSSP experiments require, without making it fully symmetric.
        let reverse: Vec<Edge> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 == 0)
            .map(|(_, e)| e.reversed())
            .collect();
        edges.extend(reverse);
        edges.dedup_and_remove_self_loops();
        Ok(edges)
    }

    /// Generates the graph in CSR form.
    ///
    /// # Errors
    ///
    /// See [`ScaleFreeConfig::build_edge_list`].
    pub fn build(&self) -> Result<CsrGraph, GraphError> {
        Ok(CsrGraph::from_edge_list(&self.build_edge_list()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn generates_requested_size() {
        let g = ScaleFreeConfig::new(256, 6).seed(1).build().unwrap();
        assert_eq!(g.num_vertices(), 256);
        assert!(g.num_edges() > 256);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = ScaleFreeConfig::new(128, 6).seed(9).build().unwrap();
        let b = ScaleFreeConfig::new(128, 6).seed(9).build().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn has_hot_vertices() {
        let g = ScaleFreeConfig::new(2048, 8).seed(5).build().unwrap();
        let stats = DegreeStats::from_graph(&g);
        // Preferential attachment must concentrate in-degree on hubs.
        assert!(
            stats.max_total_degree as f64 > 10.0 * stats.mean_total_degree,
            "max {} vs mean {}",
            stats.max_total_degree,
            stats.mean_total_degree
        );
    }

    #[test]
    fn dataset_presets_have_expected_labels_and_degrees() {
        assert_eq!(RealWorldDataset::Amazon.label(), "AZ");
        assert_eq!(RealWorldDataset::Wikipedia.label(), "WK");
        assert_eq!(RealWorldDataset::LiveJournal.label(), "LJ");
        assert!(RealWorldDataset::Wikipedia.average_degree() > RealWorldDataset::Amazon.average_degree());
        let g = RealWorldDataset::Amazon.config(512).build().unwrap();
        assert_eq!(g.num_vertices(), 512);
    }

    #[test]
    fn paper_scale_generation_holds_shape_invariants() {
        // The first paper-scale rung (ISSUE 7): 1M vertices targeting ~16M
        // edges.  Requested average degree 12 plus the one-third reverse
        // edges lands near 16M after dedup; the invariants below are what
        // the Dalorex evaluation actually depends on — edge budget, mean
        // degree near the request, and a power-law hub tail — so they are
        // pinned at the scale the figures run at, not a toy scale.
        let config = ScaleFreeConfig::new(1_000_000, 12).seed(7);
        let g = config.build().unwrap();
        assert_eq!(g.num_vertices(), 1_000_000);
        assert!(
            (14_000_000..=18_000_000).contains(&g.num_edges()),
            "edge count {} strayed from the ~16M target",
            g.num_edges()
        );
        let stats = DegreeStats::from_graph(&g);
        // Mean total degree (in + out) is about twice the requested
        // average out-degree plus the reverse-edge surplus.
        let requested = 12.0;
        assert!(
            stats.mean_total_degree > 1.5 * requested
                && stats.mean_total_degree < 4.0 * requested,
            "mean total degree {} inconsistent with requested average {}",
            stats.mean_total_degree,
            requested
        );
        // Scale-free tail: the hottest vertex concentrates orders of
        // magnitude more degree than the mean.
        assert!(
            stats.max_total_degree as f64 > 100.0 * stats.mean_total_degree,
            "no hub tail: max {} vs mean {}",
            stats.max_total_degree,
            stats.mean_total_degree
        );
        // Footprint formulas from first principles on the same graph: the
        // monolithic CSR is (V+1) + 2E words, the tile-distributed form
        // (which the simulator's memory report counts) is 2V + 2E words.
        let v = g.num_vertices();
        let e = g.num_edges();
        assert_eq!(g.footprint_bytes(), 4 * (v + 1 + 2 * e));
        assert_eq!(g.distributed_footprint_bytes(), 4 * (2 * v + 2 * e));
    }

    #[test]
    fn rejects_invalid_configs() {
        assert!(ScaleFreeConfig::new(1, 4).build().is_err());
        assert!(ScaleFreeConfig::new(16, 0).build().is_err());
    }

    #[test]
    fn most_vertices_reachable_from_root_zero() {
        let g = ScaleFreeConfig::new(512, 8).seed(2).build().unwrap();
        let bfs = crate::reference::bfs(&g, 0);
        let reached = bfs
            .depths()
            .iter()
            .filter(|&&d| d != crate::reference::UNREACHED)
            .count();
        assert!(
            reached > g.num_vertices() / 2,
            "only {reached} of {} vertices reachable",
            g.num_vertices()
        );
    }
}
