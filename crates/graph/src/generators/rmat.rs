//! RMAT (Recursive-MATrix) Kronecker graph generator.
//!
//! The paper's synthetic datasets are "several different sizes of synthetic
//! RMAT graphs of up to 67M vertices and 1.3B edges" with "average ten edges
//! per vertex" (Section IV / V-B).  RMAT generates each edge by recursively
//! descending a 2x2 partition of the adjacency matrix with probabilities
//! `(a, b, c, d)`; the standard Graph500 parameters `(0.57, 0.19, 0.19,
//! 0.05)` produce the heavy-tailed degree distribution (hot vertices) that
//! drives the paper's load-balance discussion.

use super::{ensure, random_weight};
use crate::csr::CsrGraph;
use crate::edgelist::{Edge, EdgeList};
use crate::{GraphError, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration (builder) for the RMAT generator.
///
/// ```
/// use dalorex_graph::generators::rmat::RmatConfig;
///
/// # fn main() -> Result<(), dalorex_graph::GraphError> {
/// // RMAT-10: 2^10 vertices, average degree 10 like the paper's datasets.
/// let graph = RmatConfig::new(10, 10).seed(1).build()?;
/// assert_eq!(graph.num_vertices(), 1 << 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RmatConfig {
    scale: u32,
    avg_degree: usize,
    a: f64,
    b: f64,
    c: f64,
    seed: u64,
    symmetric: bool,
}

impl RmatConfig {
    /// Creates a configuration for a graph with `2^scale` vertices and an
    /// average out-degree of `avg_degree`, using the Graph500 skew
    /// parameters.
    pub fn new(scale: u32, avg_degree: usize) -> Self {
        RmatConfig {
            scale,
            avg_degree,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 0,
            symmetric: false,
        }
    }

    /// Sets the RNG seed (default 0). The generator is deterministic for a
    /// fixed seed and configuration.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the RMAT partition probabilities `(a, b, c)`; `d` is
    /// implied as `1 - a - b - c`.
    pub fn probabilities(mut self, a: f64, b: f64, c: f64) -> Self {
        self.a = a;
        self.b = b;
        self.c = c;
        self
    }

    /// Also emit the reverse of every generated edge, producing a symmetric
    /// graph (the GAP benchmark symmetrizes inputs for WCC).
    pub fn symmetric(mut self, symmetric: bool) -> Self {
        self.symmetric = symmetric;
        self
    }

    /// Number of vertices this configuration will generate.
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Generates the edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidGeneratorConfig`] if the scale is zero or
    /// larger than 31, the average degree is zero, or the probabilities are
    /// not a valid distribution.
    pub fn build_edge_list(&self) -> Result<EdgeList, GraphError> {
        ensure(self.scale > 0, "rmat scale must be at least 1")?;
        ensure(self.scale < 32, "rmat scale must be below 32")?;
        ensure(self.avg_degree > 0, "rmat average degree must be non-zero")?;
        let d = 1.0 - self.a - self.b - self.c;
        ensure(
            self.a > 0.0 && self.b > 0.0 && self.c > 0.0 && d > 0.0,
            "rmat probabilities must be strictly positive and sum below 1",
        )?;

        let num_vertices = self.num_vertices();
        let target_edges = num_vertices * self.avg_degree;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut edges = EdgeList::new(num_vertices);
        for _ in 0..target_edges {
            let (src, dst) = self.sample_edge(&mut rng);
            let weight = random_weight(&mut rng);
            edges.push(Edge::new(src, dst, weight));
            if self.symmetric {
                edges.push(Edge::new(dst, src, weight));
            }
        }
        edges.dedup_and_remove_self_loops();
        Ok(edges)
    }

    /// Generates the graph in CSR form.
    ///
    /// # Errors
    ///
    /// See [`RmatConfig::build_edge_list`].
    pub fn build(&self) -> Result<CsrGraph, GraphError> {
        Ok(CsrGraph::from_edge_list(&self.build_edge_list()?))
    }

    fn sample_edge<R: Rng>(&self, rng: &mut R) -> (VertexId, VertexId) {
        let mut row = 0u64;
        let mut col = 0u64;
        for level in (0..self.scale).rev() {
            let r: f64 = rng.gen();
            let (row_bit, col_bit): (u64, u64) = if r < self.a {
                (0, 0)
            } else if r < self.a + self.b {
                (0, 1)
            } else if r < self.a + self.b + self.c {
                (1, 0)
            } else {
                (1, 1)
            };
            row |= row_bit << level;
            col |= col_bit << level;
        }
        (row as VertexId, col as VertexId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_vertex_count() {
        let g = RmatConfig::new(6, 4).seed(3).build().unwrap();
        assert_eq!(g.num_vertices(), 64);
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = RmatConfig::new(7, 6).seed(11).build().unwrap();
        let b = RmatConfig::new(7, 6).seed(11).build().unwrap();
        assert_eq!(a, b);
        let c = RmatConfig::new(7, 6).seed(12).build().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn average_degree_is_roughly_requested() {
        // Duplicates and self-loops are removed, so the realized degree is a
        // bit below the target, but it should stay in the same ballpark.
        let g = RmatConfig::new(10, 8).seed(5).build().unwrap();
        let avg = g.average_degree();
        assert!(avg > 4.0 && avg <= 8.0, "average degree was {avg}");
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // RMAT with Graph500 parameters must produce hot vertices: the
        // maximum degree should far exceed the average.
        let g = RmatConfig::new(10, 8).seed(9).build().unwrap();
        let max_degree = (0..g.num_vertices() as VertexId)
            .map(|v| g.out_degree(v))
            .max()
            .unwrap();
        assert!(
            (max_degree as f64) > 8.0 * g.average_degree(),
            "max degree {max_degree} not skewed vs average {}",
            g.average_degree()
        );
    }

    #[test]
    fn symmetric_mode_produces_reverse_edges() {
        let g = RmatConfig::new(6, 4).seed(2).symmetric(true).build().unwrap();
        for v in 0..g.num_vertices() as VertexId {
            for (dst, _) in g.neighbors(v) {
                assert!(
                    g.neighbors(dst).any(|(back, _)| back == v),
                    "edge {v}->{dst} has no reverse"
                );
            }
        }
    }

    #[test]
    fn rejects_invalid_configs() {
        assert!(RmatConfig::new(0, 4).build().is_err());
        assert!(RmatConfig::new(32, 4).build().is_err());
        assert!(RmatConfig::new(4, 0).build().is_err());
        assert!(RmatConfig::new(4, 4)
            .probabilities(0.9, 0.1, 0.05)
            .build()
            .is_err());
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let list = RmatConfig::new(8, 6).seed(4).build_edge_list().unwrap();
        let mut seen = std::collections::HashSet::new();
        for e in list.iter() {
            assert_ne!(e.src, e.dst, "self loop survived cleanup");
            assert!(seen.insert((e.src, e.dst)), "duplicate edge {e:?}");
        }
    }
}
