//! Regular 2D grid graph generator.
//!
//! Every interior vertex has exactly four out-neighbors, so work is
//! perfectly balanced regardless of placement.  Used to isolate NoC effects
//! (contention, bisection bandwidth) from load-imbalance effects in tests
//! and ablation benches.

use super::{ensure, random_weight};
use crate::csr::CsrGraph;
use crate::edgelist::{Edge, EdgeList};
use crate::{GraphError, VertexId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration (builder) for a `width x height` 4-neighbor grid graph.
///
/// ```
/// use dalorex_graph::generators::grid2d::GridConfig;
///
/// # fn main() -> Result<(), dalorex_graph::GraphError> {
/// let graph = GridConfig::new(8, 8).build()?;
/// assert_eq!(graph.num_vertices(), 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridConfig {
    width: usize,
    height: usize,
    seed: u64,
}

impl GridConfig {
    /// Creates a configuration for a `width x height` grid.
    pub fn new(width: usize, height: usize) -> Self {
        GridConfig {
            width,
            height,
            seed: 0,
        }
    }

    /// Sets the RNG seed used for edge weights (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the edge list: each vertex points to its east and south
    /// neighbor and back, yielding a symmetric grid.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidGeneratorConfig`] if either dimension is
    /// zero or the vertex count overflows 32 bits.
    pub fn build_edge_list(&self) -> Result<EdgeList, GraphError> {
        ensure(
            self.width > 0 && self.height > 0,
            "grid dimensions must be non-zero",
        )?;
        let num_vertices = self
            .width
            .checked_mul(self.height)
            .filter(|&n| n <= u32::MAX as usize)
            .ok_or_else(|| GraphError::InvalidGeneratorConfig {
                reason: "grid vertex count must fit in 32 bits".to_string(),
            })?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut edges = EdgeList::new(num_vertices);
        let id = |x: usize, y: usize| (y * self.width + x) as VertexId;
        for y in 0..self.height {
            for x in 0..self.width {
                if x + 1 < self.width {
                    let w = random_weight(&mut rng);
                    edges.push(Edge::new(id(x, y), id(x + 1, y), w));
                    edges.push(Edge::new(id(x + 1, y), id(x, y), w));
                }
                if y + 1 < self.height {
                    let w = random_weight(&mut rng);
                    edges.push(Edge::new(id(x, y), id(x, y + 1), w));
                    edges.push(Edge::new(id(x, y + 1), id(x, y), w));
                }
            }
        }
        Ok(edges)
    }

    /// Generates the graph in CSR form.
    ///
    /// # Errors
    ///
    /// See [`GridConfig::build_edge_list`].
    pub fn build(&self) -> Result<CsrGraph, GraphError> {
        Ok(CsrGraph::from_edge_list(&self.build_edge_list()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_expected_counts() {
        let g = GridConfig::new(4, 3).build().unwrap();
        assert_eq!(g.num_vertices(), 12);
        // Horizontal edges: 3 per row * 3 rows * 2 directions = 18.
        // Vertical edges: 4 per column-step * 2 steps * 2 directions = 16.
        assert_eq!(g.num_edges(), 18 + 16);
    }

    #[test]
    fn interior_vertices_have_degree_four() {
        let g = GridConfig::new(5, 5).build().unwrap();
        // Vertex (2, 2) = 2*5 + 2 = 12 is interior.
        assert_eq!(g.out_degree(12), 4);
        // Corner (0, 0) has degree 2.
        assert_eq!(g.out_degree(0), 2);
    }

    #[test]
    fn grid_is_symmetric() {
        let g = GridConfig::new(3, 3).build().unwrap();
        for v in 0..g.num_vertices() as VertexId {
            for (dst, _) in g.neighbors(v) {
                assert!(g.neighbors(dst).any(|(back, _)| back == v));
            }
        }
    }

    #[test]
    fn rejects_degenerate_dimensions() {
        assert!(GridConfig::new(0, 4).build().is_err());
        assert!(GridConfig::new(4, 0).build().is_err());
    }

    #[test]
    fn deterministic_weights() {
        let a = GridConfig::new(4, 4).seed(3).build().unwrap();
        let b = GridConfig::new(4, 4).seed(3).build().unwrap();
        assert_eq!(a, b);
    }
}
