//! Synthetic dataset generators.
//!
//! The paper evaluates on synthetic RMAT graphs (up to 2^26 vertices) and
//! three real-world graphs (Amazon, Wikipedia, LiveJournal).  This module
//! provides:
//!
//! * [`rmat`] — the RMAT/Kronecker generator (Leskovec et al.), the same
//!   family the paper's RMAT-16/22/25/26 datasets come from.
//! * [`erdos_renyi`] — uniform random graphs, used as a low-skew contrast in
//!   tests and ablation studies.
//! * [`grid2d`] — regular 2D grid graphs with perfectly predictable degree,
//!   useful to isolate NoC effects from load-imbalance effects.
//! * [`realworld`] — scale-free generators parameterised to match the degree
//!   distribution *shape* of the paper's Amazon, Wikipedia and LiveJournal
//!   datasets (see `DESIGN.md` §3 for the substitution rationale).
//!
//! All generators are deterministic given a seed.

pub mod erdos_renyi;
pub mod grid2d;
pub mod realworld;
pub mod rmat;

use crate::{GraphError, Weight};
use rand::Rng;

/// Range of edge weights produced by the generators, `1..=MAX_WEIGHT`.
///
/// The GAP benchmark uses small positive integer weights for SSSP; any
/// strictly positive range works, and a small one keeps distances well away
/// from overflow even on long paths.
pub const MAX_WEIGHT: Weight = 255;

pub(crate) fn random_weight<R: Rng>(rng: &mut R) -> Weight {
    rng.gen_range(1..=MAX_WEIGHT)
}

pub(crate) fn ensure(condition: bool, reason: &str) -> Result<(), GraphError> {
    if condition {
        Ok(())
    } else {
        Err(GraphError::InvalidGeneratorConfig {
            reason: reason.to_string(),
        })
    }
}
