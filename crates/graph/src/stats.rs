//! Degree-distribution and partition-balance statistics.
//!
//! The paper's central load-balance argument (Section III-A) is that
//! distributing the CSR arrays in equal chunks by low-order index bits gives
//! every tile the same amount of data and a near-uniform share of hot
//! vertices, whereas vertex-centric placement (Tesseract) gives tiles a
//! highly variable amount of work.  These statistics quantify both claims
//! and are used by tests and by the work-balance ablation bench.

use crate::csr::CsrGraph;
use crate::VertexId;

/// Summary statistics of a graph's degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum total (in + out) degree.
    pub max_total_degree: usize,
    /// Mean out-degree.
    pub mean_out_degree: f64,
    /// Mean total degree.
    pub mean_total_degree: f64,
    /// Fraction of edges owned by the top 1% highest-degree vertices.
    pub top1pct_edge_share: f64,
    /// Number of vertices with zero out-degree.
    pub sinks: usize,
}

impl DegreeStats {
    /// Computes degree statistics for `graph`.
    pub fn from_graph(graph: &CsrGraph) -> Self {
        let n = graph.num_vertices();
        let mut out_degrees = vec![0usize; n];
        let mut in_degrees = vec![0usize; n];
        for v in 0..n as VertexId {
            out_degrees[v as usize] = graph.out_degree(v);
            for (dst, _) in graph.neighbors(v) {
                in_degrees[dst as usize] += 1;
            }
        }
        let total: Vec<usize> = out_degrees
            .iter()
            .zip(&in_degrees)
            .map(|(o, i)| o + i)
            .collect();
        let mut sorted_out = out_degrees.clone();
        sorted_out.sort_unstable_by(|a, b| b.cmp(a));
        let top_count = (n / 100).max(1).min(n.max(1));
        let top_edges: usize = sorted_out.iter().take(top_count).sum();
        let num_edges = graph.num_edges();
        DegreeStats {
            max_out_degree: out_degrees.iter().copied().max().unwrap_or(0),
            max_total_degree: total.iter().copied().max().unwrap_or(0),
            mean_out_degree: if n == 0 {
                0.0
            } else {
                num_edges as f64 / n as f64
            },
            mean_total_degree: if n == 0 {
                0.0
            } else {
                total.iter().sum::<usize>() as f64 / n as f64
            },
            top1pct_edge_share: if num_edges == 0 {
                0.0
            } else {
                top_edges as f64 / num_edges as f64
            },
            sinks: out_degrees.iter().filter(|&&d| d == 0).count(),
        }
    }
}

/// Work-balance statistics of a partition of items (edges or vertices)
/// across a set of owners (tiles, cores, or vaults).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionBalance {
    /// Number of partitions.
    pub partitions: usize,
    /// Minimum items in any partition.
    pub min: usize,
    /// Maximum items in any partition.
    pub max: usize,
    /// Mean items per partition.
    pub mean: f64,
    /// Coefficient of variation (standard deviation / mean); zero means
    /// perfectly balanced.
    pub coefficient_of_variation: f64,
    /// `max / mean`; the paper's load-imbalance discussions boil down to
    /// this ratio (a straggler tile makes the epoch as slow as `max`).
    pub imbalance: f64,
}

impl PartitionBalance {
    /// Computes balance statistics from per-partition item counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty.
    pub fn from_counts(counts: &[usize]) -> Self {
        assert!(!counts.is_empty(), "at least one partition is required");
        let partitions = counts.len();
        let min = *counts.iter().min().expect("non-empty");
        let max = *counts.iter().max().expect("non-empty");
        let mean = counts.iter().sum::<usize>() as f64 / partitions as f64;
        let variance = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / partitions as f64;
        let std_dev = variance.sqrt();
        PartitionBalance {
            partitions,
            min,
            max,
            mean,
            coefficient_of_variation: if mean == 0.0 { 0.0 } else { std_dev / mean },
            imbalance: if mean == 0.0 { 1.0 } else { max as f64 / mean },
        }
    }

    /// Balance of *edges per owner* when vertices are assigned to `owners`
    /// partitions by the given assignment function (e.g. vertex-centric
    /// high-order-bit placement vs. Dalorex's edge chunking).
    pub fn of_edge_ownership(
        graph: &CsrGraph,
        owners: usize,
        assign: impl Fn(VertexId) -> usize,
    ) -> Self {
        assert!(owners > 0, "at least one owner is required");
        let mut counts = vec![0usize; owners];
        for v in 0..graph.num_vertices() as VertexId {
            let owner = assign(v);
            counts[owner] += graph.out_degree(v);
        }
        PartitionBalance::from_counts(&counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::{Edge, EdgeList};
    use crate::generators::rmat::RmatConfig;

    fn star(n: usize) -> CsrGraph {
        let mut edges = EdgeList::new(n);
        for v in 1..n as VertexId {
            edges.push(Edge::new(0, v, 1));
        }
        CsrGraph::from_edge_list(&edges)
    }

    #[test]
    fn degree_stats_on_star() {
        let g = star(101);
        let stats = DegreeStats::from_graph(&g);
        assert_eq!(stats.max_out_degree, 100);
        assert_eq!(stats.sinks, 100);
        // The single hub (top 1%) owns all the edges.
        assert!((stats.top1pct_edge_share - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degree_stats_on_empty_graph() {
        let g = CsrGraph::from_edge_list(&EdgeList::new(0));
        let stats = DegreeStats::from_graph(&g);
        assert_eq!(stats.max_out_degree, 0);
        assert_eq!(stats.mean_out_degree, 0.0);
    }

    #[test]
    fn partition_balance_perfectly_even() {
        let balance = PartitionBalance::from_counts(&[10, 10, 10, 10]);
        assert_eq!(balance.min, 10);
        assert_eq!(balance.max, 10);
        assert_eq!(balance.coefficient_of_variation, 0.0);
        assert_eq!(balance.imbalance, 1.0);
    }

    #[test]
    fn partition_balance_detects_stragglers() {
        let balance = PartitionBalance::from_counts(&[1, 1, 1, 97]);
        assert!(balance.imbalance > 3.0);
        assert!(balance.coefficient_of_variation > 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn partition_balance_rejects_empty_input() {
        let _ = PartitionBalance::from_counts(&[]);
    }

    #[test]
    fn edge_chunking_is_better_balanced_than_vertex_centric_placement() {
        // This is the paper's Section III-A claim in miniature: Dalorex
        // gives every tile exactly E/T edges (edge-array chunking), whereas
        // vertex-centric placement (Tesseract-style) gives each owner all
        // the edges of its vertices, and the skewed RMAT degree distribution
        // makes that uneven.
        let g = RmatConfig::new(10, 8).seed(13).build().unwrap();
        let owners = 16;
        let n = g.num_vertices();
        let block = n.div_ceil(owners);
        let vertex_centric =
            PartitionBalance::of_edge_ownership(&g, owners, |v| v as usize / block);

        // Edge chunking: owner i holds edge slots [i*E/T, (i+1)*E/T).
        let e = g.num_edges();
        let chunk = e.div_ceil(owners);
        let mut counts = vec![0usize; owners];
        for slot in 0..e {
            counts[slot / chunk] += 1;
        }
        let edge_chunked = PartitionBalance::from_counts(&counts);

        assert!(
            vertex_centric.imbalance > 1.1,
            "vertex-centric imbalance {} unexpectedly flat",
            vertex_centric.imbalance
        );
        assert!(
            edge_chunked.imbalance < vertex_centric.imbalance,
            "edge chunking ({}) should beat vertex-centric ({})",
            edge_chunked.imbalance,
            vertex_centric.imbalance
        );
        assert!(edge_chunked.imbalance < 1.05);
    }
}
