//! Compressed-Sparse-Row graph storage.
//!
//! The paper (Section II-A, III-A) stores graphs "in formats like
//! Compressed-Sparse-Row (CSR) using four arrays". The four distributed
//! arrays are:
//!
//! * `ptr` — per-vertex offsets into the edge arrays (size `V + 1`; the
//!   paper distributes a tuple of size `V`, pairing `dist`/`ptr`),
//! * `edge_idx` — destination vertex of each edge (size `E`),
//! * `edge_values` — weight of each edge (size `E`),
//! * one per-vertex state array per kernel (`dist`, `depth`, `rank`, …),
//!   owned by the kernel, not by this type.
//!
//! [`CsrGraph`] is the immutable dataset handed to both the Dalorex
//! simulator and the baseline models; kernels read it but never mutate it.

use crate::edgelist::{Edge, EdgeList};
use crate::{GraphError, VertexId, Weight};

/// An immutable directed graph in CSR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    ptr: Vec<u32>,
    edge_idx: Vec<VertexId>,
    edge_values: Vec<Weight>,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list.
    ///
    /// Edges are grouped by source vertex; within a source vertex they keep
    /// the relative order of the edge list (stable counting sort), which
    /// makes the layout deterministic for a deterministic generator.
    ///
    /// ```
    /// use dalorex_graph::{CsrGraph, Edge, EdgeList};
    ///
    /// # fn main() -> Result<(), dalorex_graph::GraphError> {
    /// let edges = EdgeList::from_edges(3, [Edge::new(0, 1, 4), Edge::new(0, 2, 1)])?;
    /// let graph = CsrGraph::from_edge_list(&edges);
    /// assert_eq!(graph.out_degree(0), 2);
    /// assert_eq!(graph.out_degree(1), 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_edge_list(edges: &EdgeList) -> Self {
        let num_vertices = edges.num_vertices();
        let mut counts = vec![0u32; num_vertices + 1];
        for edge in edges.iter() {
            counts[edge.src as usize + 1] += 1;
        }
        for v in 0..num_vertices {
            counts[v + 1] += counts[v];
        }
        let ptr = counts.clone();
        let mut cursor: Vec<u32> = ptr[..num_vertices].to_vec();
        let num_edges = edges.num_edges();
        let mut edge_idx = vec![0 as VertexId; num_edges];
        let mut edge_values = vec![0 as Weight; num_edges];
        for edge in edges.iter() {
            let slot = cursor[edge.src as usize] as usize;
            edge_idx[slot] = edge.dst;
            edge_values[slot] = edge.weight;
            cursor[edge.src as usize] += 1;
        }
        CsrGraph {
            ptr,
            edge_idx,
            edge_values,
        }
    }

    /// Builds a CSR graph directly from its raw arrays.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InconsistentCsr`] if `ptr` is empty, not
    /// monotonically non-decreasing, or its last entry does not match the
    /// edge-array lengths; and [`GraphError::VertexOutOfBounds`] if any
    /// destination index is `>= num_vertices`.
    pub fn from_raw_parts(
        ptr: Vec<u32>,
        edge_idx: Vec<VertexId>,
        edge_values: Vec<Weight>,
    ) -> Result<Self, GraphError> {
        if ptr.is_empty() {
            return Err(GraphError::InconsistentCsr {
                reason: "ptr array must have at least one entry".to_string(),
            });
        }
        if edge_idx.len() != edge_values.len() {
            return Err(GraphError::InconsistentCsr {
                reason: format!(
                    "edge_idx has {} entries but edge_values has {}",
                    edge_idx.len(),
                    edge_values.len()
                ),
            });
        }
        if ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::InconsistentCsr {
                reason: "ptr array must be monotonically non-decreasing".to_string(),
            });
        }
        let declared_edges = *ptr.last().expect("ptr checked non-empty") as usize;
        if declared_edges != edge_idx.len() {
            return Err(GraphError::InconsistentCsr {
                reason: format!(
                    "ptr declares {declared_edges} edges but edge_idx has {}",
                    edge_idx.len()
                ),
            });
        }
        let num_vertices = (ptr.len() - 1) as u64;
        if let Some(&bad) = edge_idx.iter().find(|&&dst| u64::from(dst) >= num_vertices) {
            return Err(GraphError::VertexOutOfBounds {
                vertex: u64::from(bad),
                num_vertices,
            });
        }
        Ok(CsrGraph {
            ptr,
            edge_idx,
            edge_values,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.ptr.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edge_idx.len()
    }

    /// Average out-degree (`E / V`), zero for an empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// The `ptr` offsets array (length `V + 1`).
    pub fn ptr(&self) -> &[u32] {
        &self.ptr
    }

    /// The `edge_idx` destinations array (length `E`).
    pub fn edge_idx(&self) -> &[VertexId] {
        &self.edge_idx
    }

    /// The `edge_values` weights array (length `E`).
    pub fn edge_values(&self) -> &[Weight] {
        &self.edge_values
    }

    /// Out-degree of `vertex`.
    ///
    /// # Panics
    ///
    /// Panics if `vertex >= num_vertices`.
    pub fn out_degree(&self, vertex: VertexId) -> usize {
        let v = vertex as usize;
        (self.ptr[v + 1] - self.ptr[v]) as usize
    }

    /// The half-open edge-array range `[begin, end)` owned by `vertex`.
    ///
    /// This is exactly what task T1 of the paper's SSSP listing reads
    /// (`neighbor_begin, neighbor_end = ptr[v], ptr[v+1]`).
    ///
    /// # Panics
    ///
    /// Panics if `vertex >= num_vertices`.
    pub fn neighbor_range(&self, vertex: VertexId) -> std::ops::Range<usize> {
        let v = vertex as usize;
        self.ptr[v] as usize..self.ptr[v + 1] as usize
    }

    /// Iterates over `(destination, weight)` pairs for `vertex`'s out-edges.
    ///
    /// # Panics
    ///
    /// Panics if `vertex >= num_vertices`.
    pub fn neighbors(&self, vertex: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let range = self.neighbor_range(vertex);
        self.edge_idx[range.clone()]
            .iter()
            .copied()
            .zip(self.edge_values[range].iter().copied())
    }

    /// Memory footprint of the three CSR arrays in bytes, assuming 32-bit
    /// entries: `ptr` (`V + 1` words), `edge_idx` (`E` words) and
    /// `edge_values` (`E` words).
    ///
    /// This is the graph alone — kernel per-vertex state (e.g. `dist`) is
    /// declared by each kernel and accounted in the simulator's per-tile
    /// arenas, not here.  For the footprint of the graph *as distributed
    /// across tile scratchpads*, see
    /// [`distributed_footprint_bytes`](Self::distributed_footprint_bytes).
    pub fn footprint_bytes(&self) -> usize {
        (self.ptr.len() + self.edge_idx.len() + self.edge_values.len()) * 4
    }

    /// Memory footprint of the graph once distributed across tile
    /// scratchpads, in bytes: each tile stores an explicit `[begin, end)`
    /// row pair per local vertex (2 words — the shared-`ptr` trick of the
    /// monolithic layout does not survive chunking) plus the 2 edge words,
    /// so the total is `4 * (2V + 2E)` regardless of the tile count.
    ///
    /// This equals the `csr_bytes` line of the simulator's memory report.
    pub fn distributed_footprint_bytes(&self) -> usize {
        (2 * self.num_vertices() + 2 * self.num_edges()) * 4
    }

    /// Converts back to an edge list (mainly for tests and round-trips).
    pub fn to_edge_list(&self) -> EdgeList {
        let mut list = EdgeList::new(self.num_vertices());
        for v in 0..self.num_vertices() as VertexId {
            for (dst, weight) in self.neighbors(v) {
                list.push(Edge::new(v, dst, weight));
            }
        }
        list
    }

    /// Returns the transpose (all edges reversed), used by pull-based
    /// algorithm variants and by WCC on directed inputs.
    pub fn transpose(&self) -> CsrGraph {
        let mut list = EdgeList::new(self.num_vertices());
        for v in 0..self.num_vertices() as VertexId {
            for (dst, weight) in self.neighbors(v) {
                list.push(Edge::new(dst, v, weight));
            }
        }
        CsrGraph::from_edge_list(&list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let edges = EdgeList::from_edges(
            4,
            [
                Edge::new(0, 1, 1),
                Edge::new(0, 2, 2),
                Edge::new(1, 3, 3),
                Edge::new(2, 3, 4),
            ],
        )
        .unwrap();
        CsrGraph::from_edge_list(&edges)
    }

    #[test]
    fn builds_expected_arrays() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.ptr(), &[0, 2, 3, 4, 4]);
        assert_eq!(g.edge_idx(), &[1, 2, 3, 3]);
        assert_eq!(g.edge_values(), &[1, 2, 3, 4]);
    }

    #[test]
    fn degrees_and_ranges() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.neighbor_range(1), 2..3);
        assert_eq!(g.average_degree(), 1.0);
    }

    #[test]
    fn neighbors_iterator_pairs_destinations_with_weights() {
        let g = diamond();
        let n: Vec<_> = g.neighbors(0).collect();
        assert_eq!(n, vec![(1, 1), (2, 2)]);
        assert_eq!(g.neighbors(3).count(), 0);
    }

    #[test]
    fn round_trips_through_edge_list() {
        let g = diamond();
        let list = g.to_edge_list();
        let rebuilt = CsrGraph::from_edge_list(&list);
        assert_eq!(g, rebuilt);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.out_degree(3), 2);
        assert_eq!(t.out_degree(0), 0);
        let back = t.transpose();
        // Transposing twice yields the same edge set (possibly reordered).
        let mut a = g.to_edge_list();
        let mut b = back.to_edge_list();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn from_raw_parts_accepts_valid_arrays() {
        let g = CsrGraph::from_raw_parts(vec![0, 1, 2], vec![1, 0], vec![5, 6]).unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn from_raw_parts_rejects_bad_ptr() {
        assert!(CsrGraph::from_raw_parts(vec![], vec![], vec![]).is_err());
        assert!(CsrGraph::from_raw_parts(vec![0, 2, 1], vec![0, 0], vec![1, 1]).is_err());
        assert!(CsrGraph::from_raw_parts(vec![0, 1], vec![0, 0], vec![1, 1]).is_err());
    }

    #[test]
    fn from_raw_parts_rejects_out_of_bounds_destination() {
        let err = CsrGraph::from_raw_parts(vec![0, 1], vec![7], vec![1]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfBounds { vertex: 7, .. }));
    }

    #[test]
    fn from_raw_parts_rejects_mismatched_value_lengths() {
        let err = CsrGraph::from_raw_parts(vec![0, 1], vec![0], vec![]).unwrap_err();
        assert!(matches!(err, GraphError::InconsistentCsr { .. }));
    }

    #[test]
    fn footprint_counts_the_three_csr_arrays() {
        let g = diamond();
        // ptr: 5 words, edge_idx: 4 words, edge_values: 4 words — and
        // nothing else: kernel state is not the graph's to count.
        assert_eq!(g.footprint_bytes(), (5 + 4 + 4) * 4);
    }

    #[test]
    fn distributed_footprint_from_first_principles() {
        let g = diamond();
        // Chunked across tiles every vertex carries an explicit [begin, end)
        // row pair: 2 words per vertex + 2 words per edge.
        assert_eq!(g.distributed_footprint_bytes(), (2 * 4 + 2 * 4) * 4);
        // The distributed layout trades the shared ptr array (V + 1 words)
        // for per-vertex pairs (2V words): for any non-trivial graph the
        // distributed form is the larger of the two.
        assert!(g.distributed_footprint_bytes() >= g.footprint_bytes() - 4);
    }

    #[test]
    fn empty_graph_is_consistent() {
        let g = CsrGraph::from_edge_list(&EdgeList::new(0));
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }
}
