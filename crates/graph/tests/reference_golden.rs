//! Golden tests for the sequential reference kernels on a small
//! hand-computed graph.
//!
//! The integration suite validates the cycle-level simulator *against* these
//! references, so a simulator-vs-reference failure is only attributable if
//! the references themselves are pinned to hand-checked values.  Every
//! expected array below was computed by hand from the drawn graph.

use dalorex_graph::reference::{self, PAGERANK_DAMPING, PAGERANK_ONE, UNREACHED};
use dalorex_graph::{CsrGraph, Edge, EdgeList};

/// The hand-computed fixture, drawn out:
///
/// ```text
///        (2)          (7)
///   0 --------> 1 --------> 3
///   |           ^           |
///   | (5)   (1) |           | (1)
///   v           |           v
///   2 ----------+           4          5 <--> 6   (weight 3 both ways)
///        ^------------------/
///              (4)
/// ```
///
/// Edges: 0->1 (2), 0->2 (5), 2->1 (1), 1->3 (7), 3->4 (1), 4->2 (4),
/// 5->6 (3), 6->5 (3).  Vertices {0..4} form one weak component; {5, 6}
/// form another.
fn golden_graph() -> CsrGraph {
    let edges = EdgeList::from_edges(
        7,
        [
            Edge::new(0, 1, 2),
            Edge::new(0, 2, 5),
            Edge::new(2, 1, 1),
            Edge::new(1, 3, 7),
            Edge::new(3, 4, 1),
            Edge::new(4, 2, 4),
            Edge::new(5, 6, 3),
            Edge::new(6, 5, 3),
        ],
    )
    .unwrap();
    CsrGraph::from_edge_list(&edges)
}

#[test]
fn golden_bfs_from_vertex_zero() {
    // Hops: 0 -> 0; 1, 2 -> 1; 3 -> 2 (via 1); 4 -> 3 (via 3); 5, 6
    // unreachable from 0.
    let result = reference::bfs(&golden_graph(), 0);
    assert_eq!(result.depths(), &[0, 1, 1, 2, 3, UNREACHED, UNREACHED]);
    assert_eq!(result.reached(), 5);
}

#[test]
fn golden_bfs_from_vertex_five() {
    // The {5, 6} component is closed: nothing else is reachable.
    let result = reference::bfs(&golden_graph(), 5);
    assert_eq!(
        result.depths(),
        &[UNREACHED, UNREACHED, UNREACHED, UNREACHED, UNREACHED, 0, 1]
    );
}

#[test]
fn golden_sssp_from_vertex_zero() {
    // Distances: d(1) = 2 direct (cheaper than 0->2->1 = 6); d(2) = 5;
    // d(3) = d(1) + 7 = 9; d(4) = d(3) + 1 = 10; 5, 6 unreachable.
    let result = reference::sssp(&golden_graph(), 0);
    assert_eq!(result.distances(), &[0, 2, 5, 9, 10, UNREACHED, UNREACHED]);
}

#[test]
fn golden_sssp_prefers_multi_hop_path() {
    // From vertex 4: d(2) = 4, then d(1) = 4 + 1 = 5, d(3) = 5 + 7 = 12,
    // and back to 4 is never shorter than 0.
    let result = reference::sssp(&golden_graph(), 4);
    assert_eq!(
        result.distances(),
        &[UNREACHED, 5, 4, 12, 0, UNREACHED, UNREACHED]
    );
}

#[test]
fn golden_wcc_labels_two_components() {
    // Weak connectivity ignores direction: {0,1,2,3,4} labelled 0 and
    // {5,6} labelled 5.
    let result = reference::wcc(&golden_graph());
    assert_eq!(result.labels(), &[0, 0, 0, 0, 0, 5, 5]);
    assert_eq!(result.num_components(), 2);
}

#[test]
fn golden_pagerank_one_epoch_by_hand() {
    // One push epoch from all-ones ranks, damping d = 0.85 (fixed point),
    // base b = ONE - DAMPING.  Shares (integer division by out-degree):
    //   0 (deg 2) pushes DAMPING/2 to 1 and 2
    //   1 (deg 1) pushes DAMPING to 3
    //   2 (deg 1) pushes DAMPING to 1
    //   3 (deg 1) pushes DAMPING to 4
    //   4 (deg 1) pushes DAMPING to 2
    //   5, 6 (deg 1) push DAMPING to each other
    let base = PAGERANK_ONE - PAGERANK_DAMPING;
    let half = PAGERANK_DAMPING / 2;
    let expected = [
        base,                        // 0: no in-edges
        base + half + PAGERANK_DAMPING, // 1: from 0 (half) and 2 (full)
        base + half + PAGERANK_DAMPING, // 2: from 0 (half) and 4 (full)
        base + PAGERANK_DAMPING,     // 3: from 1
        base + PAGERANK_DAMPING,     // 4: from 3
        base + PAGERANK_DAMPING,     // 5: from 6
        base + PAGERANK_DAMPING,     // 6: from 5
    ];
    let result = reference::pagerank(&golden_graph(), 1);
    assert_eq!(result.ranks(), &expected);
    assert_eq!(result.iterations(), 1);
}

#[test]
fn golden_pagerank_two_epochs_by_hand() {
    // Second epoch pushes the epoch-1 ranks computed above.
    let base = PAGERANK_ONE - PAGERANK_DAMPING;
    let r1_hub = base + PAGERANK_DAMPING / 2 + PAGERANK_DAMPING; // rank of 1 and 2
    let r1_chain = base + PAGERANK_DAMPING; // rank of 3, 4, 5, 6
    let r1_source = base; // rank of 0
    let damp = |rank: u64| rank * PAGERANK_DAMPING / PAGERANK_ONE;
    let expected = [
        base,
        base + damp(r1_source) / 2 + damp(r1_hub), // from 0 and 2
        base + damp(r1_source) / 2 + damp(r1_chain), // from 0 and 4
        base + damp(r1_hub),                       // from 1
        base + damp(r1_chain),                     // from 3
        base + damp(r1_chain),                     // from 6
        base + damp(r1_chain),                     // from 5
    ];
    let result = reference::pagerank(&golden_graph(), 2);
    assert_eq!(result.ranks(), &expected);
}

#[test]
fn golden_spmv_against_dense_expansion() {
    // y = A * x with x = [1, 2, 3, 4, 5, 6, 7]:
    //   y[0] = 2*x[1] + 5*x[2] = 4 + 15 = 19
    //   y[1] = 7*x[3] = 28
    //   y[2] = 1*x[1] = 2
    //   y[3] = 1*x[4] = 5
    //   y[4] = 4*x[2] = 12
    //   y[5] = 3*x[6] = 21
    //   y[6] = 3*x[5] = 18
    let x = vec![1, 2, 3, 4, 5, 6, 7];
    let result = reference::spmv(&golden_graph(), &x);
    assert_eq!(result.values(), &[19, 28, 2, 5, 12, 21, 18]);
}

#[test]
fn golden_graph_has_the_expected_csr_layout() {
    // Pin the CSR arrays themselves so that a layout change cannot silently
    // shift what the golden kernels run over.
    let g = golden_graph();
    assert_eq!(g.num_vertices(), 7);
    assert_eq!(g.num_edges(), 8);
    assert_eq!(g.ptr(), &[0, 2, 3, 4, 5, 6, 7, 8]);
    assert_eq!(g.edge_idx(), &[1, 2, 3, 1, 4, 2, 6, 5]);
    assert_eq!(g.edge_values(), &[2, 5, 7, 1, 1, 4, 3, 3]);
}
