//! Shardable endpoint views for the parallel simulation engine.
//!
//! The tile simulator's per-cycle *endpoint phase* — tiles draining their
//! ejection buffers ([`Network::pop_delivered_on`]) and injecting freshly
//! produced messages ([`Network::try_inject`]) — touches, for each tile,
//! almost exclusively that tile's own router state.  This module exploits
//! that: [`Network::endpoint_shards`] splits the network into disjoint
//! [`EndpointShard`]s over contiguous tile ranges, each offering the same
//! endpoint operations through the [`TileEndpoint`] trait, safe to drive
//! from independent threads.
//!
//! # Staying bit-identical
//!
//! A handful of endpoint side effects touch *shared* network state whose
//! mutation order is part of the modelled schedule:
//!
//! * `mark_active` appends to the arbitration-order active list — the
//!   position a router takes there decides when it contends;
//! * `note_delivery` appends to the delivery-event list the tile simulator
//!   uses to wake idle tiles, in order;
//! * `schedule_due` / `wake_waiters` mutate the calendar scheduler's dense
//!   due stamps, buckets and waiter lists, and tighten the global
//!   next-event bound.
//!
//! A shard therefore never performs these directly.  It executes every
//! own-tile part of an operation inline (router push/pop, buffered-message
//! mirror, drain version, per-tile rejection count) and records the shared
//! part as an ordered **intent** plus commutative **deltas** in its
//! [`ShardBuffers`].  After all shards finish,
//! [`Network::apply_endpoint_effects`] walks the *original* endpoint order
//! the caller used and replays each tile's intents through the very same
//! private methods the direct calls would have hit — so the active list,
//! delivery events, calendar state and statistics end up byte-for-byte
//! identical to a sequential endpoint phase in that order.  The network's
//! cycle counter must not advance between shard creation and the replay
//! (shards snapshot it for `injected_at` stamps and due candidates).
//!
//! Two reads make the split sound beyond the own-tile argument:
//!
//! * `pop_delivered_on` reads `active[tile]` to decide whether the tile
//!   joins the calendar's dirty-membership replay set.  During an endpoint
//!   phase `active[t]` can only change via `t`'s *own* injections (deferred
//!   to the replay), and every caller drains before it injects, so the
//!   frozen pre-phase value is exactly what a sequential interleaving would
//!   have read.  The dirty set itself is order-insensitive (the walk orders
//!   it by list position, and duplicates dedup on the network side), so the
//!   per-shard lists merge commutatively.
//! * `try_inject` routes via the immutable coordinate/geometry tables,
//!   which mention remote tiles but never their mutable state.

use crate::message::Message;
use crate::router::{QueuedMessage, Router};
use crate::topology::{Port, RoutingGrid};
use crate::{ChannelId, NocConfig, NocError, TileId};

use super::{port_dimension, Dimension, Network, Rejected};

/// The endpoint operations a tile performs against the network each cycle,
/// abstracted over "the whole network" ([`Network`]) versus "my shard of
/// it" ([`EndpointShard`]).
///
/// The tile simulator's per-tile hot path is generic over this trait; both
/// implementations produce bit-identical schedules and statistics (for the
/// shard, after [`Network::apply_endpoint_effects`] replays its deferred
/// intents).
pub trait TileEndpoint {
    /// Delivered messages waiting in `tile`'s ejection buffers, all
    /// channels, in O(1).
    fn delivered_waiting(&self, tile: TileId) -> usize;
    /// Bitmask of channels with at least one delivered message waiting at
    /// `tile` (see [`Network::delivered_channel_mask`] for the >32-channel
    /// caveat).
    fn delivered_channel_mask(&self, tile: TileId) -> u32;
    /// Peeks the next delivered message at `tile` on `channel` without
    /// removing it.
    fn peek_delivered_on(&self, tile: TileId, channel: ChannelId) -> Option<&Message>;
    /// Pops the next delivered message at `tile` on `channel`.
    fn pop_delivered_on(&mut self, tile: TileId, channel: ChannelId) -> Option<Message>;
    /// Injects a message at `src`, with the exact acceptance rules and
    /// rejection accounting of [`Network::try_inject`].
    fn try_inject(&mut self, src: TileId, message: Message) -> Result<(), Rejected>;
    /// The drain version of `tile`'s router (see
    /// [`Network::buffer_drain_version`]).
    fn buffer_drain_version(&self, tile: TileId) -> u32;
    /// Records `n` skipped-but-certain injection rejections at `src` (see
    /// [`Network::count_injection_backpressure`]).
    fn count_injection_backpressure(&mut self, src: TileId, n: u64);
}

impl TileEndpoint for Network {
    fn delivered_waiting(&self, tile: TileId) -> usize {
        Network::delivered_waiting(self, tile)
    }

    fn delivered_channel_mask(&self, tile: TileId) -> u32 {
        Network::delivered_channel_mask(self, tile)
    }

    fn peek_delivered_on(&self, tile: TileId, channel: ChannelId) -> Option<&Message> {
        Network::peek_delivered_on(self, tile, channel)
    }

    fn pop_delivered_on(&mut self, tile: TileId, channel: ChannelId) -> Option<Message> {
        Network::pop_delivered_on(self, tile, channel)
    }

    fn try_inject(&mut self, src: TileId, message: Message) -> Result<(), Rejected> {
        Network::try_inject(self, src, message)
    }

    fn buffer_drain_version(&self, tile: TileId) -> u32 {
        Network::buffer_drain_version(self, tile)
    }

    fn count_injection_backpressure(&mut self, src: TileId, n: u64) {
        Network::count_injection_backpressure(self, src, n)
    }
}

/// A deferred order-sensitive side effect of one endpoint operation,
/// recorded against the tile that performed it and replayed in the frozen
/// endpoint order by [`Network::apply_endpoint_effects`].
#[derive(Debug, Clone, Copy)]
enum Intent {
    /// `try_inject` pushed a forwardable message: append the tile to the
    /// arbitration-order active list (if absent).
    MarkActive,
    /// `try_inject` self-delivered into the ejection buffer: append the
    /// tile to the delivery-event list (if absent).
    NoteDelivery,
    /// `try_inject` pushed a forwardable message whose earliest possible
    /// forward is the carried cycle: tighten the next-event bound and the
    /// calendar due stamp.
    ScheduleDue(u64),
    /// `pop_delivered_on` freed buffer space: wake the calendar waiters
    /// registered on this tile's buffers.
    WakeWaiters,
}

/// Per-shard scratch state: the deferred intents and commutative deltas one
/// [`EndpointShard`] accumulates during an endpoint phase.  Reused across
/// cycles (cleared by [`Network::endpoint_shards`]) so the steady state
/// allocates nothing.
#[derive(Debug)]
pub struct ShardBuffers {
    lo: TileId,
    hi: TileId,
    intents: Vec<(TileId, Intent)>,
    replay_cursor: usize,
    injected: u64,
    delivered_messages: u64,
    delivered_flits: u64,
    backpressure: u64,
    awaiting_delta: i64,
    in_flight_delta: i64,
    next_commit_min: u64,
    /// Tiles this shard's drains emptied while active: merged into the
    /// network's dirty-membership replay set (commutative — the set dedups
    /// and the walk orders by list position).
    dirty: Vec<TileId>,
}

impl Default for ShardBuffers {
    fn default() -> Self {
        ShardBuffers {
            lo: 0,
            hi: 0,
            intents: Vec::new(),
            replay_cursor: 0,
            injected: 0,
            delivered_messages: 0,
            delivered_flits: 0,
            backpressure: 0,
            awaiting_delta: 0,
            in_flight_delta: 0,
            next_commit_min: u64::MAX,
            dirty: Vec::new(),
        }
    }
}

impl ShardBuffers {
    fn reset(&mut self, lo: TileId, hi: TileId) {
        self.lo = lo;
        self.hi = hi;
        self.intents.clear();
        self.replay_cursor = 0;
        self.injected = 0;
        self.delivered_messages = 0;
        self.delivered_flits = 0;
        self.backpressure = 0;
        self.awaiting_delta = 0;
        self.in_flight_delta = 0;
        self.next_commit_min = u64::MAX;
        self.dirty.clear();
    }
}

/// A disjoint view over the endpoint state of tiles `lo..hi`, safe to use
/// from a thread of its own while sibling shards cover the other tiles.
///
/// Created by [`Network::endpoint_shards`]; every operation's shared side
/// effects are deferred into the shard's [`ShardBuffers`] and replayed by
/// [`Network::apply_endpoint_effects`] — see the module docs for the
/// bit-identity argument.
#[derive(Debug)]
pub struct EndpointShard<'a> {
    lo: TileId,
    hi: TileId,
    num_tiles: usize,
    cycle: u64,
    calendar: bool,
    config: &'a NocConfig,
    grid: &'a RoutingGrid,
    /// Frozen pre-phase active flags (see the module docs for why reading
    /// them stale is exact).
    active: &'a [bool],
    coords: &'a [(u16, u16)],
    routers: &'a mut [Router],
    buffered_count: &'a mut [u32],
    drain_versions: &'a mut [u32],
    rejections: &'a mut [u64],
    buf: &'a mut ShardBuffers,
}

impl EndpointShard<'_> {
    /// First tile (inclusive) this shard covers.
    pub fn lo(&self) -> TileId {
        self.lo
    }

    /// One past the last tile this shard covers.
    pub fn hi(&self) -> TileId {
        self.hi
    }

    #[inline]
    fn local(&self, tile: TileId) -> usize {
        debug_assert!(
            tile >= self.lo && tile < self.hi,
            "tile {tile} outside shard {}..{}",
            self.lo,
            self.hi
        );
        tile - self.lo
    }

    /// Mirror of `Network::routed_port` over the shared immutable geometry.
    fn routed_port(&self, at: TileId, dest: TileId, arrived_via: Dimension) -> (Port, bool) {
        if at == dest {
            return (Port::Local, false);
        }
        let (cx, cy) = self.coords[at];
        let (dx, dy) = self.coords[dest];
        let hop = self
            .grid
            .next_hop_from((cx as usize, cy as usize), (dx as usize, dy as usize));
        let dim = port_dimension(hop.port);
        let entering = matches!(
            (arrived_via, dim),
            (Dimension::None, _) | (Dimension::X, Dimension::Y) | (Dimension::Y, Dimension::X)
        );
        (hop.port, entering)
    }
}

impl TileEndpoint for EndpointShard<'_> {
    fn delivered_waiting(&self, tile: TileId) -> usize {
        self.routers[self.local(tile)].msgs_at(Port::Local) as usize
    }

    fn delivered_channel_mask(&self, tile: TileId) -> u32 {
        self.routers[self.local(tile)].occupied_channel_mask(Port::Local)
    }

    fn peek_delivered_on(&self, tile: TileId, channel: ChannelId) -> Option<&Message> {
        let buffer = self.routers[self.local(tile)].buffer(Port::Local, channel);
        buffer.front().map(|q| &q.message)
    }

    fn pop_delivered_on(&mut self, tile: TileId, channel: ChannelId) -> Option<Message> {
        let local = self.local(tile);
        let queued = self.routers[local].pop(Port::Local, channel)?;
        self.buf.awaiting_delta -= 1;
        self.buffered_count[local] -= 1;
        if self.calendar && self.buffered_count[local] == 0 && self.active[tile] {
            self.buf.dirty.push(tile);
        }
        self.buf.intents.push((tile, Intent::WakeWaiters));
        self.drain_versions[local] = self.drain_versions[local].wrapping_add(1);
        if self.routers[local].wake_on_pop {
            self.routers[local].wake_on_pop = false;
            self.buf.next_commit_min = self.buf.next_commit_min.min(self.cycle);
        }
        Some(queued.message)
    }

    fn try_inject(&mut self, src: TileId, message: Message) -> Result<(), Rejected> {
        let num_tiles = self.num_tiles;
        if src >= num_tiles || message.dest() >= num_tiles {
            let tile = if src >= num_tiles { src } else { message.dest() };
            return Err(Rejected {
                error: NocError::TileOutOfRange { tile, num_tiles },
                message,
            });
        }
        if message.channel() >= self.config.channels {
            return Err(Rejected {
                error: NocError::ChannelOutOfRange {
                    channel: message.channel(),
                    channels: self.config.channels,
                },
                message,
            });
        }
        let flits = message.len();
        let max_needed = flits + flits; // message plus bubble slack
        if flits > self.config.ejection_buffer_flits || max_needed > self.config.buffer_flits {
            return Err(Rejected {
                error: NocError::MessageTooLong {
                    flits,
                    capacity: self.config.buffer_flits.min(self.config.ejection_buffer_flits),
                },
                message,
            });
        }

        let dest = message.dest();
        let channel = message.channel();
        let (port, entering) = self.routed_port(src, dest, Dimension::None);
        let bubble = flits;
        let local = self.local(src);
        if !self.routers[local].can_accept(port, channel, flits, entering, bubble) {
            self.count_injection_backpressure(src, 1);
            return Err(Rejected {
                error: NocError::InjectionBackpressure,
                message,
            });
        }
        let mut message = message;
        message.injected_at = self.cycle;
        let queued = QueuedMessage {
            ready_at: self.cycle,
            message,
        };
        self.buf.injected += 1;
        self.buffered_count[local] += 1;
        if port == Port::Local {
            self.buf.awaiting_delta += 1;
            self.buf.delivered_messages += 1;
            self.buf.delivered_flits += flits as u64;
            self.buf.intents.push((src, Intent::NoteDelivery));
            self.routers[local].push(port, channel, queued);
        } else {
            self.buf.in_flight_delta += 1;
            let candidate = self.cycle.max(self.routers[local].link_busy_until(port));
            self.buf.intents.push((src, Intent::ScheduleDue(candidate)));
            self.routers[local].push(port, channel, queued);
            self.buf.intents.push((src, Intent::MarkActive));
        }
        Ok(())
    }

    fn buffer_drain_version(&self, tile: TileId) -> u32 {
        self.drain_versions[self.local(tile)]
    }

    fn count_injection_backpressure(&mut self, src: TileId, n: u64) {
        self.buf.backpressure += n;
        self.rejections[self.local(src)] += n;
    }
}

impl Network {
    /// Splits the network's endpoint state into disjoint per-range shards
    /// for one endpoint phase.
    ///
    /// `ranges` must partition `0..num_tiles` into contiguous ascending
    /// `(lo, hi)` half-open slices, one per entry of `buffers` (which is
    /// cleared and re-armed here; keep the same `Vec<ShardBuffers>` across
    /// cycles to avoid reallocation).  While the returned shards are alive
    /// the network itself is inaccessible, so no cycle can run concurrently
    /// with an endpoint phase by construction.  Drop the shards, then call
    /// [`Network::apply_endpoint_effects`] with the exact tile order the
    /// phase used **before** the next [`Network::cycle`].
    ///
    /// # Panics
    ///
    /// Panics if `buffers` and `ranges` differ in length or `ranges` is not
    /// an in-order partition of the tiles.
    pub fn endpoint_shards<'a>(
        &'a mut self,
        buffers: &'a mut [ShardBuffers],
        ranges: &[(TileId, TileId)],
    ) -> Vec<EndpointShard<'a>> {
        assert_eq!(
            buffers.len(),
            ranges.len(),
            "one ShardBuffers per shard range"
        );
        let num_tiles = self.routers.len();
        let cycle = self.cycle;
        let calendar = self.calendar;
        let config = &self.config;
        let grid = &self.grid;
        let active: &[bool] = &self.active;
        let coords: &[(u16, u16)] = &self.coords;
        let mut routers: &mut [Router] = &mut self.routers;
        let mut buffered: &mut [u32] = &mut self.buffered_count;
        let mut versions: &mut [u32] = &mut self.drain_versions;
        let mut rejections: &mut [u64] = &mut self.stats.injection_rejections_per_tile;
        let mut consumed = 0;
        let mut shards = Vec::with_capacity(ranges.len());
        for (buf, &(lo, hi)) in buffers.iter_mut().zip(ranges) {
            assert!(
                lo == consumed && hi >= lo && hi <= num_tiles,
                "shard ranges must partition the tiles in order \
                 (got ({lo}, {hi}) after {consumed})"
            );
            consumed = hi;
            let take = hi - lo;
            let (r, rest) = routers.split_at_mut(take);
            routers = rest;
            let (b, rest) = buffered.split_at_mut(take);
            buffered = rest;
            let (v, rest) = versions.split_at_mut(take);
            versions = rest;
            let (j, rest) = rejections.split_at_mut(take);
            rejections = rest;
            buf.reset(lo, hi);
            shards.push(EndpointShard {
                lo,
                hi,
                num_tiles,
                cycle,
                calendar,
                config,
                grid,
                active,
                coords,
                routers: r,
                buffered_count: b,
                drain_versions: v,
                rejections: j,
                buf,
            });
        }
        assert_eq!(consumed, num_tiles, "shard ranges must cover every tile");
        shards
    }

    /// Replays the deferred side effects of a sharded endpoint phase, in
    /// the exact tile order the phase used, then folds in the commutative
    /// deltas — leaving the network in the state a sequential phase in
    /// `order` would have produced.
    ///
    /// `order` is the full endpoint walk order (each shard must have
    /// processed its tiles in this order's restriction to its range);
    /// `buffers` are the same buffers handed to
    /// [`Network::endpoint_shards`].  Must run before the next
    /// [`Network::cycle`] call.
    pub fn apply_endpoint_effects(&mut self, order: &[TileId], buffers: &mut [ShardBuffers]) {
        for &tile in order {
            let buf = buffers
                .iter_mut()
                .find(|b| tile >= b.lo && tile < b.hi)
                .expect("every walked tile belongs to a shard");
            while let Some(&(t, intent)) = buf.intents.get(buf.replay_cursor) {
                if t != tile {
                    break;
                }
                buf.replay_cursor += 1;
                match intent {
                    Intent::MarkActive => self.mark_active(tile),
                    Intent::NoteDelivery => self.note_delivery(tile),
                    Intent::ScheduleDue(stamp) => {
                        self.next_commit_at = self.next_commit_at.min(stamp);
                        self.schedule_due(tile, stamp);
                    }
                    Intent::WakeWaiters => {
                        let now = self.cycle;
                        self.wake_waiters(tile, now, now);
                    }
                }
            }
        }
        for buf in buffers.iter_mut() {
            debug_assert_eq!(
                buf.replay_cursor,
                buf.intents.len(),
                "unreplayed endpoint intents: walk order did not cover the shard"
            );
            self.stats.injected_messages += buf.injected;
            self.stats.delivered_messages += buf.delivered_messages;
            self.stats.delivered_flits += buf.delivered_flits;
            self.stats.injection_backpressure_events += buf.backpressure;
            self.awaiting_ejection = self
                .awaiting_ejection
                .checked_add_signed(buf.awaiting_delta)
                .expect("awaiting-ejection count underflow");
            self.in_flight_messages = self
                .in_flight_messages
                .checked_add_signed(buf.in_flight_delta)
                .expect("in-flight count underflow");
            self.next_commit_at = self.next_commit_at.min(buf.next_commit_min);
            while let Some(tile) = buf.dirty.pop() {
                self.note_membership_dirty(tile);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::GridShape;
    use crate::{RouterScheduler, Topology};

    /// One endpoint phase driven through shards must leave the network in
    /// exactly the state the direct [`Network`] calls produce — statistics,
    /// delivered messages, next-event bound and the eventual forwarding
    /// schedule — under both router schedulers.
    #[test]
    fn sharded_endpoint_phase_matches_direct_calls() {
        for scheduler in [RouterScheduler::Scan, RouterScheduler::Calendar] {
            let config = NocConfig::new(GridShape::new(4, 4), Topology::Torus)
                .with_channels(4)
                .with_router_scheduler(scheduler);
            let mut direct = Network::new(config.clone());
            let mut sharded = Network::new(config);
            let mut buffers = vec![
                ShardBuffers::default(),
                ShardBuffers::default(),
                ShardBuffers::default(),
            ];
            // Deliberately uneven ranges, including the boundary tiles.
            let ranges = [(0usize, 5usize), (5, 6), (6, 16)];
            let order: Vec<TileId> = (0..16).collect();
            for step in 0..300u64 {
                let step_usize = step as usize;
                let mut popped_direct = Vec::new();
                for &t in &order {
                    if let Some(m) = Network::pop_delivered_on(&mut direct, t, step_usize % 4) {
                        popped_direct.push((t, m.payload().to_vec()));
                    }
                    let dst = (t * 5 + step_usize) % 16;
                    let len = 1 + (step_usize + t) % 3;
                    let _ = Network::try_inject(
                        &mut direct,
                        t,
                        Message::new(dst, t % 4, vec![t as u32; len]),
                    );
                }
                let mut popped_sharded = Vec::new();
                {
                    let mut shards = sharded.endpoint_shards(&mut buffers, &ranges);
                    for &t in &order {
                        let shard = shards
                            .iter_mut()
                            .find(|s| t >= s.lo() && t < s.hi())
                            .unwrap();
                        if let Some(m) = shard.pop_delivered_on(t, step_usize % 4) {
                            popped_sharded.push((t, m.payload().to_vec()));
                        }
                        let dst = (t * 5 + step_usize) % 16;
                        let len = 1 + (step_usize + t) % 3;
                        let _ =
                            shard.try_inject(t, Message::new(dst, t % 4, vec![t as u32; len]));
                    }
                }
                sharded.apply_endpoint_effects(&order, &mut buffers);
                assert_eq!(popped_direct, popped_sharded, "step {step} ({scheduler:?})");
                assert_eq!(direct.stats(), sharded.stats(), "step {step} ({scheduler:?})");
                assert_eq!(
                    direct.next_event_cycle(),
                    sharded.next_event_cycle(),
                    "step {step} ({scheduler:?})"
                );
                assert_eq!(direct.in_flight(), sharded.in_flight());
                assert_eq!(direct.awaiting_ejection(), sharded.awaiting_ejection());
                direct.cycle();
                sharded.cycle();
            }
            // Drain both and compare the tail of the schedule.
            let mut guard = 0;
            while !direct.is_idle() || !sharded.is_idle() {
                for t in 0..16 {
                    let a = direct.pop_delivered(t);
                    let b = sharded.pop_delivered(t);
                    assert_eq!(
                        a.as_ref().map(|m| m.payload().to_vec()),
                        b.as_ref().map(|m| m.payload().to_vec())
                    );
                }
                direct.cycle();
                sharded.cycle();
                guard += 1;
                assert!(guard < 10_000, "drain never finished ({scheduler:?})");
            }
            assert_eq!(direct.stats(), sharded.stats(), "{scheduler:?}");
        }
    }

    /// A single shard covering every tile is just the network with deferred
    /// bookkeeping: drain versions and rejection accounting must line up
    /// too (the parked-channel elision depends on both).
    #[test]
    fn single_shard_tracks_drain_versions_and_rejections() {
        let config = NocConfig::new(GridShape::new(2, 1), Topology::Mesh)
            .with_channels(1)
            .with_buffer_flits(8);
        let mut net = Network::new(config);
        let mut buffers = vec![ShardBuffers::default()];
        let ranges = [(0usize, 2usize)];
        {
            let mut shards = net.endpoint_shards(&mut buffers, &ranges);
            let shard = &mut shards[0];
            assert_eq!(shard.buffer_drain_version(0), 0);
            shard
                .try_inject(0, Message::new(1, 0, vec![1, 2, 3]))
                .unwrap();
            // 3 flits + 3 bubble = 6 occupied; another 3+3 exceeds 8.
            let err = shard
                .try_inject(0, Message::new(1, 0, vec![4, 5, 6]))
                .unwrap_err();
            assert!(matches!(err.error, NocError::InjectionBackpressure));
            shard.count_injection_backpressure(0, 2);
        }
        net.apply_endpoint_effects(&[0, 1], &mut buffers);
        assert_eq!(net.stats().injected_messages, 1);
        assert_eq!(net.stats().injection_backpressure_events, 3);
        assert_eq!(net.stats().injection_rejections_per_tile, vec![3, 0]);
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.cycle();
            guard += 1;
            assert!(guard < 100);
        }
        let before = net.buffer_drain_version(1);
        {
            let mut shards = net.endpoint_shards(&mut buffers, &ranges);
            assert_eq!(shards[1 - 1].delivered_waiting(1), 1);
            assert!(shards[0].delivered_channel_mask(1) & 1 != 0);
            assert_eq!(
                shards[0].peek_delivered_on(1, 0).unwrap().payload(),
                &[1, 2, 3]
            );
            let msg = shards[0].pop_delivered_on(1, 0).unwrap();
            assert_eq!(msg.payload(), &[1, 2, 3]);
            assert_eq!(shards[0].buffer_drain_version(1), before.wrapping_add(1));
        }
        net.apply_endpoint_effects(&[0, 1], &mut buffers);
        assert!(net.is_idle());
        assert_eq!(net.buffer_drain_version(1), before.wrapping_add(1));
    }
}
