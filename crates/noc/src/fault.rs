//! Deterministic fault windows for the network fabric.
//!
//! A fault is a half-open cycle window `[start, end)` during which a piece
//! of the fabric refuses to *forward* — a single output link
//! ([`NocFaultEvent::LinkOutage`]) or a whole router
//! ([`NocFaultEvent::RouterStall`]).  Faults never drop or corrupt a
//! message: buffered messages simply wait, upstream back-pressure builds
//! exactly as it would behind ordinary congestion, and traffic resumes at
//! `end`.  Because a fault only ever *blocks* commits, every engine-side
//! skip bound remains a valid lower bound and the forwarding schedule stays
//! bit-identical across the scan, calendar and reference schedulers: a
//! blocked port contributes its window's end as a next-event candidate, so
//! the calendar wakes the router at the transition just as it wakes it for
//! a busy link.
//!
//! Fault windows are expressed in the *driver's* clock (the simulation
//! engine's cycle count).  Drivers that advance their own clock past the
//! network's (epoch broadcasts in `dalorex-sim`) keep the two aligned via
//! [`crate::Network::set_fault_time_offset`].
//!
//! The schedule is handed to the network through
//! [`crate::NocConfig::with_faults`]; an empty [`NocFaults`] compiles to
//! nothing at all — the hot path pays one pointer test per router scan.

use crate::topology::Port;
use crate::TileId;

/// One timed fabric fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NocFaultEvent {
    /// An outgoing link of `tile` refuses to start new transmissions during
    /// `[start, end)`.  `port: None` blacks out every outgoing link of the
    /// router at once.  Transmissions already serializing when the window
    /// opens complete normally (the wire does not lose bits mid-flight);
    /// only new forwards are held back.
    LinkOutage {
        /// Router whose output link fails.
        tile: TileId,
        /// The failing link, or `None` for all of the router's links.
        port: Option<Port>,
        /// First cycle of the outage (inclusive).
        start: u64,
        /// First cycle after the outage (exclusive).
        end: u64,
    },
    /// Router `tile` commits no forwards at all during `[start, end)` (a
    /// control-logic hang).  Its buffers keep accepting arrivals and its
    /// ejection buffers keep draining — only the crossbar is frozen.
    RouterStall {
        /// The stalled router.
        tile: TileId,
        /// First cycle of the stall (inclusive).
        start: u64,
        /// First cycle after the stall (exclusive).
        end: u64,
    },
}

impl NocFaultEvent {
    /// The router the fault applies to.
    pub fn tile(&self) -> TileId {
        match *self {
            NocFaultEvent::LinkOutage { tile, .. } | NocFaultEvent::RouterStall { tile, .. } => {
                tile
            }
        }
    }

    /// The fault's `[start, end)` window.
    pub fn window(&self) -> (u64, u64) {
        match *self {
            NocFaultEvent::LinkOutage { start, end, .. }
            | NocFaultEvent::RouterStall { start, end, .. } => (start, end),
        }
    }
}

/// The fabric's fault schedule, in the order impacts are reported
/// ([`crate::Network::fault_impacts`] is index-aligned with `events`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NocFaults {
    /// The scheduled fault events.
    pub events: Vec<NocFaultEvent>,
}

impl NocFaults {
    /// True when no fault is scheduled (the network compiles no fault state
    /// at all).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Observed impact of one scheduled fault, index-aligned with
/// [`NocFaults::events`].  Both counters are derived from committed
/// forwards only — schedule facts every scheduler agrees on — so they are
/// bit-identical across the scan, calendar and reference paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultImpact {
    /// Messages whose wait at the faulted resource overlapped the window
    /// (counted once, at the cycle the forward finally committed).
    pub messages_delayed: u64,
    /// Total cycles of overlap between those messages' waits and the
    /// window.  A message held both by the fault and by ordinary congestion
    /// is attributed to the fault for the overlapping span.
    pub delayed_cycles: u64,
}

/// What a compiled window blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    /// The whole router's crossbar ([`NocFaultEvent::RouterStall`]).
    Stall,
    /// One output link, or all of them ([`NocFaultEvent::LinkOutage`]).
    Outage(Option<Port>),
}

/// One fault window compiled for a specific tile.
#[derive(Debug, Clone, Copy)]
struct FaultWindow {
    kind: BlockKind,
    start: u64,
    end: u64,
    /// Index into [`CompiledNocFaults::impacts`] (= the event's index in
    /// the source [`NocFaults`]).
    event: u32,
}

/// Fault schedule compiled for the network hot path: windows grouped by
/// tile behind a dense per-tile index, plus the running impact counters.
/// Only ever allocated for a non-empty schedule.
#[derive(Debug, Clone)]
pub(crate) struct CompiledNocFaults {
    /// Per tile: `(offset, len)` into `windows`.
    index: Vec<(u32, u32)>,
    /// All windows, grouped by tile.
    windows: Vec<FaultWindow>,
    /// Driver-clock minus network-clock (see
    /// [`crate::Network::set_fault_time_offset`]).
    pub(crate) offset: u64,
    /// Per-event impact counters, index-aligned with the source schedule.
    pub(crate) impacts: Vec<FaultImpact>,
}

impl CompiledNocFaults {
    /// Compiles a schedule, returning `None` for an empty one.
    ///
    /// # Panics
    ///
    /// Panics if an event names a tile outside the grid or an empty window
    /// (`start >= end`); `dalorex-sim` validates plans before they reach
    /// the network, so this guards direct misuse of the crate API.
    pub(crate) fn compile(faults: &NocFaults, num_tiles: usize) -> Option<Box<Self>> {
        if faults.is_empty() {
            return None;
        }
        let mut per_tile: Vec<Vec<FaultWindow>> = vec![Vec::new(); num_tiles];
        for (idx, event) in faults.events.iter().enumerate() {
            let tile = event.tile();
            let (start, end) = event.window();
            assert!(
                tile < num_tiles,
                "fault event {idx} names tile {tile} outside the {num_tiles}-tile grid"
            );
            assert!(
                start < end,
                "fault event {idx} has an empty window [{start}, {end})"
            );
            let kind = match *event {
                NocFaultEvent::LinkOutage { port, .. } => BlockKind::Outage(port),
                NocFaultEvent::RouterStall { .. } => BlockKind::Stall,
            };
            per_tile[tile].push(FaultWindow {
                kind,
                start,
                end,
                event: idx as u32,
            });
        }
        let mut index = Vec::with_capacity(num_tiles);
        let mut windows = Vec::with_capacity(faults.events.len());
        for tile_windows in per_tile {
            index.push((windows.len() as u32, tile_windows.len() as u32));
            windows.extend(tile_windows);
        }
        Some(Box::new(CompiledNocFaults {
            index,
            windows,
            offset: 0,
            impacts: vec![FaultImpact::default(); faults.events.len()],
        }))
    }

    #[inline]
    fn windows_at(&self, tile: TileId) -> &[FaultWindow] {
        let (offset, len) = self.index[tile];
        &self.windows[offset as usize..(offset + len) as usize]
    }

    /// If `tile`'s router is stalled at network cycle `now`, the network
    /// cycle at which the last active stall window ends (a valid next-event
    /// candidate: the router provably commits nothing before it).
    #[inline]
    pub(crate) fn stall_candidate(&self, tile: TileId, now: u64) -> Option<u64> {
        let driver_now = now + self.offset;
        let mut end: Option<u64> = None;
        for window in self.windows_at(tile) {
            if window.kind == BlockKind::Stall
                && window.start <= driver_now
                && driver_now < window.end
            {
                end = Some(end.map_or(window.end, |e| e.max(window.end)));
            }
        }
        end.map(|e| e.saturating_sub(self.offset))
    }

    /// If `(tile, port)`'s link is blacked out at network cycle `now`, the
    /// network cycle at which the last active outage window ends.
    #[inline]
    pub(crate) fn outage_candidate(&self, tile: TileId, port: Port, now: u64) -> Option<u64> {
        let driver_now = now + self.offset;
        let mut end: Option<u64> = None;
        for window in self.windows_at(tile) {
            let blocks = match window.kind {
                BlockKind::Outage(None) => true,
                BlockKind::Outage(Some(p)) => p == port,
                BlockKind::Stall => false,
            };
            if blocks && window.start <= driver_now && driver_now < window.end {
                end = Some(end.map_or(window.end, |e| e.max(window.end)));
            }
        }
        end.map(|e| e.saturating_sub(self.offset))
    }

    /// Attributes a just-committed forward at `(tile, port)` to every fault
    /// whose window overlapped the head's wait `[ready_at, now)` (network
    /// cycles) at that resource.
    pub(crate) fn record_commit(&mut self, tile: TileId, port: Port, ready_at: u64, now: u64) {
        if now <= ready_at {
            return;
        }
        let wait_start = ready_at + self.offset;
        let wait_end = now + self.offset;
        let (offset, len) = self.index[tile];
        for i in offset as usize..(offset + len) as usize {
            let window = self.windows[i];
            let blocks = match window.kind {
                BlockKind::Stall | BlockKind::Outage(None) => true,
                BlockKind::Outage(Some(p)) => p == port,
            };
            if !blocks {
                continue;
            }
            let lo = window.start.max(wait_start);
            let hi = window.end.min(wait_end);
            if hi > lo {
                let impact = &mut self.impacts[window.event as usize];
                impact.messages_delayed += 1;
                impact.delayed_cycles += hi - lo;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_compiles_to_nothing() {
        assert!(CompiledNocFaults::compile(&NocFaults::default(), 4).is_none());
    }

    #[test]
    fn stall_and_outage_windows_answer_membership() {
        let faults = NocFaults {
            events: vec![
                NocFaultEvent::RouterStall {
                    tile: 1,
                    start: 10,
                    end: 20,
                },
                NocFaultEvent::LinkOutage {
                    tile: 2,
                    port: Some(Port::East),
                    start: 5,
                    end: 15,
                },
            ],
        };
        let compiled = CompiledNocFaults::compile(&faults, 4).unwrap();
        assert_eq!(compiled.stall_candidate(1, 9), None);
        assert_eq!(compiled.stall_candidate(1, 10), Some(20));
        assert_eq!(compiled.stall_candidate(1, 19), Some(20));
        assert_eq!(compiled.stall_candidate(1, 20), None);
        assert_eq!(compiled.stall_candidate(2, 10), None);
        assert_eq!(compiled.outage_candidate(2, Port::East, 5), Some(15));
        assert_eq!(compiled.outage_candidate(2, Port::West, 5), None);
        assert_eq!(compiled.outage_candidate(2, Port::East, 15), None);
    }

    #[test]
    fn all_port_outage_blocks_every_link() {
        let faults = NocFaults {
            events: vec![NocFaultEvent::LinkOutage {
                tile: 0,
                port: None,
                start: 0,
                end: 8,
            }],
        };
        let compiled = CompiledNocFaults::compile(&faults, 1).unwrap();
        for port in [Port::East, Port::West, Port::North, Port::South] {
            assert_eq!(compiled.outage_candidate(0, port, 3), Some(8));
        }
    }

    #[test]
    fn time_offset_translates_window_membership() {
        let faults = NocFaults {
            events: vec![NocFaultEvent::RouterStall {
                tile: 0,
                start: 100,
                end: 110,
            }],
        };
        let mut compiled = CompiledNocFaults::compile(&faults, 1).unwrap();
        // Without an offset the window sits at network cycles [100, 110).
        assert_eq!(compiled.stall_candidate(0, 100), Some(110));
        // With the driver's clock 90 ahead, network cycle 10 is driver
        // cycle 100: inside the window, recovering at network cycle 20.
        compiled.offset = 90;
        assert_eq!(compiled.stall_candidate(0, 10), Some(20));
        assert_eq!(compiled.stall_candidate(0, 100), None);
    }

    #[test]
    fn record_commit_attributes_overlap_only() {
        let faults = NocFaults {
            events: vec![NocFaultEvent::LinkOutage {
                tile: 0,
                port: Some(Port::East),
                start: 10,
                end: 20,
            }],
        };
        let mut compiled = CompiledNocFaults::compile(&faults, 1).unwrap();
        // Wait [5, 25) overlaps the window for 10 cycles.
        compiled.record_commit(0, Port::East, 5, 25);
        // Wait on a different port: no attribution.
        compiled.record_commit(0, Port::West, 5, 25);
        // Wait entirely before the window: no attribution.
        compiled.record_commit(0, Port::East, 0, 10);
        assert_eq!(compiled.impacts[0].messages_delayed, 1);
        assert_eq!(compiled.impacts[0].delayed_cycles, 10);
    }
}
