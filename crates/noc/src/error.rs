use std::fmt;

/// Error type for network configuration and operation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NocError {
    /// A tile id was outside the grid.
    TileOutOfRange {
        /// The offending tile id.
        tile: usize,
        /// Number of tiles in the grid.
        num_tiles: usize,
    },
    /// A channel id was outside the configured channel count.
    ChannelOutOfRange {
        /// The offending channel id.
        channel: usize,
        /// Number of configured channels.
        channels: usize,
    },
    /// The message could not be injected because the source tile's local
    /// output buffer for that channel is full. The message is handed back so
    /// the caller can retry next cycle (this is how the Dalorex channel
    /// queues exert back-pressure on the producing task).
    InjectionBackpressure,
    /// A message was constructed with an empty payload; a message needs at
    /// least a head flit.
    EmptyMessage,
    /// A message is longer than a buffer can ever hold, so it could never
    /// make progress.
    MessageTooLong {
        /// Flits in the message.
        flits: usize,
        /// Buffer capacity in flits.
        capacity: usize,
    },
    /// The network configuration is invalid (e.g. zero-sized grid).
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::TileOutOfRange { tile, num_tiles } => {
                write!(f, "tile {tile} is out of range for a {num_tiles}-tile grid")
            }
            NocError::ChannelOutOfRange { channel, channels } => {
                write!(
                    f,
                    "channel {channel} is out of range for {channels} configured channels"
                )
            }
            NocError::InjectionBackpressure => {
                write!(f, "local output buffer is full; retry next cycle")
            }
            NocError::EmptyMessage => write!(f, "a message must contain at least one flit"),
            NocError::MessageTooLong { flits, capacity } => write!(
                f,
                "message of {flits} flits can never fit a {capacity}-flit buffer"
            ),
            NocError::InvalidConfig { reason } => {
                write!(f, "invalid network configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for NocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = NocError::TileOutOfRange {
            tile: 99,
            num_tiles: 16,
        };
        assert!(err.to_string().contains("99"));
        assert!(err.to_string().contains("16"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NocError>();
    }
}
