//! Per-tile router state: output-port buffers and link occupancy.
//!
//! Each router has one buffer pool per output direction (the paper shares a
//! per-direction pool between channels with a software-configurable split;
//! we give each channel its own FIFO of `buffer_flits` capacity, the simpler
//! static split).  A link transmits one flit per cycle; a message occupies
//! its output link for `len` cycles.  Ring deadlock on the torus is avoided
//! with the local-bubble rule: messages *entering* a dimension (from the
//! local port or turning from X to Y) may only be accepted if the buffer
//! retains at least one maximal message worth of free space afterwards,
//! while messages continuing along the same dimension only need their own
//! space.
//!
//! # Hot-path layout
//!
//! The router is on the innermost loop of [`crate::Network::cycle`], so its
//! state is laid out for that loop: all `(port, channel)` FIFOs live in one
//! flat `Vec` (index
//! `port.index() * channels + channel`, one pointer indirection instead of
//! two), and a per-port message count lets the network skip empty ports
//! without touching any buffer.  Pushes and pops go through
//! `Router::push` / `Router::pop` so the occupancy counters can never
//! drift from the FIFO contents.

use crate::message::Message;
use crate::topology::Port;
use crate::ChannelId;
use std::collections::VecDeque;

/// A message queued at an output port, together with the cycle at which its
/// last flit will have arrived into this buffer (cut-through: it cannot be
/// forwarded before that).
#[derive(Debug, Clone)]
pub(crate) struct QueuedMessage {
    pub(crate) message: Message,
    pub(crate) ready_at: u64,
}

/// FIFO buffer for one (output port, channel) pair.
#[derive(Debug, Clone)]
pub(crate) struct ChannelBuffer {
    queue: VecDeque<QueuedMessage>,
    occupied_flits: usize,
    capacity_flits: usize,
}

impl ChannelBuffer {
    fn new(capacity_flits: usize) -> Self {
        ChannelBuffer {
            queue: VecDeque::new(),
            occupied_flits: 0,
            capacity_flits,
        }
    }

    pub(crate) fn free_flits(&self) -> usize {
        self.capacity_flits - self.occupied_flits
    }

    pub(crate) fn occupied_flits(&self) -> usize {
        self.occupied_flits
    }

    pub(crate) fn front(&self) -> Option<&QueuedMessage> {
        self.queue.front()
    }

    fn push(&mut self, queued: QueuedMessage) {
        debug_assert!(queued.message.len() <= self.free_flits());
        self.occupied_flits += queued.message.len();
        self.queue.push_back(queued);
    }

    fn pop(&mut self) -> Option<QueuedMessage> {
        let queued = self.queue.pop_front()?;
        self.occupied_flits -= queued.message.len();
        Some(queued)
    }
}

/// Number of output ports per router (the length of [`Port::ALL`]).
const NUM_PORTS: usize = Port::ALL.len();

/// Router state for one tile.
///
/// The fixed-size per-port state lives in inline arrays, not `Vec`s, so
/// the whole `routers` vector of a [`crate::Network`] is one contiguous
/// allocation and the per-cycle port scan touches a handful of cache lines
/// instead of chasing five heap pointers per router.
#[derive(Debug, Clone)]
pub(crate) struct Router {
    /// All `(port, channel)` FIFOs, flat: `buffers[port.index() * channels
    /// + channel]`.
    buffers: Vec<ChannelBuffer>,
    /// Number of channels (the flat-index stride).
    channels: usize,
    /// Cycle until which each output link is transmitting.
    link_busy_until: [u64; NUM_PORTS],
    /// Round-robin arbitration pointer per output port.
    rr_next_channel: [u32; NUM_PORTS],
    /// Messages currently buffered per output port (all channels).
    msgs_per_port: [u32; NUM_PORTS],
    /// Bitmask of channels with at least one buffered message, per port.
    /// Lets the channel arbitration skip empty FIFOs without touching
    /// their heap buffers (each FIFO is its own allocation).
    occupied_channels: [u32; NUM_PORTS],
    /// Total messages currently buffered at this router (all ports).
    buffered_messages: usize,
    /// Cycles in which at least one output link of this router transmitted.
    pub(crate) busy_cycles: u64,
    /// Cycle up to which `busy_cycles` already covers this router's link
    /// activity (the union-of-intervals marker for exact busy accounting).
    pub(crate) busy_covered_until: u64,
    /// Flits forwarded through each output port.
    pub(crate) flits_per_port: [u64; NUM_PORTS],
    /// Set when some upstream message could not be forwarded because one of
    /// this router's buffers was full.  The next pop from any of this
    /// router's buffers (a forward out of it, or an endpoint drain) then
    /// re-arms the network's next-event bound, because the freed space may
    /// let that upstream message move.  Sticky until a pop: the blocked
    /// upstream router re-asserts it on every scan while still blocked.
    pub(crate) wake_on_pop: bool,
}

impl Router {
    pub(crate) fn new(channels: usize, buffer_flits: usize, ejection_flits: usize) -> Self {
        let mut buffers = Vec::with_capacity(NUM_PORTS * channels);
        for port in Port::ALL {
            let capacity = if port == Port::Local {
                ejection_flits
            } else {
                buffer_flits
            };
            buffers.extend((0..channels).map(|_| ChannelBuffer::new(capacity)));
        }
        Router {
            buffers,
            channels,
            link_busy_until: [0; NUM_PORTS],
            rr_next_channel: [0; NUM_PORTS],
            msgs_per_port: [0; NUM_PORTS],
            occupied_channels: [0; NUM_PORTS],
            buffered_messages: 0,
            busy_cycles: 0,
            busy_covered_until: 0,
            flits_per_port: [0; NUM_PORTS],
            wake_on_pop: false,
        }
    }

    #[inline]
    fn index(&self, port: Port, channel: ChannelId) -> usize {
        port.index() * self.channels + channel
    }

    #[inline]
    pub(crate) fn buffer(&self, port: Port, channel: ChannelId) -> &ChannelBuffer {
        &self.buffers[self.index(port, channel)]
    }

    /// Queues a message at `(port, channel)`, keeping the occupancy
    /// counters in sync.
    #[inline]
    pub(crate) fn push(&mut self, port: Port, channel: ChannelId, queued: QueuedMessage) {
        let index = self.index(port, channel);
        self.buffers[index].push(queued);
        self.msgs_per_port[port.index()] += 1;
        if self.channels <= 32 {
            self.occupied_channels[port.index()] |= 1u32 << channel as u32;
        }
        self.buffered_messages += 1;
    }

    /// Dequeues the head message at `(port, channel)`, keeping the
    /// occupancy counters in sync.
    #[inline]
    pub(crate) fn pop(&mut self, port: Port, channel: ChannelId) -> Option<QueuedMessage> {
        let index = self.index(port, channel);
        let queued = self.buffers[index].pop()?;
        if self.channels <= 32 && self.buffers[index].front().is_none() {
            self.occupied_channels[port.index()] &= !(1u32 << channel as u32);
        }
        self.msgs_per_port[port.index()] -= 1;
        debug_assert!(self.buffered_messages > 0);
        self.buffered_messages -= 1;
        Some(queued)
    }

    /// Messages buffered at one output port (all channels).
    #[inline]
    pub(crate) fn msgs_at(&self, port: Port) -> u32 {
        self.msgs_per_port[port.index()]
    }

    /// Whether `(port, channel)` holds at least one message, without
    /// touching the FIFO's heap buffer.  Conservatively true for networks
    /// with more than 32 channels, where the mask is not maintained.
    #[inline]
    pub(crate) fn channel_occupied(&self, port: Port, channel: ChannelId) -> bool {
        self.channels > 32
            || self.occupied_channels[port.index()] & (1u32 << channel as u32) != 0
    }

    /// Bitmask of channels holding at least one message at `port` (bit `c`
    /// set for channel `c`).  Exact for networks with at most 32 channels;
    /// conservatively all-ones beyond that, where the mask is not
    /// maintained.  The tile simulator iterates this for the local port to
    /// drain only occupied ejection buffers.
    #[inline]
    pub(crate) fn occupied_channel_mask(&self, port: Port) -> u32 {
        if self.channels > 32 {
            u32::MAX
        } else {
            self.occupied_channels[port.index()]
        }
    }

    /// Messages buffered at every port, including the local (ejection)
    /// port.
    pub(crate) fn buffered_messages(&self) -> usize {
        self.buffered_messages
    }

    /// Messages buffered at non-local ports — the ones
    /// [`crate::Network::cycle`] could still move.  Note the active-set
    /// retention deliberately does *not* use this: a router holding only
    /// undrained ejection-buffer messages forwards nothing, but it must
    /// keep its position in the arbitration order (see the retention
    /// comment in `Network::cycle`).
    #[cfg(test)]
    pub(crate) fn forwardable_messages(&self) -> usize {
        self.buffered_messages - self.msgs_at(Port::Local) as usize
    }

    #[inline]
    pub(crate) fn link_busy_until(&self, port: Port) -> u64 {
        self.link_busy_until[port.index()]
    }

    #[inline]
    pub(crate) fn set_link_busy_until(&mut self, port: Port, cycle: u64) {
        self.link_busy_until[port.index()] = cycle;
    }

    #[inline]
    pub(crate) fn rr_channel(&self, port: Port) -> ChannelId {
        self.rr_next_channel[port.index()] as ChannelId
    }

    #[inline]
    pub(crate) fn advance_rr(&mut self, port: Port, channels: usize) {
        let slot = &mut self.rr_next_channel[port.index()];
        *slot = (*slot + 1) % channels as u32;
    }

    /// Whether the buffer can accept a message of `flits` under the bubble
    /// rule. `entering_dimension` is true when the message is being injected
    /// from the local port or turning from the X to the Y dimension; such
    /// messages must leave `bubble_flits` of slack so the ring can always
    /// drain.
    pub(crate) fn can_accept(
        &self,
        port: Port,
        channel: ChannelId,
        flits: usize,
        entering_dimension: bool,
        bubble_flits: usize,
    ) -> bool {
        let buffer = self.buffer(port, channel);
        let needed = if entering_dimension && port != Port::Local {
            flits + bubble_flits
        } else {
            flits
        };
        buffer.free_flits() >= needed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn message(flits: usize) -> Message {
        Message::new(0, 0, vec![0; flits])
    }

    fn queued(flits: usize) -> QueuedMessage {
        QueuedMessage {
            message: message(flits),
            ready_at: 0,
        }
    }

    #[test]
    fn channel_buffer_tracks_occupancy() {
        let mut buffer = ChannelBuffer::new(8);
        assert_eq!(buffer.free_flits(), 8);
        buffer.push(queued(3));
        assert_eq!(buffer.free_flits(), 5);
        assert_eq!(buffer.occupied_flits(), 3);
        assert!(buffer.front().is_some());
        let popped = buffer.pop().unwrap();
        assert_eq!(popped.message.len(), 3);
        assert_eq!(buffer.free_flits(), 8);
        assert!(buffer.pop().is_none());
    }

    #[test]
    fn router_bubble_rule_reserves_slack_for_entering_messages() {
        let router = Router::new(1, 8, 8);
        // Continuing message: only its own 6 flits are needed.
        assert!(router.can_accept(Port::East, 0, 6, false, 3));
        // Entering message: 6 + 3 bubble does not fit in 8.
        assert!(!router.can_accept(Port::East, 0, 6, true, 3));
        // Ejection to the local port is exempt from the bubble rule.
        assert!(router.can_accept(Port::Local, 0, 6, true, 3));
    }

    #[test]
    fn router_round_robin_wraps() {
        let mut router = Router::new(3, 8, 8);
        assert_eq!(router.rr_channel(Port::East), 0);
        router.advance_rr(Port::East, 3);
        router.advance_rr(Port::East, 3);
        assert_eq!(router.rr_channel(Port::East), 2);
        router.advance_rr(Port::East, 3);
        assert_eq!(router.rr_channel(Port::East), 0);
        // Other ports are independent.
        assert_eq!(router.rr_channel(Port::West), 0);
    }

    #[test]
    fn push_and_pop_keep_per_port_counts_exact() {
        let mut router = Router::new(2, 16, 16);
        assert_eq!(router.buffered_messages(), 0);
        router.push(Port::East, 0, queued(2));
        router.push(Port::East, 1, queued(3));
        router.push(Port::Local, 0, queued(1));
        assert_eq!(router.buffered_messages(), 3);
        assert_eq!(router.msgs_at(Port::East), 2);
        assert_eq!(router.msgs_at(Port::Local), 1);
        assert_eq!(router.msgs_at(Port::West), 0);
        assert_eq!(router.forwardable_messages(), 2);
        let popped = router.pop(Port::East, 0).unwrap();
        assert_eq!(popped.message.len(), 2);
        assert_eq!(router.msgs_at(Port::East), 1);
        assert_eq!(router.buffered_messages(), 2);
        assert!(router.pop(Port::East, 0).is_none());
        assert_eq!(router.msgs_at(Port::East), 1);
    }
}
