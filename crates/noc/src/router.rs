//! Per-tile router state: output-port buffers and link occupancy.
//!
//! Each router has one buffer pool per output direction (the paper shares a
//! per-direction pool between channels with a software-configurable split;
//! we give each channel its own FIFO of `buffer_flits` capacity, the simpler
//! static split).  A link transmits one flit per cycle; a message occupies
//! its output link for `len` cycles.  Ring deadlock on the torus is avoided
//! with the local-bubble rule: messages *entering* a dimension (from the
//! local port or turning from X to Y) may only be accepted if the buffer
//! retains at least one maximal message worth of free space afterwards,
//! while messages continuing along the same dimension only need their own
//! space.

use crate::message::Message;
use crate::topology::Port;
use crate::ChannelId;
use std::collections::VecDeque;

/// A message queued at an output port, together with the cycle at which its
/// last flit will have arrived into this buffer (cut-through: it cannot be
/// forwarded before that).
#[derive(Debug, Clone)]
pub(crate) struct QueuedMessage {
    pub(crate) message: Message,
    pub(crate) ready_at: u64,
}

/// FIFO buffer for one (output port, channel) pair.
#[derive(Debug, Clone)]
pub(crate) struct ChannelBuffer {
    queue: VecDeque<QueuedMessage>,
    occupied_flits: usize,
    capacity_flits: usize,
}

impl ChannelBuffer {
    fn new(capacity_flits: usize) -> Self {
        ChannelBuffer {
            queue: VecDeque::new(),
            occupied_flits: 0,
            capacity_flits,
        }
    }

    pub(crate) fn free_flits(&self) -> usize {
        self.capacity_flits - self.occupied_flits
    }

    pub(crate) fn occupied_flits(&self) -> usize {
        self.occupied_flits
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    pub(crate) fn push(&mut self, queued: QueuedMessage) {
        debug_assert!(queued.message.len() <= self.free_flits());
        self.occupied_flits += queued.message.len();
        self.queue.push_back(queued);
    }

    pub(crate) fn front(&self) -> Option<&QueuedMessage> {
        self.queue.front()
    }

    pub(crate) fn pop(&mut self) -> Option<QueuedMessage> {
        let queued = self.queue.pop_front()?;
        self.occupied_flits -= queued.message.len();
        Some(queued)
    }
}

/// Router state for one tile.
#[derive(Debug, Clone)]
pub(crate) struct Router {
    /// `buffers[port][channel]`.
    buffers: Vec<Vec<ChannelBuffer>>,
    /// Cycle until which each output link is transmitting.
    link_busy_until: Vec<u64>,
    /// Round-robin arbitration pointer per output port.
    rr_next_channel: Vec<ChannelId>,
    /// Total messages currently buffered at this router (all ports).
    buffered_messages: usize,
    /// Cycles in which at least one output link of this router transmitted.
    pub(crate) busy_cycles: u64,
    /// Flits forwarded through each output port.
    pub(crate) flits_per_port: Vec<u64>,
}

impl Router {
    pub(crate) fn new(channels: usize, buffer_flits: usize, ejection_flits: usize) -> Self {
        let num_ports = Port::ALL.len();
        let mut buffers = Vec::with_capacity(num_ports);
        for port in Port::ALL {
            let capacity = if port == Port::Local {
                ejection_flits
            } else {
                buffer_flits
            };
            buffers.push((0..channels).map(|_| ChannelBuffer::new(capacity)).collect());
        }
        Router {
            buffers,
            link_busy_until: vec![0; num_ports],
            rr_next_channel: vec![0; num_ports],
            buffered_messages: 0,
            busy_cycles: 0,
            flits_per_port: vec![0; num_ports],
        }
    }

    pub(crate) fn buffer(&self, port: Port, channel: ChannelId) -> &ChannelBuffer {
        &self.buffers[port.index()][channel]
    }

    pub(crate) fn buffer_mut(&mut self, port: Port, channel: ChannelId) -> &mut ChannelBuffer {
        &mut self.buffers[port.index()][channel]
    }

    pub(crate) fn buffered_messages(&self) -> usize {
        self.buffered_messages
    }

    pub(crate) fn note_push(&mut self) {
        self.buffered_messages += 1;
    }

    pub(crate) fn note_pop(&mut self) {
        debug_assert!(self.buffered_messages > 0);
        self.buffered_messages -= 1;
    }

    pub(crate) fn link_busy_until(&self, port: Port) -> u64 {
        self.link_busy_until[port.index()]
    }

    pub(crate) fn set_link_busy_until(&mut self, port: Port, cycle: u64) {
        self.link_busy_until[port.index()] = cycle;
    }

    pub(crate) fn rr_channel(&self, port: Port) -> ChannelId {
        self.rr_next_channel[port.index()]
    }

    pub(crate) fn advance_rr(&mut self, port: Port, channels: usize) {
        let slot = &mut self.rr_next_channel[port.index()];
        *slot = (*slot + 1) % channels;
    }

    /// Whether the buffer can accept a message of `flits` under the bubble
    /// rule. `entering_dimension` is true when the message is being injected
    /// from the local port or turning from the X to the Y dimension; such
    /// messages must leave `bubble_flits` of slack so the ring can always
    /// drain.
    pub(crate) fn can_accept(
        &self,
        port: Port,
        channel: ChannelId,
        flits: usize,
        entering_dimension: bool,
        bubble_flits: usize,
    ) -> bool {
        let buffer = self.buffer(port, channel);
        let needed = if entering_dimension && port != Port::Local {
            flits + bubble_flits
        } else {
            flits
        };
        buffer.free_flits() >= needed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn message(flits: usize) -> Message {
        Message::new(0, 0, vec![0; flits])
    }

    #[test]
    fn channel_buffer_tracks_occupancy() {
        let mut buffer = ChannelBuffer::new(8);
        assert_eq!(buffer.free_flits(), 8);
        buffer.push(QueuedMessage {
            message: message(3),
            ready_at: 0,
        });
        assert_eq!(buffer.free_flits(), 5);
        assert_eq!(buffer.occupied_flits(), 3);
        assert!(!buffer.is_empty());
        let popped = buffer.pop().unwrap();
        assert_eq!(popped.message.len(), 3);
        assert_eq!(buffer.free_flits(), 8);
        assert!(buffer.pop().is_none());
    }

    #[test]
    fn router_bubble_rule_reserves_slack_for_entering_messages() {
        let router = Router::new(1, 8, 8);
        // Continuing message: only its own 6 flits are needed.
        assert!(router.can_accept(Port::East, 0, 6, false, 3));
        // Entering message: 6 + 3 bubble does not fit in 8.
        assert!(!router.can_accept(Port::East, 0, 6, true, 3));
        // Ejection to the local port is exempt from the bubble rule.
        assert!(router.can_accept(Port::Local, 0, 6, true, 3));
    }

    #[test]
    fn router_round_robin_wraps() {
        let mut router = Router::new(3, 8, 8);
        assert_eq!(router.rr_channel(Port::East), 0);
        router.advance_rr(Port::East, 3);
        router.advance_rr(Port::East, 3);
        assert_eq!(router.rr_channel(Port::East), 2);
        router.advance_rr(Port::East, 3);
        assert_eq!(router.rr_channel(Port::East), 0);
        // Other ports are independent.
        assert_eq!(router.rr_channel(Port::West), 0);
    }

    #[test]
    fn router_message_count_tracking() {
        let mut router = Router::new(1, 8, 8);
        assert_eq!(router.buffered_messages(), 0);
        router.note_push();
        router.note_push();
        router.note_pop();
        assert_eq!(router.buffered_messages(), 1);
    }
}
