//! Multi-flit messages.
//!
//! A Dalorex message is the parameter list of a task invocation: each flit
//! is one 32-bit parameter, and the first (head) flit is the global index of
//! the distributed array the task will access.  The network routes on the
//! destination tile derived from that index (the head encoder in the TSU
//! does the index→tile mapping before injection), so no routing metadata is
//! carried — this is the paper's "headerless task routing".
//!
//! # Inline payload
//!
//! Dalorex messages are tiny — the paper's kernels send two or three flits
//! per invocation, and any message must fit the ejection buffer to be
//! deliverable.  [`Message`] therefore stores its payload *inline*, in a
//! fixed `[Flit; MAX_FLITS]` array plus a length, instead of a heap `Vec`.
//! Creating, cloning, forwarding and delivering a message never allocates;
//! the whole per-cycle injection → hop → ejection path is heap-free.  The
//! `dalorex-sim` engine validates at kernel-declaration time that every
//! channel's `flits_per_message` fits [`MAX_FLITS`].

use crate::{ChannelId, TileId};

/// One 32-bit network flit.
pub type Flit = u32;

/// Maximum flits a [`Message`] can carry inline.  The paper's kernels use
/// 2–3 flits per message; the default 16-flit router buffers bound
/// acceptable messages to 8 flits anyway (a message needs its own length
/// plus bubble slack).
pub const MAX_FLITS: usize = 8;

/// A message travelling through the network.  The payload lives inline (no
/// heap allocation); see the module docs.
#[derive(Debug, Clone)]
pub struct Message {
    dest: TileId,
    channel: ChannelId,
    /// Number of valid flits in `payload`.
    len: u8,
    payload: [Flit; MAX_FLITS],
    /// Cycle at which the message was injected; used for latency statistics.
    pub(crate) injected_at: u64,
}

impl Message {
    /// Creates a message destined for `dest` on logical `channel` carrying
    /// `payload` flits (the head flit first).  Accepts any slice-like
    /// payload (`&[Flit]`, `[Flit; N]`, `Vec<Flit>`, ...); the flits are
    /// copied into the message's inline storage.
    ///
    /// # Panics
    ///
    /// Panics if the payload is empty (a message needs at least a head
    /// flit) or longer than [`MAX_FLITS`].
    pub fn new<P: AsRef<[Flit]>>(dest: TileId, channel: ChannelId, payload: P) -> Self {
        let flits = payload.as_ref();
        assert!(!flits.is_empty(), "a message needs at least a head flit");
        assert!(
            flits.len() <= MAX_FLITS,
            "a message carries at most {MAX_FLITS} flits, got {}",
            flits.len()
        );
        let mut inline = [0 as Flit; MAX_FLITS];
        inline[..flits.len()].copy_from_slice(flits);
        Message {
            dest,
            channel,
            len: flits.len() as u8,
            payload: inline,
            injected_at: 0,
        }
    }

    /// Destination tile.
    pub fn dest(&self) -> TileId {
        self.dest
    }

    /// Logical channel.
    pub fn channel(&self) -> ChannelId {
        self.channel
    }

    /// The flits, head first.
    pub fn payload(&self) -> &[Flit] {
        &self.payload[..self.len as usize]
    }

    /// Mutable access to the flits.  The endpoint head decoder uses this to
    /// rewrite the head flit (global index → local offset) in place, without
    /// copying the message out to the heap.
    pub fn payload_mut(&mut self) -> &mut [Flit] {
        &mut self.payload[..self.len as usize]
    }

    /// Number of flits.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always false: messages have at least one flit.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Consumes the message and returns its payload as a `Vec`.
    ///
    /// This allocates; it is a convenience for tests and tools.  Hot paths
    /// read [`Message::payload`] (or [`Message::payload_mut`]) instead.
    pub fn into_payload(self) -> Vec<Flit> {
        self.payload().to_vec()
    }

    /// Cycle at which the message entered the network (0 before injection).
    pub fn injected_at(&self) -> u64 {
        self.injected_at
    }
}

/// Equality compares the logical payload (valid flits only), not the unused
/// inline slots.
impl PartialEq for Message {
    fn eq(&self, other: &Self) -> bool {
        self.dest == other.dest
            && self.channel == other.channel
            && self.injected_at == other.injected_at
            && self.payload() == other.payload()
    }
}

impl Eq for Message {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_exposes_fields() {
        let m = Message::new(7, 2, vec![1, 2, 3]);
        assert_eq!(m.dest(), 7);
        assert_eq!(m.channel(), 2);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.payload(), &[1, 2, 3]);
        assert_eq!(m.into_payload(), vec![1, 2, 3]);
    }

    #[test]
    fn payloads_can_be_borrowed_or_inline() {
        let from_slice = Message::new(1, 0, &[5, 6][..]);
        let from_array = Message::new(1, 0, [5, 6]);
        assert_eq!(from_slice, from_array);
    }

    #[test]
    fn head_flit_is_rewritable_in_place() {
        let mut m = Message::new(3, 1, [100, 7]);
        m.payload_mut()[0] = 42;
        assert_eq!(m.payload(), &[42, 7]);
    }

    #[test]
    fn equality_ignores_unused_inline_slots() {
        // Two messages with equal payloads are equal regardless of how the
        // inline storage beyond `len` came to be.
        let a = Message::new(0, 0, [1, 2]);
        let b = Message::new(0, 0, vec![1, 2]);
        assert_eq!(a, b);
        assert_ne!(a, Message::new(0, 0, [1, 2, 0]));
    }

    #[test]
    #[should_panic(expected = "head flit")]
    fn empty_payload_panics() {
        let _ = Message::new(0, 0, vec![]);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn oversized_payload_panics() {
        let _ = Message::new(0, 0, vec![0; MAX_FLITS + 1]);
    }
}
