//! Multi-flit messages.
//!
//! A Dalorex message is the parameter list of a task invocation: each flit
//! is one 32-bit parameter, and the first (head) flit is the global index of
//! the distributed array the task will access.  The network routes on the
//! destination tile derived from that index (the head encoder in the TSU
//! does the index→tile mapping before injection), so no routing metadata is
//! carried — this is the paper's "headerless task routing".

use crate::{ChannelId, TileId};

/// One 32-bit network flit.
pub type Flit = u32;

/// A message travelling through the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    dest: TileId,
    channel: ChannelId,
    payload: Vec<Flit>,
    /// Cycle at which the message was injected; used for latency statistics.
    pub(crate) injected_at: u64,
}

impl Message {
    /// Creates a message destined for `dest` on logical `channel` carrying
    /// `payload` flits (the head flit first).
    ///
    /// # Panics
    ///
    /// Panics if the payload is empty; a message needs at least a head flit.
    pub fn new(dest: TileId, channel: ChannelId, payload: Vec<Flit>) -> Self {
        assert!(!payload.is_empty(), "a message needs at least a head flit");
        Message {
            dest,
            channel,
            payload,
            injected_at: 0,
        }
    }

    /// Destination tile.
    pub fn dest(&self) -> TileId {
        self.dest
    }

    /// Logical channel.
    pub fn channel(&self) -> ChannelId {
        self.channel
    }

    /// The flits, head first.
    pub fn payload(&self) -> &[Flit] {
        &self.payload
    }

    /// Number of flits.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Always false: messages have at least one flit.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Consumes the message and returns its payload.
    pub fn into_payload(self) -> Vec<Flit> {
        self.payload
    }

    /// Cycle at which the message entered the network (0 before injection).
    pub fn injected_at(&self) -> u64 {
        self.injected_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_exposes_fields() {
        let m = Message::new(7, 2, vec![1, 2, 3]);
        assert_eq!(m.dest(), 7);
        assert_eq!(m.channel(), 2);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.payload(), &[1, 2, 3]);
        assert_eq!(m.into_payload(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "head flit")]
    fn empty_payload_panics() {
        let _ = Message::new(0, 0, vec![]);
    }
}
