//! Cycle-level network-on-chip models for the Dalorex reproduction.
//!
//! The Dalorex paper (Section III-F) connects its tiles with a wormhole,
//! dimension-ordered network-on-chip and evaluates three physical
//! topologies: a 2D mesh, a 2D torus (the default for grids up to 32x32),
//! and a torus augmented with *ruche* channels (long physical wires that
//! bypass routers) for larger grids.  Messages are routed by their payload:
//! the head flit carries the global index of the distributed array the next
//! task will access, and the destination tile is derived from that index —
//! no routing metadata travels on the wire.
//!
//! This crate provides:
//!
//! * [`topology`] — grid geometry, the three topologies, dimension-ordered
//!   next-hop computation, hop counts, wire lengths and bisection bandwidth.
//! * [`message`] — multi-flit messages tagged with a logical channel.
//! * [`router`] — a router with per-output-port, per-channel buffers and the
//!   local-bubble injection rule used for ring deadlock avoidance.
//! * [`network`] — the cycle-level network simulator: inject, advance one
//!   cycle, drain deliveries, and idle detection.
//! * [`stats`] — link/router utilization counters, flit-hop and
//!   flit-millimetre totals for the energy model, and utilization heatmaps
//!   (paper Figure 10).
//!
//! # Modelling note
//!
//! The paper's NoC is wormhole-switched.  We model *virtual cut-through* at
//! message granularity: a message advances one hop only when the downstream
//! buffer can hold all of its flits, occupies the link for `len` cycles
//! (serialization), and then becomes available at the next router.  For the
//! 2–3-flit messages of the Dalorex programming model and the ≥8-flit
//! buffers used throughout, the cycle counts of the two switching
//! disciplines differ by at most the message length per hop, which the
//! paper's own pipeline-effect argument renders negligible; contention,
//! serialization and endpoint back-pressure — the quantities the results
//! depend on — are preserved.  `DESIGN.md` §2 records this substitution.
//!
//! # Example
//!
//! ```
//! use dalorex_noc::network::Network;
//! use dalorex_noc::message::Message;
//! use dalorex_noc::topology::{GridShape, Topology};
//! use dalorex_noc::NocConfig;
//!
//! let config = NocConfig::new(GridShape::new(4, 4), Topology::Torus);
//! let mut net = Network::new(config);
//! // Send a 3-flit message on channel 0 from tile 0 to tile 15.
//! net.try_inject(0, Message::new(15, 0, vec![42, 7, 9])).unwrap();
//! // Advance cycles until the message reaches tile 15's ejection buffer.
//! while net.in_flight() > 0 {
//!     net.cycle();
//! }
//! let delivered = net.pop_delivered(15).expect("message arrives");
//! assert_eq!(delivered.payload(), &[42, 7, 9]);
//! assert!(net.is_idle());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod message;
pub mod network;
pub mod router;
pub mod stats;
pub mod topology;

mod error;

pub use error::NocError;
pub use fault::{FaultImpact, NocFaultEvent, NocFaults};
pub use message::{Message, MAX_FLITS};
pub use network::shard::{EndpointShard, ShardBuffers, TileEndpoint};
pub use network::{Network, NocMemoryReport};
pub use stats::NocStats;
pub use topology::{GridShape, Topology};

/// Identifier of a tile (router) in the grid, row-major:
/// `id = y * width + x`.
pub type TileId = usize;

/// Identifier of a logical channel.  The Dalorex programming model uses one
/// channel per producer→consumer task pair (e.g. T1→T2 and T2→T3 for SSSP)
/// so that a clogged channel cannot block another.
pub type ChannelId = usize;

/// How [`Network::cycle`] finds the routers that can act each cycle.
///
/// All schedulers produce bit-identical forwarding schedules and
/// statistics; they differ only in simulator cost.  The scan scheduler
/// visits every active router's ports every cycle; the calendar schedulers
/// keep a per-router `next_possible` due stamp and a bucketed calendar of
/// due routers, so a cycle only port-scans the routers that could actually
/// commit — the win on dense regimes where deliveries land nearly every
/// cycle and whole-network skipping cannot help.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterScheduler {
    /// Scan every active router's occupied topology ports each cycle (the
    /// PR 2 event-driven hot path).
    #[default]
    Scan,
    /// Due-only calendar iteration: drain the due calendar buckets, order
    /// the due routers by their epoch-numbered list position, and visit
    /// exactly those — reconstructing the scan scheduler's arbitration
    /// order without touching non-due routers.  O(due) per cycle instead
    /// of O(active).
    Calendar,
    /// The pre-due-only calendar walk: the same due stamps and calendar
    /// buckets, but every non-quiet cycle still walks the entire active
    /// list reading a dense stamp per router.  Kept as the in-binary A/B
    /// baseline for the due-only microbenches and as a schedule oracle
    /// (`Simulation::run_calendar_scan` in `dalorex-sim`).
    CalendarScan,
}

/// Configuration of a network instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocConfig {
    /// Grid dimensions.
    pub shape: GridShape,
    /// Physical topology.
    pub topology: Topology,
    /// Number of logical channels (defaults to 4, enough for the 4-task
    /// kernels of the paper).
    pub channels: usize,
    /// Buffer capacity, in flits, of each per-output-port per-channel FIFO
    /// (default 16).  The paper makes the per-direction pool a tapeout
    /// parameter with software-configurable per-channel split; we expose the
    /// per-channel capacity directly.
    pub buffer_flits: usize,
    /// Capacity, in flits, of each tile's local delivery buffer per channel
    /// (default 16).  When the TSU does not drain deliveries, this models
    /// endpoint back-pressure into the network.
    pub ejection_buffer_flits: usize,
    /// Endpoint bandwidth in messages per tile per cycle (default 1): how
    /// many ejection-buffer messages a tile may drain, and how many
    /// channel-queue messages it may inject, in one cycle.  The fabric
    /// itself delivers into ejection buffers without limit; the budget is a
    /// contract honoured by the endpoint driving [`Network::pop_delivered`]
    /// and [`Network::try_inject`] (the tile simulator in `dalorex-sim`
    /// enforces it in both directions).  At the default of 1 the tiles are
    /// serialized exactly as the paper's single local router port; raising
    /// it models wider endpoint interfaces so the fabric, not the endpoint,
    /// becomes the bottleneck on dense-traffic sweeps.
    pub endpoint_drains_per_cycle: usize,
    /// Which per-cycle router scheduler [`Network::cycle`] runs (default
    /// [`RouterScheduler::Scan`]).  Schedules and statistics are identical
    /// either way; only simulator wall-clock differs.
    pub router_scheduler: RouterScheduler,
    /// Scheduled fabric faults (default none).  See [`fault`] for the
    /// model; an empty schedule compiles to nothing and leaves the hot
    /// path untouched.
    pub faults: NocFaults,
}

impl NocConfig {
    /// Creates a configuration with the default channel count and buffer
    /// sizes.
    pub fn new(shape: GridShape, topology: Topology) -> Self {
        NocConfig {
            shape,
            topology,
            channels: 4,
            buffer_flits: 16,
            ejection_buffer_flits: 16,
            endpoint_drains_per_cycle: 1,
            router_scheduler: RouterScheduler::default(),
            faults: NocFaults::default(),
        }
    }

    /// Sets the number of logical channels.
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    /// Sets the per-port per-channel buffer capacity in flits.
    pub fn with_buffer_flits(mut self, flits: usize) -> Self {
        self.buffer_flits = flits;
        self
    }

    /// Sets the local delivery (ejection) buffer capacity in flits.
    pub fn with_ejection_buffer_flits(mut self, flits: usize) -> Self {
        self.ejection_buffer_flits = flits;
        self
    }

    /// Sets the endpoint bandwidth: messages a tile may drain from its
    /// ejection buffers — and inject from its channel queues — per cycle.
    pub fn with_endpoint_drains(mut self, drains_per_cycle: usize) -> Self {
        self.endpoint_drains_per_cycle = drains_per_cycle;
        self
    }

    /// Selects the per-cycle router scheduler.
    pub fn with_router_scheduler(mut self, scheduler: RouterScheduler) -> Self {
        self.router_scheduler = scheduler;
        self
    }

    /// Installs a fabric fault schedule (link outages, router stalls).
    pub fn with_faults(mut self, faults: NocFaults) -> Self {
        self.faults = faults;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builder_sets_fields() {
        let config = NocConfig::new(GridShape::new(2, 3), Topology::Mesh)
            .with_channels(2)
            .with_buffer_flits(8)
            .with_ejection_buffer_flits(4)
            .with_endpoint_drains(2);
        assert_eq!(config.shape.num_tiles(), 6);
        assert_eq!(config.channels, 2);
        assert_eq!(config.buffer_flits, 8);
        assert_eq!(config.ejection_buffer_flits, 4);
        assert_eq!(config.endpoint_drains_per_cycle, 2);
    }

    #[test]
    fn default_endpoint_bandwidth_is_one_message_per_cycle() {
        let config = NocConfig::new(GridShape::new(2, 2), Topology::Torus);
        assert_eq!(config.endpoint_drains_per_cycle, 1);
    }
}
