//! The cycle-level network simulator.
//!
//! [`Network`] owns one [`Router`](crate::router) per tile and advances the
//! whole fabric one cycle at a time.  The Dalorex tile simulator drives it
//! in lock-step with the tiles: each cycle, tiles inject the messages their
//! channel queues produced ([`Network::try_inject`]), the network moves
//! messages one hop ([`Network::cycle`]), and tiles drain arrivals from
//! their ejection buffers ([`Network::pop_delivered`]).  If a tile does not
//! drain its ejection buffer, back-pressure propagates upstream exactly as
//! in the paper's end-point-contention discussion.
//!
//! # Cycle-level handshake
//!
//! ```text
//!   tile (TSU)                     network fabric                    tile (TSU)
//!  ┌──────────┐  try_inject   ┌──────────────────────┐  delivery   ┌──────────┐
//!  │ channel  │ ────────────► │ src router ──cycle()──► dst router │ ejection │
//!  │ queues   │ ◄──Rejected── │   buffers   per hop     Local port │ buffers  │
//!  └──────────┘ back-pressure └──────────────────────┘             └────┬─────┘
//!                                                      pop_delivered ◄──┘
//!                                              (≤ endpoint_drains_per_cycle
//!                                               messages per tile per cycle)
//! ```
//!
//! Endpoint bandwidth is a configuration knob
//! ([`NocConfig::endpoint_drains_per_cycle`](crate::NocConfig)): the fabric
//! delivers into ejection buffers without limit, and the *endpoint* — the
//! tile draining via [`Network::pop_delivered`] and injecting via
//! [`Network::try_inject`] — honours the per-cycle budget.  The tile
//! simulator in `dalorex-sim` enforces it on both directions.
//!
//! # Hot path
//!
//! [`Network::cycle`] is event-driven end-to-end: only routers holding
//! *forwardable* (non-local) messages are visited, only their occupied
//! ports are scanned (per-port message counts in the router), only the
//! ports the topology actually wires are considered (a mesh or plain torus
//! never looks at ruche ports), and the active set is double-buffered
//! through persistent scratch vectors so steady-state cycling performs no
//! heap allocation.  The pre-overhaul implementation is preserved as
//! [`Network::cycle_reference`] — a correctness oracle for schedule
//! regression tests and the baseline the `sim_microbench` speedup case
//! measures against.
//!
//! # Cycle skipping (the event horizon)
//!
//! Most cycles of a serialization-bound run move nothing: every link that
//! forwarded a multi-flit message sits busy for `flits` cycles, and a
//! cut-through message is not forwardable until its last flit has arrived.
//! [`Network::cycle`] therefore computes, as a by-product of the scan it
//! already performs, a **next-event bound**: the earliest future cycle at
//! which a forward could possibly commit (the minimum over busy links'
//! un-busy times, buffered heads' `ready_at`s, and post-commit link-free
//! times; see [`Network::next_event_cycle`] for the exact contract).
//! Cycles below the bound are provably no-ops — ticking through them would
//! only increment the cycle counter — so a driver may jump them in O(1)
//! with [`Network::advance_to`] instead of calling [`Network::cycle`] once
//! per cycle.  Skipping changes no modelled behaviour: the forwarding
//! schedule, every latency and busy statistic, the per-tile rejection
//! counts and the drain versions are bit-identical to ticking every cycle
//! (and therefore to [`Network::cycle_reference`]); only the number of
//! `cycle()` calls — simulator wall-clock, not modelled time — shrinks.
//! The tile simulator in `dalorex-sim` combines this bound with its own
//! tile-side event tracking to jump whole-chip quiescent stretches.
//!
//! # The calendar router scheduler
//!
//! Whole-system skipping saturates on dense regimes: when deliveries land
//! nearly every cycle, no window is quiet, and the full active-router scan
//! dominates simulator wall-clock.  Configuring
//! [`RouterScheduler::Calendar`](crate::RouterScheduler) makes
//! [`Network::cycle`] keep a per-router **`next_possible` due stamp** (the
//! min over that router's head `ready_at`s, link un-busy times, post-commit
//! link-free times, and "next cycle" for heads blocked on full downstream
//! buffers) plus a bucketed calendar of due routers.  Stamps are lower
//! bounds, so a due router may still commit nothing (it is simply
//! re-stamped); the invariant that a stamp never overshoots the router's
//! actual next commit is what keeps the schedule bit-identical to the scan
//! scheduler and to [`Network::cycle_reference`], and is pinned by the
//! cross-crate property suite via [`Network::next_possible_stamp`].
//!
//! # The due-only walk (O(due) per cycle)
//!
//! The original calendar walk still traversed the *entire* active list
//! every non-quiet cycle just to read one dense stamp per router — the
//! sequential phase (and Amdahl limit) of the parallel engine.  The
//! [`RouterScheduler::Calendar`](crate::RouterScheduler) walk is now
//! **due-only**: every active router carries an epoch-numbered order key
//! (retained routers keep theirs, in-walk activations take descending head
//! keys, between-cycle activations ascending tail keys — so sorting by key
//! reproduces the explicit list exactly), and a cycle drains only the due
//! buckets, orders the due routers by key through a tiny binary heap, and
//! port-scans exactly those.  Membership changes go through lazy
//! tombstoning (drops decided at the router's own heap turn) plus a small
//! dirty-set replay for endpoint-drained routers, and the walk's next-event
//! bound for the routers it never visits comes from per-slot filed-stamp
//! minima.  The pre-due-only walk is preserved verbatim as
//! [`RouterScheduler::CalendarScan`](crate::RouterScheduler) — the
//! in-binary A/B baseline (`sim_microbench`'s `due_only` vs `full_walk`
//! rungs) and a schedule oracle for the equivalence suites.

use crate::message::Message;
use crate::router::{QueuedMessage, Router};
use crate::stats::{NocStats, UtilizationGrid};
use crate::topology::{Port, RoutingGrid};
use crate::{ChannelId, NocConfig, NocError, RouterScheduler, TileId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

pub mod shard;

/// Number of calendar bucket slots (a ring indexed by `cycle % WIDTH`).
/// Due stamps never lie more than one maximal serialization
/// ([`crate::MAX_FLITS`] cycles) in the future, so any width beyond that
/// only spreads entries; 64 keeps the ring a few cache lines and makes the
/// "drain at most `WIDTH` slots after a long jump" bound cover every slot.
const CALENDAR_WIDTH: u64 = 64;

/// Origin of the due-only walk's order-key space: tail keys (between-cycle
/// activations, appended after everything) count up from here, head keys
/// (in-walk activations, inserted before everything) count down from here
/// in strides of [`HEAD_STRIDE`] per walk.
const POS_ORIGIN: u64 = 1 << 62;

/// Order-key budget one walk's in-walk activations share: each walk lowers
/// the head base by a full stride so its activations sort below every
/// earlier walk's, and 2^32 activations per walk is unreachable (a walk
/// activates at most one router per committed forward).
const HEAD_STRIDE: u64 = 1 << 32;

/// When the descending head base reaches this floor (after ~2^29 walks),
/// the next walk renumbers every active router's key from the origin —
/// O(active log active), amortized to nothing.
const HEAD_FLOOR: u64 = 1 << 33;

/// The network's contribution to the memory budget report (see
/// [`Network::memory_report`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NocMemoryReport {
    /// Modelled router buffer capacity across the fabric, in bytes.
    pub buffer_bytes: usize,
    /// Calendar router-scheduler bookkeeping heap, in bytes (0-ish under
    /// the scan scheduler: just the dense due/buffered-count mirrors).
    pub calendar_bytes: usize,
}

/// A message rejected at injection, handed back to the caller together with
/// the reason so it can be retried on a later cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejected {
    /// The message that was not injected.
    pub message: Message,
    /// Why it was rejected.
    pub error: NocError,
}

/// Dimension a port moves a message along (used by the bubble rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dimension {
    X,
    Y,
    None,
}

fn port_dimension(port: Port) -> Dimension {
    match port {
        Port::East | Port::West | Port::RucheEast | Port::RucheWest => Dimension::X,
        Port::North | Port::South | Port::RucheNorth | Port::RucheSouth => Dimension::Y,
        Port::Local => Dimension::None,
    }
}

/// State of the head message of one (port, channel) FIFO, as seen by the
/// forwarding scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ForwardCandidate {
    /// No message buffered.
    Empty,
    /// The head's last flit is still arriving; it becomes forwardable at
    /// the carried cycle (a next-event candidate).
    ReadyAt(u64),
    /// The head may move this cycle, pending downstream acceptance.
    Ready {
        /// Message length in flits.
        flits: usize,
        /// Final destination tile.
        dest: TileId,
    },
}

/// Cycle-level network-on-chip simulator.
#[derive(Debug, Clone)]
pub struct Network {
    config: NocConfig,
    grid: RoutingGrid,
    routers: Vec<Router>,
    /// Routers that currently hold at least one forwardable message.
    active: Vec<bool>,
    active_list: Vec<TileId>,
    /// Double buffer for `active_list`, swapped every cycle so the hot path
    /// never allocates.
    active_scratch: Vec<TileId>,
    /// Routers still holding forwardable messages after their turn; appended
    /// to `active_list` at the end of the cycle to preserve the reference
    /// engine's arbitration order exactly.
    requeue_scratch: Vec<TileId>,
    /// Non-local output ports the topology actually wires, in `Port::ALL`
    /// order (mesh and plain torus exclude the four ruche ports).
    forward_ports: Vec<Port>,
    /// Precomputed link destinations, `link_dest[tile * 9 + port.index()]`:
    /// the tile each output link leads to.  Dimension-ordered routing makes
    /// a buffered message's output port equal to the port it is buffered
    /// at, so the per-hop `next_hop` geometry reduces to this table lookup.
    link_dest: Vec<TileId>,
    /// Cached `(x, y)` coordinates per tile, sparing the routing hot path
    /// the row-major division per candidate message.
    coords: Vec<(u16, u16)>,
    cycle: u64,
    stats: NocStats,
    in_flight_messages: u64,
    awaiting_ejection: u64,
    /// Tiles that received a delivery since the last call to
    /// [`Network::take_delivery_events`].
    delivery_events: Vec<TileId>,
    delivery_event_pending: Vec<bool>,
    /// Per-router drain version: bumped whenever a message leaves one of
    /// the router's buffers (a forward out of an output port, or an
    /// endpoint draining the ejection buffer).  Injection back-pressure at
    /// a tile can only clear when space frees in that tile's router, so a
    /// rejected injection is guaranteed to fail again until this version
    /// changes — the tile simulator uses that to skip provably futile
    /// retries.  Kept in a dense side array so polling it does not touch
    /// the (much larger) router state.
    drain_versions: Vec<u32>,
    /// Lower bound on the next cycle at which a forward could commit: no
    /// call to [`Network::cycle`] with `self.cycle < next_commit_at` can
    /// move a message.  Recomputed by every `cycle()` from the scan it
    /// already performs, and tightened by [`Network::try_inject`] (a new
    /// candidate appears) and [`Network::pop_delivered_on`] (freed ejection
    /// space may unblock an upstream message).  `u64::MAX` means no buffered
    /// message can ever move without external action (an endpoint drain).
    next_commit_at: u64,
    /// Whether a calendar scheduler drives [`Network::cycle`] (cached from
    /// [`NocConfig::router_scheduler`]: either [`RouterScheduler::Calendar`]
    /// or [`RouterScheduler::CalendarScan`]).
    calendar: bool,
    /// Whether the due-only walk drives the calendar cycle
    /// ([`RouterScheduler::Calendar`]).  When false with `calendar` true,
    /// the preserved full-active-list walk runs instead
    /// ([`RouterScheduler::CalendarScan`] — the A/B baseline).
    due_only: bool,
    /// Per-router `next_possible` due stamp (calendar scheduler): the
    /// earliest cycle at which port-scanning the router could commit a
    /// forward or have any side effect.  A calendar cycle skips — without
    /// touching the router — every active router whose stamp has not come
    /// due; the invariant (checked by the property suite) is that a
    /// router's stamp never overshoots its actual next commit.  `u64::MAX`
    /// means the router holds nothing forwardable (empty, or ejection
    /// deliveries only) and is re-stamped by the next push.
    due: Vec<u64>,
    /// Dense mirror of each router's `buffered_messages()` so the calendar
    /// walk can decide active-list retention for skipped routers without
    /// touching the (much larger) router state.
    buffered_count: Vec<u32>,
    /// The bucketed calendar: ring of due-router lists indexed by
    /// `stamp % CALENDAR_WIDTH`.  Entries are lazy — a re-stamped router's
    /// old entry is dropped (or re-filed) when its bucket is drained — so
    /// the dense `due` array stays the single source of truth.
    cal_buckets: Vec<Vec<TileId>>,
    /// Scratch for re-filing still-future entries during a bucket drain.
    cal_refile: Vec<TileId>,
    /// First cycle whose bucket has not been drained yet.
    cal_head: u64,
    /// Order key per tile, valid only while `active[tile]` — the due-only
    /// walk's *implicit* active list.  Retained routers keep their key, new
    /// in-walk activations take descending head keys, between-cycle
    /// activations take ascending tail keys, so sorting the active tiles by
    /// key reproduces the scan scheduler's `active_list` exactly (pinned by
    /// [`Network::debug_active_order`] and the property suite).  Allocated
    /// only under [`RouterScheduler::Calendar`].
    pos: Vec<u64>,
    /// The due-only walk's per-cycle agenda: `(pos, tile)` pairs, popped in
    /// ascending key order.  Filled by the bucket drain (due entries), the
    /// dirty-set replay, and mid-walk wakes of not-yet-visited routers;
    /// empty between cycles.
    cal_heap: BinaryHeap<Reverse<(u64, TileId)>>,
    /// Cycle at which the due-only walk last visited each tile: dedups
    /// stale heap entries (a tile filed in several buckets, or woken after
    /// its drain entry) in O(1).  Allocated only under
    /// [`RouterScheduler::Calendar`].
    cal_visited: Vec<u64>,
    /// Key of the router the due-only walk is currently visiting: a
    /// mid-walk wake for a router with a *larger* key joins this cycle's
    /// heap (its turn has not come), one with a smaller key waits for its
    /// bucket (its turn has passed) — exactly the full walk's semantics.
    walk_cursor: u64,
    /// True while the due-only walk is draining its heap, switching
    /// `mark_active` to head keys and `wake_waiters` to heap insertion.
    in_walk: bool,
    /// Base of the current walk's head-key block (descends by
    /// [`HEAD_STRIDE`] per walk).
    head_base: u64,
    /// In-walk activations so far this walk (offset within the head block).
    head_seq: u64,
    /// Last tail key handed out (between-cycle activations append here).
    tail_next: u64,
    /// Minimum due stamp filed into each calendar slot since that slot was
    /// last drained: the due-only walk cannot read non-due routers' stamps
    /// (it never visits them), so the min over these 64 slot minima is its
    /// next-event bound.  Stale-low minima (an entry re-stamped upwards)
    /// cost a spurious wakeup that the next drain corrects — never a
    /// schedule change.  Allocated only under the calendar schedulers.
    cal_slot_min: Vec<u64>,
    /// Tiles whose buffers an endpoint drain emptied since the last walk:
    /// the next calendar cycle replays exactly these (dropping each where
    /// the scan scheduler would) instead of walking the whole list — the
    /// PR 10 fix for the dirty-membership over-walk.
    dirty: Vec<TileId>,
    /// Dedup flags for `dirty` (a tile drained empty twice between walks is
    /// replayed once).  Allocated only under the calendar schedulers.
    dirty_pending: Vec<bool>,
    /// Calendar-scheduler refinement of the wake-on-pop flag: routers whose
    /// ready head is blocked on one of `waiters[t]`'s full buffers.  A
    /// blocked router registers itself here and sleeps (due `u64::MAX`
    /// unless another port has a candidate) instead of re-scanning every
    /// cycle; any pop at `t` wakes every waiter.  Spurious wakes (a pop
    /// from a buffer the waiter was not blocked on) cost one no-op re-scan
    /// and re-registration — never a schedule change.
    waiters: Vec<Vec<TileId>>,
    /// The compiled fault schedule (`None` when [`NocConfig::faults`] is
    /// empty — the hot path then pays one pointer test per router scan).
    /// A stalled router or blacked-out link forwards nothing during its
    /// window and contributes the window's end as a next-event candidate,
    /// so both schedulers wake it at the transition.
    faults: Option<Box<crate::fault::CompiledNocFaults>>,
}

/// Per-router result of one port scan, accumulated by
/// [`Network::scan_router`]: the PR 4 next-event candidate (the min over
/// busy-link un-busy times, head `ready_at`s and post-commit link-free
/// times — blocked heads contribute nothing; they re-arm via wake-on-pop,
/// refined to per-router waiter lists under the calendar scheduler).
#[derive(Debug, Clone, Copy)]
struct RouterScan {
    min_candidate: u64,
}

impl Network {
    /// Creates a network from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests zero channels, zero-sized
    /// buffers (a network that can never carry a message), or a zero
    /// endpoint-drain budget (an endpoint that can never make progress).
    pub fn new(config: NocConfig) -> Self {
        assert!(config.channels > 0, "at least one channel is required");
        assert!(config.buffer_flits > 0, "buffers must hold at least one flit");
        assert!(
            config.ejection_buffer_flits > 0,
            "ejection buffers must hold at least one flit"
        );
        assert!(
            config.endpoint_drains_per_cycle > 0,
            "endpoints must drain at least one message per cycle"
        );
        let num_tiles = config.shape.num_tiles();
        let routers = (0..num_tiles)
            .map(|_| {
                Router::new(
                    config.channels,
                    config.buffer_flits,
                    config.ejection_buffer_flits,
                )
            })
            .collect();
        let grid = RoutingGrid::new(config.shape, config.topology);
        let has_ruche = config.topology.ruche_factor().is_some();
        let forward_ports: Vec<Port> = Port::ALL
            .into_iter()
            .filter(|&p| p != Port::Local && (has_ruche || !p.is_ruche()))
            .collect();
        let ruche = config.topology.ruche_factor().unwrap_or(1) as isize;
        let (width, height) = (config.shape.width() as isize, config.shape.height() as isize);
        let mut link_dest = vec![0 as TileId; num_tiles * Port::ALL.len()];
        for tile in 0..num_tiles {
            let (x, y) = config.shape.coords(tile);
            let (x, y) = (x as isize, y as isize);
            for port in Port::ALL {
                let (dx, dy) = match port {
                    Port::East => (1, 0),
                    Port::West => (-1, 0),
                    Port::North => (0, 1),
                    Port::South => (0, -1),
                    Port::RucheEast => (ruche, 0),
                    Port::RucheWest => (-ruche, 0),
                    Port::RucheNorth => (0, ruche),
                    Port::RucheSouth => (0, -ruche),
                    Port::Local => (0, 0),
                };
                let nx = (x + dx).rem_euclid(width) as usize;
                let ny = (y + dy).rem_euclid(height) as usize;
                link_dest[tile * Port::ALL.len() + port.index()] =
                    config.shape.tile_at(nx, ny);
            }
        }
        let coords = (0..num_tiles)
            .map(|tile| {
                let (x, y) = config.shape.coords(tile);
                (x as u16, y as u16)
            })
            .collect();
        let stats = NocStats {
            injection_rejections_per_tile: vec![0; num_tiles],
            ..NocStats::default()
        };
        let calendar = matches!(
            config.router_scheduler,
            RouterScheduler::Calendar | RouterScheduler::CalendarScan
        );
        let due_only = config.router_scheduler == RouterScheduler::Calendar;
        Network {
            grid,
            routers,
            active: vec![false; num_tiles],
            active_list: Vec::new(),
            active_scratch: Vec::new(),
            requeue_scratch: Vec::new(),
            forward_ports,
            link_dest,
            coords,
            cycle: 0,
            stats,
            in_flight_messages: 0,
            awaiting_ejection: 0,
            delivery_events: Vec::new(),
            delivery_event_pending: vec![false; num_tiles],
            drain_versions: vec![0; num_tiles],
            next_commit_at: 0,
            calendar,
            due: vec![u64::MAX; num_tiles],
            buffered_count: vec![0; num_tiles],
            cal_buckets: if calendar {
                (0..CALENDAR_WIDTH).map(|_| Vec::new()).collect()
            } else {
                Vec::new()
            },
            cal_refile: Vec::new(),
            cal_head: 0,
            due_only,
            pos: if due_only { vec![0; num_tiles] } else { Vec::new() },
            cal_heap: BinaryHeap::new(),
            cal_visited: if due_only {
                vec![u64::MAX; num_tiles]
            } else {
                Vec::new()
            },
            walk_cursor: 0,
            in_walk: false,
            head_base: POS_ORIGIN,
            head_seq: 0,
            tail_next: POS_ORIGIN,
            cal_slot_min: if calendar {
                vec![u64::MAX; CALENDAR_WIDTH as usize]
            } else {
                Vec::new()
            },
            dirty: Vec::new(),
            dirty_pending: if calendar {
                vec![false; num_tiles]
            } else {
                Vec::new()
            },
            waiters: if calendar {
                vec![Vec::new(); num_tiles]
            } else {
                Vec::new()
            },
            faults: crate::fault::CompiledNocFaults::compile(&config.faults, num_tiles),
            config,
        }
    }

    /// Aligns the fault schedule's clock with a driver that advances its
    /// own cycle count past the network's: fault windows are expressed in
    /// driver cycles, and the network evaluates them at
    /// `current_cycle + offset`.  A no-op without a fault schedule.
    pub fn set_fault_time_offset(&mut self, offset: u64) {
        if let Some(faults) = self.faults.as_deref_mut() {
            faults.offset = offset;
        }
    }

    /// Per-event impact counters, index-aligned with
    /// [`NocConfig::faults`]'s events (empty without a fault schedule).
    /// Derived from committed forwards only, so bit-identical across
    /// schedulers.
    pub fn fault_impacts(&self) -> &[crate::fault::FaultImpact] {
        self.faults.as_deref().map_or(&[], |f| &f.impacts)
    }

    /// The drain version of `tile`'s router: a counter that advances every
    /// time a message leaves one of the router's buffers.  While it is
    /// unchanged, a previously rejected injection at `tile` would be
    /// rejected again (buffer space only frees on drains), so endpoints can
    /// park blocked channels until it moves instead of re-attempting every
    /// cycle.
    pub fn buffer_drain_version(&self, tile: TileId) -> u32 {
        self.drain_versions[tile]
    }

    /// Records `n` injection back-pressure rejections at `src` without
    /// performing the attempts.  The tile simulator calls this for parked
    /// channels whose retry it skipped (the router's drain version proves
    /// the attempt would have failed), keeping
    /// [`NocStats::injection_rejections_per_tile`] identical to an engine
    /// that re-attempts every cycle.
    pub fn count_injection_backpressure(&mut self, src: TileId, n: u64) {
        self.stats.injection_backpressure_events += n;
        self.stats.injection_rejections_per_tile[src] += n;
    }

    /// Returns the tiles that received at least one delivery since the last
    /// call, clearing the event list.  The tile simulator uses this to wake
    /// up otherwise idle tiles without scanning the whole grid every cycle.
    pub fn take_delivery_events(&mut self) -> Vec<TileId> {
        for &tile in &self.delivery_events {
            self.delivery_event_pending[tile] = false;
        }
        std::mem::take(&mut self.delivery_events)
    }

    /// Allocation-free variant of [`Network::take_delivery_events`]: appends
    /// the pending delivery events to `out` (which the caller typically
    /// clears and reuses every cycle) and resets the event list.
    pub fn drain_delivery_events_into(&mut self, out: &mut Vec<TileId>) {
        for &tile in &self.delivery_events {
            self.delivery_event_pending[tile] = false;
        }
        out.append(&mut self.delivery_events);
    }

    fn note_delivery(&mut self, tile: TileId) {
        if !self.delivery_event_pending[tile] {
            self.delivery_event_pending[tile] = true;
            self.delivery_events.push(tile);
        }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// The network's lines of the memory budget report: the modelled router
    /// buffer capacity (wired non-local ports at `buffer_flits` plus the
    /// local ejection buffers at `ejection_buffer_flits`, per channel, 4
    /// bytes per flit), and the calendar scheduler's actual bookkeeping
    /// heap (due stamps, buffered-count mirror, bucket ring, waiter lists —
    /// simulator state, not modelled hardware, so it legitimately differs
    /// between router schedulers).
    pub fn memory_report(&self) -> NocMemoryReport {
        const FLIT_BYTES: usize = 4;
        let per_router = (self.forward_ports.len() * self.config.buffer_flits
            + self.config.ejection_buffer_flits)
            * self.config.channels
            * FLIT_BYTES;
        let calendar_bytes = self.due.len() * std::mem::size_of::<u64>()
            + self.buffered_count.len() * std::mem::size_of::<u32>()
            + self
                .cal_buckets
                .iter()
                .map(|b| b.capacity() * std::mem::size_of::<TileId>())
                .sum::<usize>()
            + self
                .waiters
                .iter()
                .map(|w| w.capacity() * std::mem::size_of::<TileId>())
                .sum::<usize>()
            // Due-only walk state (all empty under the scan scheduler):
            // order keys, visit stamps, the heap, slot minima and the
            // dirty set.
            + self.pos.len() * std::mem::size_of::<u64>()
            + self.cal_visited.len() * std::mem::size_of::<u64>()
            + self.cal_heap.capacity() * std::mem::size_of::<Reverse<(u64, TileId)>>()
            + self.cal_slot_min.len() * std::mem::size_of::<u64>()
            + self.dirty.capacity() * std::mem::size_of::<TileId>()
            + self.dirty_pending.len();
        NocMemoryReport {
            buffer_bytes: per_router * self.routers.len(),
            calendar_bytes,
        }
    }

    /// The current cycle count.
    pub fn current_cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of messages buffered inside the fabric (not yet ejected).
    pub fn in_flight(&self) -> u64 {
        self.in_flight_messages
    }

    /// Number of messages sitting in ejection buffers, waiting for their
    /// tile to drain them.
    pub fn awaiting_ejection(&self) -> u64 {
        self.awaiting_ejection
    }

    /// True when no message is buffered anywhere in the fabric, including
    /// the ejection buffers.  This is the network's contribution to the
    /// chip-wide hierarchical idle signal used for termination detection.
    pub fn is_idle(&self) -> bool {
        self.in_flight_messages == 0 && self.awaiting_ejection == 0
    }

    /// Synonym for [`Network::is_idle`]: the fabric is quiescent when every
    /// injected message has been delivered *and* drained by its endpoint.
    /// The property suite uses this name when asserting that any
    /// `endpoint_drains_per_cycle ≥ 1` eventually reaches quiescence.
    pub fn quiescent(&self) -> bool {
        self.is_idle()
    }

    /// Number of delivered messages waiting in `tile`'s ejection buffers
    /// across all channels, in O(1).  The tile simulator polls this instead
    /// of scanning every channel's occupancy each cycle.
    pub fn delivered_waiting(&self, tile: TileId) -> usize {
        self.routers[tile].msgs_at(Port::Local) as usize
    }

    /// Bitmask of channels with at least one delivered message waiting at
    /// `tile` (bit `c` set for channel `c`), in O(1).  Exact for networks
    /// with at most 32 channels (the Dalorex kernels use at most 4);
    /// conservatively all-ones beyond that, so callers must still tolerate
    /// an empty channel whose bit is set.  The tile simulator's drain loop
    /// iterates this mask instead of scanning every channel.
    pub fn delivered_channel_mask(&self, tile: TileId) -> u32 {
        self.routers[tile].occupied_channel_mask(Port::Local)
    }

    /// Whether a message of `flits` flits could be injected at `src` on
    /// `channel` this cycle (i.e. [`Network::try_inject`] would succeed).
    pub fn can_inject(&self, src: TileId, channel: ChannelId, flits: usize) -> bool {
        if src >= self.routers.len() || channel >= self.config.channels || flits == 0 {
            return false;
        }
        // Self-delivery goes straight to the ejection buffer.
        let bubble = flits;
        let router = &self.routers[src];
        match self.first_hop_port(src, src, channel, flits) {
            Some((port, entering)) => router.can_accept(port, channel, flits, entering, bubble),
            None => false,
        }
    }

    /// Computes the output port a message for `dest` takes at `at`, along
    /// with whether it is entering a new dimension there when it arrived via
    /// `arrival_dimension`.
    fn routed_port(&self, at: TileId, dest: TileId, arrived_via: Dimension) -> (Port, bool) {
        if at == dest {
            return (Port::Local, false);
        }
        let (cx, cy) = self.coords[at];
        let (dx, dy) = self.coords[dest];
        let hop = self
            .grid
            .next_hop_from((cx as usize, cy as usize), (dx as usize, dy as usize));
        let dim = port_dimension(hop.port);
        let entering = matches!(
            (arrived_via, dim),
            (Dimension::None, _) | (Dimension::X, Dimension::Y) | (Dimension::Y, Dimension::X)
        );
        (hop.port, entering)
    }

    fn first_hop_port(
        &self,
        src: TileId,
        _dest_placeholder: TileId,
        _channel: ChannelId,
        _flits: usize,
    ) -> Option<(Port, bool)> {
        // For `can_inject` we do not know the destination, so we
        // conservatively require space on the most-constrained case: a
        // message entering a dimension. The actual injection recomputes the
        // real port. We use the East port's buffer occupancy as the
        // representative constraint, falling back to Local for 1x1 grids.
        if self.grid.shape().num_tiles() == 1 {
            return Some((Port::Local, false));
        }
        let _ = src;
        Some((Port::East, true))
    }

    /// Injects a message at `src`.  On success the message starts travelling
    /// this cycle; on failure the message is handed back so the caller can
    /// retry later (channel queues in the tiles exert exactly this
    /// back-pressure on producing tasks).
    ///
    /// Back-pressure rejections are counted per source tile in
    /// [`NocStats::injection_rejections_per_tile`] so a sweep can attribute
    /// endpoint stalls to the tiles that suffered them.
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] with:
    /// * [`NocError::TileOutOfRange`] / [`NocError::ChannelOutOfRange`] for
    ///   invalid addressing,
    /// * [`NocError::MessageTooLong`] if the message can never fit a buffer,
    /// * [`NocError::InjectionBackpressure`] if the first-hop buffer is
    ///   currently full.
    pub fn try_inject(&mut self, src: TileId, message: Message) -> Result<(), Rejected> {
        let num_tiles = self.routers.len();
        if src >= num_tiles || message.dest() >= num_tiles {
            let tile = if src >= num_tiles { src } else { message.dest() };
            return Err(Rejected {
                error: NocError::TileOutOfRange { tile, num_tiles },
                message,
            });
        }
        if message.channel() >= self.config.channels {
            return Err(Rejected {
                error: NocError::ChannelOutOfRange {
                    channel: message.channel(),
                    channels: self.config.channels,
                },
                message,
            });
        }
        let flits = message.len();
        let max_needed = flits + flits; // message plus bubble slack
        if flits > self.config.ejection_buffer_flits || max_needed > self.config.buffer_flits {
            return Err(Rejected {
                error: NocError::MessageTooLong {
                    flits,
                    capacity: self.config.buffer_flits.min(self.config.ejection_buffer_flits),
                },
                message,
            });
        }

        let dest = message.dest();
        let channel = message.channel();
        let (port, entering) = self.routed_port(src, dest, Dimension::None);
        let bubble = flits;
        if !self.routers[src].can_accept(port, channel, flits, entering, bubble) {
            self.count_injection_backpressure(src, 1);
            return Err(Rejected {
                error: NocError::InjectionBackpressure,
                message,
            });
        }
        let mut message = message;
        message.injected_at = self.cycle;
        let queued = QueuedMessage {
            ready_at: self.cycle,
            message,
        };
        self.stats.injected_messages += 1;
        self.buffered_count[src] += 1;
        if port == Port::Local {
            self.awaiting_ejection += 1;
            self.stats.delivered_messages += 1;
            self.stats.delivered_flits += flits as u64;
            self.note_delivery(src);
            self.routers[src].push(port, channel, queued);
        } else {
            self.in_flight_messages += 1;
            // The new message is forwardable as soon as its output link is
            // free: a fresh candidate for the next-event bound (and, under
            // the calendar scheduler, for the router's due stamp).
            let candidate = self.cycle.max(self.routers[src].link_busy_until(port));
            self.next_commit_at = self.next_commit_at.min(candidate);
            self.schedule_due(src, candidate);
            self.routers[src].push(port, channel, queued);
            self.mark_active(src);
        }
        Ok(())
    }

    fn mark_active(&mut self, tile: TileId) {
        if !self.active[tile] {
            self.active[tile] = true;
            if self.due_only {
                // The implicit list: in-walk activations take the walk's
                // descending head block (they contend *before* every
                // surviving router next cycle, in activation order —
                // exactly where the explicit list pushes them while the
                // old list is swapped out), between-cycle activations take
                // ascending tail keys (appended after everything).
                self.pos[tile] = if self.in_walk {
                    self.head_seq += 1;
                    self.head_base + self.head_seq
                } else {
                    self.tail_next += 1;
                    self.tail_next
                };
            } else {
                self.active_list.push(tile);
            }
        }
    }

    /// Queues `tile` for the next walk's dirty-set replay (an endpoint
    /// drain emptied its buffers while it sat in the active list).  Dedup
    /// via `dirty_pending` keeps the replay list one entry per tile no
    /// matter how the drains interleave, which also makes the sharded
    /// endpoint phase's merge order-insensitive.
    #[inline]
    fn note_membership_dirty(&mut self, tile: TileId) {
        if !self.dirty_pending[tile] {
            self.dirty_pending[tile] = true;
            self.dirty.push(tile);
        }
    }

    /// Pops the next delivered message at `tile`, searching channels in
    /// round-robin order. Returns `None` when the ejection buffers are
    /// empty.
    pub fn pop_delivered(&mut self, tile: TileId) -> Option<Message> {
        if self.routers[tile].msgs_at(Port::Local) == 0 {
            return None;
        }
        for channel in 0..self.config.channels {
            if let Some(message) = self.pop_delivered_on(tile, channel) {
                return Some(message);
            }
        }
        None
    }

    /// Pops the next delivered message at `tile` on a specific channel.
    pub fn pop_delivered_on(&mut self, tile: TileId, channel: ChannelId) -> Option<Message> {
        let queued = self.routers[tile].pop(Port::Local, channel)?;
        self.awaiting_ejection -= 1;
        self.buffered_count[tile] -= 1;
        if self.calendar && self.buffered_count[tile] == 0 && self.active[tile] {
            // The drain emptied an active router: the next calendar cycle
            // must replay exactly this tile so it is dropped at the
            // position the scan scheduler would drop it (or retained in
            // place, if something refills it before the walk).
            self.note_membership_dirty(tile);
        }
        // The freed ejection space may unblock an upstream waiter on the
        // next simulated cycle.
        self.wake_waiters(tile, self.cycle, self.cycle);
        self.drain_versions[tile] = self.drain_versions[tile].wrapping_add(1);
        if self.routers[tile].wake_on_pop {
            // An upstream message was blocked on one of this router's full
            // buffers; the freed ejection space may let it move on the very
            // next cycle, so the event horizon collapses to "now".
            self.routers[tile].wake_on_pop = false;
            self.next_commit_at = self.next_commit_at.min(self.cycle);
        }
        Some(queued.message)
    }

    /// Peeks at the next delivered message at `tile` on `channel` without
    /// removing it.
    pub fn peek_delivered_on(&self, tile: TileId, channel: ChannelId) -> Option<&Message> {
        let buffer = self.routers[tile].buffer(Port::Local, channel);
        buffer.front().map(|q| &q.message)
    }

    /// Number of flits waiting in `tile`'s ejection buffer for `channel`.
    pub fn ejection_occupancy(&self, tile: TileId, channel: ChannelId) -> usize {
        self.routers[tile].buffer(Port::Local, channel).occupied_flits()
    }

    /// Advances the network by one cycle: every output link that is free and
    /// has a ready message whose downstream buffer can accept it forwards
    /// that message one hop.
    ///
    /// This is the event-driven hot path: only routers with forwardable
    /// messages are visited, only their occupied topology ports are scanned,
    /// and no heap allocation happens in steady state.  The forwarding
    /// schedule (which message moves on which cycle) is bit-identical to
    /// [`Network::cycle_reference`].
    ///
    /// As a by-product the scan recomputes the next-event bound consumed by
    /// [`Network::next_event_cycle`] / [`Network::advance_to`].
    ///
    /// Which per-cycle scheduler runs is selected by
    /// [`NocConfig::router_scheduler`]: the scan scheduler visits every
    /// active router, the due-only calendar scheduler only the routers
    /// whose `next_possible` due stamp has come due, and the calendar-scan
    /// baseline walks the full list reading a dense stamp per router (see
    /// [`crate::RouterScheduler`]).  All produce bit-identical schedules
    /// and statistics.
    pub fn cycle(&mut self) {
        if self.due_only {
            self.cycle_calendar();
        } else if self.calendar {
            self.cycle_calendar_scan();
        } else {
            self.cycle_scan();
        }
    }

    /// The scan scheduler: every active router's occupied topology ports
    /// are visited each cycle.
    fn cycle_scan(&mut self) {
        let now = self.cycle;
        let mut next_commit = u64::MAX;
        debug_assert!(self.active_scratch.is_empty());
        std::mem::swap(&mut self.active_list, &mut self.active_scratch);
        self.stats.walk_routers_visited += self.active_scratch.len() as u64;
        self.stats.walk_routers_scanned += self.active_scratch.len() as u64;
        for i in 0..self.active_scratch.len() {
            let tile = self.active_scratch[i];
            self.active[tile] = false;
            let scan = self.scan_router(tile, now);
            next_commit = next_commit.min(scan.min_candidate);
            // Retain routers with *any* buffered message — including ones
            // holding only undrained ejection-buffer deliveries — exactly
            // like the reference scan does.  Retention is not about work
            // (an ejection-only router forwards nothing): it preserves the
            // router's *position* in the arbitration order, so that when a
            // forwardable message later arrives the router contends from
            // the same list slot as in the reference schedule.  Dropping
            // such routers (and re-adding them on arrival, at the head
            // section) permuted same-cycle arbitration in undrained
            // regimes — a pre-skip-engine infidelity found by the skip
            // equivalence property suite.
            if self.routers[tile].buffered_messages() > 0 && !self.active[tile] {
                self.active[tile] = true;
                self.requeue_scratch.push(tile);
            }
        }
        self.active_scratch.clear();
        self.active_list.append(&mut self.requeue_scratch);
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        self.next_commit_at = next_commit.max(self.cycle);
    }

    /// The calendar-scan baseline ([`RouterScheduler::CalendarScan`]): the
    /// pre-due-only calendar walk, preserved verbatim as the in-binary A/B
    /// baseline and schedule oracle.  Port-scan only the active routers
    /// whose due stamp has come due, but still walk the *entire* active
    /// list every non-quiet cycle (a dense stamp read per router).  When
    /// the calendar proves no router is due — and no endpoint drain emptied
    /// a router since the last walk — the whole walk is skipped: the cycle
    /// is a pure counter increment, exactly like a no-commit scan.
    fn cycle_calendar_scan(&mut self) {
        let now = self.cycle;
        let any_due = self.drain_calendar_through(now);
        if !any_due && self.dirty.is_empty() {
            // No router can commit or needs a re-scan, and membership
            // cannot have changed: provably a no-op cycle for every active
            // router, with the list order untouched (a walk would have
            // retained every router in place).
            self.stats.walks_elided += 1;
            self.cycle += 1;
            self.stats.cycles = self.cycle;
            self.next_commit_at = self.next_commit_at.max(self.cycle);
            return;
        }
        // The full walk visits every active router, so the dirty set is
        // subsumed by it — just clear the flags.
        while let Some(tile) = self.dirty.pop() {
            self.dirty_pending[tile] = false;
        }
        let mut next_commit = u64::MAX;
        debug_assert!(self.active_scratch.is_empty());
        std::mem::swap(&mut self.active_list, &mut self.active_scratch);
        self.stats.walk_routers_visited += self.active_scratch.len() as u64;
        for i in 0..self.active_scratch.len() {
            let tile = self.active_scratch[i];
            self.active[tile] = false;
            debug_assert_eq!(
                self.buffered_count[tile] as usize,
                self.routers[tile].buffered_messages(),
                "dense buffered-message mirror drifted"
            );
            if self.due[tile] <= now {
                // Due: the full port scan, exactly as the scan scheduler
                // would run it, then a fresh due stamp from its findings
                // (a blocked head contributes nothing — the pop that frees
                // its way wakes this router through the waiter list).
                self.due[tile] = u64::MAX;
                self.stats.walk_routers_scanned += 1;
                let scan = self.scan_router(tile, now);
                self.set_due(tile, scan.min_candidate);
                next_commit = next_commit.min(scan.min_candidate);
            } else {
                // Not due: provably unable to commit or to have any side
                // effect this cycle — skip the router entirely.
                next_commit = next_commit.min(self.due[tile]);
            }
            // Same retention rule (and therefore the same arbitration
            // order) as the scan scheduler, read from the dense mirror.
            if self.buffered_count[tile] > 0 && !self.active[tile] {
                self.active[tile] = true;
                self.requeue_scratch.push(tile);
            } else if self.buffered_count[tile] == 0 {
                // Dropped from the list: clear any stale stamp, or a later
                // push whose candidate is *higher* would neither lower it
                // nor file a calendar entry — leaving the router invisible
                // to the due check forever (its old bucket entry was
                // consumed long ago).
                self.due[tile] = u64::MAX;
            }
        }
        self.active_scratch.clear();
        self.active_list.append(&mut self.requeue_scratch);
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        self.next_commit_at = next_commit.max(self.cycle);
    }

    /// The due-only calendar walk ([`RouterScheduler::Calendar`]): drain
    /// the due buckets, order the (few) due routers by their list position
    /// via the heap, and port-scan exactly those — O(due log due) per
    /// cycle instead of O(active), reconstructing the scan scheduler's
    /// arbitration order without ever touching a non-due router.
    ///
    /// Fidelity rests on four mechanisms, each mirroring one full-walk
    /// behaviour:
    /// * retained routers keep their `pos` key (the full walk's requeue
    ///   preserves relative order);
    /// * drops happen at the router's own heap turn, reading the buffered
    ///   mirror *then* (an endpoint-drained router refilled before the walk
    ///   is retained in place, exactly like the full walk would);
    /// * mid-walk wakes of routers whose key is past the cursor join this
    ///   cycle's heap (the full walk would reach them later in the list);
    /// * in-walk activations take head keys below every live key (the full
    ///   walk pushes them before the requeued survivors).
    fn cycle_calendar(&mut self) {
        let now = self.cycle;
        self.maybe_compact();
        let any_due = self.drain_calendar_through(now);
        if !any_due && self.dirty.is_empty() {
            debug_assert!(self.cal_heap.is_empty());
            // No router due, no membership change pending: a provable
            // no-op for every active router.  The next-event bound is the
            // calendar's own future knowledge — the slot minima — because
            // this walk never read the non-due routers' stamps.
            self.stats.walks_elided += 1;
            self.cycle += 1;
            self.stats.cycles = self.cycle;
            self.next_commit_at = self.future_bound().max(self.cycle);
            return;
        }
        // Replay the dirty set: each tile contends (and makes its drop /
        // retain decision) at its own list position.
        while let Some(tile) = self.dirty.pop() {
            self.dirty_pending[tile] = false;
            if self.active[tile] {
                self.cal_heap.push(Reverse((self.pos[tile], tile)));
            }
        }
        let mut next_commit = u64::MAX;
        let mut visited = 0u64;
        let mut scanned = 0u64;
        self.in_walk = true;
        self.head_base -= HEAD_STRIDE;
        self.head_seq = 0;
        self.walk_cursor = 0;
        while let Some(Reverse((key, tile))) = self.cal_heap.pop() {
            if !self.active[tile] || self.pos[tile] != key || self.cal_visited[tile] == now {
                // Stale entry: the tile was dropped (and possibly re-added
                // under a fresh key) since this entry was filed, or it was
                // already visited this cycle via another bucket.
                continue;
            }
            self.cal_visited[tile] = now;
            self.walk_cursor = key;
            visited += 1;
            debug_assert_eq!(
                self.buffered_count[tile] as usize,
                self.routers[tile].buffered_messages(),
                "dense buffered-message mirror drifted"
            );
            if self.due[tile] <= now {
                self.due[tile] = u64::MAX;
                scanned += 1;
                let scan = self.scan_router(tile, now);
                self.set_due(tile, scan.min_candidate);
                next_commit = next_commit.min(scan.min_candidate);
            } else if self.due[tile] != u64::MAX {
                // A dirty-replay (or stale-woken) tile that is not due:
                // its stamp still bounds the next event.
                next_commit = next_commit.min(self.due[tile]);
            }
            if self.buffered_count[tile] == 0 {
                // Dropped at exactly the position the scan walk would drop
                // it.  Clearing the stamp keeps the invariant that an
                // inactive router's due is `u64::MAX`, so a later push's
                // `schedule_due` is guaranteed to file a fresh bucket
                // entry (stamps only ever *lower*).
                self.active[tile] = false;
                self.due[tile] = u64::MAX;
            }
        }
        self.in_walk = false;
        self.stats.walk_routers_visited += visited;
        self.stats.walk_routers_scanned += scanned;
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        // Routers this walk never visited contribute through the slot
        // minima (every live stamp has a covering slot).
        self.next_commit_at = next_commit.min(self.future_bound()).max(self.cycle);
    }

    /// The due-only walk's next-event knowledge about routers it never
    /// visits: the min over the calendar slots' filed-stamp minima.  A
    /// lower bound on every live due stamp — possibly stale-low (an entry
    /// re-stamped upwards leaves the old minimum until its slot drains),
    /// which costs a spurious wakeup, never a schedule change.
    fn future_bound(&self) -> u64 {
        self.cal_slot_min.iter().copied().min().unwrap_or(u64::MAX)
    }

    /// Renumbers every active router's order key from the origin when the
    /// descending head-key space nears exhaustion (every ~2^29 walks).
    /// Runs before the bucket drain, while the heap is empty and the
    /// buckets hold plain tile ids — nothing else stores keys, so the
    /// renumbering is invisible to the schedule.
    fn maybe_compact(&mut self) {
        if self.head_base > HEAD_FLOOR {
            return;
        }
        let mut order: Vec<(u64, TileId)> = (0..self.active.len())
            .filter(|&t| self.active[t])
            .map(|t| (self.pos[t], t))
            .collect();
        order.sort_unstable();
        self.head_base = POS_ORIGIN;
        self.tail_next = POS_ORIGIN;
        for (_, tile) in order {
            self.tail_next += 1;
            self.pos[tile] = self.tail_next;
        }
    }

    /// The arbitration order the next walk would visit routers in — the
    /// explicit `active_list` under the scan schedulers, the active tiles
    /// sorted by order key under the due-only walk.  Test-only
    /// introspection: the property suite asserts the two stay byte-
    /// identical cycle by cycle.
    pub fn debug_active_order(&self) -> Vec<TileId> {
        if self.due_only {
            let mut order: Vec<(u64, TileId)> = (0..self.active.len())
                .filter(|&t| self.active[t])
                .map(|t| (self.pos[t], t))
                .collect();
            order.sort_unstable();
            order.into_iter().map(|(_, tile)| tile).collect()
        } else {
            self.active_list.clone()
        }
    }

    /// Lowers `tile`'s due stamp to `stamp` (push/injection events), filing
    /// it into the calendar bucket for that cycle.  No-op under the scan
    /// scheduler and for the "nothing forwardable" sentinel.
    #[inline]
    fn schedule_due(&mut self, tile: TileId, stamp: u64) {
        if !self.calendar || stamp == u64::MAX {
            return;
        }
        if stamp < self.due[tile] {
            self.due[tile] = stamp;
            let idx = (stamp % CALENDAR_WIDTH) as usize;
            self.cal_buckets[idx].push(tile);
            self.cal_slot_min[idx] = self.cal_slot_min[idx].min(stamp);
        }
        self.next_commit_at = self.next_commit_at.min(stamp);
    }

    /// Wakes every router registered as a waiter on `tile`'s buffers: a pop
    /// at `tile` just freed space, so each waiter's blocked head may now
    /// move — its due stamp collapses to `stamp` (the pop's cycle: a waiter
    /// positioned after `tile` in the current walk contends this very
    /// cycle, exactly as the scan scheduler's full walk would let it).
    /// Entries are filed under `bucket_cycle` — the next cycle whose bucket
    /// is still undrained — so future fast-path checks see them.
    #[inline]
    fn wake_waiters(&mut self, tile: TileId, stamp: u64, bucket_cycle: u64) {
        if !self.calendar || self.waiters[tile].is_empty() {
            return;
        }
        while let Some(waiter) = self.waiters[tile].pop() {
            if !self.active[waiter] {
                // Stale registration: the waiter was dropped from the list
                // after its blocked head finally moved (the registration
                // outlives the blockage).  There is nothing to wake — and
                // lowering an inactive router's stamp would break the
                // inactive ⇒ due == MAX invariant the due-only walk's
                // re-activation path depends on (stamps only ever lower,
                // so a poisoned-low stamp would never file a fresh bucket
                // entry again).
                continue;
            }
            if stamp < self.due[waiter] {
                self.due[waiter] = stamp;
                if self.due_only && self.in_walk && self.pos[waiter] > self.walk_cursor {
                    // Woken before its turn in the walk now in progress:
                    // it contends this very cycle at its own list position
                    // — exactly when the full walk would reach it.
                    self.cal_heap.push(Reverse((self.pos[waiter], waiter)));
                } else {
                    let idx = (bucket_cycle % CALENDAR_WIDTH) as usize;
                    self.cal_buckets[idx].push(waiter);
                    self.cal_slot_min[idx] = self.cal_slot_min[idx].min(stamp);
                }
            }
        }
        self.next_commit_at = self.next_commit_at.min(stamp);
    }

    /// Records the authoritative due stamp a walk just computed for `tile`
    /// (the scan has complete knowledge, so the stamp may also rise).
    #[inline]
    fn set_due(&mut self, tile: TileId, stamp: u64) {
        debug_assert!(self.calendar);
        self.due[tile] = stamp;
        if stamp != u64::MAX {
            let idx = (stamp % CALENDAR_WIDTH) as usize;
            self.cal_buckets[idx].push(tile);
            self.cal_slot_min[idx] = self.cal_slot_min[idx].min(stamp);
        }
    }

    /// Drains every calendar bucket for cycles up to and including `now`,
    /// returning whether any entry is actually due (stamps are
    /// lazy-validated against the dense `due` array; still-future entries
    /// are re-filed into their stamp's bucket).  After a long
    /// [`Network::advance_to`] jump at most [`CALENDAR_WIDTH`] slots need
    /// draining — the ring indices repeat, so that covers every slot.
    fn drain_calendar_through(&mut self, now: u64) -> bool {
        let from = self.cal_head;
        if from > now {
            return false;
        }
        self.cal_head = now + 1;
        let lo = if now - from >= CALENDAR_WIDTH {
            now + 1 - CALENDAR_WIDTH
        } else {
            from
        };
        let mut any_due = false;
        debug_assert!(self.cal_refile.is_empty());
        for slot_cycle in lo..=now {
            let idx = (slot_cycle % CALENDAR_WIDTH) as usize;
            // Take the bucket out (keeping its allocation) so its entries
            // can be validated against the dense stamps.  The slot's filed
            // minimum resets with it; refiles re-accumulate below.
            let mut bucket = std::mem::take(&mut self.cal_buckets[idx]);
            self.cal_slot_min[idx] = u64::MAX;
            for &tile in &bucket {
                if self.due[tile] <= now {
                    any_due = true;
                    if self.due_only {
                        // The walk's agenda: due routers, ordered by their
                        // list position.  Duplicates (a tile filed in two
                        // drained slots) dedup at the pop via the
                        // visited stamp.
                        self.cal_heap.push(Reverse((self.pos[tile], tile)));
                    }
                } else if self.due[tile] != u64::MAX {
                    // Re-stamped into the future since this entry was
                    // filed: keep it alive in its new bucket.
                    self.cal_refile.push(tile);
                }
            }
            bucket.clear();
            self.cal_buckets[idx] = bucket;
        }
        let mut refile = std::mem::take(&mut self.cal_refile);
        for &tile in &refile {
            let stamp = self.due[tile];
            let idx = (stamp % CALENDAR_WIDTH) as usize;
            self.cal_buckets[idx].push(tile);
            self.cal_slot_min[idx] = self.cal_slot_min[idx].min(stamp);
        }
        refile.clear();
        self.cal_refile = refile;
        any_due
    }

    /// The calendar scheduler's `next_possible` due stamp for `tile`: the
    /// earliest cycle at which port-scanning the router could commit a
    /// forward or have a side effect (`u64::MAX` when it holds nothing
    /// forwardable).  Only meaningful under
    /// [`RouterScheduler::Calendar`]; the property suite asserts the stamp
    /// never overshoots the router's actual next commit.
    pub fn next_possible_stamp(&self, tile: TileId) -> u64 {
        self.due[tile]
    }

    /// The earliest cycle at which [`Network::cycle`] could forward a
    /// message, as currently provable: every cycle strictly below the
    /// returned value is guaranteed to move nothing, so a driver may jump
    /// straight to it with [`Network::advance_to`].  Returns the current
    /// cycle when a forward may be possible right now, and `u64::MAX` when
    /// no buffered message can ever move without external action (an
    /// endpoint draining an ejection buffer).
    ///
    /// The bound is a *lower* bound on the true next commit: jumping to it
    /// and finding that nothing moves there (for example a head that is
    /// ready but still blocked downstream) is possible and harmless — the
    /// next `cycle()` call recomputes a later bound.
    pub fn next_event_cycle(&self) -> u64 {
        self.next_commit_at.max(self.cycle)
    }

    /// Jumps the network clock forward to `target` without simulating the
    /// intervening cycles, which [`Network::next_event_cycle`] proves are
    /// no-ops.  Exactly equivalent to calling [`Network::cycle`]
    /// `target - current_cycle` times: only the cycle counter (and the
    /// mirrored [`NocStats::cycles`]) changes — no message moves, no
    /// delivery fires, no busy time, latency, rejection count or drain
    /// version can differ from the ticked execution.
    ///
    /// A `target` at or below the current cycle is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `target` lies beyond [`Network::next_event_cycle`], where a
    /// forward could commit and skipping would change the schedule, and on
    /// `u64::MAX` — the "no next event" sentinel
    /// [`Network::next_event_cycle`] returns when no buffered message can
    /// ever move without an endpoint drain.  Jumping there would corrupt
    /// the clock; drivers must wait for a drain (or give up) instead of
    /// advancing time.
    pub fn advance_to(&mut self, target: u64) {
        if target <= self.cycle {
            return;
        }
        assert!(
            target != u64::MAX,
            "advance_to(u64::MAX): no forward can ever commit without an endpoint \
             drain — advancing time cannot help"
        );
        assert!(
            target <= self.next_commit_at,
            "advance_to({target}) would skip past the next possible forward at {}",
            self.next_commit_at
        );
        self.cycle = target;
        self.stats.cycles = target;
    }

    /// The pre-overhaul cycle implementation, kept as a reference oracle.
    ///
    /// It scans every port of every active router (including ports the
    /// topology never wires) and allocates a fresh snapshot vector per
    /// cycle — exactly what the event-driven [`Network::cycle`] replaced.
    /// Regression tests drive two networks side by side to assert the
    /// delivery schedules stay identical, and `sim_microbench` measures the
    /// speedup of the new path against this one.  Do not mix the two on one
    /// network instance within a run: the active-set bookkeeping differs
    /// (this one keeps routers with only undrained ejection messages in the
    /// active set).
    pub fn cycle_reference(&mut self) {
        let now = self.cycle;
        let snapshot: Vec<TileId> = std::mem::take(&mut self.active_list);
        let mut still_active: Vec<TileId> = Vec::with_capacity(snapshot.len());
        for tile in snapshot {
            self.active[tile] = false;
            // Mirror of the scan schedulers' fault gates: a stalled router
            // scans nothing, a blacked-out link forwards nothing.  (The
            // skipped busy-link `account_busy` call is provably a no-op —
            // `commit_forward` covers the full serialization interval up
            // front — so busy statistics cannot diverge.)
            let stalled = self
                .faults
                .as_deref()
                .is_some_and(|f| f.stall_candidate(tile, now).is_some());
            if !stalled {
                for port in Port::ALL {
                    if port == Port::Local {
                        continue;
                    }
                    if self
                        .faults
                        .as_deref()
                        .is_some_and(|f| f.outage_candidate(tile, port, now).is_some())
                    {
                        continue;
                    }
                    if self.routers[tile].link_busy_until(port) > now {
                        self.account_busy(tile, now, now + 1);
                        continue;
                    }
                    self.try_forward_reference(tile, port, now);
                }
            }
            if self.routers[tile].buffered_messages() > 0 && !self.active[tile] {
                self.active[tile] = true;
                still_active.push(tile);
            }
        }
        self.active_list.extend(still_active);
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        // The reference scan does not track candidates; never claim any
        // cycle skippable after it, so mixing it with `advance_to` stays
        // safe (it simply never skips).
        self.next_commit_at = self.cycle;
    }

    /// Port-scans one router (the shared core of both schedulers),
    /// committing at most one forward per occupied port and returning the
    /// router's next-event findings.
    fn scan_router(&mut self, tile: TileId, now: u64) -> RouterScan {
        let mut scan = RouterScan {
            min_candidate: u64::MAX,
        };
        if let Some(faults) = self.faults.as_deref() {
            if let Some(recovery) = faults.stall_candidate(tile, now) {
                // The whole router is stalled: it provably commits nothing
                // before the stall window ends, so the window's end is its
                // next-event candidate (and, under the calendar scheduler,
                // its fresh due stamp — the walk wakes it at the
                // transition, exactly like a busy link).
                scan.min_candidate = recovery;
                return scan;
            }
        }
        for i in 0..self.forward_ports.len() {
            let port = self.forward_ports[i];
            let router = &self.routers[tile];
            if router.msgs_at(port) == 0 {
                // Nothing buffered here.  Any residual link serialization was
                // fully accounted when the occupying message was forwarded.
                continue;
            }
            if let Some(faults) = self.faults.as_deref() {
                if let Some(recovery) = faults.outage_candidate(tile, port, now) {
                    // The link is blacked out: buffered messages wait until
                    // the outage window ends.
                    scan.min_candidate = scan.min_candidate.min(recovery);
                    continue;
                }
            }
            let busy_until = router.link_busy_until(port);
            if busy_until > now {
                // The earliest this port can act again is when its link
                // frees (its head may additionally not be ready by then —
                // the bound is a lower bound, the rescan at `busy_until`
                // tightens it).
                scan.min_candidate = scan.min_candidate.min(busy_until);
                continue;
            }
            self.try_forward(tile, port, now, &mut scan);
        }
        scan
    }

    /// Attempts to forward one message from (tile, port); implements
    /// round-robin channel arbitration at the output port.
    ///
    /// This is the optimised candidate evaluation: the per-channel
    /// occupancy mask skips empty FIFOs without touching their heap
    /// buffers, the link destination comes from the precomputed table, and
    /// the downstream port is routed from cached coordinates.  The
    /// decisions it commits are bit-identical to
    /// [`Network::try_forward_reference`].
    fn try_forward(&mut self, tile: TileId, port: Port, now: u64, scan: &mut RouterScan) {
        let channels = self.config.channels;
        let start_channel = self.routers[tile].rr_channel(port);
        for offset in 0..channels {
            let channel = (start_channel + offset) % channels;
            if !self.routers[tile].channel_occupied(port, channel) {
                continue;
            }
            match self.forwardable_message(tile, port, channel, now) {
                ForwardCandidate::ReadyAt(ready_at) => {
                    // Cut-through: the head cannot move before its last flit
                    // has arrived — a future event candidate.
                    scan.min_candidate = scan.min_candidate.min(ready_at);
                    continue;
                }
                ForwardCandidate::Empty => continue,
                ForwardCandidate::Ready { flits, dest } => {
                    // Where does this link lead, and which buffer does the
                    // message occupy there?  Dimension-ordered routing
                    // buffered the message at its routed output port, so the
                    // link destination is a table lookup; the debug
                    // assertion cross-checks it against the full routing
                    // geometry.
                    let next_tile = self.link_dest[tile * Port::ALL.len() + port.index()];
                    debug_assert_eq!(
                        self.grid.next_hop(tile, dest).map(|h| (h.port, h.next)),
                        Some((port, next_tile)),
                        "a buffered message never sits at its destination's non-local port"
                    );
                    let (next_port, entering) =
                        self.routed_port(next_tile, dest, port_dimension(port));
                    let bubble = flits;
                    if !self.routers[next_tile].can_accept(
                        next_port, channel, flits, entering, bubble,
                    ) {
                        // Blocked on a full downstream buffer: this head can
                        // only move after a pop frees space there, so it
                        // contributes no time candidate — the downstream
                        // router's wake-on-pop flag re-arms the bound when
                        // that pop happens, and the calendar scheduler
                        // additionally registers this router as a waiter so
                        // the pop re-stamps it (instead of it re-scanning
                        // every cycle).
                        self.routers[next_tile].wake_on_pop = true;
                        if self.calendar && !self.waiters[next_tile].contains(&tile) {
                            self.waiters[next_tile].push(tile);
                        }
                        continue;
                    }
                    self.commit_forward(tile, port, channel, flits, next_tile, next_port, now);
                    scan.min_candidate = scan.min_candidate.min(self.commit_bound(tile, port, now));
                    return;
                }
            }
        }
    }

    /// Next-event candidates created by a forward just committed at
    /// `(tile, port)`: the cycle this port's link frees (when the message
    /// just sent becomes forwardable downstream, and when any message still
    /// buffered here can go next), plus "next cycle" if an upstream message
    /// was blocked on one of this router's now-less-full buffers.
    fn commit_bound(&mut self, tile: TileId, port: Port, now: u64) -> u64 {
        let mut bound = self.routers[tile].link_busy_until(port);
        if self.routers[tile].wake_on_pop {
            self.routers[tile].wake_on_pop = false;
            bound = now + 1;
        }
        bound
    }

    /// The pre-overhaul candidate evaluation, kept verbatim for
    /// [`Network::cycle_reference`]: every channel FIFO is probed directly
    /// and the routing geometry is recomputed per candidate, exactly as the
    /// original hot path did.  Both evaluations funnel into
    /// [`Network::commit_forward`], so they cannot diverge in behaviour —
    /// only in cost.
    fn try_forward_reference(&mut self, tile: TileId, port: Port, now: u64) {
        let channels = self.config.channels;
        let start_channel = self.routers[tile].rr_channel(port);
        for offset in 0..channels {
            let channel = (start_channel + offset) % channels;
            let ForwardCandidate::Ready { flits, dest } =
                self.forwardable_message(tile, port, channel, now)
            else {
                continue;
            };
            let hop = self
                .grid
                .next_hop(tile, dest)
                .expect("a buffered message never sits at its destination's non-local port");
            debug_assert_eq!(hop.port, port);
            let next_tile = hop.next;
            let (next_port, entering) = match self.grid.next_hop(next_tile, dest) {
                None => (Port::Local, false),
                Some(next_hop) => {
                    let dim = port_dimension(next_hop.port);
                    let entering = matches!(
                        (port_dimension(port), dim),
                        (Dimension::None, _)
                            | (Dimension::X, Dimension::Y)
                            | (Dimension::Y, Dimension::X)
                    );
                    (next_hop.port, entering)
                }
            };
            let bubble = flits;
            if !self.routers[next_tile].can_accept(next_port, channel, flits, entering, bubble) {
                continue;
            }
            self.commit_forward(tile, port, channel, flits, next_tile, next_port, now);
            return;
        }
    }

    /// Commits one forwarding decision: dequeues the message, occupies the
    /// link, accounts busy time and traffic statistics, and enqueues the
    /// message downstream (ejecting it if the downstream port is local).
    #[allow(clippy::too_many_arguments)]
    fn commit_forward(
        &mut self,
        tile: TileId,
        port: Port,
        channel: ChannelId,
        flits: usize,
        next_tile: TileId,
        next_port: Port,
        now: u64,
    ) {
        let queued = self.routers[tile]
            .pop(port, channel)
            .expect("forwardable message exists");
        self.buffered_count[tile] -= 1;
        if let Some(faults) = self.faults.as_deref_mut() {
            // Attribute the head's wait to any fault window it overlapped —
            // at the commit, the one event every scheduler agrees on.
            faults.record_commit(tile, port, queued.ready_at, now);
        }
        // The freed output-buffer space may unblock an upstream waiter: it
        // contends at `now` if it sits after this router in the walk (file
        // under `now + 1`, the first undrained bucket — the current walk
        // reads the dense stamps directly).
        self.wake_waiters(tile, now, now + 1);
        self.drain_versions[tile] = self.drain_versions[tile].wrapping_add(1);
        let serialization = flits as u64;
        self.routers[tile].set_link_busy_until(port, now + serialization);
        self.routers[tile].flits_per_port[port.index()] += flits as u64;
        self.account_busy(tile, now, now + serialization);

        self.stats.flit_hops += flits as u64;
        self.stats.flit_tile_spans +=
            flits as f64 * self.config.topology.hop_wire_tiles(port.hop_kind());

        let arriving = QueuedMessage {
            ready_at: now + serialization,
            message: queued.message,
        };
        self.buffered_count[next_tile] += 1;
        if next_port == Port::Local {
            self.in_flight_messages -= 1;
            self.awaiting_ejection += 1;
            self.stats.delivered_messages += 1;
            self.stats.delivered_flits += flits as u64;
            self.stats.total_latency_cycles +=
                now + serialization - arriving.message.injected_at;
            self.note_delivery(next_tile);
            self.routers[next_tile].push(next_port, channel, arriving);
        } else {
            // The arriving head can go once its last flit has landed and
            // the downstream link is free: a due-stamp candidate for the
            // downstream router.
            let downstream_due =
                (now + serialization).max(self.routers[next_tile].link_busy_until(next_port));
            self.schedule_due(next_tile, downstream_due);
            self.routers[next_tile].push(next_port, channel, arriving);
            self.mark_active(next_tile);
        }
        self.routers[tile].advance_rr(port, self.config.channels);
    }

    /// Classifies the head message on (tile, port, channel): ready to move
    /// this cycle, ready only at a future cycle (cut-through still
    /// arriving), or no message at all.
    fn forwardable_message(
        &self,
        tile: TileId,
        port: Port,
        channel: ChannelId,
        now: u64,
    ) -> ForwardCandidate {
        let buffer = self.routers[tile].buffer(port, channel);
        let Some(queued) = buffer.front() else {
            return ForwardCandidate::Empty;
        };
        if queued.ready_at > now {
            return ForwardCandidate::ReadyAt(queued.ready_at);
        }
        ForwardCandidate::Ready {
            flits: queued.message.len(),
            dest: queued.message.dest(),
        }
    }

    /// Accounts busy cycles for a router as the union of its ports' link
    /// activity intervals.  The coverage marker lives inside the router so
    /// the accounting touches no memory beyond the router already in cache.
    fn account_busy(&mut self, tile: TileId, from: u64, until: u64) {
        let router = &mut self.routers[tile];
        let start = from.max(router.busy_covered_until);
        if until > start {
            router.busy_cycles += until - start;
            router.busy_covered_until = until;
        }
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Per-router utilization (fraction of simulated cycles each router was
    /// forwarding at least one flit), as a heatmap grid.
    pub fn router_utilization(&self) -> UtilizationGrid {
        let cycles = self.cycle.max(1) as f64;
        let values = self
            .routers
            .iter()
            .map(|r| (r.busy_cycles as f64 / cycles).min(1.0))
            .collect();
        UtilizationGrid::new(
            self.config.shape.width(),
            self.config.shape.height(),
            values,
        )
    }

    /// Flits forwarded by every router (row-major), a contention proxy used
    /// by tests.
    pub fn flits_per_router(&self) -> Vec<u64> {
        self.routers
            .iter()
            .map(|r| r.flits_per_port.iter().sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::GridShape;
    use crate::Topology;

    fn small_net(topology: Topology) -> Network {
        Network::new(NocConfig::new(GridShape::new(4, 4), topology))
    }

    fn run_until_idle(net: &mut Network, max_cycles: u64) {
        let mut cycles = 0;
        while net.in_flight() > 0 {
            net.cycle();
            cycles += 1;
            assert!(cycles < max_cycles, "network did not drain");
        }
    }

    #[test]
    fn single_message_is_delivered_intact() {
        for topology in [
            Topology::Mesh,
            Topology::Torus,
            Topology::TorusRuche { factor: 2 },
        ] {
            let mut net = small_net(topology);
            net.try_inject(0, Message::new(15, 1, vec![10, 20, 30])).unwrap();
            run_until_idle(&mut net, 1000);
            let msg = net.pop_delivered(15).expect("delivered");
            assert_eq!(msg.payload(), &[10, 20, 30]);
            assert_eq!(msg.channel(), 1);
            assert!(net.pop_delivered(15).is_none());
            assert!(net.is_idle());
        }
    }

    #[test]
    fn self_message_goes_to_ejection_buffer() {
        let mut net = small_net(Topology::Torus);
        net.try_inject(5, Message::new(5, 0, vec![99])).unwrap();
        assert_eq!(net.awaiting_ejection(), 1);
        assert_eq!(net.delivered_waiting(5), 1);
        let msg = net.pop_delivered(5).unwrap();
        assert_eq!(msg.payload(), &[99]);
        assert!(net.is_idle());
        assert!(net.quiescent());
    }

    #[test]
    fn rejects_bad_addresses_and_channels() {
        let mut net = small_net(Topology::Mesh);
        let err = net.try_inject(99, Message::new(0, 0, vec![1])).unwrap_err();
        assert!(matches!(err.error, NocError::TileOutOfRange { .. }));
        let err = net.try_inject(0, Message::new(99, 0, vec![1])).unwrap_err();
        assert!(matches!(err.error, NocError::TileOutOfRange { .. }));
        let err = net.try_inject(0, Message::new(1, 9, vec![1])).unwrap_err();
        assert!(matches!(err.error, NocError::ChannelOutOfRange { .. }));
        // The rejected message is handed back intact.
        assert_eq!(err.message.payload(), &[1]);
        // Addressing errors are caller bugs, not endpoint back-pressure.
        assert_eq!(net.stats().total_injection_rejections(), 0);
    }

    #[test]
    fn rejects_oversized_messages() {
        let mut net = Network::new(
            NocConfig::new(GridShape::new(2, 2), Topology::Mesh).with_buffer_flits(4),
        );
        let err = net
            .try_inject(0, Message::new(3, 0, vec![0; 4]))
            .unwrap_err();
        assert!(matches!(err.error, NocError::MessageTooLong { .. }));
    }

    #[test]
    fn backpressure_when_buffers_full() {
        let mut net = Network::new(
            NocConfig::new(GridShape::new(2, 1), Topology::Mesh)
                .with_channels(1)
                .with_buffer_flits(8),
        );
        // Each message is 3 flits + 3 bubble slack = 6; the second one needs
        // another 3 + bubble which no longer fits an 8-flit buffer.
        net.try_inject(0, Message::new(1, 0, vec![1, 2, 3])).unwrap();
        let err = net.try_inject(0, Message::new(1, 0, vec![4, 5, 6])).unwrap_err();
        assert!(matches!(err.error, NocError::InjectionBackpressure));
        assert_eq!(net.stats().injection_backpressure_events, 1);
        // The rejection is attributed to the injecting tile.
        assert_eq!(net.stats().injection_rejections_per_tile, vec![1, 0]);
        assert_eq!(net.stats().total_injection_rejections(), 1);
        // After the network drains, injection succeeds again.
        run_until_idle(&mut net, 100);
        net.pop_delivered(1).unwrap();
        net.try_inject(0, err.message).unwrap();
    }

    #[test]
    fn many_messages_all_arrive_exactly_once() {
        let mut net = small_net(Topology::Torus);
        let mut expected = vec![0u32; 16];
        let mut pending = Vec::new();
        for src in 0..16usize {
            for (dst, count) in expected.iter_mut().enumerate() {
                let payload = vec![(src * 16 + dst) as u32, 7];
                pending.push((src, Message::new(dst, src % 4, payload)));
                *count += 1;
            }
        }
        // Inject with retry-on-backpressure, interleaved with cycles.
        let mut guard = 0;
        while !pending.is_empty() {
            let mut retry = Vec::new();
            for (src, msg) in pending.drain(..) {
                if let Err(rejected) = net.try_inject(src, msg) {
                    assert!(matches!(rejected.error, NocError::InjectionBackpressure));
                    retry.push((src, rejected.message));
                }
            }
            pending = retry;
            net.cycle();
            guard += 1;
            assert!(guard < 10_000, "injection never completed");
        }
        run_until_idle(&mut net, 10_000);
        let mut received = vec![0u32; 16];
        for (tile, count) in received.iter_mut().enumerate() {
            while let Some(msg) = net.pop_delivered(tile) {
                assert_eq!(msg.dest(), tile);
                *count += 1;
            }
        }
        assert_eq!(received, expected);
        assert_eq!(net.stats().delivered_messages, 256);
        assert_eq!(net.stats().injected_messages, 256);
    }

    #[test]
    fn torus_uses_fewer_flit_hops_than_mesh_for_uniform_traffic() {
        let mut totals = Vec::new();
        for topology in [Topology::Mesh, Topology::Torus] {
            let mut net = Network::new(NocConfig::new(GridShape::new(8, 8), topology));
            for src in 0..64usize {
                let dst = (src + 37) % 64;
                while net.try_inject(src, Message::new(dst, 0, vec![1, 2])).is_err() {
                    net.cycle();
                }
            }
            run_until_idle(&mut net, 100_000);
            totals.push(net.stats().flit_hops);
        }
        assert!(
            totals[1] < totals[0],
            "torus hops {} not below mesh hops {}",
            totals[1],
            totals[0]
        );
    }

    #[test]
    fn mesh_concentrates_utilization_more_than_torus() {
        // Miniature of Figure 10: with all-to-all style traffic the mesh's
        // centre routers are busier than its edge routers, while the torus
        // spreads the load.
        let mut variations = Vec::new();
        for topology in [Topology::Mesh, Topology::Torus] {
            let mut net = Network::new(NocConfig::new(GridShape::new(8, 8), topology));
            let mut pending: Vec<(usize, Message)> = Vec::new();
            for src in 0..64usize {
                for k in 1..8usize {
                    let dst = (src * 13 + k * 29) % 64;
                    if dst != src {
                        pending.push((src, Message::new(dst, 0, vec![1, 2])));
                    }
                }
            }
            let mut guard = 0;
            while !pending.is_empty() {
                let mut retry = Vec::new();
                for (src, msg) in pending.drain(..) {
                    if let Err(r) = net.try_inject(src, msg) {
                        retry.push((src, r.message));
                    }
                }
                pending = retry;
                net.cycle();
                guard += 1;
                assert!(guard < 100_000);
            }
            run_until_idle(&mut net, 100_000);
            for tile in 0..64 {
                while net.pop_delivered(tile).is_some() {}
            }
            variations.push(net.router_utilization().variation());
        }
        assert!(
            variations[0] > variations[1],
            "mesh variation {} should exceed torus variation {}",
            variations[0],
            variations[1]
        );
    }

    #[test]
    fn latency_statistics_are_positive_after_traffic() {
        let mut net = small_net(Topology::Mesh);
        net.try_inject(0, Message::new(15, 0, vec![1, 2, 3])).unwrap();
        run_until_idle(&mut net, 1000);
        assert!(net.stats().average_latency() > 0.0);
        assert!(net.stats().average_hops_per_flit() >= 1.0);
        assert_eq!(net.stats().delivered_flits, 3);
    }

    #[test]
    fn ejection_occupancy_reports_waiting_flits() {
        let mut net = small_net(Topology::Torus);
        net.try_inject(3, Message::new(3, 2, vec![5, 6])).unwrap();
        assert_eq!(net.ejection_occupancy(3, 2), 2);
        assert_eq!(net.ejection_occupancy(3, 0), 0);
        assert_eq!(net.peek_delivered_on(3, 2).unwrap().payload(), &[5, 6]);
        net.pop_delivered_on(3, 2).unwrap();
        assert_eq!(net.ejection_occupancy(3, 2), 0);
    }

    #[test]
    fn delivery_events_report_each_destination_once() {
        let mut net = small_net(Topology::Torus);
        net.try_inject(0, Message::new(9, 0, vec![1])).unwrap();
        net.try_inject(0, Message::new(9, 1, vec![2])).unwrap();
        net.try_inject(1, Message::new(1, 0, vec![3])).unwrap();
        run_until_idle(&mut net, 1000);
        let mut events = net.take_delivery_events();
        events.sort_unstable();
        assert_eq!(events, vec![1, 9]);
        // Events are cleared after being taken.
        assert!(net.take_delivery_events().is_empty());
    }

    #[test]
    fn drain_delivery_events_into_reuses_the_buffer() {
        let mut net = small_net(Topology::Torus);
        net.try_inject(0, Message::new(9, 0, vec![1])).unwrap();
        run_until_idle(&mut net, 1000);
        let mut events = Vec::new();
        net.drain_delivery_events_into(&mut events);
        assert_eq!(events, vec![9]);
        events.clear();
        net.drain_delivery_events_into(&mut events);
        assert!(events.is_empty());
        // A later delivery re-arms the event.
        net.try_inject(0, Message::new(9, 0, vec![2])).unwrap();
        run_until_idle(&mut net, 1000);
        net.drain_delivery_events_into(&mut events);
        assert_eq!(events, vec![9]);
    }

    #[test]
    fn single_tile_grid_delivers_locally() {
        let mut net = Network::new(NocConfig::new(GridShape::new(1, 1), Topology::Mesh));
        assert!(net.can_inject(0, 0, 2));
        net.try_inject(0, Message::new(0, 0, vec![1, 2])).unwrap();
        assert_eq!(net.pop_delivered(0).unwrap().payload(), &[1, 2]);
    }

    /// Drains `net` by jumping to each next event instead of ticking; the
    /// modelled schedule must be identical to ticking every cycle.
    fn run_until_idle_skipping(net: &mut Network, max_steps: u64) {
        let mut steps = 0;
        while net.in_flight() > 0 {
            let bound = net.next_event_cycle();
            assert_ne!(bound, u64::MAX, "in-flight traffic must have a next event");
            net.advance_to(bound);
            net.cycle();
            steps += 1;
            assert!(steps < max_steps, "skip drive loop did not drain");
        }
    }

    /// The skip-to-next-event drive loop lands on exactly the same final
    /// state as the pre-overhaul reference ticking every cycle: same
    /// delivery counts, same modelled cycle count, same latency totals,
    /// same busy accounting and per-router traffic — across topologies.
    #[test]
    fn skip_drive_loop_matches_reference_schedule() {
        for topology in [
            Topology::Mesh,
            Topology::Torus,
            Topology::TorusRuche { factor: 2 },
        ] {
            let mut skip = small_net(topology);
            let mut reference = small_net(topology);
            let traffic: Vec<(usize, usize, usize, usize)> = (0..48)
                .map(|i| (i % 16, (i * 7 + 3) % 16, i % 4, 1 + i % 3))
                .collect();
            // Injection phase: both networks tick cycle by cycle with
            // identical retry-on-backpressure, so attempts (and rejection
            // statistics) line up exactly.
            let mut pending_skip: Vec<(usize, Message)> = traffic
                .iter()
                .map(|&(s, d, c, l)| (s, Message::new(d, c, vec![9u32; l])))
                .collect();
            let mut pending_ref = pending_skip.clone();
            let mut guard = 0;
            while !pending_skip.is_empty() || !pending_ref.is_empty() {
                let mut retry = Vec::new();
                for (src, msg) in pending_skip.drain(..) {
                    if let Err(r) = skip.try_inject(src, msg) {
                        retry.push((src, r.message));
                    }
                }
                pending_skip = retry;
                let mut retry = Vec::new();
                for (src, msg) in pending_ref.drain(..) {
                    if let Err(r) = reference.try_inject(src, msg) {
                        retry.push((src, r.message));
                    }
                }
                pending_ref = retry;
                skip.cycle();
                reference.cycle_reference();
                guard += 1;
                assert!(guard < 10_000);
            }
            // Drain phase: the skip loop jumps quiet windows, the reference
            // ticks through them.
            run_until_idle_skipping(&mut skip, 10_000);
            let mut ticks = 0;
            while reference.in_flight() > 0 {
                reference.cycle_reference();
                ticks += 1;
                assert!(ticks < 10_000);
            }
            // The skip network's clock may be *behind* the reference's only
            // because the reference kept ticking after the last delivery in
            // this loop shape; align by advancing the skip network over the
            // now all-quiet window — the golden part of this test: nothing
            // but the cycle counter may change.
            let before = skip.stats().clone();
            skip.advance_to(reference.current_cycle());
            assert_eq!(skip.current_cycle(), reference.current_cycle());
            assert_eq!(
                NocStats {
                    cycles: reference.current_cycle(),
                    ..before
                },
                *skip.stats(),
                "advance_to changed a statistic other than cycles on {topology:?}"
            );
            assert_eq!(skip.stats(), reference.stats(), "stats diverged on {topology:?}");
            assert_eq!(skip.router_utilization(), reference.router_utilization());
            assert_eq!(skip.flits_per_router(), reference.flits_per_router());
            // Same deliveries, message for message.
            for tile in 0..16 {
                loop {
                    let a = skip.pop_delivered(tile);
                    let b = reference.pop_delivered(tile);
                    assert_eq!(
                        a.as_ref().map(|m| m.payload().to_vec()),
                        b.as_ref().map(|m| m.payload().to_vec())
                    );
                    if a.is_none() {
                        break;
                    }
                }
            }
            assert!(skip.is_idle() && reference.is_idle());
        }
    }

    /// `advance_to` across a provably quiet window is exactly a cycle
    /// counter jump: every other statistic, the buffered messages and the
    /// eventual delivery schedule are untouched.
    #[test]
    fn advance_to_changes_no_stat_other_than_cycles() {
        let mut skip = small_net(Topology::Torus);
        let mut ticked = small_net(Topology::Torus);
        for net in [&mut skip, &mut ticked] {
            net.try_inject(0, Message::new(15, 0, vec![1, 2, 3])).unwrap();
            // First hop committed; the 3-flit link serialization now opens a
            // quiet window.
            net.cycle();
        }
        let window_end = skip.next_event_cycle();
        assert!(
            window_end > skip.current_cycle(),
            "serialization must open a skippable window"
        );
        let before = skip.stats().clone();
        skip.advance_to(window_end);
        assert_eq!(skip.current_cycle(), window_end);
        assert_eq!(
            NocStats { cycles: window_end, ..before },
            *skip.stats(),
            "advance_to changed a statistic other than cycles"
        );
        // Both engines finish with identical schedules and latency totals.
        run_until_idle_skipping(&mut skip, 1000);
        run_until_idle(&mut ticked, 1000);
        skip.advance_to(ticked.current_cycle().max(skip.current_cycle()));
        ticked.advance_to(skip.current_cycle());
        assert_eq!(skip.stats(), ticked.stats());
        assert_eq!(
            skip.pop_delivered(15).unwrap().payload(),
            ticked.pop_delivered(15).unwrap().payload()
        );
    }

    /// A target beyond the next possible forward must be refused: skipping
    /// over it would change the modelled schedule.
    #[test]
    #[should_panic(expected = "advance_to")]
    fn advance_to_rejects_targets_beyond_the_event_horizon() {
        let mut net = small_net(Topology::Torus);
        net.try_inject(0, Message::new(15, 0, vec![1, 2])).unwrap();
        // The injected message is forwardable immediately: no quiet window.
        let bound = net.next_event_cycle();
        net.advance_to(bound + 1);
    }

    /// The `u64::MAX` "no next event" sentinel is a blocked fabric waiting
    /// for an endpoint drain, not a quiet window; jumping there must be
    /// refused rather than corrupting the clock.
    #[test]
    #[should_panic(expected = "endpoint")]
    fn advance_to_rejects_the_no_event_sentinel() {
        let mut net = Network::new(
            NocConfig::new(GridShape::new(2, 1), Topology::Mesh)
                .with_channels(1)
                .with_ejection_buffer_flits(2),
        );
        // Fill tile 1's only ejection buffer, then block a remote message
        // on it: in-flight traffic exists but can never move again without
        // a pop_delivered.
        net.try_inject(1, Message::new(1, 0, vec![7, 8])).unwrap();
        net.try_inject(0, Message::new(1, 0, vec![1, 2])).unwrap();
        for _ in 0..4 {
            net.cycle();
        }
        assert!(net.in_flight() > 0);
        assert_eq!(net.next_event_cycle(), u64::MAX);
        net.advance_to(u64::MAX);
    }

    fn small_calendar_net(topology: Topology) -> Network {
        Network::new(
            NocConfig::new(GridShape::new(4, 4), topology)
                .with_router_scheduler(RouterScheduler::Calendar),
        )
    }

    /// The calendar scheduler produces the exact per-cycle schedule of the
    /// reference scan, across topologies, including the per-cycle delivery
    /// order under endpoint drains (the regime where arbitration-order
    /// bugs hide).
    #[test]
    fn calendar_cycle_matches_reference_schedule() {
        for topology in [
            Topology::Mesh,
            Topology::Torus,
            Topology::TorusRuche { factor: 2 },
        ] {
            let mut calendar = small_calendar_net(topology);
            let mut reference = small_net(topology);
            let traffic: Vec<(usize, usize, usize, usize)> = (0..64)
                .map(|i| (i % 16, (i * 7 + 3) % 16, i % 4, 1 + i % 3))
                .collect();
            for step in 0..500u64 {
                if let Some(&(src, dst, ch, len)) = traffic.get(step as usize) {
                    let a = calendar.try_inject(src, Message::new(dst, ch, vec![7u32; len]));
                    let b = reference.try_inject(src, Message::new(dst, ch, vec![7u32; len]));
                    assert_eq!(a.is_ok(), b.is_ok(), "injection diverged at step {step}");
                }
                calendar.cycle();
                reference.cycle_reference();
                assert_eq!(
                    (
                        calendar.stats().delivered_messages,
                        calendar.stats().flit_hops
                    ),
                    (
                        reference.stats().delivered_messages,
                        reference.stats().flit_hops
                    ),
                    "schedule diverged at step {step} on {topology:?}"
                );
                // Drain one message per tile per cycle on both, leaving some
                // cycles undrained so ejection back-pressure (and with it
                // the blocked-head due path) is exercised.
                if step % 3 != 0 {
                    for tile in 0..16 {
                        let a = calendar.pop_delivered(tile);
                        let b = reference.pop_delivered(tile);
                        assert_eq!(
                            a.as_ref().map(|m| m.payload().to_vec()),
                            b.as_ref().map(|m| m.payload().to_vec()),
                            "delivery diverged at step {step} on {topology:?}"
                        );
                    }
                }
            }
            // Drain the leftovers and finish both.
            let mut guard = 0;
            while !calendar.is_idle() || !reference.is_idle() {
                calendar.cycle();
                reference.cycle_reference();
                for tile in 0..16 {
                    let a = calendar.pop_delivered(tile);
                    let b = reference.pop_delivered(tile);
                    assert_eq!(a.map(|m| m.dest()), b.map(|m| m.dest()));
                }
                guard += 1;
                assert!(guard < 10_000, "never drained on {topology:?}");
            }
            assert_eq!(calendar.stats(), reference.stats(), "{topology:?}");
            assert_eq!(calendar.router_utilization(), reference.router_utilization());
            assert_eq!(calendar.flits_per_router(), reference.flits_per_router());
        }
    }

    /// The calendar scheduler also composes with the skip drive loop: jump
    /// to the next event, cycle, repeat — final state identical to the
    /// reference ticking every cycle.
    #[test]
    fn calendar_skip_drive_loop_matches_reference() {
        let mut calendar = small_calendar_net(Topology::Torus);
        let mut reference = small_net(Topology::Torus);
        for net in [&mut calendar, &mut reference] {
            for src in 0..16usize {
                net.try_inject(src, Message::new((src * 5 + 3) % 16, src % 4, vec![1, 2, 3]))
                    .unwrap();
            }
        }
        run_until_idle_skipping(&mut calendar, 10_000);
        let mut ticks = 0;
        while reference.in_flight() > 0 {
            reference.cycle_reference();
            ticks += 1;
            assert!(ticks < 10_000);
        }
        calendar.advance_to(reference.current_cycle().max(calendar.current_cycle()));
        reference.advance_to(calendar.current_cycle());
        assert_eq!(calendar.stats(), reference.stats());
        for tile in 0..16 {
            loop {
                let a = calendar.pop_delivered(tile);
                let b = reference.pop_delivered(tile);
                assert_eq!(
                    a.as_ref().map(|m| m.payload().to_vec()),
                    b.as_ref().map(|m| m.payload().to_vec())
                );
                if a.is_none() {
                    break;
                }
            }
        }
    }

    /// The calendar invariant in miniature: a router's `next_possible`
    /// stamp never overshoots the cycle at which it actually commits a
    /// forward (measured by its forwarded-flit counter moving).
    #[test]
    fn due_stamps_never_overshoot_actual_commits() {
        let mut net = small_calendar_net(Topology::Torus);
        for src in 0..16usize {
            net.try_inject(src, Message::new((src + 7) % 16, src % 4, vec![9u32; 2]))
                .unwrap();
        }
        let mut guard = 0;
        while net.in_flight() > 0 {
            let before = net.flits_per_router();
            let stamps: Vec<u64> = (0..16).map(|t| net.next_possible_stamp(t)).collect();
            let now = net.current_cycle();
            net.cycle();
            let after = net.flits_per_router();
            for tile in 0..16 {
                if after[tile] > before[tile] {
                    assert!(
                        stamps[tile] <= now,
                        "router {tile} committed at {now} but its stamp said {}",
                        stamps[tile]
                    );
                }
            }
            for tile in 0..16 {
                while net.pop_delivered(tile).is_some() {}
            }
            guard += 1;
            assert!(guard < 10_000);
        }
    }

    fn small_calendar_scan_net(topology: Topology) -> Network {
        Network::new(
            NocConfig::new(GridShape::new(4, 4), topology)
                .with_router_scheduler(RouterScheduler::CalendarScan),
        )
    }

    /// The dirty-membership bugfix in miniature: when a single endpoint
    /// drain empties one router and nothing is due, the due-only walk
    /// replays exactly that router — it does not visit all N active
    /// routers the way the full calendar walk does.  The modelled schedule
    /// is identical either way (`NocStats` equality ignores walk counters).
    #[test]
    fn dirty_membership_replays_only_the_drained_router() {
        let mut due_only = small_calendar_net(Topology::Torus);
        let mut full_walk = small_calendar_scan_net(Topology::Torus);
        for net in [&mut due_only, &mut full_walk] {
            // One-hop messages that nobody drains: every destination router
            // ends up active (a message parked in its ejection buffer) but
            // never due again.
            for tile in 0..16usize {
                net.try_inject(tile, Message::new((tile + 1) % 16, 0, vec![tile as u32]))
                    .unwrap();
            }
            let mut guard = 0;
            while net.in_flight() > 0 {
                net.cycle();
                guard += 1;
                assert!(guard < 1_000);
            }
            // Let every still-filed due stamp (delivery-cycle residue) fire
            // and resolve to "nothing forwardable" so only parked ejection
            // messages remain.
            for _ in 0..64 {
                net.cycle();
            }
        }
        assert_eq!(due_only.awaiting_ejection(), 16);
        // With every message parked, the walk is elided outright.
        let elided = (due_only.stats().walks_elided, full_walk.stats().walks_elided);
        due_only.cycle();
        full_walk.cycle();
        assert_eq!(due_only.stats().walks_elided, elided.0 + 1);
        assert_eq!(full_walk.stats().walks_elided, elided.1 + 1);
        // Both schedulers agree on the retained membership: the routers
        // whose ejection message arrived before their own walk-turn drop
        // (a delivery alone never re-adds a router, same as the scan
        // scheduler).  Tile 5 must be among them for the drain below to
        // exercise the dirty path.
        let members = due_only.debug_active_order();
        assert_eq!(members, full_walk.debug_active_order());
        assert!(members.len() > 1, "need several active routers: {members:?}");
        assert!(members.contains(&5));
        // Drain ONE tile; its router empties and must leave the membership.
        due_only.pop_delivered(5).unwrap();
        full_walk.pop_delivered(5).unwrap();
        let visited = (
            due_only.stats().walk_routers_visited,
            full_walk.stats().walk_routers_visited,
        );
        let scanned = (
            due_only.stats().walk_routers_scanned,
            full_walk.stats().walk_routers_scanned,
        );
        due_only.cycle();
        full_walk.cycle();
        // The due-only walk replays just the dirty router; the preserved
        // full walk reads a stamp for every active router.
        assert_eq!(
            due_only.stats().walk_routers_visited - visited.0,
            1,
            "1-router drain must not visit all {} active routers",
            members.len()
        );
        assert_eq!(
            full_walk.stats().walk_routers_visited - visited.1,
            members.len() as u64
        );
        // Neither walk port-scanned anything (nothing was due)...
        assert_eq!(due_only.stats().walk_routers_scanned, scanned.0);
        assert_eq!(full_walk.stats().walk_routers_scanned, scanned.1);
        // ...and the modelled schedules are identical.
        assert_eq!(due_only.stats(), full_walk.stats());
        assert_eq!(due_only.debug_active_order(), full_walk.debug_active_order());
        // The drained router is gone from both active orders.
        assert!(!due_only.debug_active_order().contains(&5));
        assert_eq!(due_only.debug_active_order().len(), members.len() - 1);
    }

    /// Drives the same traffic through the event-driven cycle and the
    /// reference cycle, asserting the per-cycle delivery schedules and final
    /// statistics are identical.
    #[test]
    fn event_driven_cycle_matches_reference_schedule() {
        for topology in [
            Topology::Mesh,
            Topology::Torus,
            Topology::TorusRuche { factor: 2 },
        ] {
            let mut fast = small_net(topology);
            let mut reference = small_net(topology);
            let traffic: Vec<(usize, usize, usize, usize)> = (0..48)
                .map(|i| (i % 16, (i * 7 + 3) % 16, i % 4, 1 + i % 3))
                .collect();
            let mut schedule_fast = Vec::new();
            let mut schedule_ref = Vec::new();
            for step in 0..400u64 {
                if let Some(&(src, dst, ch, len)) = traffic.get(step as usize) {
                    let a = fast.try_inject(src, Message::new(dst, ch, vec![7u32; len]));
                    let b = reference.try_inject(src, Message::new(dst, ch, vec![7u32; len]));
                    assert_eq!(a.is_ok(), b.is_ok(), "injection diverged at step {step}");
                }
                fast.cycle();
                reference.cycle_reference();
                schedule_fast.push((fast.stats().delivered_messages, fast.stats().flit_hops));
                schedule_ref.push((
                    reference.stats().delivered_messages,
                    reference.stats().flit_hops,
                ));
                // Drain one message per tile per cycle on both.
                for tile in 0..16 {
                    let a = fast.pop_delivered(tile);
                    let b = reference.pop_delivered(tile);
                    assert_eq!(a.as_ref().map(|m| m.payload().len()), b.as_ref().map(|m| m.payload().len()));
                }
            }
            assert_eq!(schedule_fast, schedule_ref, "schedule diverged on {topology:?}");
            assert!(fast.is_idle() && reference.is_idle());
            assert_eq!(fast.stats().total_latency_cycles, reference.stats().total_latency_cycles);
            assert_eq!(fast.router_utilization(), reference.router_utilization());
            assert_eq!(fast.flits_per_router(), reference.flits_per_router());
        }
    }
}
