//! The cycle-level network simulator.
//!
//! [`Network`] owns one [`Router`](crate::router) per tile and advances the
//! whole fabric one cycle at a time.  The Dalorex tile simulator drives it
//! in lock-step with the tiles: each cycle, tiles inject the messages their
//! channel queues produced ([`Network::try_inject`]), the network moves
//! messages one hop ([`Network::cycle`]), and tiles drain arrivals from
//! their ejection buffers ([`Network::pop_delivered`]).  If a tile does not
//! drain its ejection buffer, back-pressure propagates upstream exactly as
//! in the paper's end-point-contention discussion.

use crate::message::Message;
use crate::router::{QueuedMessage, Router};
use crate::stats::{NocStats, UtilizationGrid};
use crate::topology::{Port, RoutingGrid};
use crate::{ChannelId, NocConfig, NocError, TileId};

/// A message rejected at injection, handed back to the caller together with
/// the reason so it can be retried on a later cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejected {
    /// The message that was not injected.
    pub message: Message,
    /// Why it was rejected.
    pub error: NocError,
}

/// Dimension a port moves a message along (used by the bubble rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dimension {
    X,
    Y,
    None,
}

fn port_dimension(port: Port) -> Dimension {
    match port {
        Port::East | Port::West | Port::RucheEast | Port::RucheWest => Dimension::X,
        Port::North | Port::South | Port::RucheNorth | Port::RucheSouth => Dimension::Y,
        Port::Local => Dimension::None,
    }
}

/// Cycle-level network-on-chip simulator.
#[derive(Debug, Clone)]
pub struct Network {
    config: NocConfig,
    grid: RoutingGrid,
    routers: Vec<Router>,
    /// Routers that currently hold at least one buffered message.
    active: Vec<bool>,
    active_list: Vec<TileId>,
    cycle: u64,
    stats: NocStats,
    in_flight_messages: u64,
    awaiting_ejection: u64,
    /// Cycle-coverage marker per router for exact busy-cycle accounting.
    busy_covered_until: Vec<u64>,
    /// Tiles that received a delivery since the last call to
    /// [`Network::take_delivery_events`].
    delivery_events: Vec<TileId>,
    delivery_event_pending: Vec<bool>,
}

impl Network {
    /// Creates a network from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests zero channels or zero-sized
    /// buffers (a network that can never carry a message).
    pub fn new(config: NocConfig) -> Self {
        assert!(config.channels > 0, "at least one channel is required");
        assert!(config.buffer_flits > 0, "buffers must hold at least one flit");
        assert!(
            config.ejection_buffer_flits > 0,
            "ejection buffers must hold at least one flit"
        );
        let num_tiles = config.shape.num_tiles();
        let routers = (0..num_tiles)
            .map(|_| {
                Router::new(
                    config.channels,
                    config.buffer_flits,
                    config.ejection_buffer_flits,
                )
            })
            .collect();
        let grid = RoutingGrid::new(config.shape, config.topology);
        Network {
            grid,
            routers,
            active: vec![false; num_tiles],
            active_list: Vec::new(),
            cycle: 0,
            stats: NocStats::default(),
            in_flight_messages: 0,
            awaiting_ejection: 0,
            busy_covered_until: vec![0; num_tiles],
            delivery_events: Vec::new(),
            delivery_event_pending: vec![false; num_tiles],
            config,
        }
    }

    /// Returns the tiles that received at least one delivery since the last
    /// call, clearing the event list.  The tile simulator uses this to wake
    /// up otherwise idle tiles without scanning the whole grid every cycle.
    pub fn take_delivery_events(&mut self) -> Vec<TileId> {
        for &tile in &self.delivery_events {
            self.delivery_event_pending[tile] = false;
        }
        std::mem::take(&mut self.delivery_events)
    }

    fn note_delivery(&mut self, tile: TileId) {
        if !self.delivery_event_pending[tile] {
            self.delivery_event_pending[tile] = true;
            self.delivery_events.push(tile);
        }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// The current cycle count.
    pub fn current_cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of messages buffered inside the fabric (not yet ejected).
    pub fn in_flight(&self) -> u64 {
        self.in_flight_messages
    }

    /// Number of messages sitting in ejection buffers, waiting for their
    /// tile to drain them.
    pub fn awaiting_ejection(&self) -> u64 {
        self.awaiting_ejection
    }

    /// True when no message is buffered anywhere in the fabric, including
    /// the ejection buffers.  This is the network's contribution to the
    /// chip-wide hierarchical idle signal used for termination detection.
    pub fn is_idle(&self) -> bool {
        self.in_flight_messages == 0 && self.awaiting_ejection == 0
    }

    /// Whether a message of `flits` flits could be injected at `src` on
    /// `channel` this cycle (i.e. [`Network::try_inject`] would succeed).
    pub fn can_inject(&self, src: TileId, channel: ChannelId, flits: usize) -> bool {
        if src >= self.routers.len() || channel >= self.config.channels || flits == 0 {
            return false;
        }
        // Self-delivery goes straight to the ejection buffer.
        let bubble = flits;
        let router = &self.routers[src];
        match self.first_hop_port(src, src, channel, flits) {
            Some((port, entering)) => router.can_accept(port, channel, flits, entering, bubble),
            None => false,
        }
    }

    /// Computes the output port a message for `dest` takes at `at`, along
    /// with whether it is entering a new dimension there when it arrived via
    /// `arrival_dimension`.
    fn routed_port(&self, at: TileId, dest: TileId, arrived_via: Dimension) -> (Port, bool) {
        match self.grid.next_hop(at, dest) {
            None => (Port::Local, false),
            Some(hop) => {
                let dim = port_dimension(hop.port);
                let entering = matches!(
                    (arrived_via, dim),
                    (Dimension::None, _) | (Dimension::X, Dimension::Y) | (Dimension::Y, Dimension::X)
                );
                (hop.port, entering)
            }
        }
    }

    fn first_hop_port(
        &self,
        src: TileId,
        _dest_placeholder: TileId,
        _channel: ChannelId,
        _flits: usize,
    ) -> Option<(Port, bool)> {
        // For `can_inject` we do not know the destination, so we
        // conservatively require space on the most-constrained case: a
        // message entering a dimension. The actual injection recomputes the
        // real port. We use the East port's buffer occupancy as the
        // representative constraint, falling back to Local for 1x1 grids.
        if self.grid.shape().num_tiles() == 1 {
            return Some((Port::Local, false));
        }
        let _ = src;
        Some((Port::East, true))
    }

    /// Injects a message at `src`.  On success the message starts travelling
    /// this cycle; on failure the message is handed back so the caller can
    /// retry later (channel queues in the tiles exert exactly this
    /// back-pressure on producing tasks).
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] with:
    /// * [`NocError::TileOutOfRange`] / [`NocError::ChannelOutOfRange`] for
    ///   invalid addressing,
    /// * [`NocError::MessageTooLong`] if the message can never fit a buffer,
    /// * [`NocError::InjectionBackpressure`] if the first-hop buffer is
    ///   currently full.
    pub fn try_inject(&mut self, src: TileId, message: Message) -> Result<(), Rejected> {
        let num_tiles = self.routers.len();
        if src >= num_tiles || message.dest() >= num_tiles {
            let tile = if src >= num_tiles { src } else { message.dest() };
            return Err(Rejected {
                error: NocError::TileOutOfRange { tile, num_tiles },
                message,
            });
        }
        if message.channel() >= self.config.channels {
            return Err(Rejected {
                error: NocError::ChannelOutOfRange {
                    channel: message.channel(),
                    channels: self.config.channels,
                },
                message,
            });
        }
        let flits = message.len();
        let max_needed = flits + flits; // message plus bubble slack
        if flits > self.config.ejection_buffer_flits || max_needed > self.config.buffer_flits {
            return Err(Rejected {
                error: NocError::MessageTooLong {
                    flits,
                    capacity: self.config.buffer_flits.min(self.config.ejection_buffer_flits),
                },
                message,
            });
        }

        let dest = message.dest();
        let channel = message.channel();
        let (port, entering) = self.routed_port(src, dest, Dimension::None);
        let bubble = flits;
        if !self.routers[src].can_accept(port, channel, flits, entering, bubble) {
            self.stats.injection_backpressure_events += 1;
            return Err(Rejected {
                error: NocError::InjectionBackpressure,
                message,
            });
        }
        let mut message = message;
        message.injected_at = self.cycle;
        let queued = QueuedMessage {
            ready_at: self.cycle,
            message,
        };
        self.stats.injected_messages += 1;
        if port == Port::Local {
            self.awaiting_ejection += 1;
            self.stats.delivered_messages += 1;
            self.stats.delivered_flits += flits as u64;
            self.note_delivery(src);
        } else {
            self.in_flight_messages += 1;
        }
        let router = &mut self.routers[src];
        router.buffer_mut(port, channel).push(queued);
        router.note_push();
        self.mark_active(src);
        Ok(())
    }

    fn mark_active(&mut self, tile: TileId) {
        if !self.active[tile] {
            self.active[tile] = true;
            self.active_list.push(tile);
        }
    }

    /// Pops the next delivered message at `tile`, searching channels in
    /// round-robin order. Returns `None` when the ejection buffers are
    /// empty.
    pub fn pop_delivered(&mut self, tile: TileId) -> Option<Message> {
        for channel in 0..self.config.channels {
            if let Some(message) = self.pop_delivered_on(tile, channel) {
                return Some(message);
            }
        }
        None
    }

    /// Pops the next delivered message at `tile` on a specific channel.
    pub fn pop_delivered_on(&mut self, tile: TileId, channel: ChannelId) -> Option<Message> {
        let router = &mut self.routers[tile];
        let buffer = router.buffer_mut(Port::Local, channel);
        if buffer.is_empty() {
            return None;
        }
        let queued = buffer.pop().expect("checked non-empty");
        router.note_pop();
        self.awaiting_ejection -= 1;
        Some(queued.message)
    }

    /// Peeks at the next delivered message at `tile` on `channel` without
    /// removing it.
    pub fn peek_delivered_on(&self, tile: TileId, channel: ChannelId) -> Option<&Message> {
        let buffer = self.routers[tile].buffer(Port::Local, channel);
        buffer.front().map(|q| &q.message)
    }

    /// Number of flits waiting in `tile`'s ejection buffer for `channel`.
    pub fn ejection_occupancy(&self, tile: TileId, channel: ChannelId) -> usize {
        self.routers[tile].buffer(Port::Local, channel).occupied_flits()
    }

    /// Advances the network by one cycle: every output link that is free and
    /// has a ready message whose downstream buffer can accept it forwards
    /// that message one hop.
    pub fn cycle(&mut self) {
        let now = self.cycle;
        // Snapshot the active list; routers whose buffers empty out are
        // dropped from it, and routers that receive messages are re-added.
        let snapshot: Vec<TileId> = std::mem::take(&mut self.active_list);
        let mut still_active: Vec<TileId> = Vec::with_capacity(snapshot.len());
        for tile in snapshot {
            self.active[tile] = false;
            self.cycle_router(tile, now);
            if self.routers[tile].buffered_messages() > 0 && !self.active[tile] {
                self.active[tile] = true;
                still_active.push(tile);
            }
        }
        self.active_list.extend(still_active);
        self.cycle += 1;
        self.stats.cycles = self.cycle;
    }

    fn cycle_router(&mut self, tile: TileId, now: u64) {
        for port in Port::ALL {
            if port == Port::Local {
                continue;
            }
            if self.routers[tile].link_busy_until(port) > now {
                self.account_busy(tile, now, now + 1);
                continue;
            }
            self.try_forward(tile, port, now);
        }
    }

    /// Attempts to forward one message from (tile, port); implements
    /// round-robin channel arbitration at the output port.
    fn try_forward(&mut self, tile: TileId, port: Port, now: u64) {
        let channels = self.config.channels;
        let start_channel = self.routers[tile].rr_channel(port);
        for offset in 0..channels {
            let channel = (start_channel + offset) % channels;
            let Some((flits, dest)) = self.forwardable_message(tile, port, channel, now) else {
                continue;
            };
            // Where does this link lead, and which buffer does the message
            // occupy there?
            let hop = self
                .grid
                .next_hop(tile, dest)
                .expect("a buffered message never sits at its destination's non-local port");
            debug_assert_eq!(hop.port, port);
            let next_tile = hop.next;
            let (next_port, entering) = self.routed_port(next_tile, dest, port_dimension(port));
            let bubble = flits;
            if !self.routers[next_tile].can_accept(next_port, channel, flits, entering, bubble) {
                continue;
            }

            // Commit the transfer.
            let queued = self.routers[tile]
                .buffer_mut(port, channel)
                .pop()
                .expect("forwardable message exists");
            self.routers[tile].note_pop();
            let serialization = flits as u64;
            self.routers[tile].set_link_busy_until(port, now + serialization);
            self.routers[tile].flits_per_port[port.index()] += flits as u64;
            self.account_busy(tile, now, now + serialization);

            self.stats.flit_hops += flits as u64;
            self.stats.flit_tile_spans +=
                flits as f64 * self.config.topology.hop_wire_tiles(port.hop_kind());

            let arriving = QueuedMessage {
                ready_at: now + serialization,
                message: queued.message,
            };
            if next_port == Port::Local {
                self.in_flight_messages -= 1;
                self.awaiting_ejection += 1;
                self.stats.delivered_messages += 1;
                self.stats.delivered_flits += flits as u64;
                self.stats.total_latency_cycles +=
                    now + serialization - arriving.message.injected_at;
                self.note_delivery(next_tile);
            }
            self.routers[next_tile]
                .buffer_mut(next_port, channel)
                .push(arriving);
            self.routers[next_tile].note_push();
            self.mark_active(next_tile);
            self.routers[tile].advance_rr(port, channels);
            return;
        }
    }

    /// Returns `(flits, dest)` of the head message on (tile, port, channel)
    /// if it is ready to move this cycle.
    fn forwardable_message(
        &self,
        tile: TileId,
        port: Port,
        channel: ChannelId,
        now: u64,
    ) -> Option<(usize, TileId)> {
        let buffer = self.routers[tile].buffer(port, channel);
        let queued = buffer.front()?;
        if queued.ready_at > now {
            return None;
        }
        Some((queued.message.len(), queued.message.dest()))
    }

    /// Accounts busy cycles for a router as the union of its ports' link
    /// activity intervals.
    fn account_busy(&mut self, tile: TileId, from: u64, until: u64) {
        let covered = &mut self.busy_covered_until[tile];
        let start = from.max(*covered);
        if until > start {
            self.routers[tile].busy_cycles += until - start;
            *covered = until;
        }
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Per-router utilization (fraction of simulated cycles each router was
    /// forwarding at least one flit), as a heatmap grid.
    pub fn router_utilization(&self) -> UtilizationGrid {
        let cycles = self.cycle.max(1) as f64;
        let values = self
            .routers
            .iter()
            .map(|r| (r.busy_cycles as f64 / cycles).min(1.0))
            .collect();
        UtilizationGrid::new(
            self.config.shape.width(),
            self.config.shape.height(),
            values,
        )
    }

    /// Flits forwarded by every router (row-major), a contention proxy used
    /// by tests.
    pub fn flits_per_router(&self) -> Vec<u64> {
        self.routers
            .iter()
            .map(|r| r.flits_per_port.iter().sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::GridShape;
    use crate::Topology;

    fn small_net(topology: Topology) -> Network {
        Network::new(NocConfig::new(GridShape::new(4, 4), topology))
    }

    fn run_until_idle(net: &mut Network, max_cycles: u64) {
        let mut cycles = 0;
        while net.in_flight() > 0 {
            net.cycle();
            cycles += 1;
            assert!(cycles < max_cycles, "network did not drain");
        }
    }

    #[test]
    fn single_message_is_delivered_intact() {
        for topology in [
            Topology::Mesh,
            Topology::Torus,
            Topology::TorusRuche { factor: 2 },
        ] {
            let mut net = small_net(topology);
            net.try_inject(0, Message::new(15, 1, vec![10, 20, 30])).unwrap();
            run_until_idle(&mut net, 1000);
            let msg = net.pop_delivered(15).expect("delivered");
            assert_eq!(msg.payload(), &[10, 20, 30]);
            assert_eq!(msg.channel(), 1);
            assert!(net.pop_delivered(15).is_none());
            assert!(net.is_idle());
        }
    }

    #[test]
    fn self_message_goes_to_ejection_buffer() {
        let mut net = small_net(Topology::Torus);
        net.try_inject(5, Message::new(5, 0, vec![99])).unwrap();
        assert_eq!(net.awaiting_ejection(), 1);
        let msg = net.pop_delivered(5).unwrap();
        assert_eq!(msg.payload(), &[99]);
        assert!(net.is_idle());
    }

    #[test]
    fn rejects_bad_addresses_and_channels() {
        let mut net = small_net(Topology::Mesh);
        let err = net.try_inject(99, Message::new(0, 0, vec![1])).unwrap_err();
        assert!(matches!(err.error, NocError::TileOutOfRange { .. }));
        let err = net.try_inject(0, Message::new(99, 0, vec![1])).unwrap_err();
        assert!(matches!(err.error, NocError::TileOutOfRange { .. }));
        let err = net.try_inject(0, Message::new(1, 9, vec![1])).unwrap_err();
        assert!(matches!(err.error, NocError::ChannelOutOfRange { .. }));
        // The rejected message is handed back intact.
        assert_eq!(err.message.payload(), &[1]);
    }

    #[test]
    fn rejects_oversized_messages() {
        let mut net = Network::new(
            NocConfig::new(GridShape::new(2, 2), Topology::Mesh).with_buffer_flits(4),
        );
        let err = net
            .try_inject(0, Message::new(3, 0, vec![0; 4]))
            .unwrap_err();
        assert!(matches!(err.error, NocError::MessageTooLong { .. }));
    }

    #[test]
    fn backpressure_when_buffers_full() {
        let mut net = Network::new(
            NocConfig::new(GridShape::new(2, 1), Topology::Mesh)
                .with_channels(1)
                .with_buffer_flits(8),
        );
        // Each message is 3 flits + 3 bubble slack = 6; the second one needs
        // another 3 + bubble which no longer fits an 8-flit buffer.
        net.try_inject(0, Message::new(1, 0, vec![1, 2, 3])).unwrap();
        let err = net.try_inject(0, Message::new(1, 0, vec![4, 5, 6])).unwrap_err();
        assert!(matches!(err.error, NocError::InjectionBackpressure));
        assert_eq!(net.stats().injection_backpressure_events, 1);
        // After the network drains, injection succeeds again.
        run_until_idle(&mut net, 100);
        net.pop_delivered(1).unwrap();
        net.try_inject(0, err.message).unwrap();
    }

    #[test]
    fn many_messages_all_arrive_exactly_once() {
        let mut net = small_net(Topology::Torus);
        let mut expected = vec![0u32; 16];
        let mut pending = Vec::new();
        for src in 0..16usize {
            for (dst, count) in expected.iter_mut().enumerate() {
                let payload = vec![(src * 16 + dst) as u32, 7];
                pending.push((src, Message::new(dst, src % 4, payload)));
                *count += 1;
            }
        }
        // Inject with retry-on-backpressure, interleaved with cycles.
        let mut guard = 0;
        while !pending.is_empty() {
            let mut retry = Vec::new();
            for (src, msg) in pending.drain(..) {
                if let Err(rejected) = net.try_inject(src, msg) {
                    assert!(matches!(rejected.error, NocError::InjectionBackpressure));
                    retry.push((src, rejected.message));
                }
            }
            pending = retry;
            net.cycle();
            guard += 1;
            assert!(guard < 10_000, "injection never completed");
        }
        run_until_idle(&mut net, 10_000);
        let mut received = vec![0u32; 16];
        for (tile, count) in received.iter_mut().enumerate() {
            while let Some(msg) = net.pop_delivered(tile) {
                assert_eq!(msg.dest(), tile);
                *count += 1;
            }
        }
        assert_eq!(received, expected);
        assert_eq!(net.stats().delivered_messages, 256);
        assert_eq!(net.stats().injected_messages, 256);
    }

    #[test]
    fn torus_uses_fewer_flit_hops_than_mesh_for_uniform_traffic() {
        let mut totals = Vec::new();
        for topology in [Topology::Mesh, Topology::Torus] {
            let mut net = Network::new(NocConfig::new(GridShape::new(8, 8), topology));
            for src in 0..64usize {
                let dst = (src + 37) % 64;
                while net.try_inject(src, Message::new(dst, 0, vec![1, 2])).is_err() {
                    net.cycle();
                }
            }
            run_until_idle(&mut net, 100_000);
            totals.push(net.stats().flit_hops);
        }
        assert!(
            totals[1] < totals[0],
            "torus hops {} not below mesh hops {}",
            totals[1],
            totals[0]
        );
    }

    #[test]
    fn mesh_concentrates_utilization_more_than_torus() {
        // Miniature of Figure 10: with all-to-all style traffic the mesh's
        // centre routers are busier than its edge routers, while the torus
        // spreads the load.
        let mut variations = Vec::new();
        for topology in [Topology::Mesh, Topology::Torus] {
            let mut net = Network::new(NocConfig::new(GridShape::new(8, 8), topology));
            let mut pending: Vec<(usize, Message)> = Vec::new();
            for src in 0..64usize {
                for k in 1..8usize {
                    let dst = (src * 13 + k * 29) % 64;
                    if dst != src {
                        pending.push((src, Message::new(dst, 0, vec![1, 2])));
                    }
                }
            }
            let mut guard = 0;
            while !pending.is_empty() {
                let mut retry = Vec::new();
                for (src, msg) in pending.drain(..) {
                    if let Err(r) = net.try_inject(src, msg) {
                        retry.push((src, r.message));
                    }
                }
                pending = retry;
                net.cycle();
                guard += 1;
                assert!(guard < 100_000);
            }
            run_until_idle(&mut net, 100_000);
            for tile in 0..64 {
                while net.pop_delivered(tile).is_some() {}
            }
            variations.push(net.router_utilization().variation());
        }
        assert!(
            variations[0] > variations[1],
            "mesh variation {} should exceed torus variation {}",
            variations[0],
            variations[1]
        );
    }

    #[test]
    fn latency_statistics_are_positive_after_traffic() {
        let mut net = small_net(Topology::Mesh);
        net.try_inject(0, Message::new(15, 0, vec![1, 2, 3])).unwrap();
        run_until_idle(&mut net, 1000);
        assert!(net.stats().average_latency() > 0.0);
        assert!(net.stats().average_hops_per_flit() >= 1.0);
        assert_eq!(net.stats().delivered_flits, 3);
    }

    #[test]
    fn ejection_occupancy_reports_waiting_flits() {
        let mut net = small_net(Topology::Torus);
        net.try_inject(3, Message::new(3, 2, vec![5, 6])).unwrap();
        assert_eq!(net.ejection_occupancy(3, 2), 2);
        assert_eq!(net.ejection_occupancy(3, 0), 0);
        assert_eq!(net.peek_delivered_on(3, 2).unwrap().payload(), &[5, 6]);
        net.pop_delivered_on(3, 2).unwrap();
        assert_eq!(net.ejection_occupancy(3, 2), 0);
    }

    #[test]
    fn delivery_events_report_each_destination_once() {
        let mut net = small_net(Topology::Torus);
        net.try_inject(0, Message::new(9, 0, vec![1])).unwrap();
        net.try_inject(0, Message::new(9, 1, vec![2])).unwrap();
        net.try_inject(1, Message::new(1, 0, vec![3])).unwrap();
        run_until_idle(&mut net, 1000);
        let mut events = net.take_delivery_events();
        events.sort_unstable();
        assert_eq!(events, vec![1, 9]);
        // Events are cleared after being taken.
        assert!(net.take_delivery_events().is_empty());
    }

    #[test]
    fn single_tile_grid_delivers_locally() {
        let mut net = Network::new(NocConfig::new(GridShape::new(1, 1), Topology::Mesh));
        assert!(net.can_inject(0, 0, 2));
        net.try_inject(0, Message::new(0, 0, vec![1, 2])).unwrap();
        assert_eq!(net.pop_delivered(0).unwrap().payload(), &[1, 2]);
    }
}
