//! Network statistics: traffic counters, latency, and utilization heatmaps.
//!
//! These feed two consumers: the energy model in `dalorex-sim` (flit-hops
//! and flit wire-length determine network energy, Section IV-A) and the
//! Figure 10 heatmaps of router utilization.

/// Aggregate traffic counters for a network run.
///
/// Equality deliberately ignores the three `walk_*` scheduler-efficiency
/// counters: they measure simulator work (how many routers a cycle's walk
/// touched), which legitimately differs between router schedulers whose
/// *modeled* schedules are bit-identical.  The equivalence suites compare
/// whole `NocStats` values across engines and schedulers, so the manual
/// `PartialEq` below keeps that contract about the modeled schedule only.
#[derive(Debug, Clone, Default)]
pub struct NocStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Messages injected into the network.
    pub injected_messages: u64,
    /// Messages delivered to their destination tile.
    pub delivered_messages: u64,
    /// Total flits delivered (sum of delivered message lengths).
    pub delivered_flits: u64,
    /// Total flit-hops: each flit crossing each link counts once.
    pub flit_hops: u64,
    /// Total flit wire length in units of the tile pitch (multiply by the
    /// physical tile pitch in millimetres to obtain flit-mm for the energy
    /// model).
    pub flit_tile_spans: f64,
    /// Sum over delivered messages of (delivery cycle − injection cycle).
    pub total_latency_cycles: u64,
    /// Number of injection attempts rejected by back-pressure.
    pub injection_backpressure_events: u64,
    /// Back-pressure rejections per source tile (row-major, sized by the
    /// network at construction).  `try_inject` returning the message to the
    /// caller used to be the only trace a rejection left; this counter
    /// attributes every rejected attempt to the tile that suffered it so
    /// sweeps can report where endpoint stalls concentrate.
    pub injection_rejections_per_tile: Vec<u64>,
    /// Routers the per-cycle walk *visited* (list elements read, or heap
    /// entries processed under the due-only walk), summed over all cycles.
    /// A simulator-efficiency counter, excluded from equality.
    pub walk_routers_visited: u64,
    /// Routers the per-cycle walk actually *port-scanned*, summed over all
    /// cycles.  Under the scan scheduler this equals
    /// [`NocStats::walk_routers_visited`]; under the calendar schedulers
    /// the gap between the two is the work the due stamps saved.
    pub walk_routers_scanned: u64,
    /// Cycles whose walk was elided entirely (the calendar fast path: no
    /// router due and no membership change pending).
    pub walks_elided: u64,
}

impl PartialEq for NocStats {
    fn eq(&self, other: &Self) -> bool {
        self.cycles == other.cycles
            && self.injected_messages == other.injected_messages
            && self.delivered_messages == other.delivered_messages
            && self.delivered_flits == other.delivered_flits
            && self.flit_hops == other.flit_hops
            && self.flit_tile_spans == other.flit_tile_spans
            && self.total_latency_cycles == other.total_latency_cycles
            && self.injection_backpressure_events == other.injection_backpressure_events
            && self.injection_rejections_per_tile == other.injection_rejections_per_tile
    }
}

impl NocStats {
    /// Average end-to-end latency in cycles per delivered message.
    pub fn average_latency(&self) -> f64 {
        if self.delivered_messages == 0 {
            0.0
        } else {
            self.total_latency_cycles as f64 / self.delivered_messages as f64
        }
    }

    /// Average hops travelled per delivered flit.
    pub fn average_hops_per_flit(&self) -> f64 {
        if self.delivered_flits == 0 {
            0.0
        } else {
            self.flit_hops as f64 / self.delivered_flits as f64
        }
    }

    /// Delivered messages per cycle (network throughput).
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.delivered_messages as f64 / self.cycles as f64
        }
    }

    /// Total back-pressure rejections across all tiles (the sum of
    /// [`NocStats::injection_rejections_per_tile`]).
    pub fn total_injection_rejections(&self) -> u64 {
        self.injection_rejections_per_tile.iter().sum()
    }
}

/// Per-router utilization snapshot (the data behind the paper's Figure 10
/// router heatmap).
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationGrid {
    width: usize,
    height: usize,
    /// Fraction of simulated cycles each router spent forwarding at least
    /// one flit, row-major.
    values: Vec<f64>,
}

impl UtilizationGrid {
    /// Builds a grid from row-major per-router values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != width * height`.
    pub fn new(width: usize, height: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), width * height, "grid size mismatch");
        UtilizationGrid {
            width,
            height,
            values,
        }
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Utilization of the router at `(x, y)`, in `[0, 1]`.
    pub fn at(&self, x: usize, y: usize) -> f64 {
        self.values[y * self.width + x]
    }

    /// Row-major values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mean utilization across all routers.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Maximum utilization across all routers.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Coefficient of variation of the utilization (std-dev / mean).  The
    /// paper's mesh-vs-torus heatmaps differ exactly here: the mesh
    /// concentrates traffic toward the centre (high variation) while the
    /// torus is uniform (low variation).
    pub fn variation(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 || self.values.is_empty() {
            return 0.0;
        }
        let variance = self
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.values.len() as f64;
        variance.sqrt() / mean
    }

    /// Renders the grid as an ASCII heatmap (one row per line, `0`–`9`
    /// intensity buckets), used by the Figure 10 binary.
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        for y in 0..self.height {
            for x in 0..self.width {
                let bucket = (self.at(x, y) * 9.999).floor().clamp(0.0, 9.0) as u8;
                out.push(char::from(b'0' + bucket));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_averages_handle_zero_denominators() {
        let stats = NocStats::default();
        assert_eq!(stats.average_latency(), 0.0);
        assert_eq!(stats.average_hops_per_flit(), 0.0);
        assert_eq!(stats.throughput(), 0.0);
    }

    #[test]
    fn stats_averages_compute() {
        let stats = NocStats {
            cycles: 100,
            injected_messages: 10,
            delivered_messages: 10,
            delivered_flits: 30,
            flit_hops: 90,
            flit_tile_spans: 90.0,
            total_latency_cycles: 200,
            injection_backpressure_events: 0,
            injection_rejections_per_tile: vec![0, 3, 1, 0],
            ..NocStats::default()
        };
        assert_eq!(stats.average_latency(), 20.0);
        assert_eq!(stats.average_hops_per_flit(), 3.0);
        assert!((stats.throughput() - 0.1).abs() < 1e-12);
        assert_eq!(stats.total_injection_rejections(), 4);
        assert_eq!(NocStats::default().total_injection_rejections(), 0);
    }

    #[test]
    fn equality_ignores_walk_efficiency_counters() {
        // The walk counters measure simulator work, not modeled schedule;
        // two runs whose schedulers did different amounts of walking must
        // still compare equal when their schedules match.
        let a = NocStats::default();
        let b = NocStats {
            walk_routers_visited: 7,
            walk_routers_scanned: 3,
            walks_elided: 9,
            ..NocStats::default()
        };
        assert_eq!(a, b);
        let c = NocStats {
            cycles: 1,
            ..NocStats::default()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn utilization_grid_statistics() {
        let grid = UtilizationGrid::new(2, 2, vec![0.2, 0.4, 0.6, 0.8]);
        assert_eq!(grid.at(0, 0), 0.2);
        assert_eq!(grid.at(1, 1), 0.8);
        assert!((grid.mean() - 0.5).abs() < 1e-12);
        assert_eq!(grid.max(), 0.8);
        assert!(grid.variation() > 0.0);
    }

    #[test]
    fn uniform_grid_has_zero_variation() {
        let grid = UtilizationGrid::new(2, 2, vec![0.5; 4]);
        assert_eq!(grid.variation(), 0.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn grid_rejects_wrong_length() {
        let _ = UtilizationGrid::new(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn ascii_heatmap_has_one_row_per_line() {
        let grid = UtilizationGrid::new(3, 2, vec![0.0, 0.5, 1.0, 0.1, 0.9, 0.3]);
        let ascii = grid.to_ascii();
        let lines: Vec<&str> = ascii.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 3);
        assert!(lines[0].starts_with('0'));
    }
}
