//! Grid geometry, topologies and dimension-ordered routing.
//!
//! The paper evaluates a 2D mesh, a 2D torus (the Dalorex default up to
//! 32x32 tiles) and a torus with *ruche channels* — long physical wires that
//! let a router reach the router `R` tiles away in one hop, increasing
//! bisection bandwidth by `(R-1)x` over the underlying network (Section
//! III-F).  Routing is dimension-ordered (X first, then Y) wormhole routing;
//! the torus picks the shorter wrap direction per dimension.

use crate::TileId;

/// Dimensions of the tile grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridShape {
    width: usize,
    height: usize,
}

impl GridShape {
    /// Creates a `width x height` grid shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be non-zero");
        GridShape { width, height }
    }

    /// Creates a square grid of `side x side` tiles.
    pub fn square(side: usize) -> Self {
        GridShape::new(side, side)
    }

    /// Grid width (tiles in the X dimension).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height (tiles in the Y dimension).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.width * self.height
    }

    /// `(x, y)` coordinates of a tile id (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn coords(&self, tile: TileId) -> (usize, usize) {
        assert!(tile < self.num_tiles(), "tile {tile} out of range");
        (tile % self.width, tile / self.width)
    }

    /// Tile id of `(x, y)` coordinates (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn tile_at(&self, x: usize, y: usize) -> TileId {
        assert!(x < self.width && y < self.height, "coords out of range");
        y * self.width + x
    }
}

/// Physical NoC topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// 2D mesh: links only between adjacent tiles, no wraparound.
    Mesh,
    /// 2D torus: adjacent links plus wraparound links in both dimensions.
    /// The paper's default for grids up to 32x32.
    Torus,
    /// 2D torus augmented with ruche channels of the given factor: every
    /// router also has a direct link to the router `factor` tiles away in
    /// each direction. The paper uses this for grids larger than 32x32.
    TorusRuche {
        /// Ruche factor `R >= 2`: length, in tiles, of the express links.
        factor: usize,
    },
}

impl Topology {
    /// Human-readable name used in figure output ("Mesh", "Torus",
    /// "Torus-Ruche").
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Mesh => "Mesh",
            Topology::Torus => "Torus",
            Topology::TorusRuche { .. } => "Torus-Ruche",
        }
    }

    /// Whether the topology has wraparound links.
    pub fn has_wraparound(&self) -> bool {
        !matches!(self, Topology::Mesh)
    }

    /// The ruche factor, or `None` for plain mesh/torus.
    pub fn ruche_factor(&self) -> Option<usize> {
        match self {
            Topology::TorusRuche { factor } => Some(*factor),
            _ => None,
        }
    }

    /// Physical wire length of one hop, in units of the tile pitch.
    ///
    /// The paper notes a torus "can be fabricated with nearly equidistant
    /// wires by having consecutive logical tiles at a distance of two in the
    /// silicon", so torus hops cost twice the mesh wire length; ruche hops
    /// span `factor` tile pitches.  Used by the energy model (pJ per flit
    /// per mm).
    pub fn hop_wire_tiles(&self, hop: HopKind) -> f64 {
        match (self, hop) {
            (Topology::Mesh, _) => 1.0,
            (Topology::Torus, _) => 2.0,
            (Topology::TorusRuche { .. }, HopKind::Regular) => 2.0,
            (Topology::TorusRuche { factor }, HopKind::Ruche) => *factor as f64 * 2.0,
        }
    }

    /// Relative bisection bandwidth versus a mesh of the same width
    /// (mesh = 1.0; torus doubles it; a full ruche network of factor `R`
    /// adds `(R-1)x` on top of the underlying torus, per Section III-F).
    pub fn relative_bisection_bandwidth(&self) -> f64 {
        match self {
            Topology::Mesh => 1.0,
            Topology::Torus => 2.0,
            Topology::TorusRuche { factor } => 2.0 * (*factor as f64 - 1.0).max(1.0) + 2.0,
        }
    }

    /// Relative router + link area versus a mesh of the same size.
    /// "A 32-bit 2D torus is 50% bigger than a 2D mesh"; the ruche-torus
    /// "uses more than twice the area of a regular torus" (Section V-C).
    pub fn relative_area(&self) -> f64 {
        match self {
            Topology::Mesh => 1.0,
            Topology::Torus => 1.5,
            Topology::TorusRuche { .. } => 3.2,
        }
    }
}

/// Whether a hop used a regular link or a ruche (express) link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HopKind {
    /// Nearest-neighbour (or wraparound) link.
    Regular,
    /// Ruche express link spanning `factor` tiles.
    Ruche,
}

/// An output port of a router.
///
/// `RucheEast`/... are only present when the topology has ruche channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// Toward increasing X.
    East,
    /// Toward decreasing X.
    West,
    /// Toward increasing Y.
    North,
    /// Toward decreasing Y.
    South,
    /// Express link toward increasing X (ruche).
    RucheEast,
    /// Express link toward decreasing X (ruche).
    RucheWest,
    /// Express link toward increasing Y (ruche).
    RucheNorth,
    /// Express link toward decreasing Y (ruche).
    RucheSouth,
    /// Ejection into the local tile (TSU).
    Local,
}

impl Port {
    /// All ports, in a fixed order (used to size per-port arrays).
    pub const ALL: [Port; 9] = [
        Port::East,
        Port::West,
        Port::North,
        Port::South,
        Port::RucheEast,
        Port::RucheWest,
        Port::RucheNorth,
        Port::RucheSouth,
        Port::Local,
    ];

    /// Index of this port within [`Port::ALL`].
    pub fn index(self) -> usize {
        match self {
            Port::East => 0,
            Port::West => 1,
            Port::North => 2,
            Port::South => 3,
            Port::RucheEast => 4,
            Port::RucheWest => 5,
            Port::RucheNorth => 6,
            Port::RucheSouth => 7,
            Port::Local => 8,
        }
    }

    /// Whether this is a ruche express port.
    pub fn is_ruche(self) -> bool {
        matches!(
            self,
            Port::RucheEast | Port::RucheWest | Port::RucheNorth | Port::RucheSouth
        )
    }

    /// The hop kind of traversing this port.
    pub fn hop_kind(self) -> HopKind {
        if self.is_ruche() {
            HopKind::Ruche
        } else {
            HopKind::Regular
        }
    }
}

/// A routing decision: which output port to take, and which tile the link
/// leads to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Output port to use at the current router.
    pub port: Port,
    /// Tile on the other end of that link.
    pub next: TileId,
}

/// Routing geometry for a (shape, topology) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingGrid {
    shape: GridShape,
    topology: Topology,
}

impl RoutingGrid {
    /// Creates the routing geometry for a grid and topology.
    pub fn new(shape: GridShape, topology: Topology) -> Self {
        RoutingGrid { shape, topology }
    }

    /// The grid shape.
    pub fn shape(&self) -> GridShape {
        self.shape
    }

    /// The topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Signed distance to travel in one dimension, given the topology.
    ///
    /// For a mesh this is simply `to - from`; for a torus it is the shorter
    /// way around the ring (ties broken toward the positive direction).
    fn dimension_delta(&self, from: usize, to: usize, extent: usize) -> isize {
        let direct = to as isize - from as isize;
        if !self.topology.has_wraparound() || extent <= 2 {
            return direct;
        }
        let wrap = if direct > 0 {
            direct - extent as isize
        } else {
            direct + extent as isize
        };
        if wrap.abs() < direct.abs() {
            wrap
        } else {
            direct
        }
    }

    /// Computes the dimension-ordered (X then Y) next hop from `current`
    /// toward `dest`, or `None` if `current == dest` (the message ejects to
    /// the local port).
    ///
    /// With ruche channels, the router takes the express link whenever the
    /// remaining distance in the dimension is at least the ruche factor
    /// (express links never overshoot).
    ///
    /// # Panics
    ///
    /// Panics if either tile is out of range.
    pub fn next_hop(&self, current: TileId, dest: TileId) -> Option<Hop> {
        if current == dest {
            return None;
        }
        Some(self.next_hop_from(self.shape.coords(current), self.shape.coords(dest)))
    }

    /// [`RoutingGrid::next_hop`] with both tiles' coordinates already in
    /// hand.  Hot callers (the network's per-candidate routing) cache the
    /// row-major→`(x, y)` conversion, so this entry point skips the two
    /// divisions `next_hop` would redo.
    ///
    /// The caller guarantees `current != dest`.
    #[inline]
    pub fn next_hop_from(&self, current: (usize, usize), dest: (usize, usize)) -> Hop {
        let (cx, cy) = current;
        let (dx_coord, dy_coord) = dest;
        debug_assert!(current != dest, "next_hop_from requires distinct tiles");
        let delta_x = self.dimension_delta(cx, dx_coord, self.shape.width);
        let delta_y = self.dimension_delta(cy, dy_coord, self.shape.height);

        if delta_x != 0 {
            self.hop_in_x(cx, cy, delta_x)
        } else {
            self.hop_in_y(cx, cy, delta_y)
        }
    }

    fn hop_in_x(&self, cx: usize, cy: usize, delta: isize) -> Hop {
        let width = self.shape.width;
        let ruche = self.topology.ruche_factor().filter(|&r| delta.unsigned_abs() >= r);
        let (port, step) = match (delta > 0, ruche) {
            (true, Some(r)) => (Port::RucheEast, r as isize),
            (true, None) => (Port::East, 1),
            (false, Some(r)) => (Port::RucheWest, -(r as isize)),
            (false, None) => (Port::West, -1),
        };
        let nx = (cx as isize + step).rem_euclid(width as isize) as usize;
        Hop {
            port,
            next: self.shape.tile_at(nx, cy),
        }
    }

    fn hop_in_y(&self, cx: usize, cy: usize, delta: isize) -> Hop {
        let height = self.shape.height;
        let ruche = self.topology.ruche_factor().filter(|&r| delta.unsigned_abs() >= r);
        let (port, step) = match (delta > 0, ruche) {
            (true, Some(r)) => (Port::RucheNorth, r as isize),
            (true, None) => (Port::North, 1),
            (false, Some(r)) => (Port::RucheSouth, -(r as isize)),
            (false, None) => (Port::South, -1),
        };
        let ny = (cy as isize + step).rem_euclid(height as isize) as usize;
        Hop {
            port,
            next: self.shape.tile_at(cx, ny),
        }
    }

    /// Number of hops a message from `src` to `dest` will take under
    /// dimension-ordered routing with this topology.
    pub fn hop_count(&self, src: TileId, dest: TileId) -> usize {
        let mut hops = 0;
        let mut current = src;
        while let Some(hop) = self.next_hop(current, dest) {
            current = hop.next;
            hops += 1;
            debug_assert!(hops <= 4 * (self.shape.width + self.shape.height));
        }
        hops
    }

    /// Whether the mesh topology would route this hop through the grid
    /// centre region (used only by tests to sanity-check the contention
    /// claim behind Figure 10).
    pub fn average_hop_count(&self) -> f64 {
        // Analytic averages: mesh ~ (W+H)/3, torus ~ (W+H)/4.
        let w = self.shape.width as f64;
        let h = self.shape.height as f64;
        match self.topology {
            Topology::Mesh => (w + h) / 3.0,
            Topology::Torus => (w + h) / 4.0,
            Topology::TorusRuche { factor } => (w + h) / 4.0 / (factor as f64 / 2.0).max(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_coords_round_trip() {
        let shape = GridShape::new(4, 3);
        for tile in 0..shape.num_tiles() {
            let (x, y) = shape.coords(tile);
            assert_eq!(shape.tile_at(x, y), tile);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn shape_rejects_zero_dimension() {
        let _ = GridShape::new(0, 4);
    }

    #[test]
    fn mesh_routes_x_then_y() {
        let grid = RoutingGrid::new(GridShape::new(4, 4), Topology::Mesh);
        // From (0,0) to (2,2): two east hops then two north hops.
        let mut current = 0;
        let dest = grid.shape().tile_at(2, 2);
        let mut ports = Vec::new();
        while let Some(hop) = grid.next_hop(current, dest) {
            ports.push(hop.port);
            current = hop.next;
        }
        assert_eq!(
            ports,
            vec![Port::East, Port::East, Port::North, Port::North]
        );
    }

    #[test]
    fn torus_takes_wraparound_when_shorter() {
        let grid = RoutingGrid::new(GridShape::new(8, 8), Topology::Torus);
        // From (0,0) to (7,0): one west wraparound hop instead of 7 east.
        let dest = grid.shape().tile_at(7, 0);
        let hop = grid.next_hop(0, dest).unwrap();
        assert_eq!(hop.port, Port::West);
        assert_eq!(hop.next, dest);
        assert_eq!(grid.hop_count(0, dest), 1);
    }

    #[test]
    fn mesh_never_wraps() {
        let grid = RoutingGrid::new(GridShape::new(8, 8), Topology::Mesh);
        let dest = grid.shape().tile_at(7, 0);
        assert_eq!(grid.hop_count(0, dest), 7);
    }

    #[test]
    fn torus_halves_worst_case_hops_vs_mesh() {
        let shape = GridShape::new(8, 8);
        let mesh = RoutingGrid::new(shape, Topology::Mesh);
        let torus = RoutingGrid::new(shape, Topology::Torus);
        let far = shape.tile_at(7, 7);
        assert_eq!(mesh.hop_count(0, far), 14);
        assert_eq!(torus.hop_count(0, far), 2);
    }

    #[test]
    fn ruche_links_cut_hop_count() {
        let shape = GridShape::new(16, 16);
        let torus = RoutingGrid::new(shape, Topology::Torus);
        let ruche = RoutingGrid::new(shape, Topology::TorusRuche { factor: 4 });
        let dest = shape.tile_at(7, 0);
        assert_eq!(torus.hop_count(0, dest), 7);
        // 7 = 4 + 1 + 1 + 1 -> one ruche hop + three regular hops.
        assert_eq!(ruche.hop_count(0, dest), 4);
    }

    #[test]
    fn ruche_never_overshoots() {
        let shape = GridShape::new(16, 16);
        let ruche = RoutingGrid::new(shape, Topology::TorusRuche { factor: 4 });
        for dest in 0..shape.num_tiles() {
            // Routing must always terminate (the debug_assert in hop_count
            // catches livelock).
            let _ = ruche.hop_count(5, dest);
        }
    }

    #[test]
    fn routing_reaches_destination_for_all_pairs_small_grid() {
        for topology in [
            Topology::Mesh,
            Topology::Torus,
            Topology::TorusRuche { factor: 2 },
        ] {
            let shape = GridShape::new(5, 4);
            let grid = RoutingGrid::new(shape, topology);
            for src in 0..shape.num_tiles() {
                for dest in 0..shape.num_tiles() {
                    let mut current = src;
                    let mut steps = 0;
                    while let Some(hop) = grid.next_hop(current, dest) {
                        current = hop.next;
                        steps += 1;
                        assert!(steps < 64, "routing loop for {src}->{dest} on {topology:?}");
                    }
                    assert_eq!(current, dest);
                }
            }
        }
    }

    #[test]
    fn bisection_bandwidth_ordering_matches_paper() {
        let mesh = Topology::Mesh.relative_bisection_bandwidth();
        let torus = Topology::Torus.relative_bisection_bandwidth();
        let ruche = Topology::TorusRuche { factor: 4 }.relative_bisection_bandwidth();
        assert!(torus > mesh);
        assert!(ruche > torus);
        assert_eq!(torus, 2.0 * mesh);
    }

    #[test]
    fn area_ordering_matches_paper() {
        assert!(Topology::Torus.relative_area() > Topology::Mesh.relative_area());
        assert!(
            Topology::TorusRuche { factor: 4 }.relative_area()
                > 2.0 * Topology::Torus.relative_area()
        );
    }

    #[test]
    fn wire_lengths_follow_folded_layout() {
        assert_eq!(Topology::Mesh.hop_wire_tiles(HopKind::Regular), 1.0);
        assert_eq!(Topology::Torus.hop_wire_tiles(HopKind::Regular), 2.0);
        assert_eq!(
            Topology::TorusRuche { factor: 4 }.hop_wire_tiles(HopKind::Ruche),
            8.0
        );
    }

    #[test]
    fn port_indices_are_unique_and_dense() {
        let mut seen = [false; 9];
        for port in Port::ALL {
            assert!(!seen[port.index()]);
            seen[port.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn average_hop_count_favors_torus() {
        let shape = GridShape::new(16, 16);
        let mesh = RoutingGrid::new(shape, Topology::Mesh).average_hop_count();
        let torus = RoutingGrid::new(shape, Topology::Torus).average_hop_count();
        assert!(torus < mesh);
    }
}
