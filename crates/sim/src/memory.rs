//! The memory budget report: modeled per-subsystem resident bytes.
//!
//! DL-PIM's critique (and ours): data-locality wins are only credible when
//! the resident working set is *measured*, not estimated.  Every run
//! therefore reports where its modeled memory went — the distributed CSR,
//! the per-tile arena slabs (which, under lazy allocation, only exist for
//! tiles that saw activity), the NoC's router buffers, and the calendar
//! scheduler's bookkeeping — alongside cycles and energy.  The
//! `tests/memory_budget.rs` tier pins these totals like the cycle goldens,
//! so a memory regression fails CI the same way a schedule regression does.
//!
//! The report lives on [`crate::SimOutcome`], not on [`crate::SimStats`]:
//! the calendar line is engine bookkeeping that legitimately differs
//! between engines, while stats are pinned bit-identical across the
//! five-engine equivalence square.

/// Modeled resident bytes, by subsystem, for one completed run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// The distributed CSR chunks (2 row words per vertex + 2 words per
    /// edge; equals `CsrGraph::distributed_footprint_bytes`).
    pub csr_bytes: usize,
    /// Per-tile arena slabs (kernel arrays, variables, IQ/CQ rings).  Under
    /// lazy allocation only materialized tiles contribute; an idle tile
    /// costs 0.
    pub tile_arena_bytes: usize,
    /// Tiles whose arena was materialized during the run.
    pub materialized_tiles: usize,
    /// Total tiles in the grid.
    pub total_tiles: usize,
    /// Router port buffers plus ejection buffers, across the whole fabric.
    pub noc_buffer_bytes: usize,
    /// Calendar router-scheduler bookkeeping (0 for the scan scheduler).
    /// Engine-dependent by design — this is simulator bookkeeping, not
    /// modeled hardware.
    pub calendar_bytes: usize,
}

impl MemoryReport {
    /// Sum of every subsystem line.
    pub fn modeled_total_bytes(&self) -> usize {
        self.csr_bytes + self.tile_arena_bytes + self.noc_buffer_bytes + self.calendar_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_every_line() {
        let report = MemoryReport {
            csr_bytes: 100,
            tile_arena_bytes: 20,
            materialized_tiles: 2,
            total_tiles: 16,
            noc_buffer_bytes: 7,
            calendar_bytes: 3,
        };
        assert_eq!(report.modeled_total_bytes(), 130);
        assert_eq!(MemoryReport::default().modeled_total_bytes(), 0);
    }
}
