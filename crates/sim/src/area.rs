//! Area and power-density model.
//!
//! Section V-A compares the 16x16 Dalorex chip (4.2 MB per tile, ~305 mm²)
//! against the aggregated silicon of 16 HMC cubes (~3616 mm²), and argues
//! that Dalorex's evenly spread power stays below 300 mW/mm² — far under the
//! ~1.5 W/mm² air-cooling limit.  This module reproduces those numbers from
//! the same published densities: 29.2 Mb/mm² SRAM macros at 7 nm, slim
//! Celerity/Snitch-class cores, and the NoC area ratios of Section III-F.

use dalorex_noc::Topology;

/// Area constants for the 7 nm technology point used by the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaConstants {
    /// SRAM density in megabits per square millimetre (29.2 Mb/mm² at 7 nm).
    pub sram_mbit_per_mm2: f64,
    /// Area of one processing unit (slim single-issue in-order core), mm².
    pub pu_mm2: f64,
    /// Area of the TSU and queue-control logic, mm².
    pub tsu_mm2: f64,
    /// Area of a mesh router plus its link drivers, mm²; other topologies
    /// scale this by [`Topology::relative_area`].
    pub mesh_router_mm2: f64,
}

impl AreaConstants {
    /// The paper's 7 nm constants.
    pub fn paper_7nm() -> Self {
        AreaConstants {
            sram_mbit_per_mm2: 29.2,
            pu_mm2: 0.02,
            tsu_mm2: 0.01,
            mesh_router_mm2: 0.01,
        }
    }
}

impl Default for AreaConstants {
    fn default() -> Self {
        AreaConstants::paper_7nm()
    }
}

/// Area model for a Dalorex chip configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    constants: AreaConstants,
    num_tiles: usize,
    scratchpad_bytes_per_tile: usize,
    topology: Topology,
}

impl AreaModel {
    /// Creates an area model.
    pub fn new(
        constants: AreaConstants,
        num_tiles: usize,
        scratchpad_bytes_per_tile: usize,
        topology: Topology,
    ) -> Self {
        AreaModel {
            constants,
            num_tiles,
            scratchpad_bytes_per_tile,
            topology,
        }
    }

    /// Area of one tile's scratchpad, in mm².
    pub fn scratchpad_mm2(&self) -> f64 {
        let mbits = self.scratchpad_bytes_per_tile as f64 * 8.0 / 1.0e6;
        mbits / self.constants.sram_mbit_per_mm2
    }

    /// Area of one tile (scratchpad + PU + TSU + router), in mm².
    pub fn tile_mm2(&self) -> f64 {
        self.scratchpad_mm2()
            + self.constants.pu_mm2
            + self.constants.tsu_mm2
            + self.constants.mesh_router_mm2 * self.topology.relative_area()
    }

    /// Physical tile pitch (assuming square tiles), in millimetres.  Used by
    /// the energy model to convert flit hop counts into wire millimetres.
    pub fn tile_pitch_mm(&self) -> f64 {
        self.tile_mm2().sqrt()
    }

    /// Total chip area, in mm².
    pub fn chip_mm2(&self) -> f64 {
        self.tile_mm2() * self.num_tiles as f64
    }

    /// NoC share of the chip area, in percent (the paper quotes ~0.2% extra
    /// for a torus over a mesh and ~1.2% extra for ruche on 4 MB tiles).
    pub fn noc_area_percent(&self) -> f64 {
        100.0 * (self.constants.mesh_router_mm2 * self.topology.relative_area()) / self.tile_mm2()
    }

    /// Power density in mW/mm² for a given total power in Watts.
    pub fn power_density_mw_per_mm2(&self, total_power_w: f64) -> f64 {
        total_power_w * 1000.0 / self.chip_mm2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_chip() -> AreaModel {
        // The paper's 16x16 grid with 4.2 MB per tile.
        AreaModel::new(
            AreaConstants::paper_7nm(),
            256,
            (4.2 * 1024.0 * 1024.0) as usize,
            Topology::Torus,
        )
    }

    #[test]
    fn paper_chip_area_is_about_305_mm2() {
        let area = paper_chip().chip_mm2();
        assert!(
            (250.0..400.0).contains(&area),
            "16x16 x 4.2MB chip area {area} mm2 is far from the paper's ~305 mm2"
        );
    }

    #[test]
    fn tile_is_dominated_by_sram() {
        let model = paper_chip();
        assert!(model.scratchpad_mm2() / model.tile_mm2() > 0.9);
    }

    #[test]
    fn noc_area_share_is_small() {
        let model = paper_chip();
        assert!(model.noc_area_percent() < 3.0);
        // Ruche costs more area than torus, torus more than mesh.
        let mesh = AreaModel::new(AreaConstants::paper_7nm(), 256, 4 << 20, Topology::Mesh);
        let ruche = AreaModel::new(
            AreaConstants::paper_7nm(),
            256,
            4 << 20,
            Topology::TorusRuche { factor: 4 },
        );
        assert!(mesh.noc_area_percent() < model.noc_area_percent());
        assert!(model.noc_area_percent() < ruche.noc_area_percent());
    }

    #[test]
    fn power_density_stays_below_air_cooling_limit() {
        let model = paper_chip();
        // The paper reports < 300 mW/mm² for all experiments; a 50 W chip of
        // this size sits well below that and far below the 1.5 W/mm² limit.
        let density = model.power_density_mw_per_mm2(50.0);
        assert!(density < 300.0, "density {density} mW/mm2");
    }

    #[test]
    fn tile_pitch_is_about_one_millimetre() {
        let pitch = paper_chip().tile_pitch_mm();
        assert!((0.8..1.5).contains(&pitch), "pitch {pitch} mm");
    }

    #[test]
    fn smaller_scratchpads_shrink_the_chip() {
        let small = AreaModel::new(AreaConstants::paper_7nm(), 256, 1 << 20, Topology::Torus);
        assert!(small.chip_mm2() < paper_chip().chip_mm2());
    }
}
