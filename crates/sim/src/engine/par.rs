//! The parallel engine: `run_with`'s cycle loop with the tile phase fanned
//! out over a persistent worker pool.
//!
//! # Execution model
//!
//! Every cycle has two halves.  The **network phase** (`Network::cycle`)
//! is inherently order-dependent — routers are scanned in arbitration
//! order and a forward this cycle changes what the next router sees — so
//! it stays sequential on the main thread, driven by the calendar router
//! scheduler (the fastest sequential scheduler on the dense regimes where
//! parallelism pays).  The **tile phase** is where the simulator spends
//! most of its time on large grids, and its per-tile work (drain, inject,
//! dispatch, kernel task bodies) touches almost exclusively own-tile
//! state; tiles are sharded into contiguous id ranges, one
//! [`EndpointShard`] per worker, and each worker advances its tiles
//! through the exact same generic `tile_cycle` the sequential engines
//! run.  The few cross-tile side effects (active-list membership,
//! delivery events, calendar due stamps, waiter wakes) are recorded as
//! ordered per-tile intents and replayed sequentially by
//! [`Network::apply_endpoint_effects`] in the frozen walk order, which is
//! what keeps the schedule — and every statistic — bit-identical to the
//! four single-threaded engines (see `noc`'s `network::shard` module docs
//! for the full argument).
//!
//! # Pool protocol
//!
//! Workers are spawned once per run inside a [`std::thread::scope`] and
//! parked on a condvar.  Each cycle with a non-empty active list, the
//! main thread builds one [`WorkBatch`] per worker — disjoint `&mut`
//! sub-slices of the tile/scheduler/snapshot/park vectors plus the
//! matching endpoint shard — publishes the batch array under the pool
//! mutex (bumping the epoch), processes batch 0 itself, then blocks on
//! the completion condvar until `remaining == 0`.
//!
//! # Safety
//!
//! This module is the crate's single `allow(unsafe_code)` island.  The
//! `unsafe` is confined to turning the type-erased batch-array pointer
//! back into `&mut WorkBatch` references — one disjoint element per
//! thread.  The argument:
//!
//! * **Aliasing**: batch `w` is touched only by thread `w` (worker `w`
//!   takes exactly index `w`; the main thread takes index 0), and every
//!   batch holds borrows of *disjoint* ranges of the underlying vectors
//!   (produced by `split_at_mut` and `Network::endpoint_shards`).  The
//!   main thread derives its own batch-0 reference from the same erased
//!   pointer it published, so no reference to the batch array outlives
//!   the epoch on the publishing side.
//! * **Lifetime**: workers only dereference the pointer between
//!   observing a new epoch and decrementing `remaining`, both under the
//!   pool mutex; the main thread does not drop (or touch) the batch
//!   array until it has observed `remaining == 0` under that same mutex.
//! * **Happens-before**: the mutex hand-offs order the main thread's
//!   batch construction before the workers' reads, and the workers'
//!   writes before the main thread's merge.
//! * **Panics**: worker batch processing runs under `catch_unwind`; a
//!   panic still decrements `remaining` (so the main thread's barrier
//!   completes) and raises the `panicked` flag, which the main thread
//!   converts into its own panic after the barrier.  The main thread's
//!   batch-0 processing is equally caught so an unwinding main thread
//!   can never drop the batch array while workers are inside it.  A
//!   shutdown guard flips the `shutdown` flag on every exit path so the
//!   scope can always join.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard};

use super::*;
use dalorex_noc::{EndpointShard, ShardBuffers};

/// Loop-invariant inputs of the tile phase, shared by every thread.
struct TileCtx<'c> {
    sim: &'c Simulation,
    kernel: &'c dyn Kernel,
    tasks: &'c [TaskDecl],
    channels: &'c [ChannelDecl],
    barrier_mode: bool,
}

/// One worker's slice of one cycle's tile phase: disjoint `&mut` views of
/// the engine vectors for tiles `lo..hi`, the matching endpoint shard, the
/// walk order restricted to this shard, and the per-shard outputs.
struct WorkBatch<'a> {
    lo: usize,
    cycle: u64,
    tiles: &'a mut [TileState],
    schedulers: &'a mut [Scheduler],
    hot: &'a mut [HotTile],
    parks: &'a mut [InjectPark],
    shard: EndpointShard<'a>,
    /// This shard's tiles from the frozen global walk order, in order.
    sublist: &'a [usize],
    /// Per-`sublist`-entry retention flags (the main thread stitches the
    /// global active list back together from these, in walk order).
    keep: &'a mut Vec<bool>,
    /// Minimum next-event cycle over this shard's tiles (skip-engine bound).
    tile_event_min: u64,
    /// Task dispatches performed by this shard this cycle.
    dispatches: u64,
}

/// Compile-time proof that a batch may cross a thread boundary: everything
/// it borrows is plain data (no interior mutability, no `Rc`).
#[allow(dead_code)]
fn assert_batch_is_send(batch: WorkBatch<'_>) -> impl Send + '_ {
    batch
}

#[derive(Default)]
struct PoolState {
    /// Bumped once per published batch array; workers use it to detect
    /// fresh work without consuming a token.
    epoch: u64,
    /// Type-erased `*mut WorkBatch` of the current epoch's batch array.
    batch_ptr: usize,
    batch_count: usize,
    /// Batches not yet completed by pool workers this epoch (batch 0 is
    /// the main thread's and never counted).
    remaining: usize,
    panicked: bool,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled by the main thread when a new epoch is published (and on
    /// shutdown).
    go: Condvar,
    /// Signalled by the last worker to finish an epoch.
    done: Condvar,
}

/// Locks the pool state, shrugging off poisoning: the flags themselves are
/// how panics are propagated, so a poisoned mutex carries no extra signal.
fn lock(state: &Mutex<PoolState>) -> MutexGuard<'_, PoolState> {
    state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Sets `shutdown` and wakes the workers on every exit path of the scope
/// closure — normal return, error return, or unwind — so `thread::scope`
/// can always join.
struct ShutdownGuard<'p> {
    pool: &'p PoolShared,
}

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        let mut st = lock(&self.pool.state);
        st.shutdown = true;
        drop(st);
        self.pool.go.notify_all();
    }
}

/// A pool worker: waits for an epoch, processes the batch at its index,
/// reports completion; exits on shutdown.
fn worker_loop(ctx: &TileCtx<'_>, pool: &PoolShared, index: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let (ptr, count) = {
            let mut st = lock(&pool.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    break;
                }
                st = pool
                    .go
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            seen_epoch = st.epoch;
            (st.batch_ptr, st.batch_count)
        };
        debug_assert!(index < count, "worker index outside the batch array");
        let result = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: see the module docs — disjoint index per thread,
            // lifetime bounded by the epoch barrier, ordering by the pool
            // mutex.
            let batch = unsafe { &mut *(ptr as *mut WorkBatch<'_>).add(index) };
            process_batch(ctx, batch);
        }));
        let mut st = lock(&pool.state);
        if result.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        let finished = st.remaining == 0;
        drop(st);
        if finished {
            pool.done.notify_all();
        }
    }
}

/// Runs one epoch of the pool over `batches`: publish, process batch 0
/// inline, barrier.  With a single batch (1 worker) no threads are
/// involved at all.
fn run_pool_epoch(ctx: &TileCtx<'_>, pool: &PoolShared, batches: &mut [WorkBatch<'_>]) {
    let count = batches.len();
    if count == 1 {
        process_batch(ctx, &mut batches[0]);
        return;
    }
    let ptr = batches.as_mut_ptr();
    {
        let mut st = lock(&pool.state);
        st.epoch += 1;
        st.batch_ptr = ptr as usize;
        st.batch_count = count;
        st.remaining = count - 1;
        drop(st);
        pool.go.notify_all();
    }
    // Batch 0 on this thread, through the same erased pointer the workers
    // use so every live reference into the array has equal standing.
    // Catch the unwind: this frame must not collapse (dropping `batches`
    // and everything it borrows) while workers are still inside the array.
    let main_result = catch_unwind(AssertUnwindSafe(|| {
        // SAFETY: index 0 is reserved for this thread; see module docs.
        let batch = unsafe { &mut *ptr };
        process_batch(ctx, batch);
    }));
    let worker_panicked = {
        let mut st = lock(&pool.state);
        while st.remaining > 0 {
            st = pool
                .done
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.panicked
    };
    if let Err(payload) = main_result {
        resume_unwind(payload);
    }
    assert!(!worker_panicked, "parallel engine worker panicked");
}

/// The tile phase for one shard: byte-for-byte the per-tile body of
/// `run_with`'s fast path (no-op skip, `tile_cycle`, snapshot refresh,
/// retention, next-event accumulation), against the shard instead of the
/// whole network.
fn process_batch(ctx: &TileCtx<'_>, batch: &mut WorkBatch<'_>) {
    batch.keep.clear();
    let cycle = batch.cycle;
    for &t in batch.sublist {
        let i = t - batch.lo;
        let h = batch.hot[i];
        let dispatchable = h.pu_busy_until <= cycle && h.task_ready;
        let inject_live = h.cq_ready
            && (!batch.parks[i].all_ready_parked
                || batch.shard.buffer_drain_version(t) != batch.parks[i].version);
        if !h.delivery_pending && !dispatchable && !inject_live {
            if h.cq_ready {
                batch
                    .shard
                    .count_injection_backpressure(t, u64::from(batch.parks[i].ready_count));
            }
            batch.keep.push(h.nonidle_after(cycle));
            batch.tile_event_min = batch.tile_event_min.min(tile_next_event(&h, cycle));
            continue;
        }
        ctx.sim.tile_cycle(
            ctx.kernel,
            ctx.tasks,
            ctx.channels,
            &mut batch.tiles[i],
            &mut batch.schedulers[i],
            &mut batch.shard,
            &mut batch.parks[i],
            h.delivery_pending,
            ctx.barrier_mode,
            cycle,
            &mut batch.dispatches,
        );
        let leftover_deliveries = batch.shard.delivered_waiting(t) > 0;
        batch.hot[i] = HotTile::snapshot(&batch.tiles[i], leftover_deliveries);
        batch
            .keep
            .push(!batch.tiles[i].is_idle(cycle + 1) || leftover_deliveries);
        let ran_event =
            if leftover_deliveries || (batch.hot[i].cq_ready && !batch.parks[i].all_ready_parked) {
                cycle + 1
            } else {
                tile_next_event(&batch.hot[i], cycle)
            };
        batch.tile_event_min = batch.tile_event_min.min(ran_event);
    }
}

impl Simulation {
    /// The [`Engine::Parallel`] entry point; see the module docs.
    pub(super) fn run_parallel(
        &self,
        kernel: &dyn Kernel,
        workers: usize,
    ) -> Result<SimOutcome, SimError> {
        let EngineState {
            tasks,
            channels,
            arrays,
            mut tiles,
            mut network,
            mut schedulers,
            barrier_mode,
            mut hot,
            mut parks,
            mut active,
            mut active_list,
            mut active_scratch,
            mut delivery_events,
        } = self.prepare(kernel, RouterScheduler::Calendar)?;

        let num_tiles = self.placement.num_tiles();
        let workers = match workers {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
        .min(num_tiles.max(1));

        // Contiguous near-equal tile ranges, one per worker, and the
        // reverse tile -> worker map used to stitch results back together.
        let base = num_tiles / workers;
        let rem = num_tiles % workers;
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(workers);
        let mut next_lo = 0usize;
        for w in 0..workers {
            let hi = next_lo + base + usize::from(w < rem);
            ranges.push((next_lo, hi));
            next_lo = hi;
        }
        let mut shard_of = vec![0u32; num_tiles];
        for (w, &(lo, hi)) in ranges.iter().enumerate() {
            for entry in &mut shard_of[lo..hi] {
                *entry = w as u32;
            }
        }

        let mut shard_bufs: Vec<ShardBuffers> =
            (0..workers).map(|_| ShardBuffers::default()).collect();
        let mut sublists: Vec<Vec<usize>> = vec![Vec::new(); workers];
        let mut keeps: Vec<Vec<bool>> = vec![Vec::new(); workers];
        let mut cursors: Vec<usize> = vec![0; workers];

        let ctx = TileCtx {
            sim: self,
            kernel,
            tasks: &tasks,
            channels: &channels,
            barrier_mode,
        };
        let pool = PoolShared {
            state: Mutex::new(PoolState::default()),
            go: Condvar::new(),
            done: Condvar::new(),
        };

        let mut cycle: u64 = 0;
        let mut epochs: u64 = 0;
        let mut epoch_offset: u64 = 0;
        let mut last_progress_marker = (0u64, 0u64);
        let mut last_progress_cycle = 0u64;
        let mut total_dispatches = 0u64;

        std::thread::scope(|scope| {
            let _guard = ShutdownGuard { pool: &pool };
            for w in 1..workers {
                let ctx = &ctx;
                let pool = &pool;
                scope.spawn(move || worker_loop(ctx, pool, w));
            }

            loop {
                // Global idle: tiles drained, network drained — identical
                // to `run_with`.
                if active_list.is_empty() && network.is_idle() {
                    let mut epoch_ctx = SimEpochContext {
                        tiles: &mut tiles,
                        placement: &self.placement,
                        barrier_mode,
                        woken: Vec::new(),
                    };
                    let decision = kernel.on_global_idle(epochs as usize, &mut epoch_ctx);
                    let woken = epoch_ctx.woken;
                    match decision {
                        EpochDecision::Finish => break,
                        EpochDecision::Continue => {
                            epochs += 1;
                            cycle += self.config.epoch_broadcast_cycles;
                            epoch_offset += self.config.epoch_broadcast_cycles;
                            // Fault windows are in engine time; keep the
                            // network's compiled schedule in the same clock.
                            network.set_fault_time_offset(epoch_offset);
                            for tile in woken {
                                hot[tile] =
                                    HotTile::snapshot(&tiles[tile], hot[tile].delivery_pending);
                                if !active[tile] {
                                    active[tile] = true;
                                    active_list.push(tile);
                                }
                            }
                            if active_list.is_empty() {
                                return Err(SimError::Deadlock {
                                    cycle,
                                    network_messages: 0,
                                    queued_invocations: 0,
                                    diagnostics: deadlock_diagnostics(
                                        &tiles,
                                        &network,
                                        last_progress_cycle,
                                        total_dispatches,
                                    ),
                                });
                            }
                            continue;
                        }
                    }
                }

                // Network phase: sequential, on the main thread.
                network.cycle();
                delivery_events.clear();
                network.drain_delivery_events_into(&mut delivery_events);
                for &tile in &delivery_events {
                    hot[tile].delivery_pending = true;
                    if !active[tile] {
                        active[tile] = true;
                        active_list.push(tile);
                    }
                }

                // Tile phase: fan the frozen walk order out over the pool.
                let mut tile_event_min = u64::MAX;
                debug_assert!(active_scratch.is_empty());
                std::mem::swap(&mut active_list, &mut active_scratch);
                if !active_scratch.is_empty() {
                    for sub in sublists.iter_mut() {
                        sub.clear();
                    }
                    for &t in &active_scratch {
                        active[t] = false;
                        sublists[shard_of[t] as usize].push(t);
                    }

                    let mut batches: Vec<WorkBatch<'_>> = Vec::with_capacity(workers);
                    {
                        let shards = network.endpoint_shards(&mut shard_bufs, &ranges);
                        let mut tiles_rest: &mut [TileState] = &mut tiles;
                        let mut scheds_rest: &mut [Scheduler] = &mut schedulers;
                        let mut hot_rest: &mut [HotTile] = &mut hot;
                        let mut parks_rest: &mut [InjectPark] = &mut parks;
                        for (w, (shard, keep)) in
                            shards.into_iter().zip(keeps.iter_mut()).enumerate()
                        {
                            let (lo, hi) = ranges[w];
                            let take = hi - lo;
                            let (t, rest) = tiles_rest.split_at_mut(take);
                            tiles_rest = rest;
                            let (s, rest) = scheds_rest.split_at_mut(take);
                            scheds_rest = rest;
                            let (h, rest) = hot_rest.split_at_mut(take);
                            hot_rest = rest;
                            let (p, rest) = parks_rest.split_at_mut(take);
                            parks_rest = rest;
                            batches.push(WorkBatch {
                                lo,
                                cycle,
                                tiles: t,
                                schedulers: s,
                                hot: h,
                                parks: p,
                                shard,
                                sublist: &sublists[w],
                                keep,
                                tile_event_min: u64::MAX,
                                dispatches: 0,
                            });
                        }
                    }

                    run_pool_epoch(&ctx, &pool, &mut batches);

                    for batch in &batches {
                        tile_event_min = tile_event_min.min(batch.tile_event_min);
                        total_dispatches += batch.dispatches;
                    }
                    drop(batches);

                    // Replay the deferred cross-tile effects in the frozen
                    // walk order — this is the bit-identity step.
                    network.apply_endpoint_effects(&active_scratch, &mut shard_bufs);

                    // Stitch the global active list back together in walk
                    // order from the per-shard retention flags.
                    for cursor in cursors.iter_mut() {
                        *cursor = 0;
                    }
                    for &t in &active_scratch {
                        let w = shard_of[t] as usize;
                        let kept = keeps[w][cursors[w]];
                        cursors[w] += 1;
                        if kept {
                            active[t] = true;
                            active_list.push(t);
                        }
                    }
                }
                active_scratch.clear();

                cycle += 1;
                if cycle >= self.config.max_cycles {
                    return Err(SimError::CycleLimitExceeded {
                        limit: self.config.max_cycles,
                    });
                }

                // Deadlock watchdog — identical to `run_with`.
                let marker = (total_dispatches, network.stats().delivered_messages);
                if marker != last_progress_marker {
                    last_progress_marker = marker;
                    last_progress_cycle = cycle;
                } else if cycle - last_progress_cycle > self.config.watchdog_cycles {
                    let queued: u64 = tiles
                        .iter()
                        .map(|t| t.iqs().iter().map(|q| q.len() as u64).sum::<u64>())
                        .sum();
                    return Err(SimError::Deadlock {
                        cycle,
                        network_messages: network.in_flight() + network.awaiting_ejection(),
                        queued_invocations: queued,
                        diagnostics: deadlock_diagnostics(
                            &tiles,
                            &network,
                            last_progress_cycle,
                            total_dispatches,
                        ),
                    });
                }

                // Skip to the next event — identical to `run_with`'s skip
                // block (the parallel engine is a skip engine).
                if !(active_list.is_empty() && network.is_idle()) {
                    let network_event = network.next_event_cycle().saturating_add(epoch_offset);
                    let target = network_event.min(tile_event_min);
                    let deadline = last_progress_cycle + self.config.watchdog_cycles + 1;
                    let fault_edge = self
                        .faults
                        .as_deref()
                        .map_or(u64::MAX, |f| f.next_transition_after(cycle));
                    let stop = target
                        .min(self.config.max_cycles)
                        .min(deadline)
                        .min(fault_edge);
                    if stop > cycle {
                        let span = stop - cycle;
                        let mut kept = 0;
                        for i in 0..active_list.len() {
                            let t = active_list[i];
                            let h = hot[t];
                            debug_assert!(
                                !h.delivery_pending,
                                "a pending delivery forces an event at the current cycle"
                            );
                            if h.cq_ready {
                                let owed = span * u64::from(parks[t].ready_count);
                                if owed > 0 {
                                    network.count_injection_backpressure(t, owed);
                                }
                            }
                            if h.queued || h.pu_busy_until > stop {
                                active_list[kept] = t;
                                kept += 1;
                            } else {
                                active[t] = false;
                            }
                        }
                        active_list.truncate(kept);
                        network.advance_to(stop - epoch_offset);
                        cycle = stop;
                        if cycle >= self.config.max_cycles {
                            return Err(SimError::CycleLimitExceeded {
                                limit: self.config.max_cycles,
                            });
                        }
                        if cycle - last_progress_cycle > self.config.watchdog_cycles {
                            let queued: u64 = tiles
                                .iter()
                                .map(|t| t.iqs().iter().map(|q| q.len() as u64).sum::<u64>())
                                .sum();
                            return Err(SimError::Deadlock {
                                cycle,
                                network_messages: network.in_flight()
                                    + network.awaiting_ejection(),
                                queued_invocations: queued,
                                diagnostics: deadlock_diagnostics(
                                    &tiles,
                                    &network,
                                    last_progress_cycle,
                                    total_dispatches,
                                ),
                            });
                        }
                    }
                }
            }

            self.finish_outcome(kernel, &arrays, tasks.len(), &tiles, &network, cycle, epochs)
        })
    }
}
