//! Per-tile state: the distributed dataset chunk, kernel arrays, queues and
//! activity counters.
//!
//! A Dalorex tile (paper Fig. 4) is dominated by its scratchpad, which holds
//! the tile's chunk of every dataset array, the kernel's state arrays, the
//! task code and the queues.  [`TileCsr`] is the read-only dataset chunk
//! produced by distributing a [`dalorex_graph::CsrGraph`] with a
//! [`crate::placement::Placement`]; [`TileState`] is the mutable
//! part (kernel arrays, variables, queues, counters).
//!
//! # Incremental readiness tracking
//!
//! [`TileState`] is on the engine's per-tile per-cycle path, so it answers
//! the TSU's standing questions in O(1) instead of rescanning queues:
//!
//! * **Idle?** — a single queued-word counter, maintained at every queue
//!   mutation, makes [`TileState::is_idle`] a counter-and-comparison.
//! * **Which task can dispatch?** — a per-tile *task-ready bitmask* (bit
//!   `t` set when task `t` satisfies [`crate::tsu::Scheduler::is_eligible`])
//!   is updated at the mutation points; the scheduler walks set bits
//!   instead of probing queues.
//! * **Which channel can inject?** — a *channel-ready bitmask* (bit `c`
//!   set when channel `c`'s CQ holds at least one full message) drives the
//!   engine's inject loop.
//!
//! Every queue mutation therefore goes through a [`TileState`] method
//! (`push_iq`, `pop_cq_into`, ...) rather than touching a queue directly;
//! the queues themselves are read-only to the outside
//! ([`TileState::iqs`] / [`TileState::cqs`]).  The mask-free rescans the
//! masks replaced are preserved as [`TileState::is_idle_scan`] and
//! [`crate::tsu::Scheduler::pick_reference`], which the engine's reference
//! tile path and the equivalence tests drive.
//!
//! Masks are maintained exactly for kernels with at most 64 tasks and 64
//! channels (the paper's kernels declare at most four of each); beyond
//! that [`TileState::masks_exact`] reports `false` and consumers fall back
//! to the scanning path.

use crate::kernel::{
    ArrayInit, ChannelDecl, LocalArrayDecl, LocalArrayLen, QueueCapacity, TaskDecl, TaskParams,
};
use crate::placement::{ArraySpace, Placement};
use crate::queues::WordQueue;
use dalorex_graph::CsrGraph;

/// The read-only chunk of the dataset owned by one tile.
///
/// Instead of replicating the paper's `ptr` array (whose entry `v+1` may
/// live on a different tile), each tile stores, per owned vertex, the global
/// begin and end edge indices of that vertex's adjacency — the same two
/// words task T1 reads, local under any vertex placement.  `DESIGN.md` §2
/// records this representation choice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TileCsr {
    /// Global edge index where each owned vertex's out-edges begin.
    pub row_begin: Vec<u32>,
    /// Global edge index one past each owned vertex's out-edges.
    pub row_end: Vec<u32>,
    /// Destination vertex (global id) of each owned edge.
    pub edge_idx: Vec<u32>,
    /// Weight of each owned edge.
    pub edge_values: Vec<u32>,
}

impl TileCsr {
    /// Scratchpad bytes occupied by this chunk (32-bit words).
    pub fn footprint_bytes(&self) -> usize {
        4 * (self.row_begin.len()
            + self.row_end.len()
            + self.edge_idx.len()
            + self.edge_values.len())
    }
}

/// Distributes a graph across tiles according to a placement.
///
/// Tile `t` receives `row_begin`/`row_end` for every vertex it owns (in
/// local-offset order) and the contiguous edge chunk
/// `[t * edges_per_tile, (t+1) * edges_per_tile)`.
pub fn distribute_graph(graph: &CsrGraph, placement: &Placement) -> Vec<TileCsr> {
    let num_tiles = placement.num_tiles();
    let mut chunks: Vec<TileCsr> = (0..num_tiles)
        .map(|tile| {
            let vertices = placement.local_len(ArraySpace::Vertex, tile);
            let edges = placement.local_len(ArraySpace::Edge, tile);
            TileCsr {
                row_begin: vec![0; vertices],
                row_end: vec![0; vertices],
                edge_idx: Vec::with_capacity(edges),
                edge_values: Vec::with_capacity(edges),
            }
        })
        .collect();

    let ptr = graph.ptr();
    for v in 0..graph.num_vertices() {
        let tile = placement.owner(ArraySpace::Vertex, v);
        let local = placement.to_local(ArraySpace::Vertex, v);
        chunks[tile].row_begin[local] = ptr[v];
        chunks[tile].row_end[local] = ptr[v + 1];
    }
    for e in 0..graph.num_edges() {
        let tile = placement.owner(ArraySpace::Edge, e);
        debug_assert_eq!(placement.to_local(ArraySpace::Edge, e), chunks[tile].edge_idx.len());
        chunks[tile].edge_idx.push(graph.edge_idx()[e]);
        chunks[tile].edge_values.push(graph.edge_values()[e]);
    }
    chunks
}

/// Activity counters accumulated by one tile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TileCounters {
    /// 32-bit scratchpad reads (arrays, variables and queue entries).
    pub sram_reads: u64,
    /// 32-bit scratchpad writes.
    pub sram_writes: u64,
    /// PU operations (ALU plus queue-register operations).
    pub pu_ops: u64,
    /// Cycles during which the PU was executing a task.
    pub pu_busy_cycles: u64,
    /// Invocations executed, per task.
    pub task_invocations: Vec<u64>,
    /// Edges processed (reported by the kernel via `count_edges`).
    pub edges_processed: u64,
    /// Messages sent into the network from this tile.
    pub messages_sent: u64,
    /// Messages drained from this tile's ejection buffers into task IQs.
    /// With `endpoint_drains_per_cycle > 1` a tile can receive several per
    /// cycle; conservation (`received == delivered` network-wide at
    /// quiescence) is what the property suite checks.
    pub messages_received: u64,
}

/// Per-task scheduling metadata derived from the kernel declarations once,
/// at tile construction, so the readiness masks can be recomputed without
/// consulting the declarations again.
#[derive(Debug, Clone)]
struct ReadyMeta {
    /// Minimum IQ words for the task to have input: `AutoPop(n)` needs `n`,
    /// `SelfManaged` needs 1, and the (invalid, engine-rejected)
    /// `AutoPop(0)` is encoded as `usize::MAX` so it is never ready —
    /// exactly the `n > 0` guard in `Scheduler::is_eligible`.
    iq_need: Vec<usize>,
    /// Per task, the `(channel, words)` output-space guarantees.
    cq_reqs: Vec<Box<[(usize, usize)]>>,
    /// Per task, the `(task, words)` local-IQ output-space guarantees.
    iq_reqs: Vec<Box<[(usize, usize)]>>,
    /// Per channel, the tasks whose eligibility watches that CQ's free
    /// space (the reverse map of `cq_reqs`).
    cq_watchers: Vec<Box<[usize]>>,
    /// Per task IQ, the *other* tasks whose eligibility watches its free
    /// space (the reverse map of `iq_reqs`).
    iq_watchers: Vec<Box<[usize]>>,
    /// Per channel, the words of one full message (`flits_per_message`).
    cq_msg_words: Vec<usize>,
    /// Whether the bitmasks are maintained exactly (tasks and channels both
    /// fit 64 bits).
    exact: bool,
}

impl ReadyMeta {
    fn new(tasks: &[TaskDecl], channels: &[ChannelDecl]) -> Self {
        let iq_need = tasks
            .iter()
            .map(|t| match t.params {
                TaskParams::AutoPop(0) => usize::MAX,
                TaskParams::AutoPop(n) => n,
                TaskParams::SelfManaged => 1,
            })
            .collect();
        let cq_reqs: Vec<Box<[(usize, usize)]>> = tasks
            .iter()
            .map(|t| t.cq_space_required.clone().into_boxed_slice())
            .collect();
        let mut cq_watchers: Vec<Vec<usize>> = vec![Vec::new(); channels.len()];
        for (task, reqs) in cq_reqs.iter().enumerate() {
            for &(channel, _) in reqs.iter() {
                if channel < channels.len() && !cq_watchers[channel].contains(&task) {
                    cq_watchers[channel].push(task);
                }
            }
        }
        let iq_reqs: Vec<Box<[(usize, usize)]>> = tasks
            .iter()
            .map(|t| t.iq_space_required.clone().into_boxed_slice())
            .collect();
        let mut iq_watchers: Vec<Vec<usize>> = vec![Vec::new(); tasks.len()];
        for (task, reqs) in iq_reqs.iter().enumerate() {
            for &(watched, _) in reqs.iter() {
                if watched < tasks.len() && watched != task && !iq_watchers[watched].contains(&task)
                {
                    iq_watchers[watched].push(task);
                }
            }
        }
        ReadyMeta {
            iq_need,
            cq_reqs,
            iq_reqs,
            cq_watchers: cq_watchers.into_iter().map(Vec::into_boxed_slice).collect(),
            iq_watchers: iq_watchers.into_iter().map(Vec::into_boxed_slice).collect(),
            cq_msg_words: channels.iter().map(|c| c.flits_per_message).collect(),
            exact: tasks.len() <= 64 && channels.len() <= 64,
        }
    }
}

/// The mutable per-tile state of a running simulation.
#[derive(Debug, Clone)]
pub struct TileState {
    /// Tile id.
    pub tile: usize,
    /// Kernel arrays, in declaration order.
    pub arrays: Vec<Vec<u32>>,
    /// Per-tile scalar variables.
    pub vars: Vec<u32>,
    /// One input queue per task.  Private so every mutation flows through
    /// the counter-maintaining methods below.
    iqs: Vec<WordQueue>,
    /// One channel queue per channel.
    cqs: Vec<WordQueue>,
    /// Cycle until which the PU is busy with the current task.
    pub pu_busy_until: u64,
    /// Activity counters.
    pub counters: TileCounters,
    /// Total words queued across every IQ and CQ (the O(1) idle signal).
    queued_words: usize,
    /// Bit `t` set when task `t` is dispatch-eligible (valid when
    /// `meta.exact`).
    task_ready: u64,
    /// Bit `c` set when channel `c`'s CQ holds at least one full message
    /// (valid when `meta.exact`).
    cq_ready: u64,
    /// Declaration-derived readiness metadata.
    meta: ReadyMeta,
}

impl TileState {
    /// Builds the state for `tile` given the kernel declarations and the
    /// tile's share of the dataset.
    pub fn new(
        tile: usize,
        placement: &Placement,
        tasks: &[TaskDecl],
        channels: &[ChannelDecl],
        arrays: &[LocalArrayDecl],
        num_vars: usize,
    ) -> Self {
        let local_vertices = placement.local_len(ArraySpace::Vertex, tile);
        let local_edges = placement.local_len(ArraySpace::Edge, tile);
        let built_arrays = arrays
            .iter()
            .map(|decl| build_array(decl, tile, placement, local_vertices, local_edges))
            .collect();
        let mut state = TileState {
            tile,
            arrays: built_arrays,
            vars: vec![0; num_vars],
            iqs: tasks
                .iter()
                .map(|t| {
                    let words = match t.iq_capacity {
                        QueueCapacity::Words(n) => n,
                        QueueCapacity::PerVertex => local_vertices,
                        QueueCapacity::VertexBlocks => local_vertices.div_ceil(32),
                    };
                    WordQueue::new(words.max(1))
                })
                .collect(),
            cqs: channels
                .iter()
                .map(|c| WordQueue::new(c.cq_capacity_words.max(1)))
                .collect(),
            pu_busy_until: 0,
            counters: TileCounters {
                task_invocations: vec![0; tasks.len()],
                ..TileCounters::default()
            },
            queued_words: 0,
            task_ready: 0,
            cq_ready: 0,
            meta: ReadyMeta::new(tasks, channels),
        };
        state.rebuild_masks();
        state
    }

    /// The task input queues, in declaration order (read-only: mutations go
    /// through [`TileState::push_iq`] and friends so the incremental
    /// counters stay exact).
    pub fn iqs(&self) -> &[WordQueue] {
        &self.iqs
    }

    /// The channel (output) queues, in declaration order (read-only).
    pub fn cqs(&self) -> &[WordQueue] {
        &self.cqs
    }

    /// Whether the readiness bitmasks are maintained exactly (at most 64
    /// tasks and 64 channels).  When false, consumers fall back to the
    /// scanning paths.
    pub fn masks_exact(&self) -> bool {
        self.meta.exact
    }

    /// Bitmask of dispatch-eligible tasks (bit `t` set when task `t`
    /// satisfies [`crate::tsu::Scheduler::is_eligible`]).  Only meaningful
    /// when [`TileState::masks_exact`].
    pub fn task_ready_mask(&self) -> u64 {
        self.task_ready
    }

    /// Bitmask of channels whose CQ holds at least one full message.  Only
    /// meaningful when [`TileState::masks_exact`].
    pub fn cq_ready_mask(&self) -> u64 {
        self.cq_ready
    }

    /// Total words queued across all IQs and CQs.
    pub fn queued_words(&self) -> usize {
        self.queued_words
    }

    /// Pushes an invocation into task `task`'s IQ; returns `false` if it
    /// does not fit.
    pub fn push_iq(&mut self, task: usize, words: &[u32]) -> bool {
        let accepted = self.iqs[task].try_push(words);
        if accepted {
            self.queued_words += words.len();
            self.note_iq_changed(task);
        }
        accepted
    }

    /// Pops one word from task `task`'s IQ (the self-managed `iq_pop`).
    pub fn pop_iq_word(&mut self, task: usize) -> Option<u32> {
        let word = self.iqs[task].pop_word();
        if word.is_some() {
            self.queued_words -= 1;
            self.note_iq_changed(task);
        }
        word
    }

    /// Pops `count` words from task `task`'s IQ into `out[..count]`,
    /// allocation-free.  Returns `false` (queue unchanged) if fewer than
    /// `count` words are queued.
    pub fn pop_iq_into(&mut self, task: usize, count: usize, out: &mut [u32]) -> bool {
        let popped = self.iqs[task].pop_invocation_into(count, out);
        if popped {
            self.queued_words -= count;
            self.note_iq_changed(task);
        }
        popped
    }

    /// `Vec`-returning variant of [`TileState::pop_iq_into`], preserved for
    /// the reference tile path and tests.
    pub fn pop_iq_invocation(&mut self, task: usize, count: usize) -> Option<Vec<u32>> {
        let popped = self.iqs[task].pop_invocation(count);
        if popped.is_some() {
            self.queued_words -= count;
            self.note_iq_changed(task);
        }
        popped
    }

    /// Pushes a message into channel `channel`'s CQ; returns `false` if it
    /// does not fit.
    pub fn push_cq(&mut self, channel: usize, words: &[u32]) -> bool {
        let accepted = self.cqs[channel].try_push(words);
        if accepted {
            self.queued_words += words.len();
            self.note_cq_changed(channel);
        }
        accepted
    }

    /// Pops `count` words from channel `channel`'s CQ into `out[..count]`,
    /// allocation-free.  Returns `false` (queue unchanged) if fewer than
    /// `count` words are queued.
    pub fn pop_cq_into(&mut self, channel: usize, count: usize, out: &mut [u32]) -> bool {
        let popped = self.cqs[channel].pop_invocation_into(count, out);
        if popped {
            self.queued_words -= count;
            self.note_cq_changed(channel);
        }
        popped
    }

    /// `Vec`-returning variant of [`TileState::pop_cq_into`], preserved for
    /// the reference tile path and tests.
    pub fn pop_cq_invocation(&mut self, channel: usize, count: usize) -> Option<Vec<u32>> {
        let popped = self.cqs[channel].pop_invocation(count);
        if popped.is_some() {
            self.queued_words -= count;
            self.note_cq_changed(channel);
        }
        popped
    }

    /// Restores a speculatively popped message at the head of channel
    /// `channel`'s CQ (the network rejected the injection this cycle).
    ///
    /// # Panics
    ///
    /// Panics if the words no longer fit (they always do when undoing a pop
    /// performed in the same cycle).
    pub fn restore_cq_front(&mut self, channel: usize, words: &[u32]) {
        self.cqs[channel].push_front_invocation(words);
        self.queued_words += words.len();
        self.note_cq_changed(channel);
    }

    /// Recomputes every readiness bit from scratch (construction and
    /// debug-mode validation).
    fn rebuild_masks(&mut self) {
        if !self.meta.exact {
            return;
        }
        self.task_ready = 0;
        for task in 0..self.iqs.len() {
            if self.compute_task_ready(task) {
                self.task_ready |= 1u64 << task;
            }
        }
        self.cq_ready = 0;
        for channel in 0..self.cqs.len() {
            if self.cqs[channel].len() >= self.meta.cq_msg_words[channel] {
                self.cq_ready |= 1u64 << channel;
            }
        }
    }

    /// Whether task `task` is dispatch-eligible, computed from the stored
    /// metadata.  Kept bit-identical to
    /// [`crate::tsu::Scheduler::is_eligible`]; the scheduler debug-asserts
    /// the two agree.
    fn compute_task_ready(&self, task: usize) -> bool {
        if self.iqs[task].len() < self.meta.iq_need[task] {
            return false;
        }
        self.meta.cq_reqs[task]
            .iter()
            .all(|&(channel, words)| self.cqs[channel].free() >= words)
            && self.meta.iq_reqs[task]
                .iter()
                .all(|&(watched, words)| self.iqs[watched].free() >= words)
    }

    #[inline]
    fn note_iq_changed(&mut self, task: usize) {
        if !self.meta.exact {
            return;
        }
        let bit = 1u64 << task;
        if self.compute_task_ready(task) {
            self.task_ready |= bit;
        } else {
            self.task_ready &= !bit;
        }
        // An IQ mutation moves its free space, which can flip the
        // eligibility of tasks holding an output-space guarantee on it (T4
        // watches T1's IQ).
        for i in 0..self.meta.iq_watchers[task].len() {
            let watcher = self.meta.iq_watchers[task][i];
            let watcher_bit = 1u64 << watcher;
            if self.compute_task_ready(watcher) {
                self.task_ready |= watcher_bit;
            } else {
                self.task_ready &= !watcher_bit;
            }
        }
    }

    #[inline]
    fn note_cq_changed(&mut self, channel: usize) {
        if !self.meta.exact {
            return;
        }
        let bit = 1u64 << channel;
        if self.cqs[channel].len() >= self.meta.cq_msg_words[channel] {
            self.cq_ready |= bit;
        } else {
            self.cq_ready &= !bit;
        }
        // A CQ mutation moves its free space, which can flip the
        // eligibility of every task holding an output-space guarantee on
        // this channel.
        for i in 0..self.meta.cq_watchers[channel].len() {
            let task = self.meta.cq_watchers[channel][i];
            let task_bit = 1u64 << task;
            if self.compute_task_ready(task) {
                self.task_ready |= task_bit;
            } else {
                self.task_ready &= !task_bit;
            }
        }
    }

    /// Whether the tile has any queued work (non-empty IQ or CQ) or a busy
    /// PU at `cycle`, in O(1) via the incrementally maintained queued-word
    /// counter.  Used by the engine's active-tile tracking and by the
    /// hierarchical idle signal for termination.
    pub fn is_idle(&self, cycle: u64) -> bool {
        debug_assert_eq!(self.queued_words == 0, self.scan_queues_empty());
        self.pu_busy_until <= cycle && self.queued_words == 0
    }

    /// The pre-overhaul idle check, scanning every queue — preserved for
    /// the reference tile path and as the oracle the O(1) counter is
    /// validated against.
    pub fn is_idle_scan(&self, cycle: u64) -> bool {
        self.pu_busy_until <= cycle && self.scan_queues_empty()
    }

    fn scan_queues_empty(&self) -> bool {
        self.iqs.iter().all(WordQueue::is_empty) && self.cqs.iter().all(WordQueue::is_empty)
    }

    /// Scratchpad bytes used by kernel arrays, variables and queues.
    pub fn kernel_footprint_bytes(&self) -> usize {
        let array_words: usize = self.arrays.iter().map(Vec::len).sum();
        let queue_words: usize = self.iqs.iter().map(WordQueue::capacity).sum::<usize>()
            + self.cqs.iter().map(WordQueue::capacity).sum::<usize>();
        4 * (array_words + self.vars.len() + queue_words)
    }
}

fn build_array(
    decl: &LocalArrayDecl,
    tile: usize,
    placement: &Placement,
    local_vertices: usize,
    local_edges: usize,
) -> Vec<u32> {
    let len = match decl.len {
        LocalArrayLen::PerVertex => local_vertices,
        LocalArrayLen::PerEdge => local_edges,
        LocalArrayLen::VertexBitmap => local_vertices.div_ceil(32),
        LocalArrayLen::Words(n) => n,
    };
    match &decl.init {
        ArrayInit::Zero => vec![0; len],
        ArrayInit::Const(v) => vec![*v; len],
        ArrayInit::MaxU32 => vec![u32::MAX; len],
        ArrayInit::GlobalVertexId => (0..len)
            .map(|local| placement.to_global(ArraySpace::Vertex, tile, local) as u32)
            .collect(),
        ArrayInit::PerVertexFn(f) => (0..len)
            .map(|local| f(placement.to_global(ArraySpace::Vertex, tile, local) as u32))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::VertexPlacement;
    use dalorex_graph::{Edge, EdgeList};
    use std::sync::Arc;

    fn small_graph() -> CsrGraph {
        let edges = EdgeList::from_edges(
            6,
            [
                Edge::new(0, 1, 1),
                Edge::new(0, 2, 2),
                Edge::new(1, 3, 3),
                Edge::new(2, 4, 4),
                Edge::new(3, 5, 5),
                Edge::new(4, 5, 6),
                Edge::new(5, 0, 7),
            ],
        )
        .unwrap();
        CsrGraph::from_edge_list(&edges)
    }

    #[test]
    fn distribute_preserves_every_vertex_and_edge() {
        let graph = small_graph();
        for placement_kind in [VertexPlacement::Chunked, VertexPlacement::Interleaved] {
            let placement = Placement::new(3, 6, 7, placement_kind);
            let chunks = distribute_graph(&graph, &placement);
            assert_eq!(chunks.len(), 3);
            // Every vertex's row range is stored on its owner.
            for v in 0..6 {
                let tile = placement.owner(ArraySpace::Vertex, v);
                let local = placement.to_local(ArraySpace::Vertex, v);
                assert_eq!(chunks[tile].row_begin[local], graph.ptr()[v]);
                assert_eq!(chunks[tile].row_end[local], graph.ptr()[v + 1]);
            }
            // Edge chunks concatenate back to the global arrays.
            let all_edges: Vec<u32> = chunks.iter().flat_map(|c| c.edge_idx.clone()).collect();
            assert_eq!(all_edges, graph.edge_idx());
            let all_values: Vec<u32> =
                chunks.iter().flat_map(|c| c.edge_values.clone()).collect();
            assert_eq!(all_values, graph.edge_values());
        }
    }

    #[test]
    fn footprint_counts_words() {
        let graph = small_graph();
        let placement = Placement::new(2, 6, 7, VertexPlacement::Chunked);
        let chunks = distribute_graph(&graph, &placement);
        let total: usize = chunks.iter().map(TileCsr::footprint_bytes).sum();
        // 2 words per vertex + 2 words per edge.
        assert_eq!(total, 4 * (2 * 6 + 2 * 7));
    }

    fn test_decls() -> (Vec<TaskDecl>, Vec<ChannelDecl>, Vec<LocalArrayDecl>) {
        (
            vec![
                TaskDecl::new("T1", 32, TaskParams::SelfManaged),
                TaskDecl::new("T2", 64, TaskParams::AutoPop(2)),
            ],
            vec![ChannelDecl::new("CQ1", 1, ArraySpace::Vertex, 2, 16)],
            vec![
                LocalArrayDecl::new("dist", LocalArrayLen::PerVertex, ArrayInit::MaxU32),
                LocalArrayDecl::new("frontier", LocalArrayLen::VertexBitmap, ArrayInit::Zero),
                LocalArrayDecl::new("labels", LocalArrayLen::PerVertex, ArrayInit::GlobalVertexId),
                LocalArrayDecl::new(
                    "x",
                    LocalArrayLen::PerVertex,
                    ArrayInit::PerVertexFn(Arc::new(|v| v + 100)),
                ),
                LocalArrayDecl::new("scratch", LocalArrayLen::Words(4), ArrayInit::Const(9)),
            ],
        )
    }

    #[test]
    fn tile_state_builds_arrays_with_declared_inits() {
        let placement = Placement::new(2, 10, 20, VertexPlacement::Interleaved);
        let (tasks, channels, arrays) = test_decls();
        let state = TileState::new(1, &placement, &tasks, &channels, &arrays, 3);
        assert_eq!(state.arrays.len(), 5);
        // Tile 1 owns vertices 1, 3, 5, 7, 9 under interleaved placement.
        assert_eq!(state.arrays[0], vec![u32::MAX; 5]);
        assert_eq!(state.arrays[1].len(), 1); // bitmap: ceil(5/32)
        assert_eq!(state.arrays[2], vec![1, 3, 5, 7, 9]);
        assert_eq!(state.arrays[3], vec![101, 103, 105, 107, 109]);
        assert_eq!(state.arrays[4], vec![9, 9, 9, 9]);
        assert_eq!(state.vars, vec![0, 0, 0]);
        assert_eq!(state.iqs().len(), 2);
        assert_eq!(state.cqs().len(), 1);
        assert!(state.is_idle(0));
        assert!(state.masks_exact());
        assert!(state.kernel_footprint_bytes() > 0);
    }

    #[test]
    fn tile_is_not_idle_with_queued_work_or_busy_pu() {
        let placement = Placement::new(2, 10, 20, VertexPlacement::Chunked);
        let (tasks, channels, arrays) = test_decls();
        let mut state = TileState::new(0, &placement, &tasks, &channels, &arrays, 0);
        assert!(state.is_idle(5));
        state.push_iq(0, &[7]);
        assert!(!state.is_idle(5));
        assert!(!state.is_idle_scan(5));
        state.pop_iq_word(0);
        state.pu_busy_until = 10;
        assert!(!state.is_idle(5));
        assert!(state.is_idle(10));
        assert_eq!(state.is_idle_scan(10), state.is_idle(10));
    }

    #[test]
    fn queue_mutations_keep_the_word_counter_exact() {
        let placement = Placement::new(2, 10, 20, VertexPlacement::Chunked);
        let (tasks, channels, arrays) = test_decls();
        let mut state = TileState::new(0, &placement, &tasks, &channels, &arrays, 0);
        assert_eq!(state.queued_words(), 0);
        assert!(state.push_iq(1, &[1, 2]));
        assert!(state.push_cq(0, &[3, 4]));
        assert_eq!(state.queued_words(), 4);
        let mut buf = [0u32; 2];
        assert!(state.pop_cq_into(0, 2, &mut buf));
        assert_eq!(buf, [3, 4]);
        assert_eq!(state.queued_words(), 2);
        state.restore_cq_front(0, &buf);
        assert_eq!(state.queued_words(), 4);
        assert_eq!(state.pop_cq_invocation(0, 2), Some(vec![3, 4]));
        assert_eq!(state.pop_iq_invocation(1, 2), Some(vec![1, 2]));
        assert_eq!(state.queued_words(), 0);
        assert!(state.is_idle(0));
    }

    #[test]
    fn task_ready_mask_tracks_inputs_and_output_space() {
        let placement = Placement::new(2, 10, 20, VertexPlacement::Chunked);
        let (mut tasks, channels, arrays) = test_decls();
        // T2 (AutoPop(2)) additionally needs 4 free words on channel 0.
        tasks[1] = TaskDecl::new("T2", 64, TaskParams::AutoPop(2)).requires_cq_space(0, 4);
        let mut state = TileState::new(0, &placement, &tasks, &channels, &arrays, 0);
        assert_eq!(state.task_ready_mask(), 0);
        // One word is not a full AutoPop(2) invocation.
        state.push_iq(1, &[1]);
        assert_eq!(state.task_ready_mask(), 0);
        state.push_iq(1, &[2]);
        assert_eq!(state.task_ready_mask(), 0b10);
        // SelfManaged T1 becomes ready with any input.
        state.push_iq(0, &[9]);
        assert_eq!(state.task_ready_mask(), 0b11);
        // Fill channel 0 so fewer than 4 words remain: T2 loses its bit.
        let filler = vec![0u32; 13];
        assert!(state.push_cq(0, &filler));
        assert_eq!(state.task_ready_mask(), 0b01);
        // Draining the CQ restores it.
        assert!(state.pop_cq_invocation(0, 13).is_some());
        assert_eq!(state.task_ready_mask(), 0b11);
        // Consuming T2's invocation clears its bit again.
        let mut buf = [0u32; 2];
        assert!(state.pop_iq_into(1, 2, &mut buf));
        assert_eq!(state.task_ready_mask(), 0b01);
    }

    #[test]
    fn cq_ready_mask_requires_one_full_message() {
        let placement = Placement::new(2, 10, 20, VertexPlacement::Chunked);
        let (tasks, channels, arrays) = test_decls();
        // Channel 0 sends 2-flit messages.
        let mut state = TileState::new(0, &placement, &tasks, &channels, &arrays, 0);
        assert_eq!(state.cq_ready_mask(), 0);
        state.push_cq(0, &[1]);
        assert_eq!(state.cq_ready_mask(), 0);
        state.push_cq(0, &[2]);
        assert_eq!(state.cq_ready_mask(), 0b1);
        let mut buf = [0u32; 2];
        state.pop_cq_into(0, 2, &mut buf);
        assert_eq!(state.cq_ready_mask(), 0);
        state.restore_cq_front(0, &buf);
        assert_eq!(state.cq_ready_mask(), 0b1);
    }
}
