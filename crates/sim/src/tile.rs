//! Per-tile state: the distributed dataset chunk, kernel arrays, queues and
//! activity counters.
//!
//! A Dalorex tile (paper Fig. 4) is dominated by its scratchpad, which holds
//! the tile's chunk of every dataset array, the kernel's state arrays, the
//! task code and the queues.  [`TileCsr`] is the read-only dataset chunk
//! produced by distributing a [`dalorex_graph::CsrGraph`] with a
//! [`crate::placement::Placement`]; [`TileState`] is the mutable
//! part (kernel arrays, variables, queues, counters).

use crate::kernel::{ArrayInit, ChannelDecl, LocalArrayDecl, LocalArrayLen, QueueCapacity, TaskDecl};
use crate::placement::{ArraySpace, Placement};
use crate::queues::WordQueue;
use dalorex_graph::CsrGraph;

/// The read-only chunk of the dataset owned by one tile.
///
/// Instead of replicating the paper's `ptr` array (whose entry `v+1` may
/// live on a different tile), each tile stores, per owned vertex, the global
/// begin and end edge indices of that vertex's adjacency — the same two
/// words task T1 reads, local under any vertex placement.  `DESIGN.md` §2
/// records this representation choice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TileCsr {
    /// Global edge index where each owned vertex's out-edges begin.
    pub row_begin: Vec<u32>,
    /// Global edge index one past each owned vertex's out-edges.
    pub row_end: Vec<u32>,
    /// Destination vertex (global id) of each owned edge.
    pub edge_idx: Vec<u32>,
    /// Weight of each owned edge.
    pub edge_values: Vec<u32>,
}

impl TileCsr {
    /// Scratchpad bytes occupied by this chunk (32-bit words).
    pub fn footprint_bytes(&self) -> usize {
        4 * (self.row_begin.len()
            + self.row_end.len()
            + self.edge_idx.len()
            + self.edge_values.len())
    }
}

/// Distributes a graph across tiles according to a placement.
///
/// Tile `t` receives `row_begin`/`row_end` for every vertex it owns (in
/// local-offset order) and the contiguous edge chunk
/// `[t * edges_per_tile, (t+1) * edges_per_tile)`.
pub fn distribute_graph(graph: &CsrGraph, placement: &Placement) -> Vec<TileCsr> {
    let num_tiles = placement.num_tiles();
    let mut chunks: Vec<TileCsr> = (0..num_tiles)
        .map(|tile| {
            let vertices = placement.local_len(ArraySpace::Vertex, tile);
            let edges = placement.local_len(ArraySpace::Edge, tile);
            TileCsr {
                row_begin: vec![0; vertices],
                row_end: vec![0; vertices],
                edge_idx: Vec::with_capacity(edges),
                edge_values: Vec::with_capacity(edges),
            }
        })
        .collect();

    let ptr = graph.ptr();
    for v in 0..graph.num_vertices() {
        let tile = placement.owner(ArraySpace::Vertex, v);
        let local = placement.to_local(ArraySpace::Vertex, v);
        chunks[tile].row_begin[local] = ptr[v];
        chunks[tile].row_end[local] = ptr[v + 1];
    }
    for e in 0..graph.num_edges() {
        let tile = placement.owner(ArraySpace::Edge, e);
        debug_assert_eq!(placement.to_local(ArraySpace::Edge, e), chunks[tile].edge_idx.len());
        chunks[tile].edge_idx.push(graph.edge_idx()[e]);
        chunks[tile].edge_values.push(graph.edge_values()[e]);
    }
    chunks
}

/// Activity counters accumulated by one tile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TileCounters {
    /// 32-bit scratchpad reads (arrays, variables and queue entries).
    pub sram_reads: u64,
    /// 32-bit scratchpad writes.
    pub sram_writes: u64,
    /// PU operations (ALU plus queue-register operations).
    pub pu_ops: u64,
    /// Cycles during which the PU was executing a task.
    pub pu_busy_cycles: u64,
    /// Invocations executed, per task.
    pub task_invocations: Vec<u64>,
    /// Edges processed (reported by the kernel via `count_edges`).
    pub edges_processed: u64,
    /// Messages sent into the network from this tile.
    pub messages_sent: u64,
    /// Messages drained from this tile's ejection buffers into task IQs.
    /// With `endpoint_drains_per_cycle > 1` a tile can receive several per
    /// cycle; conservation (`received == delivered` network-wide at
    /// quiescence) is what the property suite checks.
    pub messages_received: u64,
}

/// The mutable per-tile state of a running simulation.
#[derive(Debug, Clone)]
pub struct TileState {
    /// Tile id.
    pub tile: usize,
    /// Kernel arrays, in declaration order.
    pub arrays: Vec<Vec<u32>>,
    /// Per-tile scalar variables.
    pub vars: Vec<u32>,
    /// One input queue per task.
    pub iqs: Vec<WordQueue>,
    /// One channel queue per channel.
    pub cqs: Vec<WordQueue>,
    /// Cycle until which the PU is busy with the current task.
    pub pu_busy_until: u64,
    /// Activity counters.
    pub counters: TileCounters,
}

impl TileState {
    /// Builds the state for `tile` given the kernel declarations and the
    /// tile's share of the dataset.
    pub fn new(
        tile: usize,
        placement: &Placement,
        tasks: &[TaskDecl],
        channels: &[ChannelDecl],
        arrays: &[LocalArrayDecl],
        num_vars: usize,
    ) -> Self {
        let local_vertices = placement.local_len(ArraySpace::Vertex, tile);
        let local_edges = placement.local_len(ArraySpace::Edge, tile);
        let built_arrays = arrays
            .iter()
            .map(|decl| build_array(decl, tile, placement, local_vertices, local_edges))
            .collect();
        TileState {
            tile,
            arrays: built_arrays,
            vars: vec![0; num_vars],
            iqs: tasks
                .iter()
                .map(|t| {
                    let words = match t.iq_capacity {
                        QueueCapacity::Words(n) => n,
                        QueueCapacity::PerVertex => local_vertices,
                        QueueCapacity::VertexBlocks => local_vertices.div_ceil(32),
                    };
                    WordQueue::new(words.max(1))
                })
                .collect(),
            cqs: channels
                .iter()
                .map(|c| WordQueue::new(c.cq_capacity_words.max(1)))
                .collect(),
            pu_busy_until: 0,
            counters: TileCounters {
                task_invocations: vec![0; tasks.len()],
                ..TileCounters::default()
            },
        }
    }

    /// Whether the tile has any queued work (non-empty IQ or CQ) or a busy
    /// PU at `cycle`.  Used by the engine's active-tile tracking and by the
    /// hierarchical idle signal for termination.
    pub fn is_idle(&self, cycle: u64) -> bool {
        self.pu_busy_until <= cycle
            && self.iqs.iter().all(WordQueue::is_empty)
            && self.cqs.iter().all(WordQueue::is_empty)
    }

    /// Scratchpad bytes used by kernel arrays, variables and queues.
    pub fn kernel_footprint_bytes(&self) -> usize {
        let array_words: usize = self.arrays.iter().map(Vec::len).sum();
        let queue_words: usize = self.iqs.iter().map(WordQueue::capacity).sum::<usize>()
            + self.cqs.iter().map(WordQueue::capacity).sum::<usize>();
        4 * (array_words + self.vars.len() + queue_words)
    }
}

fn build_array(
    decl: &LocalArrayDecl,
    tile: usize,
    placement: &Placement,
    local_vertices: usize,
    local_edges: usize,
) -> Vec<u32> {
    let len = match decl.len {
        LocalArrayLen::PerVertex => local_vertices,
        LocalArrayLen::PerEdge => local_edges,
        LocalArrayLen::VertexBitmap => local_vertices.div_ceil(32),
        LocalArrayLen::Words(n) => n,
    };
    match &decl.init {
        ArrayInit::Zero => vec![0; len],
        ArrayInit::Const(v) => vec![*v; len],
        ArrayInit::MaxU32 => vec![u32::MAX; len],
        ArrayInit::GlobalVertexId => (0..len)
            .map(|local| placement.to_global(ArraySpace::Vertex, tile, local) as u32)
            .collect(),
        ArrayInit::PerVertexFn(f) => (0..len)
            .map(|local| f(placement.to_global(ArraySpace::Vertex, tile, local) as u32))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::TaskParams;
    use crate::placement::VertexPlacement;
    use dalorex_graph::{Edge, EdgeList};
    use std::sync::Arc;

    fn small_graph() -> CsrGraph {
        let edges = EdgeList::from_edges(
            6,
            [
                Edge::new(0, 1, 1),
                Edge::new(0, 2, 2),
                Edge::new(1, 3, 3),
                Edge::new(2, 4, 4),
                Edge::new(3, 5, 5),
                Edge::new(4, 5, 6),
                Edge::new(5, 0, 7),
            ],
        )
        .unwrap();
        CsrGraph::from_edge_list(&edges)
    }

    #[test]
    fn distribute_preserves_every_vertex_and_edge() {
        let graph = small_graph();
        for placement_kind in [VertexPlacement::Chunked, VertexPlacement::Interleaved] {
            let placement = Placement::new(3, 6, 7, placement_kind);
            let chunks = distribute_graph(&graph, &placement);
            assert_eq!(chunks.len(), 3);
            // Every vertex's row range is stored on its owner.
            for v in 0..6 {
                let tile = placement.owner(ArraySpace::Vertex, v);
                let local = placement.to_local(ArraySpace::Vertex, v);
                assert_eq!(chunks[tile].row_begin[local], graph.ptr()[v]);
                assert_eq!(chunks[tile].row_end[local], graph.ptr()[v + 1]);
            }
            // Edge chunks concatenate back to the global arrays.
            let all_edges: Vec<u32> = chunks.iter().flat_map(|c| c.edge_idx.clone()).collect();
            assert_eq!(all_edges, graph.edge_idx());
            let all_values: Vec<u32> =
                chunks.iter().flat_map(|c| c.edge_values.clone()).collect();
            assert_eq!(all_values, graph.edge_values());
        }
    }

    #[test]
    fn footprint_counts_words() {
        let graph = small_graph();
        let placement = Placement::new(2, 6, 7, VertexPlacement::Chunked);
        let chunks = distribute_graph(&graph, &placement);
        let total: usize = chunks.iter().map(TileCsr::footprint_bytes).sum();
        // 2 words per vertex + 2 words per edge.
        assert_eq!(total, 4 * (2 * 6 + 2 * 7));
    }

    fn test_decls() -> (Vec<TaskDecl>, Vec<ChannelDecl>, Vec<LocalArrayDecl>) {
        (
            vec![
                TaskDecl::new("T1", 32, TaskParams::SelfManaged),
                TaskDecl::new("T2", 64, TaskParams::AutoPop(2)),
            ],
            vec![ChannelDecl::new("CQ1", 1, ArraySpace::Vertex, 2, 16)],
            vec![
                LocalArrayDecl::new("dist", LocalArrayLen::PerVertex, ArrayInit::MaxU32),
                LocalArrayDecl::new("frontier", LocalArrayLen::VertexBitmap, ArrayInit::Zero),
                LocalArrayDecl::new("labels", LocalArrayLen::PerVertex, ArrayInit::GlobalVertexId),
                LocalArrayDecl::new(
                    "x",
                    LocalArrayLen::PerVertex,
                    ArrayInit::PerVertexFn(Arc::new(|v| v + 100)),
                ),
                LocalArrayDecl::new("scratch", LocalArrayLen::Words(4), ArrayInit::Const(9)),
            ],
        )
    }

    #[test]
    fn tile_state_builds_arrays_with_declared_inits() {
        let placement = Placement::new(2, 10, 20, VertexPlacement::Interleaved);
        let (tasks, channels, arrays) = test_decls();
        let state = TileState::new(1, &placement, &tasks, &channels, &arrays, 3);
        assert_eq!(state.arrays.len(), 5);
        // Tile 1 owns vertices 1, 3, 5, 7, 9 under interleaved placement.
        assert_eq!(state.arrays[0], vec![u32::MAX; 5]);
        assert_eq!(state.arrays[1].len(), 1); // bitmap: ceil(5/32)
        assert_eq!(state.arrays[2], vec![1, 3, 5, 7, 9]);
        assert_eq!(state.arrays[3], vec![101, 103, 105, 107, 109]);
        assert_eq!(state.arrays[4], vec![9, 9, 9, 9]);
        assert_eq!(state.vars, vec![0, 0, 0]);
        assert_eq!(state.iqs.len(), 2);
        assert_eq!(state.cqs.len(), 1);
        assert!(state.is_idle(0));
        assert!(state.kernel_footprint_bytes() > 0);
    }

    #[test]
    fn tile_is_not_idle_with_queued_work_or_busy_pu() {
        let placement = Placement::new(2, 10, 20, VertexPlacement::Chunked);
        let (tasks, channels, arrays) = test_decls();
        let mut state = TileState::new(0, &placement, &tasks, &channels, &arrays, 0);
        assert!(state.is_idle(5));
        state.iqs[0].try_push(&[7]);
        assert!(!state.is_idle(5));
        state.iqs[0].pop_word();
        state.pu_busy_until = 10;
        assert!(!state.is_idle(5));
        assert!(state.is_idle(10));
    }
}
