//! Per-tile state: the distributed dataset chunk, kernel arrays, queues and
//! activity counters.
//!
//! A Dalorex tile (paper Fig. 4) is dominated by its scratchpad, which holds
//! the tile's chunk of every dataset array, the kernel's state arrays, the
//! task code and the queues.  [`TileCsr`] is the read-only dataset chunk
//! produced by distributing a [`dalorex_graph::CsrGraph`] with a
//! [`crate::placement::Placement`]; [`TileState`] is the mutable
//! part (kernel arrays, variables, queues, counters).
//!
//! # Arena layout and lazy materialization
//!
//! The mutable scratchpad image of a tile is a single `Vec<u32>` arena slab
//! laid out `[kernel arrays][variables][IQ rings][CQ rings]`, indexed by
//! `u32` spans ([`crate::queues::WordQueue`] descriptors and array spans) —
//! one allocation per tile instead of one per array and per queue, sized
//! exactly like the hardware scratchpad it models.  A tile starts *hollow*:
//! no slab, no queues, no counters vector.  The first mutation (an IQ/CQ
//! push from the network or bootstrap, an array or variable write)
//! materializes the slab with the declared initial values; reads on a
//! hollow tile compute those declared values on the fly, so laziness is
//! invisible to the modelled schedule.  The declaration-derived metadata a
//! materialization needs ([`TileInit`]: capacity rules, array declarations,
//! readiness metadata) is shared across every tile behind an `Arc`, and the
//! vertex mapping is captured as the affine
//! [`crate::placement::Placement::vertex_affine`] pair, so a hollow tile
//! is a few dozen bytes.  [`TileState::arena_bytes`] (0 while hollow) is
//! what the memory budget report sums per tile.
//!
//! # Incremental readiness tracking
//!
//! [`TileState`] is on the engine's per-tile per-cycle path, so it answers
//! the TSU's standing questions in O(1) instead of rescanning queues:
//!
//! * **Idle?** — a single queued-word counter, maintained at every queue
//!   mutation, makes [`TileState::is_idle`] a counter-and-comparison.
//! * **Which task can dispatch?** — a per-tile *task-ready bitmask* (bit
//!   `t` set when task `t` satisfies [`crate::tsu::Scheduler::is_eligible`])
//!   is updated at the mutation points; the scheduler walks set bits
//!   instead of probing queues.
//! * **Which channel can inject?** — a *channel-ready bitmask* (bit `c`
//!   set when channel `c`'s CQ holds at least one full message) drives the
//!   engine's inject loop.
//!
//! Every queue mutation therefore goes through a [`TileState`] method
//! (`push_iq`, `pop_cq_into`, ...) rather than touching a queue directly;
//! the queues themselves are read-only to the outside
//! ([`TileState::iqs`] / [`TileState::cqs`]).  The mask-free rescans the
//! masks replaced are preserved as [`TileState::is_idle_scan`] and
//! [`crate::tsu::Scheduler::pick_reference`], which the engine's reference
//! tile path and the equivalence tests drive.
//!
//! Masks are maintained exactly for kernels with at most 64 tasks and 64
//! channels (the paper's kernels declare at most four of each); beyond
//! that [`TileState::masks_exact`] reports `false` and consumers fall back
//! to the scanning path.

use crate::kernel::{
    ArrayInit, ChannelDecl, LocalArrayDecl, LocalArrayLen, QueueCapacity, TaskDecl, TaskParams,
};
use crate::placement::{ArraySpace, Placement};
use crate::queues::WordQueue;
use dalorex_graph::CsrGraph;
use std::sync::Arc;

/// The read-only chunk of the dataset owned by one tile.
///
/// Instead of replicating the paper's `ptr` array (whose entry `v+1` may
/// live on a different tile), each tile stores, per owned vertex, the global
/// begin and end edge indices of that vertex's adjacency — the same two
/// words task T1 reads, local under any vertex placement.  `DESIGN.md` §2
/// records this representation choice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TileCsr {
    /// Global edge index where each owned vertex's out-edges begin.
    pub row_begin: Vec<u32>,
    /// Global edge index one past each owned vertex's out-edges.
    pub row_end: Vec<u32>,
    /// Destination vertex (global id) of each owned edge.
    pub edge_idx: Vec<u32>,
    /// Weight of each owned edge.
    pub edge_values: Vec<u32>,
}

impl TileCsr {
    /// Scratchpad bytes occupied by this chunk (32-bit words).
    pub fn footprint_bytes(&self) -> usize {
        4 * (self.row_begin.len()
            + self.row_end.len()
            + self.edge_idx.len()
            + self.edge_values.len())
    }
}

/// Distributes a graph across tiles according to a placement.
///
/// Tile `t` receives `row_begin`/`row_end` for every vertex it owns (in
/// local-offset order) and the contiguous edge chunk
/// `[t * edges_per_tile, (t+1) * edges_per_tile)`.
pub fn distribute_graph(graph: &CsrGraph, placement: &Placement) -> Vec<TileCsr> {
    let num_tiles = placement.num_tiles();
    let mut chunks: Vec<TileCsr> = (0..num_tiles)
        .map(|tile| {
            let vertices = placement.local_len(ArraySpace::Vertex, tile);
            let edges = placement.local_len(ArraySpace::Edge, tile);
            TileCsr {
                row_begin: vec![0; vertices],
                row_end: vec![0; vertices],
                edge_idx: Vec::with_capacity(edges),
                edge_values: Vec::with_capacity(edges),
            }
        })
        .collect();

    let ptr = graph.ptr();
    for v in 0..graph.num_vertices() {
        let tile = placement.owner(ArraySpace::Vertex, v);
        let local = placement.to_local(ArraySpace::Vertex, v);
        chunks[tile].row_begin[local] = ptr[v];
        chunks[tile].row_end[local] = ptr[v + 1];
    }
    for e in 0..graph.num_edges() {
        let tile = placement.owner(ArraySpace::Edge, e);
        debug_assert_eq!(placement.to_local(ArraySpace::Edge, e), chunks[tile].edge_idx.len());
        chunks[tile].edge_idx.push(graph.edge_idx()[e]);
        chunks[tile].edge_values.push(graph.edge_values()[e]);
    }
    chunks
}

/// Activity counters accumulated by one tile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TileCounters {
    /// 32-bit scratchpad reads (arrays, variables and queue entries).
    pub sram_reads: u64,
    /// 32-bit scratchpad writes.
    pub sram_writes: u64,
    /// PU operations (ALU plus queue-register operations).
    pub pu_ops: u64,
    /// Cycles during which the PU was executing a task.
    pub pu_busy_cycles: u64,
    /// Invocations executed, per task.  Empty until the tile materializes
    /// (an all-zero vector and an absent one aggregate identically).
    pub task_invocations: Vec<u64>,
    /// Edges processed (reported by the kernel via `count_edges`).
    pub edges_processed: u64,
    /// Messages sent into the network from this tile.
    pub messages_sent: u64,
    /// Messages drained from this tile's ejection buffers into task IQs.
    /// With `endpoint_drains_per_cycle > 1` a tile can receive several per
    /// cycle; conservation (`received == delivered` network-wide at
    /// quiescence) is what the property suite checks.
    pub messages_received: u64,
    /// Task dispatches whose PU cost a fault-plan PU slowdown multiplied.
    /// The fault counters feed the per-run `FaultReport`, not `SimStats` —
    /// they are attribution metadata, not modelled activity.
    pub fault_dispatches_slowed: u64,
    /// Extra PU-busy cycles those slowed dispatches cost versus fault-free.
    pub fault_extra_pu_cycles: u64,
    /// Messages drained or injected on cycles an endpoint-throttle fault
    /// capped this tile's bandwidth.
    pub fault_throttled_messages: u64,
}

/// Per-task scheduling metadata derived from the kernel declarations once,
/// at [`TileInit`] construction, so the readiness masks can be recomputed
/// without consulting the declarations again.
#[derive(Debug)]
struct ReadyMeta {
    /// Minimum IQ words for the task to have input: `AutoPop(n)` needs `n`,
    /// `SelfManaged` needs 1, and the (invalid, engine-rejected)
    /// `AutoPop(0)` is encoded as `usize::MAX` so it is never ready —
    /// exactly the `n > 0` guard in `Scheduler::is_eligible`.
    iq_need: Vec<usize>,
    /// Per task, the `(channel, words)` output-space guarantees.
    cq_reqs: Vec<Box<[(usize, usize)]>>,
    /// Per task, the `(task, words)` local-IQ output-space guarantees.
    iq_reqs: Vec<Box<[(usize, usize)]>>,
    /// Per channel, the tasks whose eligibility watches that CQ's free
    /// space (the reverse map of `cq_reqs`).
    cq_watchers: Vec<Box<[usize]>>,
    /// Per task IQ, the *other* tasks whose eligibility watches its free
    /// space (the reverse map of `iq_reqs`).
    iq_watchers: Vec<Box<[usize]>>,
    /// Per channel, the words of one full message (`flits_per_message`).
    cq_msg_words: Vec<usize>,
    /// Whether the bitmasks are maintained exactly (tasks and channels both
    /// fit 64 bits).
    exact: bool,
}

impl ReadyMeta {
    fn new(tasks: &[TaskDecl], channels: &[ChannelDecl]) -> Self {
        let iq_need = tasks
            .iter()
            .map(|t| match t.params {
                TaskParams::AutoPop(0) => usize::MAX,
                TaskParams::AutoPop(n) => n,
                TaskParams::SelfManaged => 1,
            })
            .collect();
        let cq_reqs: Vec<Box<[(usize, usize)]>> = tasks
            .iter()
            .map(|t| t.cq_space_required.clone().into_boxed_slice())
            .collect();
        let mut cq_watchers: Vec<Vec<usize>> = vec![Vec::new(); channels.len()];
        for (task, reqs) in cq_reqs.iter().enumerate() {
            for &(channel, _) in reqs.iter() {
                if channel < channels.len() && !cq_watchers[channel].contains(&task) {
                    cq_watchers[channel].push(task);
                }
            }
        }
        let iq_reqs: Vec<Box<[(usize, usize)]>> = tasks
            .iter()
            .map(|t| t.iq_space_required.clone().into_boxed_slice())
            .collect();
        let mut iq_watchers: Vec<Vec<usize>> = vec![Vec::new(); tasks.len()];
        for (task, reqs) in iq_reqs.iter().enumerate() {
            for &(watched, _) in reqs.iter() {
                if watched < tasks.len() && watched != task && !iq_watchers[watched].contains(&task)
                {
                    iq_watchers[watched].push(task);
                }
            }
        }
        ReadyMeta {
            iq_need,
            cq_reqs,
            iq_reqs,
            cq_watchers: cq_watchers.into_iter().map(Vec::into_boxed_slice).collect(),
            iq_watchers: iq_watchers.into_iter().map(Vec::into_boxed_slice).collect(),
            cq_msg_words: channels.iter().map(|c| c.flits_per_message).collect(),
            exact: tasks.len() <= 64 && channels.len() <= 64,
        }
    }
}

/// Declaration-derived tile metadata, built once per run and shared across
/// every [`TileState`] behind an `Arc` — everything a hollow tile needs to
/// materialize its arena or to answer reads without one.
#[derive(Debug)]
pub struct TileInit {
    /// Per-task IQ capacity rule.
    iq_capacity: Vec<QueueCapacity>,
    /// Per-channel CQ capacity in words.
    cq_capacity_words: Vec<usize>,
    /// Kernel array declarations, in declaration order.
    arrays: Vec<LocalArrayDecl>,
    /// Number of per-tile scalar variables.
    num_vars: usize,
    /// Readiness metadata (see [`ReadyMeta`]).
    meta: ReadyMeta,
}

impl TileInit {
    /// Captures the kernel declarations' tile-shaping facts.
    pub fn new(
        tasks: &[TaskDecl],
        channels: &[ChannelDecl],
        arrays: &[LocalArrayDecl],
        num_vars: usize,
    ) -> Self {
        TileInit {
            iq_capacity: tasks.iter().map(|t| t.iq_capacity).collect(),
            cq_capacity_words: channels.iter().map(|c| c.cq_capacity_words).collect(),
            arrays: arrays.to_vec(),
            num_vars,
            meta: ReadyMeta::new(tasks, channels),
        }
    }

    /// Number of declared tasks.
    pub fn num_tasks(&self) -> usize {
        self.iq_capacity.len()
    }

    /// Number of declared channels.
    pub fn num_channels(&self) -> usize {
        self.cq_capacity_words.len()
    }
}

/// Declared length of a kernel array on a tile owning `local_vertices`
/// vertices and `local_edges` edges.
fn declared_array_len(len: LocalArrayLen, local_vertices: usize, local_edges: usize) -> usize {
    match len {
        LocalArrayLen::PerVertex => local_vertices,
        LocalArrayLen::PerEdge => local_edges,
        LocalArrayLen::VertexBitmap => local_vertices.div_ceil(32),
        LocalArrayLen::Words(n) => n,
    }
}

/// Declared IQ capacity in words for a tile owning `local_vertices`.
fn declared_iq_words(capacity: QueueCapacity, local_vertices: usize) -> usize {
    let words = match capacity {
        QueueCapacity::Words(n) => n,
        QueueCapacity::PerVertex => local_vertices,
        QueueCapacity::VertexBlocks => local_vertices.div_ceil(32),
    };
    words.max(1)
}

/// A `u32`-indexed window of a tile's arena slab holding one kernel array.
#[derive(Debug, Clone, Copy)]
struct Span {
    off: u32,
    len: u32,
}

impl Span {
    fn new(off: usize, len: usize) -> Self {
        let end = off
            .checked_add(len)
            .filter(|&e| e <= u32::MAX as usize)
            .expect("tile arena span exceeds the 32-bit index space");
        let _ = end;
        Span {
            off: off as u32,
            len: len as u32,
        }
    }

    fn range(self) -> std::ops::Range<usize> {
        self.off as usize..(self.off + self.len) as usize
    }
}

/// The mutable per-tile state of a running simulation.
#[derive(Debug, Clone)]
pub struct TileState {
    /// Tile id.
    pub tile: usize,
    /// Shared declaration-derived metadata.
    init: Arc<TileInit>,
    /// Vertices this tile owns.
    local_vertices: u32,
    /// Edges this tile owns.
    local_edges: u32,
    /// `global_vertex = vertex_base + local * vertex_stride`.
    vertex_base: usize,
    /// See `vertex_base`.
    vertex_stride: usize,
    /// The arena slab: `[arrays][vars][IQ rings][CQ rings]`.  Empty until
    /// the tile materializes.
    slab: Vec<u32>,
    /// Kernel array windows into the slab, in declaration order.
    array_spans: Box<[Span]>,
    /// First slab index of the variables window.
    vars_off: u32,
    /// One input queue per task.  Private so every mutation flows through
    /// the counter-maintaining methods below.
    iqs: Box<[WordQueue]>,
    /// One channel queue per channel.
    cqs: Box<[WordQueue]>,
    /// Whether the arena has been materialized.
    materialized: bool,
    /// Cycle until which the PU is busy with the current task.
    pub pu_busy_until: u64,
    /// Activity counters.
    pub counters: TileCounters,
    /// Total words queued across every IQ and CQ (the O(1) idle signal).
    queued_words: usize,
    /// Bit `t` set when task `t` is dispatch-eligible (valid when
    /// `meta.exact`).
    task_ready: u64,
    /// Bit `c` set when channel `c`'s CQ holds at least one full message
    /// (valid when `meta.exact`).
    cq_ready: u64,
}

impl TileState {
    /// Builds the state for `tile` given the kernel declarations and the
    /// tile's share of the dataset, materialized eagerly (the historical
    /// constructor, used by tests and the eager-init oracle; runs share one
    /// [`TileInit`] via [`TileState::hollow`] instead).
    pub fn new(
        tile: usize,
        placement: &Placement,
        tasks: &[TaskDecl],
        channels: &[ChannelDecl],
        arrays: &[LocalArrayDecl],
        num_vars: usize,
    ) -> Self {
        let init = Arc::new(TileInit::new(tasks, channels, arrays, num_vars));
        let mut state = TileState::hollow(tile, placement, init);
        state.materialize();
        state
    }

    /// Builds a hollow (unmaterialized) tile: no arena, no queues, no
    /// counters vector — a few dozen bytes regardless of dataset size.
    /// The first mutation materializes it; reads before that compute the
    /// declared initial values.
    pub fn hollow(tile: usize, placement: &Placement, init: Arc<TileInit>) -> Self {
        let local_vertices = placement.local_len(ArraySpace::Vertex, tile);
        let local_edges = placement.local_len(ArraySpace::Edge, tile);
        let (vertex_base, vertex_stride) = placement.vertex_affine(tile);
        TileState {
            tile,
            init,
            local_vertices: u32::try_from(local_vertices)
                .expect("per-tile vertex count exceeds the 32-bit index space"),
            local_edges: u32::try_from(local_edges)
                .expect("per-tile edge count exceeds the 32-bit index space"),
            vertex_base,
            vertex_stride,
            slab: Vec::new(),
            array_spans: Box::new([]),
            vars_off: 0,
            iqs: Box::new([]),
            cqs: Box::new([]),
            materialized: false,
            pu_busy_until: 0,
            counters: TileCounters::default(),
            queued_words: 0,
            task_ready: 0,
            cq_ready: 0,
        }
    }

    /// Whether the arena slab has been allocated.
    pub fn is_materialized(&self) -> bool {
        self.materialized
    }

    /// Heap bytes held by this tile's arena slab (0 while hollow) — the
    /// per-tile line the memory budget report sums.
    pub fn arena_bytes(&self) -> usize {
        self.slab.len() * std::mem::size_of::<u32>()
    }

    /// Allocates and initializes the arena slab.  Idempotent; called
    /// automatically by every mutation, or eagerly by
    /// `EngineState::prepare` under the eager-init policy.
    pub fn materialize(&mut self) {
        if self.materialized {
            return;
        }
        let lv = self.local_vertices as usize;
        let le = self.local_edges as usize;
        let init = Arc::clone(&self.init);

        let mut off = 0usize;
        let array_spans: Box<[Span]> = init
            .arrays
            .iter()
            .map(|decl| {
                let len = declared_array_len(decl.len, lv, le);
                let span = Span::new(off, len);
                off += len;
                span
            })
            .collect();
        let vars_off = off;
        off += init.num_vars;
        let iqs: Box<[WordQueue]> = init
            .iq_capacity
            .iter()
            .map(|&capacity| {
                let words = declared_iq_words(capacity, lv);
                let q = WordQueue::new(off, words);
                off += words;
                q
            })
            .collect();
        let cqs: Box<[WordQueue]> = init
            .cq_capacity_words
            .iter()
            .map(|&capacity| {
                let words = capacity.max(1);
                let q = WordQueue::new(off, words);
                off += words;
                q
            })
            .collect();
        assert!(
            off <= u32::MAX as usize,
            "tile arena exceeds the 32-bit index space"
        );

        let mut slab = vec![0u32; off];
        for (decl, span) in init.arrays.iter().zip(array_spans.iter()) {
            let window = &mut slab[span.range()];
            match &decl.init {
                ArrayInit::Zero => {}
                ArrayInit::Const(v) => window.fill(*v),
                ArrayInit::MaxU32 => window.fill(u32::MAX),
                ArrayInit::GlobalVertexId => {
                    for (local, word) in window.iter_mut().enumerate() {
                        *word = (self.vertex_base + local * self.vertex_stride) as u32;
                    }
                }
                ArrayInit::PerVertexFn(f) => {
                    for (local, word) in window.iter_mut().enumerate() {
                        *word = f((self.vertex_base + local * self.vertex_stride) as u32);
                    }
                }
            }
        }

        self.slab = slab;
        self.array_spans = array_spans;
        self.vars_off = vars_off as u32;
        self.iqs = iqs;
        self.cqs = cqs;
        self.counters.task_invocations = vec![0; init.num_tasks()];
        self.materialized = true;
        self.rebuild_masks();
    }

    /// The task input queues, in declaration order (read-only: mutations go
    /// through [`TileState::push_iq`] and friends so the incremental
    /// counters stay exact).  Empty while the tile is hollow; use the
    /// capacity/occupancy accessors for hollow-safe reads.
    pub fn iqs(&self) -> &[WordQueue] {
        &self.iqs
    }

    /// The channel (output) queues, in declaration order (read-only).
    /// Empty while the tile is hollow.
    pub fn cqs(&self) -> &[WordQueue] {
        &self.cqs
    }

    /// Whether the readiness bitmasks are maintained exactly (at most 64
    /// tasks and 64 channels).  When false, consumers fall back to the
    /// scanning paths.
    pub fn masks_exact(&self) -> bool {
        self.init.meta.exact
    }

    /// Bitmask of dispatch-eligible tasks (bit `t` set when task `t`
    /// satisfies [`crate::tsu::Scheduler::is_eligible`]).  Only meaningful
    /// when [`TileState::masks_exact`].
    pub fn task_ready_mask(&self) -> u64 {
        self.task_ready
    }

    /// Bitmask of channels whose CQ holds at least one full message.  Only
    /// meaningful when [`TileState::masks_exact`].
    pub fn cq_ready_mask(&self) -> u64 {
        self.cq_ready
    }

    /// Total words queued across all IQs and CQs.
    pub fn queued_words(&self) -> usize {
        self.queued_words
    }

    /// Occupancy of task `task`'s IQ in words (0 while hollow).
    pub fn iq_len(&self, task: usize) -> usize {
        if self.materialized {
            self.iqs[task].len()
        } else {
            0
        }
    }

    /// Free space in task `task`'s IQ in words (the full declared capacity
    /// while hollow).
    pub fn iq_free(&self, task: usize) -> usize {
        if self.materialized {
            self.iqs[task].free()
        } else {
            declared_iq_words(self.init.iq_capacity[task], self.local_vertices as usize)
        }
    }

    /// Free space in channel `channel`'s CQ in words (the full declared
    /// capacity while hollow).
    pub fn cq_free(&self, channel: usize) -> usize {
        if self.materialized {
            self.cqs[channel].free()
        } else {
            self.init.cq_capacity_words[channel].max(1)
        }
    }

    /// The head word of task `task`'s IQ without consuming it.
    pub fn iq_peek(&self, task: usize) -> Option<u32> {
        if self.materialized {
            self.iqs[task].peek(&self.slab)
        } else {
            None
        }
    }

    /// The head word of channel `channel`'s CQ without consuming it.
    pub fn cq_peek(&self, channel: usize) -> Option<u32> {
        if self.materialized {
            self.cqs[channel].peek(&self.slab)
        } else {
            None
        }
    }

    /// Pushes an invocation into task `task`'s IQ; returns `false` if it
    /// does not fit.  Materializes a hollow tile.
    pub fn push_iq(&mut self, task: usize, words: &[u32]) -> bool {
        self.materialize();
        let accepted = self.iqs[task].try_push(&mut self.slab, words);
        if accepted {
            self.queued_words += words.len();
            self.note_iq_changed(task);
        }
        accepted
    }

    /// Pops one word from task `task`'s IQ (the self-managed `iq_pop`).
    pub fn pop_iq_word(&mut self, task: usize) -> Option<u32> {
        if !self.materialized {
            return None;
        }
        let word = self.iqs[task].pop_word(&self.slab);
        if word.is_some() {
            self.queued_words -= 1;
            self.note_iq_changed(task);
        }
        word
    }

    /// Pops `count` words from task `task`'s IQ into `out[..count]`,
    /// allocation-free.  Returns `false` (queue unchanged) if fewer than
    /// `count` words are queued.
    pub fn pop_iq_into(&mut self, task: usize, count: usize, out: &mut [u32]) -> bool {
        if !self.materialized {
            return false;
        }
        let popped = self.iqs[task].pop_invocation_into(&self.slab, count, out);
        if popped {
            self.queued_words -= count;
            self.note_iq_changed(task);
        }
        popped
    }

    /// `Vec`-returning variant of [`TileState::pop_iq_into`], preserved for
    /// the reference tile path and tests.
    pub fn pop_iq_invocation(&mut self, task: usize, count: usize) -> Option<Vec<u32>> {
        if !self.materialized {
            return None;
        }
        let popped = self.iqs[task].pop_invocation(&self.slab, count);
        if popped.is_some() {
            self.queued_words -= count;
            self.note_iq_changed(task);
        }
        popped
    }

    /// Pushes a message into channel `channel`'s CQ; returns `false` if it
    /// does not fit.  Materializes a hollow tile.
    pub fn push_cq(&mut self, channel: usize, words: &[u32]) -> bool {
        self.materialize();
        let accepted = self.cqs[channel].try_push(&mut self.slab, words);
        if accepted {
            self.queued_words += words.len();
            self.note_cq_changed(channel);
        }
        accepted
    }

    /// Pops `count` words from channel `channel`'s CQ into `out[..count]`,
    /// allocation-free.  Returns `false` (queue unchanged) if fewer than
    /// `count` words are queued.
    pub fn pop_cq_into(&mut self, channel: usize, count: usize, out: &mut [u32]) -> bool {
        if !self.materialized {
            return false;
        }
        let popped = self.cqs[channel].pop_invocation_into(&self.slab, count, out);
        if popped {
            self.queued_words -= count;
            self.note_cq_changed(channel);
        }
        popped
    }

    /// `Vec`-returning variant of [`TileState::pop_cq_into`], preserved for
    /// the reference tile path and tests.
    pub fn pop_cq_invocation(&mut self, channel: usize, count: usize) -> Option<Vec<u32>> {
        if !self.materialized {
            return None;
        }
        let popped = self.cqs[channel].pop_invocation(&self.slab, count);
        if popped.is_some() {
            self.queued_words -= count;
            self.note_cq_changed(channel);
        }
        popped
    }

    /// Restores a speculatively popped message at the head of channel
    /// `channel`'s CQ (the network rejected the injection this cycle).
    ///
    /// # Panics
    ///
    /// Panics if the words no longer fit (they always do when undoing a pop
    /// performed in the same cycle).
    pub fn restore_cq_front(&mut self, channel: usize, words: &[u32]) {
        self.materialize();
        self.cqs[channel].push_front_invocation(&mut self.slab, words);
        self.queued_words += words.len();
        self.note_cq_changed(channel);
    }

    /// Declared length of kernel array `array` on this tile (hollow-safe).
    pub fn array_len(&self, array: usize) -> usize {
        let decl = &self.init.arrays[array];
        declared_array_len(decl.len, self.local_vertices as usize, self.local_edges as usize)
    }

    /// Kernel array `array` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tile is hollow (use [`TileState::read_array_word`] for
    /// hollow-safe reads).
    pub fn array(&self, array: usize) -> &[u32] {
        assert!(
            self.materialized,
            "array slice read on an unmaterialized tile (use read_array_word)"
        );
        &self.slab[self.array_spans[array].range()]
    }

    /// Reads `array[index]`, computing the declared initial value when the
    /// tile is hollow — the read an idle tile would serve without ever
    /// allocating its arena.
    pub fn read_array_word(&self, array: usize, index: usize) -> u32 {
        if self.materialized {
            let span = self.array_spans[array];
            assert!(index < span.len as usize, "array index out of bounds");
            self.slab[span.off as usize + index]
        } else {
            assert!(index < self.array_len(array), "array index out of bounds");
            match &self.init.arrays[array].init {
                ArrayInit::Zero => 0,
                ArrayInit::Const(v) => *v,
                ArrayInit::MaxU32 => u32::MAX,
                ArrayInit::GlobalVertexId => {
                    (self.vertex_base + index * self.vertex_stride) as u32
                }
                ArrayInit::PerVertexFn(f) => {
                    f((self.vertex_base + index * self.vertex_stride) as u32)
                }
            }
        }
    }

    /// Writes `array[index] = value`, materializing a hollow tile.
    pub fn write_array_word(&mut self, array: usize, index: usize, value: u32) {
        self.materialize();
        let span = self.array_spans[array];
        assert!(index < span.len as usize, "array index out of bounds");
        self.slab[span.off as usize + index] = value;
    }

    /// Number of per-tile scalar variables.
    pub fn num_vars(&self) -> usize {
        self.init.num_vars
    }

    /// Reads variable `index` (0 while hollow — variables start zeroed).
    pub fn var(&self, index: usize) -> u32 {
        assert!(index < self.init.num_vars, "variable index out of bounds");
        if self.materialized {
            self.slab[self.vars_off as usize + index]
        } else {
            0
        }
    }

    /// Writes variable `index`, materializing a hollow tile.
    pub fn set_var(&mut self, index: usize, value: u32) {
        assert!(index < self.init.num_vars, "variable index out of bounds");
        self.materialize();
        self.slab[self.vars_off as usize + index] = value;
    }

    /// The variables window as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tile is hollow (use [`TileState::var`] for hollow-safe
    /// reads).
    pub fn vars(&self) -> &[u32] {
        assert!(
            self.materialized,
            "vars slice read on an unmaterialized tile (use var)"
        );
        let off = self.vars_off as usize;
        &self.slab[off..off + self.init.num_vars]
    }

    /// Recomputes every readiness bit from scratch (materialization and
    /// debug-mode validation).
    fn rebuild_masks(&mut self) {
        if !self.init.meta.exact {
            return;
        }
        self.task_ready = 0;
        for task in 0..self.iqs.len() {
            if self.compute_task_ready(task) {
                self.task_ready |= 1u64 << task;
            }
        }
        self.cq_ready = 0;
        for channel in 0..self.cqs.len() {
            if self.cqs[channel].len() >= self.init.meta.cq_msg_words[channel] {
                self.cq_ready |= 1u64 << channel;
            }
        }
    }

    /// Whether task `task` is dispatch-eligible, computed from the stored
    /// metadata.  Kept bit-identical to
    /// [`crate::tsu::Scheduler::is_eligible`]; the scheduler debug-asserts
    /// the two agree.
    fn compute_task_ready(&self, task: usize) -> bool {
        if self.iqs[task].len() < self.init.meta.iq_need[task] {
            return false;
        }
        self.init.meta.cq_reqs[task]
            .iter()
            .all(|&(channel, words)| self.cqs[channel].free() >= words)
            && self.init.meta.iq_reqs[task]
                .iter()
                .all(|&(watched, words)| self.iqs[watched].free() >= words)
    }

    #[inline]
    fn note_iq_changed(&mut self, task: usize) {
        if !self.init.meta.exact {
            return;
        }
        let bit = 1u64 << task;
        if self.compute_task_ready(task) {
            self.task_ready |= bit;
        } else {
            self.task_ready &= !bit;
        }
        // An IQ mutation moves its free space, which can flip the
        // eligibility of tasks holding an output-space guarantee on it (T4
        // watches T1's IQ).
        for i in 0..self.init.meta.iq_watchers[task].len() {
            let watcher = self.init.meta.iq_watchers[task][i];
            let watcher_bit = 1u64 << watcher;
            if self.compute_task_ready(watcher) {
                self.task_ready |= watcher_bit;
            } else {
                self.task_ready &= !watcher_bit;
            }
        }
    }

    #[inline]
    fn note_cq_changed(&mut self, channel: usize) {
        if !self.init.meta.exact {
            return;
        }
        let bit = 1u64 << channel;
        if self.cqs[channel].len() >= self.init.meta.cq_msg_words[channel] {
            self.cq_ready |= bit;
        } else {
            self.cq_ready &= !bit;
        }
        // A CQ mutation moves its free space, which can flip the
        // eligibility of every task holding an output-space guarantee on
        // this channel.
        for i in 0..self.init.meta.cq_watchers[channel].len() {
            let task = self.init.meta.cq_watchers[channel][i];
            let task_bit = 1u64 << task;
            if self.compute_task_ready(task) {
                self.task_ready |= task_bit;
            } else {
                self.task_ready &= !task_bit;
            }
        }
    }

    /// Whether the tile has any queued work (non-empty IQ or CQ) or a busy
    /// PU at `cycle`, in O(1) via the incrementally maintained queued-word
    /// counter.  Used by the engine's active-tile tracking and by the
    /// hierarchical idle signal for termination.
    pub fn is_idle(&self, cycle: u64) -> bool {
        debug_assert_eq!(self.queued_words == 0, self.scan_queues_empty());
        self.pu_busy_until <= cycle && self.queued_words == 0
    }

    /// The pre-overhaul idle check, scanning every queue — preserved for
    /// the reference tile path and as the oracle the O(1) counter is
    /// validated against.
    pub fn is_idle_scan(&self, cycle: u64) -> bool {
        self.pu_busy_until <= cycle && self.scan_queues_empty()
    }

    fn scan_queues_empty(&self) -> bool {
        self.iqs.iter().all(WordQueue::is_empty) && self.cqs.iter().all(WordQueue::is_empty)
    }

    /// Scratchpad bytes the kernel's arrays, variables and queues occupy on
    /// this tile, computed from the declarations — the *modelled* hardware
    /// footprint, identical whether or not the simulator has materialized
    /// the arena (and equal to [`TileState::arena_bytes`] once it has).
    pub fn kernel_footprint_bytes(&self) -> usize {
        let lv = self.local_vertices as usize;
        let le = self.local_edges as usize;
        let array_words: usize = self
            .init
            .arrays
            .iter()
            .map(|decl| declared_array_len(decl.len, lv, le))
            .sum();
        let queue_words: usize = self
            .init
            .iq_capacity
            .iter()
            .map(|&c| declared_iq_words(c, lv))
            .sum::<usize>()
            + self
                .init
                .cq_capacity_words
                .iter()
                .map(|&c| c.max(1))
                .sum::<usize>();
        4 * (array_words + self.init.num_vars + queue_words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::VertexPlacement;
    use dalorex_graph::{Edge, EdgeList};
    use std::sync::Arc;

    fn small_graph() -> CsrGraph {
        let edges = EdgeList::from_edges(
            6,
            [
                Edge::new(0, 1, 1),
                Edge::new(0, 2, 2),
                Edge::new(1, 3, 3),
                Edge::new(2, 4, 4),
                Edge::new(3, 5, 5),
                Edge::new(4, 5, 6),
                Edge::new(5, 0, 7),
            ],
        )
        .unwrap();
        CsrGraph::from_edge_list(&edges)
    }

    #[test]
    fn distribute_preserves_every_vertex_and_edge() {
        let graph = small_graph();
        for placement_kind in [VertexPlacement::Chunked, VertexPlacement::Interleaved] {
            let placement = Placement::new(3, 6, 7, placement_kind);
            let chunks = distribute_graph(&graph, &placement);
            assert_eq!(chunks.len(), 3);
            // Every vertex's row range is stored on its owner.
            for v in 0..6 {
                let tile = placement.owner(ArraySpace::Vertex, v);
                let local = placement.to_local(ArraySpace::Vertex, v);
                assert_eq!(chunks[tile].row_begin[local], graph.ptr()[v]);
                assert_eq!(chunks[tile].row_end[local], graph.ptr()[v + 1]);
            }
            // Edge chunks concatenate back to the global arrays.
            let all_edges: Vec<u32> = chunks.iter().flat_map(|c| c.edge_idx.clone()).collect();
            assert_eq!(all_edges, graph.edge_idx());
            let all_values: Vec<u32> =
                chunks.iter().flat_map(|c| c.edge_values.clone()).collect();
            assert_eq!(all_values, graph.edge_values());
        }
    }

    #[test]
    fn footprint_counts_words() {
        let graph = small_graph();
        let placement = Placement::new(2, 6, 7, VertexPlacement::Chunked);
        let chunks = distribute_graph(&graph, &placement);
        let total: usize = chunks.iter().map(TileCsr::footprint_bytes).sum();
        // 2 words per vertex + 2 words per edge.
        assert_eq!(total, 4 * (2 * 6 + 2 * 7));
    }

    fn test_decls() -> (Vec<TaskDecl>, Vec<ChannelDecl>, Vec<LocalArrayDecl>) {
        (
            vec![
                TaskDecl::new("T1", 32, TaskParams::SelfManaged),
                TaskDecl::new("T2", 64, TaskParams::AutoPop(2)),
            ],
            vec![ChannelDecl::new("CQ1", 1, ArraySpace::Vertex, 2, 16)],
            vec![
                LocalArrayDecl::new("dist", LocalArrayLen::PerVertex, ArrayInit::MaxU32),
                LocalArrayDecl::new("frontier", LocalArrayLen::VertexBitmap, ArrayInit::Zero),
                LocalArrayDecl::new("labels", LocalArrayLen::PerVertex, ArrayInit::GlobalVertexId),
                LocalArrayDecl::new(
                    "x",
                    LocalArrayLen::PerVertex,
                    ArrayInit::PerVertexFn(Arc::new(|v| v + 100)),
                ),
                LocalArrayDecl::new("scratch", LocalArrayLen::Words(4), ArrayInit::Const(9)),
            ],
        )
    }

    #[test]
    fn tile_state_builds_arrays_with_declared_inits() {
        let placement = Placement::new(2, 10, 20, VertexPlacement::Interleaved);
        let (tasks, channels, arrays) = test_decls();
        let state = TileState::new(1, &placement, &tasks, &channels, &arrays, 3);
        assert_eq!(state.array_spans.len(), 5);
        // Tile 1 owns vertices 1, 3, 5, 7, 9 under interleaved placement.
        assert_eq!(state.array(0), &[u32::MAX; 5]);
        assert_eq!(state.array(1).len(), 1); // bitmap: ceil(5/32)
        assert_eq!(state.array(2), &[1, 3, 5, 7, 9]);
        assert_eq!(state.array(3), &[101, 103, 105, 107, 109]);
        assert_eq!(state.array(4), &[9, 9, 9, 9]);
        assert_eq!(state.vars(), &[0, 0, 0]);
        assert_eq!(state.iqs().len(), 2);
        assert_eq!(state.cqs().len(), 1);
        assert!(state.is_idle(0));
        assert!(state.masks_exact());
        assert!(state.kernel_footprint_bytes() > 0);
        // The arena holds exactly the modelled scratchpad image.
        assert_eq!(state.arena_bytes(), state.kernel_footprint_bytes());
    }

    #[test]
    fn hollow_tile_costs_nothing_and_reads_declared_values() {
        let placement = Placement::new(2, 10, 20, VertexPlacement::Interleaved);
        let (tasks, channels, arrays) = test_decls();
        let init = Arc::new(TileInit::new(&tasks, &channels, &arrays, 3));
        let eager = TileState::new(1, &placement, &tasks, &channels, &arrays, 3);
        let hollow = TileState::hollow(1, &placement, init);
        assert!(!hollow.is_materialized());
        assert_eq!(hollow.arena_bytes(), 0);
        // The modelled footprint is declaration-derived, not
        // allocation-derived.
        assert_eq!(hollow.kernel_footprint_bytes(), eager.kernel_footprint_bytes());
        // Hollow reads compute exactly what the eager build stored.
        for array in 0..5 {
            assert_eq!(hollow.array_len(array), eager.array(array).len());
            for index in 0..hollow.array_len(array) {
                assert_eq!(
                    hollow.read_array_word(array, index),
                    eager.array(array)[index],
                    "array {array} index {index}"
                );
            }
        }
        for var in 0..3 {
            assert_eq!(hollow.var(var), 0);
        }
        assert_eq!(hollow.iq_len(0), 0);
        assert_eq!(hollow.iq_free(0), 32);
        assert_eq!(hollow.cq_free(0), 16);
        assert_eq!(hollow.iq_peek(0), None);
        assert_eq!(hollow.cq_peek(0), None);
        assert!(hollow.is_idle(0));
        assert_eq!(hollow.task_ready_mask(), 0);
        assert_eq!(hollow.cq_ready_mask(), 0);
    }

    #[test]
    fn first_mutation_materializes_the_arena() {
        let placement = Placement::new(2, 10, 20, VertexPlacement::Interleaved);
        let (tasks, channels, arrays) = test_decls();
        let init = Arc::new(TileInit::new(&tasks, &channels, &arrays, 3));
        let mut state = TileState::hollow(1, &placement, Arc::clone(&init));
        assert!(state.push_iq(0, &[7]));
        assert!(state.is_materialized());
        assert_eq!(state.arena_bytes(), state.kernel_footprint_bytes());
        assert_eq!(state.iq_peek(0), Some(7));
        // Declared initial values landed in the slab.
        assert_eq!(state.array(0), &[u32::MAX; 5]);
        assert_eq!(state.array(2), &[1, 3, 5, 7, 9]);
        assert_eq!(state.counters.task_invocations, vec![0, 0]);

        // Array and variable writes materialize too.
        let mut by_write = TileState::hollow(0, &placement, Arc::clone(&init));
        by_write.write_array_word(0, 2, 42);
        assert!(by_write.is_materialized());
        assert_eq!(by_write.read_array_word(0, 2), 42);
        assert_eq!(by_write.read_array_word(0, 1), u32::MAX);
        let mut by_var = TileState::hollow(0, &placement, init);
        by_var.set_var(1, 5);
        assert!(by_var.is_materialized());
        assert_eq!(by_var.var(1), 5);
        assert_eq!(by_var.var(0), 0);
    }

    #[test]
    fn tile_is_not_idle_with_queued_work_or_busy_pu() {
        let placement = Placement::new(2, 10, 20, VertexPlacement::Chunked);
        let (tasks, channels, arrays) = test_decls();
        let mut state = TileState::new(0, &placement, &tasks, &channels, &arrays, 0);
        assert!(state.is_idle(5));
        state.push_iq(0, &[7]);
        assert!(!state.is_idle(5));
        assert!(!state.is_idle_scan(5));
        state.pop_iq_word(0);
        state.pu_busy_until = 10;
        assert!(!state.is_idle(5));
        assert!(state.is_idle(10));
        assert_eq!(state.is_idle_scan(10), state.is_idle(10));
    }

    #[test]
    fn queue_mutations_keep_the_word_counter_exact() {
        let placement = Placement::new(2, 10, 20, VertexPlacement::Chunked);
        let (tasks, channels, arrays) = test_decls();
        let mut state = TileState::new(0, &placement, &tasks, &channels, &arrays, 0);
        assert_eq!(state.queued_words(), 0);
        assert!(state.push_iq(1, &[1, 2]));
        assert!(state.push_cq(0, &[3, 4]));
        assert_eq!(state.queued_words(), 4);
        let mut buf = [0u32; 2];
        assert!(state.pop_cq_into(0, 2, &mut buf));
        assert_eq!(buf, [3, 4]);
        assert_eq!(state.queued_words(), 2);
        state.restore_cq_front(0, &buf);
        assert_eq!(state.queued_words(), 4);
        assert_eq!(state.pop_cq_invocation(0, 2), Some(vec![3, 4]));
        assert_eq!(state.pop_iq_invocation(1, 2), Some(vec![1, 2]));
        assert_eq!(state.queued_words(), 0);
        assert!(state.is_idle(0));
    }

    #[test]
    fn task_ready_mask_tracks_inputs_and_output_space() {
        let placement = Placement::new(2, 10, 20, VertexPlacement::Chunked);
        let (mut tasks, channels, arrays) = test_decls();
        // T2 (AutoPop(2)) additionally needs 4 free words on channel 0.
        tasks[1] = TaskDecl::new("T2", 64, TaskParams::AutoPop(2)).requires_cq_space(0, 4);
        let mut state = TileState::new(0, &placement, &tasks, &channels, &arrays, 0);
        assert_eq!(state.task_ready_mask(), 0);
        // One word is not a full AutoPop(2) invocation.
        state.push_iq(1, &[1]);
        assert_eq!(state.task_ready_mask(), 0);
        state.push_iq(1, &[2]);
        assert_eq!(state.task_ready_mask(), 0b10);
        // SelfManaged T1 becomes ready with any input.
        state.push_iq(0, &[9]);
        assert_eq!(state.task_ready_mask(), 0b11);
        // Fill channel 0 so fewer than 4 words remain: T2 loses its bit.
        let filler = vec![0u32; 13];
        assert!(state.push_cq(0, &filler));
        assert_eq!(state.task_ready_mask(), 0b01);
        // Draining the CQ restores it.
        assert!(state.pop_cq_invocation(0, 13).is_some());
        assert_eq!(state.task_ready_mask(), 0b11);
        // Consuming T2's invocation clears its bit again.
        let mut buf = [0u32; 2];
        assert!(state.pop_iq_into(1, 2, &mut buf));
        assert_eq!(state.task_ready_mask(), 0b01);
    }

    #[test]
    fn cq_ready_mask_requires_one_full_message() {
        let placement = Placement::new(2, 10, 20, VertexPlacement::Chunked);
        let (tasks, channels, arrays) = test_decls();
        // Channel 0 sends 2-flit messages.
        let mut state = TileState::new(0, &placement, &tasks, &channels, &arrays, 0);
        assert_eq!(state.cq_ready_mask(), 0);
        state.push_cq(0, &[1]);
        assert_eq!(state.cq_ready_mask(), 0);
        state.push_cq(0, &[2]);
        assert_eq!(state.cq_ready_mask(), 0b1);
        let mut buf = [0u32; 2];
        state.pop_cq_into(0, 2, &mut buf);
        assert_eq!(state.cq_ready_mask(), 0);
        state.restore_cq_front(0, &buf);
        assert_eq!(state.cq_ready_mask(), 0b1);
    }
}
