//! Concrete execution contexts handed to kernels by the engine.
//!
//! These implement the context traits of [`crate::kernel`] over the per-tile
//! state, charging every scratchpad access, queue operation and ALU
//! operation to the tile's activity counters — the raw material of the
//! paper's cycle and energy results.
//!
//! Cost model (`DESIGN.md` §2): one cycle per scratchpad read, per scratchpad
//! write, per ALU operation and per queue word moved, plus one dispatch
//! cycle per invocation.  Queue entries live in the scratchpad (paper
//! Fig. 4), so queue words also count as SRAM accesses.

use crate::kernel::{ArrayId, BootstrapContext, ChannelDecl, EpochContext, TaskContext, TaskId};
use crate::placement::{ArraySpace, Placement};
use crate::tile::{TileCsr, TileState};

/// Converts a global index to the `u32` that travels in a message head (or
/// is handed to a kernel), failing loudly when the dataset exceeds the
/// 32-bit index space instead of silently truncating — a sweep over a
/// ≥2³²-element array must abort, not corrupt indices.
#[track_caller]
fn index_to_u32(value: usize, what: &str) -> u32 {
    u32::try_from(value).unwrap_or_else(|_| {
        panic!("{what} {value} exceeds the 32-bit index space of the Dalorex message format")
    })
}

/// Accumulates the cycle cost of the invocation currently executing.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct InvocationCost {
    pub cycles: u64,
}

/// Context for [`crate::kernel::Kernel::execute`].
pub(crate) struct SimTaskContext<'a> {
    pub tile: &'a mut TileState,
    pub csr: &'a TileCsr,
    pub placement: &'a Placement,
    pub channels: &'a [ChannelDecl],
    pub current_task: TaskId,
    pub barrier_mode: bool,
    pub cost: InvocationCost,
}

impl SimTaskContext<'_> {
    fn charge_read(&mut self, n: u64) {
        self.tile.counters.sram_reads += n;
        self.cost.cycles += n;
    }

    fn charge_write(&mut self, n: u64) {
        self.tile.counters.sram_writes += n;
        self.cost.cycles += n;
    }

    fn charge_alu(&mut self, n: u64) {
        self.tile.counters.pu_ops += n;
        self.cost.cycles += n;
    }
}

impl TaskContext for SimTaskContext<'_> {
    fn tile(&self) -> usize {
        self.tile.tile
    }

    fn num_local_vertices(&self) -> usize {
        self.csr.row_begin.len()
    }

    fn num_local_edges(&self) -> usize {
        self.csr.edge_idx.len()
    }

    fn vertices_per_chunk(&self) -> usize {
        self.placement.chunk_capacity(ArraySpace::Vertex)
    }

    fn edges_per_chunk(&self) -> usize {
        self.placement.chunk_capacity(ArraySpace::Edge)
    }

    fn global_vertex(&self, local: usize) -> u32 {
        index_to_u32(
            self.placement.to_global(ArraySpace::Vertex, self.tile.tile, local),
            "global vertex id",
        )
    }

    fn barrier_mode(&self) -> bool {
        self.barrier_mode
    }

    fn row_begin(&mut self, local: usize) -> u32 {
        self.charge_read(1);
        self.csr.row_begin[local]
    }

    fn row_end(&mut self, local: usize) -> u32 {
        self.charge_read(1);
        self.csr.row_end[local]
    }

    fn edge_dst(&mut self, local: usize) -> u32 {
        self.charge_read(1);
        self.csr.edge_idx[local]
    }

    fn edge_value(&mut self, local: usize) -> u32 {
        self.charge_read(1);
        self.csr.edge_values[local]
    }

    fn read(&mut self, array: ArrayId, index: usize) -> u32 {
        self.charge_read(1);
        self.tile.read_array_word(array, index)
    }

    fn write(&mut self, array: ArrayId, index: usize, value: u32) {
        self.charge_write(1);
        self.tile.write_array_word(array, index, value);
    }

    fn var(&mut self, index: usize) -> u32 {
        self.charge_read(1);
        self.tile.var(index)
    }

    fn set_var(&mut self, index: usize, value: u32) {
        self.charge_write(1);
        self.tile.set_var(index, value);
    }

    fn cq_free(&self, channel: usize) -> usize {
        self.tile.cq_free(channel)
    }

    fn try_send(&mut self, channel: usize, words: &[u32]) -> bool {
        debug_assert_eq!(
            words.len(),
            self.channels[channel].flits_per_message,
            "message length must match the channel declaration"
        );
        let accepted = self.tile.push_cq(channel, words);
        if accepted {
            // Writing the parameters into the CQ: one scratchpad write per
            // word (the CQ lives in the scratchpad).
            self.charge_write(words.len() as u64);
            self.tile.counters.messages_sent += 1;
        } else {
            // Checking fullness costs an operation either way.
            self.charge_alu(1);
        }
        accepted
    }

    fn iq_free(&self, task: TaskId) -> usize {
        self.tile.iq_free(task)
    }

    fn try_push_local(&mut self, task: TaskId, words: &[u32]) -> bool {
        let accepted = self.tile.push_iq(task, words);
        if accepted {
            self.charge_write(words.len() as u64);
        } else {
            self.charge_alu(1);
        }
        accepted
    }

    fn iq_peek(&mut self) -> Option<u32> {
        self.charge_read(1);
        self.tile.iq_peek(self.current_task)
    }

    fn iq_pop(&mut self) -> Option<u32> {
        self.charge_read(1);
        self.tile.pop_iq_word(self.current_task)
    }

    fn iq_len(&self) -> usize {
        self.tile.iq_len(self.current_task)
    }

    fn charge_ops(&mut self, n: u64) {
        self.charge_alu(n);
    }

    fn count_edges(&mut self, n: u64) {
        self.tile.counters.edges_processed += n;
    }

    fn for_each_edge_part(&mut self, begin: u32, end: u32, part: &mut dyn FnMut(usize, u32, u32)) {
        // Computing each split point costs a couple of ALU operations; the
        // pieces are streamed to the callback so the hot path allocates
        // nothing (the Vec-returning `split_edge_range` shim builds on
        // this for the reference path and for kernels that want a Vec).
        let mut parts = 0u64;
        for (tile, b, e) in self.placement.split_edge_range(begin as usize, end as usize) {
            parts += 1;
            part(
                tile,
                index_to_u32(b, "edge range begin"),
                index_to_u32(e, "edge range end"),
            );
        }
        self.charge_alu(2 * parts.max(1));
    }
}

/// Context for [`crate::kernel::Kernel::bootstrap`].
pub(crate) struct SimBootstrapContext<'a> {
    pub tile: &'a mut TileState,
    pub csr: &'a TileCsr,
    pub placement: &'a Placement,
}

impl BootstrapContext for SimBootstrapContext<'_> {
    fn tile(&self) -> usize {
        self.tile.tile
    }

    fn num_local_vertices(&self) -> usize {
        self.csr.row_begin.len()
    }

    fn num_local_edges(&self) -> usize {
        self.csr.edge_idx.len()
    }

    fn local_vertex(&self, global: u32) -> Option<usize> {
        let global = global as usize;
        if global >= self.placement.num_vertices() {
            return None;
        }
        if self.placement.owner(ArraySpace::Vertex, global) == self.tile.tile {
            Some(self.placement.to_local(ArraySpace::Vertex, global))
        } else {
            None
        }
    }

    fn global_vertex(&self, local: usize) -> u32 {
        index_to_u32(
            self.placement.to_global(ArraySpace::Vertex, self.tile.tile, local),
            "global vertex id",
        )
    }

    fn push_invocation(&mut self, task: TaskId, words: &[u32]) -> bool {
        self.tile.push_iq(task, words)
    }

    fn set_var(&mut self, index: usize, value: u32) {
        self.tile.set_var(index, value);
    }

    fn write_array(&mut self, array: ArrayId, index: usize, value: u32) {
        self.tile.write_array_word(array, index, value);
    }

    fn read_array(&self, array: ArrayId, index: usize) -> u32 {
        self.tile.read_array_word(array, index)
    }
}

/// Context for [`crate::kernel::Kernel::on_global_idle`].
pub(crate) struct SimEpochContext<'a> {
    pub tiles: &'a mut [TileState],
    pub placement: &'a Placement,
    pub barrier_mode: bool,
    /// Tiles that received new work during this epoch trigger, so the engine
    /// can re-activate them.
    pub woken: Vec<usize>,
}

impl EpochContext for SimEpochContext<'_> {
    fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    fn num_local_vertices(&self, tile: usize) -> usize {
        self.placement.local_len(ArraySpace::Vertex, tile)
    }

    fn read_var(&self, tile: usize, index: usize) -> u32 {
        self.tiles[tile].var(index)
    }

    fn read_array(&self, tile: usize, array: ArrayId, index: usize) -> u32 {
        self.tiles[tile].read_array_word(array, index)
    }

    fn write_array(&mut self, tile: usize, array: ArrayId, index: usize, value: u32) {
        self.tiles[tile].write_array_word(array, index, value);
    }

    fn set_var(&mut self, tile: usize, index: usize, value: u32) {
        self.tiles[tile].set_var(index, value);
    }

    fn push_invocation(&mut self, tile: usize, task: TaskId, words: &[u32]) -> bool {
        let accepted = self.tiles[tile].push_iq(task, words);
        if accepted {
            self.woken.push(tile);
        }
        accepted
    }

    fn barrier_mode(&self) -> bool {
        self.barrier_mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ArrayInit, LocalArrayDecl, LocalArrayLen, TaskDecl, TaskParams};
    use crate::placement::VertexPlacement;
    use crate::tile::distribute_graph;
    use dalorex_graph::generators::grid2d::GridConfig;

    fn setup() -> (Placement, Vec<TileCsr>, Vec<TaskDecl>, Vec<ChannelDecl>, Vec<LocalArrayDecl>) {
        let graph = GridConfig::new(4, 4).build().unwrap();
        let placement = Placement::new(
            4,
            graph.num_vertices(),
            graph.num_edges(),
            VertexPlacement::Interleaved,
        );
        let csr = distribute_graph(&graph, &placement);
        let tasks = vec![
            TaskDecl::new("T1", 32, TaskParams::SelfManaged),
            TaskDecl::new("T2", 64, TaskParams::AutoPop(2)),
        ];
        let channels = vec![ChannelDecl::new("CQ1", 1, ArraySpace::Vertex, 2, 8)];
        let arrays = vec![LocalArrayDecl::new(
            "dist",
            LocalArrayLen::PerVertex,
            ArrayInit::MaxU32,
        )];
        (placement, csr, tasks, channels, arrays)
    }

    #[test]
    fn task_context_charges_accesses() {
        let (placement, csr, tasks, channels, arrays) = setup();
        let mut tile = TileState::new(0, &placement, &tasks, &channels, &arrays, 2);
        let mut ctx = SimTaskContext {
            tile: &mut tile,
            csr: &csr[0],
            placement: &placement,
            channels: &channels,

            current_task: 0,
            barrier_mode: false,
            cost: InvocationCost::default(),
        };
        let begin = ctx.row_begin(0);
        let end = ctx.row_end(0);
        assert!(end >= begin);
        ctx.write(0, 0, 5);
        assert_eq!(ctx.read(0, 0), 5);
        ctx.set_var(1, 9);
        assert_eq!(ctx.var(1), 9);
        ctx.charge_ops(3);
        ctx.count_edges(2);
        assert!(ctx.try_send(0, &[1, 2]));
        assert!(ctx.try_push_local(1, &[4, 5]));
        let cost = ctx.cost.cycles;
        assert!(cost >= 10, "cost {cost}");
        assert_eq!(tile.counters.sram_reads, 4);
        assert_eq!(tile.counters.sram_writes, 2 + 2 + 2);
        assert_eq!(tile.counters.pu_ops, 3);
        assert_eq!(tile.counters.edges_processed, 2);
        assert_eq!(tile.counters.messages_sent, 1);
        assert_eq!(tile.cqs()[0].len(), 2);
        assert_eq!(tile.iqs()[1].len(), 2);
    }

    #[test]
    fn edge_parts_stream_without_allocating_and_match_the_vec_shim() {
        let (placement, csr, tasks, channels, arrays) = setup();
        let mut tile = TileState::new(0, &placement, &tasks, &channels, &arrays, 2);
        let mut ctx = SimTaskContext {
            tile: &mut tile,
            csr: &csr[0],
            placement: &placement,
            channels: &channels,
            current_task: 0,
            barrier_mode: false,
            cost: InvocationCost::default(),
        };
        // edges_per_tile for 48 edges over 4 tiles is 12; [5, 30) spans
        // three chunks.
        let edges = ctx.num_local_edges() as u32;
        assert!(edges > 0);
        let mut streamed = Vec::new();
        ctx.for_each_edge_part(5, 30, &mut |tile, b, e| streamed.push((tile, b, e)));
        let cost_streamed = ctx.cost.cycles;
        let materialized = ctx.split_edge_range(5, 30);
        assert_eq!(streamed, materialized);
        assert!(!streamed.is_empty());
        // Pieces tile the range back-to-back and stay within one owner each.
        assert_eq!(streamed.first().unwrap().1, 5);
        assert_eq!(streamed.last().unwrap().2, 30);
        for pair in streamed.windows(2) {
            assert_eq!(pair[0].2, pair[1].1);
        }
        // Both forms charge the same ALU cost per piece.
        assert_eq!(ctx.cost.cycles, 2 * cost_streamed);
        // An empty range still charges the minimum probe cost and streams
        // nothing.
        let mut none = 0;
        ctx.for_each_edge_part(7, 7, &mut |_, _, _| none += 1);
        assert_eq!(none, 0);
        assert_eq!(ctx.cost.cycles, 2 * cost_streamed + 2);
    }

    #[test]
    fn task_context_send_respects_capacity() {
        let (placement, csr, tasks, channels, arrays) = setup();
        let mut tile = TileState::new(1, &placement, &tasks, &channels, &arrays, 0);
        let mut ctx = SimTaskContext {
            tile: &mut tile,
            csr: &csr[1],
            placement: &placement,
            channels: &channels,

            current_task: 0,
            barrier_mode: true,
            cost: InvocationCost::default(),
        };
        assert!(ctx.barrier_mode());
        // CQ capacity is 8 words; four 2-word messages fit, the fifth fails.
        for i in 0..4 {
            assert!(ctx.try_send(0, &[i, i]));
        }
        assert!(!ctx.try_send(0, &[9, 9]));
        assert_eq!(ctx.cq_free(0), 0);
    }

    #[test]
    fn bootstrap_context_maps_vertices() {
        let (placement, csr, tasks, channels, arrays) = setup();
        let mut tile = TileState::new(2, &placement, &tasks, &channels, &arrays, 1);
        let mut ctx = SimBootstrapContext {
            tile: &mut tile,
            csr: &csr[2],
            placement: &placement,
        };
        // Interleaved placement: tile 2 owns vertices 2, 6, 10, 14.
        assert_eq!(ctx.local_vertex(6), Some(1));
        assert_eq!(ctx.local_vertex(3), None);
        assert_eq!(ctx.local_vertex(999), None);
        assert_eq!(ctx.global_vertex(0), 2);
        assert!(ctx.push_invocation(0, &[0]));
        ctx.set_var(0, 3);
        ctx.write_array(0, 0, 11);
        assert_eq!(ctx.read_array(0, 0), 11);
        assert_eq!(ctx.num_local_vertices(), 4);
        assert_eq!(tile.iqs()[0].len(), 1);
        assert_eq!(tile.vars()[0], 3);
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    #[should_panic(expected = "exceeds the 32-bit index space")]
    fn oversized_indices_fail_loudly_instead_of_truncating() {
        // Graphs with >= 2^32 vertices/edges must abort the sweep with a
        // diagnosable error, not silently corrupt wrapped indices.
        let _ = index_to_u32(1usize << 33, "global vertex id");
    }

    #[test]
    fn epoch_context_wakes_tiles_it_pushes_to() {
        let (placement, _csr, tasks, channels, arrays) = setup();
        let mut tiles: Vec<TileState> = (0..4)
            .map(|t| TileState::new(t, &placement, &tasks, &channels, &arrays, 1))
            .collect();
        let mut ctx = SimEpochContext {
            tiles: &mut tiles,
            placement: &placement,
            barrier_mode: true,
            woken: Vec::new(),
        };
        assert_eq!(ctx.num_tiles(), 4);
        assert!(ctx.barrier_mode());
        assert!(ctx.push_invocation(3, 0, &[7]));
        ctx.set_var(1, 0, 5);
        ctx.write_array(2, 0, 0, 42);
        assert_eq!(ctx.read_array(2, 0, 0), 42);
        assert_eq!(ctx.read_var(1, 0), 5);
        assert_eq!(ctx.num_local_vertices(0), 4);
        assert_eq!(ctx.woken, vec![3]);
    }
}
