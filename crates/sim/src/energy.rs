//! Energy model.
//!
//! Section IV-A of the paper builds its energy numbers from published 7 nm
//! silicon measurements:
//!
//! * SRAM: 5.8 pJ per bank read and 9.1 pJ per bank write, 16.9 µW leakage
//!   per 32 KB macro (Yokoyama et al., 7 nm FinFET), 0.82 ns access time —
//!   hence the 1 GHz clock.
//! * Processing unit: a single-issue in-order RISC-V-class core (Ariane /
//!   Snitch reports scaled to 7 nm).
//! * NoC: 8 pJ to move a 32-bit flit one millimetre of wire, with the
//!   router traversal costed like an ALU operation.
//!
//! [`EnergyModel`] turns the activity counters collected by the simulator
//! (SRAM accesses, PU operations, flit-hops and flit wire length) into the
//! Joule figures reported in Figures 5, 6 and 9, broken down into the same
//! three groups the paper plots: logic, memory and network.

/// Hardware energy/latency constants used by the model.  All values are the
/// paper's 7 nm numbers; constructing a custom instance lets ablation
/// benches explore other technology points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyConstants {
    /// Clock frequency in Hz (1 GHz: the SRAM access time bounds the cycle).
    pub clock_hz: f64,
    /// Energy per 32-bit SRAM read, in picojoules.
    pub sram_read_pj: f64,
    /// Energy per 32-bit SRAM write, in picojoules.
    pub sram_write_pj: f64,
    /// SRAM leakage power per 32 KB macro, in microwatts.
    pub sram_leakage_uw_per_32kb: f64,
    /// Dynamic energy per PU operation (ALU op, queue register access), in
    /// picojoules.
    pub pu_op_pj: f64,
    /// PU leakage power per tile, in microwatts (the PU is clock-gated when
    /// idle, so only leakage accrues then).
    pub pu_leakage_uw: f64,
    /// Energy to move one 32-bit flit one millimetre of wire, in picojoules.
    pub noc_wire_pj_per_flit_mm: f64,
    /// Energy per flit per router traversal, in picojoules (≈ one ALU op).
    pub noc_router_pj_per_flit: f64,
}

impl EnergyConstants {
    /// The paper's 7 nm technology point.
    pub fn paper_7nm() -> Self {
        EnergyConstants {
            clock_hz: 1.0e9,
            sram_read_pj: 5.8,
            sram_write_pj: 9.1,
            sram_leakage_uw_per_32kb: 16.9,
            pu_op_pj: 4.0,
            pu_leakage_uw: 50.0,
            noc_wire_pj_per_flit_mm: 8.0,
            noc_router_pj_per_flit: 4.0,
        }
    }
}

impl Default for EnergyConstants {
    fn default() -> Self {
        EnergyConstants::paper_7nm()
    }
}

/// Activity counters accumulated over a simulation, fed to the model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ActivityCounters {
    /// 32-bit scratchpad reads (data arrays and queue entries).
    pub sram_reads: u64,
    /// 32-bit scratchpad writes.
    pub sram_writes: u64,
    /// PU operations executed (ALU ops and queue-register operations).
    pub pu_ops: u64,
    /// Cycles during which each PU was active, summed over tiles.
    pub pu_busy_cycles: u64,
    /// Flit-hops through the network (each flit crossing each router).
    pub noc_flit_hops: u64,
    /// Flit wire length travelled, in millimetres.
    pub noc_flit_mm: f64,
    /// Total simulated cycles.
    pub cycles: u64,
}

/// Energy consumed by a run, in Joules, grouped as in the paper's Figure 9.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// PU dynamic energy.
    pub pu_dynamic_j: f64,
    /// PU leakage energy over the whole runtime.
    pub pu_leakage_j: f64,
    /// SRAM dynamic (access) energy.
    pub sram_dynamic_j: f64,
    /// SRAM leakage energy over the whole runtime.
    pub sram_leakage_j: f64,
    /// Energy spent on NoC wires.
    pub noc_wire_j: f64,
    /// Energy spent in NoC routers.
    pub noc_router_j: f64,
}

impl EnergyBreakdown {
    /// Logic group (PU dynamic + PU leakage), as plotted in Figure 9.
    pub fn logic_j(&self) -> f64 {
        self.pu_dynamic_j + self.pu_leakage_j
    }

    /// Memory group (SRAM dynamic + leakage).
    pub fn memory_j(&self) -> f64 {
        self.sram_dynamic_j + self.sram_leakage_j
    }

    /// Network group (wires + routers).
    pub fn network_j(&self) -> f64 {
        self.noc_wire_j + self.noc_router_j
    }

    /// Total energy.
    pub fn total_j(&self) -> f64 {
        self.logic_j() + self.memory_j() + self.network_j()
    }

    /// Percentage shares `(logic, memory, network)` of the total, the format
    /// of Figure 9's stacked bars.
    pub fn shares_percent(&self) -> (f64, f64, f64) {
        let total = self.total_j();
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            100.0 * self.logic_j() / total,
            100.0 * self.memory_j() / total,
            100.0 * self.network_j() / total,
        )
    }
}

/// The energy model: constants plus the chip geometry they apply to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    constants: EnergyConstants,
    num_tiles: usize,
    scratchpad_bytes_per_tile: usize,
}

const PJ_TO_J: f64 = 1.0e-12;
const UW_TO_W: f64 = 1.0e-6;

impl EnergyModel {
    /// Creates a model for `num_tiles` tiles each holding
    /// `scratchpad_bytes_per_tile` of SRAM.
    pub fn new(
        constants: EnergyConstants,
        num_tiles: usize,
        scratchpad_bytes_per_tile: usize,
    ) -> Self {
        EnergyModel {
            constants,
            num_tiles,
            scratchpad_bytes_per_tile,
        }
    }

    /// The constants in use.
    pub fn constants(&self) -> &EnergyConstants {
        &self.constants
    }

    /// Wall-clock seconds corresponding to a cycle count at the model's
    /// clock frequency.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.constants.clock_hz
    }

    /// Total SRAM leakage power of the chip, in Watts.
    pub fn sram_leakage_watts(&self) -> f64 {
        let macros_per_tile = self.scratchpad_bytes_per_tile as f64 / (32.0 * 1024.0);
        self.constants.sram_leakage_uw_per_32kb
            * macros_per_tile
            * self.num_tiles as f64
            * UW_TO_W
    }

    /// Total PU leakage power of the chip, in Watts.
    pub fn pu_leakage_watts(&self) -> f64 {
        self.constants.pu_leakage_uw * self.num_tiles as f64 * UW_TO_W
    }

    /// Computes the energy breakdown for a set of activity counters.
    pub fn breakdown(&self, activity: &ActivityCounters) -> EnergyBreakdown {
        let c = &self.constants;
        let runtime_s = self.seconds(activity.cycles);
        EnergyBreakdown {
            pu_dynamic_j: activity.pu_ops as f64 * c.pu_op_pj * PJ_TO_J,
            pu_leakage_j: self.pu_leakage_watts() * runtime_s,
            sram_dynamic_j: (activity.sram_reads as f64 * c.sram_read_pj
                + activity.sram_writes as f64 * c.sram_write_pj)
                * PJ_TO_J,
            sram_leakage_j: self.sram_leakage_watts() * runtime_s,
            noc_wire_j: activity.noc_flit_mm * c.noc_wire_pj_per_flit_mm * PJ_TO_J,
            noc_router_j: activity.noc_flit_hops as f64 * c.noc_router_pj_per_flit * PJ_TO_J,
        }
    }

    /// Average power over the run, in Watts.
    pub fn average_power_watts(&self, activity: &ActivityCounters) -> f64 {
        let seconds = self.seconds(activity.cycles);
        if seconds == 0.0 {
            0.0
        } else {
            self.breakdown(activity).total_j() / seconds
        }
    }

    /// Aggregate memory bandwidth actually used over the run, in bytes per
    /// second (the quantity plotted in Figure 7): every SRAM access moves
    /// one 32-bit word.
    pub fn memory_bandwidth_bytes_per_s(&self, activity: &ActivityCounters) -> f64 {
        let seconds = self.seconds(activity.cycles);
        if seconds == 0.0 {
            0.0
        } else {
            (activity.sram_reads + activity.sram_writes) as f64 * 4.0 / seconds
        }
    }

    /// Peak memory bandwidth available, in bytes per second: every tile can
    /// read and write one 32-bit word per cycle (Section III-G), so peak
    /// bandwidth scales linearly with the tile count.
    pub fn peak_memory_bandwidth_bytes_per_s(&self) -> f64 {
        self.num_tiles as f64 * 8.0 * self.constants.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::new(EnergyConstants::paper_7nm(), 256, 4 * 1024 * 1024)
    }

    #[test]
    fn zero_activity_costs_only_leakage() {
        let m = model();
        let breakdown = m.breakdown(&ActivityCounters::default());
        assert_eq!(breakdown.pu_dynamic_j, 0.0);
        assert_eq!(breakdown.sram_dynamic_j, 0.0);
        assert_eq!(breakdown.network_j(), 0.0);
        // Zero cycles means zero runtime, so leakage is zero too.
        assert_eq!(breakdown.total_j(), 0.0);
    }

    #[test]
    fn dynamic_energy_scales_with_accesses() {
        let m = model();
        let one = m.breakdown(&ActivityCounters {
            sram_reads: 1_000,
            sram_writes: 1_000,
            ..Default::default()
        });
        let two = m.breakdown(&ActivityCounters {
            sram_reads: 2_000,
            sram_writes: 2_000,
            ..Default::default()
        });
        assert!((two.sram_dynamic_j / one.sram_dynamic_j - 2.0).abs() < 1e-9);
        // Writes cost more than reads.
        let reads_only = m.breakdown(&ActivityCounters {
            sram_reads: 1_000,
            ..Default::default()
        });
        let writes_only = m.breakdown(&ActivityCounters {
            sram_writes: 1_000,
            ..Default::default()
        });
        assert!(writes_only.sram_dynamic_j > reads_only.sram_dynamic_j);
    }

    #[test]
    fn leakage_scales_with_runtime_and_memory() {
        let m = model();
        let short = m.breakdown(&ActivityCounters {
            cycles: 1_000,
            ..Default::default()
        });
        let long = m.breakdown(&ActivityCounters {
            cycles: 2_000,
            ..Default::default()
        });
        assert!((long.sram_leakage_j / short.sram_leakage_j - 2.0).abs() < 1e-9);

        let bigger = EnergyModel::new(EnergyConstants::paper_7nm(), 256, 8 * 1024 * 1024);
        assert!(bigger.sram_leakage_watts() > m.sram_leakage_watts());
    }

    #[test]
    fn shares_sum_to_hundred_percent() {
        let m = model();
        let breakdown = m.breakdown(&ActivityCounters {
            sram_reads: 10_000,
            sram_writes: 5_000,
            pu_ops: 20_000,
            noc_flit_hops: 30_000,
            noc_flit_mm: 30_000.0,
            cycles: 100_000,
            pu_busy_cycles: 50_000,
        });
        let (logic, memory, network) = breakdown.shares_percent();
        assert!((logic + memory + network - 100.0).abs() < 1e-9);
        assert!(logic > 0.0 && memory > 0.0 && network > 0.0);
    }

    #[test]
    fn bandwidth_figures() {
        let m = model();
        let activity = ActivityCounters {
            sram_reads: 1_000_000,
            sram_writes: 1_000_000,
            cycles: 1_000_000,
            ..Default::default()
        };
        // 2M words * 4 bytes over 1 ms = 8 GB/s.
        let bw = m.memory_bandwidth_bytes_per_s(&activity);
        assert!((bw - 8.0e9).abs() / 8.0e9 < 1e-9);
        // Peak: 256 tiles * 8 B/cycle * 1 GHz ≈ 2 TB/s.
        assert!((m.peak_memory_bandwidth_bytes_per_s() - 2.048e12).abs() / 2.048e12 < 1e-9);
        assert!(bw < m.peak_memory_bandwidth_bytes_per_s());
    }

    #[test]
    fn average_power_is_reasonable() {
        let m = model();
        let activity = ActivityCounters {
            sram_reads: 100_000_000,
            sram_writes: 50_000_000,
            pu_ops: 200_000_000,
            noc_flit_hops: 100_000_000,
            noc_flit_mm: 100_000_000.0,
            cycles: 1_000_000_000, // one second
            pu_busy_cycles: 500_000_000,
        };
        let watts = m.average_power_watts(&activity);
        // A 256-tile chip should sit in the single-digit-Watt range for this
        // activity level, far below HMC's hundreds of Watts.
        assert!(watts > 0.01 && watts < 100.0, "power was {watts} W");
    }
}
