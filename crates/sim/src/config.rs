//! Simulation configuration.
//!
//! A [`SimConfig`] captures every knob the paper's evaluation turns:
//! grid size (Section V-B strong scaling), NoC topology (Figure 8),
//! scheduling policy and data placement (the Figure 5 ablation ladder),
//! barrier mode (barrierless frontiers vs. per-epoch synchronization), and
//! the per-tile scratchpad capacity that bounds which datasets fit.
//! [`SimConfigBuilder`] validates the combination before a simulation is
//! built.

use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::placement::VertexPlacement;
use crate::verify::VerifyMode;
use dalorex_noc::{GridShape, Topology};

/// Paper-default ejection (local delivery) buffer capacity per channel, in
/// flits — shared with [`crate::verify::VerifyContext::paper_default`].
pub const DEFAULT_EJECTION_FLITS: usize = 64;

/// Tile-grid dimensions for a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridConfig {
    /// Tiles in the X dimension.
    pub width: usize,
    /// Tiles in the Y dimension.
    pub height: usize,
}

impl GridConfig {
    /// Creates a `width x height` grid configuration.
    pub fn new(width: usize, height: usize) -> Self {
        GridConfig { width, height }
    }

    /// Creates a square grid of `side x side` tiles.
    pub fn square(side: usize) -> Self {
        GridConfig::new(side, side)
    }

    /// Total number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.width * self.height
    }

    /// Converts to the NoC crate's grid shape.
    pub fn shape(&self) -> GridShape {
        GridShape::new(self.width, self.height)
    }
}

/// Task-scheduling policy implemented by the TSU (Section III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulingPolicy {
    /// Plain round-robin over eligible tasks — the `Basic-TSU` ablation
    /// configuration.
    RoundRobin,
    /// The paper's occupancy-based priority: a task is high priority when
    /// its input queue is nearly full, medium priority when its output queue
    /// is nearly empty, low otherwise; ties go to the larger queue.  This is
    /// the `Traffic-Aware` configuration and the Dalorex default.
    OccupancyPriority,
}

/// Which cycle engine drives a simulation run.
///
/// All five engines produce **bit-identical** modelled schedules, outputs
/// and statistics — the cross-crate equivalence suite pins the full square
/// — and differ only in simulator wall-clock.  Select one via
/// [`SimConfigBuilder::engine`] (or per run with
/// `Simulation::run_with_engine`); the figure binaries expose it as
/// `--engine <reference|ticked|skip|calendar|parallel[:N]>` for A/B
/// timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// The preserved pre-overhaul tile path (full queue scans, per-pop
    /// allocations) ticking every cycle: the slowest engine, kept as the
    /// schedule-equivalence oracle.
    Reference,
    /// The allocation-free tile path, one `Network::cycle` per simulated
    /// cycle (the PR 3 engine): the tick-every-cycle baseline.
    Ticked,
    /// `Ticked` plus whole-chip skip-to-next-event jumping (the PR 4
    /// engine): wins on sparse and fabric-bound regimes where provably
    /// quiet windows are long.  The default.
    #[default]
    Skip,
    /// `Skip` with the NoC's calendar router scheduler: per-router
    /// `next_possible` due stamps and a bucketed calendar make each
    /// network cycle scan only the routers that could actually commit —
    /// the win on dense regimes where deliveries land nearly every cycle
    /// and whole-chip skipping cannot help.
    Calendar,
    /// `Calendar` with the per-cycle tile phase fanned out over a
    /// persistent worker pool: tiles and their routers are sharded into
    /// contiguous ranges, each worker advances its shard's endpoints for
    /// the cycle, and the cross-shard side effects every endpoint
    /// operation would have had on shared network state are recorded and
    /// replayed in exact arbitration order at the epoch barrier — so the
    /// schedule stays bit-identical to the single-threaded engines.
    /// `workers == 0` means "one worker per available core".
    Parallel {
        /// Worker threads in the pool (0 = auto-detect from the host).
        workers: usize,
    },
}

impl Engine {
    /// Every engine, in oracle-to-fastest order (the order the equivalence
    /// square iterates).  The parallel entry uses auto worker detection;
    /// explicit worker counts are additional configurations of the same
    /// engine.
    pub const ALL: [Engine; 5] = [
        Engine::Reference,
        Engine::Ticked,
        Engine::Skip,
        Engine::Calendar,
        Engine::Parallel { workers: 0 },
    ];

    /// The engine's command-line name (`--engine <name>`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Reference => "reference",
            Engine::Ticked => "ticked",
            Engine::Skip => "skip",
            Engine::Calendar => "calendar",
            Engine::Parallel { .. } => "parallel",
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reference" => Ok(Engine::Reference),
            "ticked" | "tick" => Ok(Engine::Ticked),
            "skip" => Ok(Engine::Skip),
            "calendar" => Ok(Engine::Calendar),
            "parallel" => Ok(Engine::Parallel { workers: 0 }),
            other => {
                if let Some(count) = other.strip_prefix("parallel:") {
                    return match count.parse::<usize>() {
                        Ok(workers) => Ok(Engine::Parallel { workers }),
                        Err(_) => Err(format!(
                            "invalid worker count {count:?} in engine {other:?} \
                             (want parallel:<positive integer>)"
                        )),
                    };
                }
                Err(format!(
                    "unknown engine {other:?} (want reference, ticked, skip, calendar \
                     or parallel[:N])"
                ))
            }
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Parallel { workers } if *workers > 0 => {
                write!(f, "parallel:{workers}")
            }
            _ => f.write_str(self.name()),
        }
    }
}

/// Synchronization mode between graph epochs (Section III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BarrierMode {
    /// Local frontiers flow continuously; no global barrier. The Dalorex
    /// default for BFS, SSSP and WCC.
    Barrierless,
    /// A global barrier separates epochs: new frontier vertices are only
    /// accumulated into the bitmap, and the host triggers the next epoch
    /// when the chip goes idle.  PageRank always runs this way.
    EpochBarrier,
}

/// Complete configuration of a Dalorex simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Grid dimensions.
    pub grid: GridConfig,
    /// NoC topology.
    pub topology: Topology,
    /// TSU scheduling policy.
    pub scheduling: SchedulingPolicy,
    /// Vertex-array placement.
    pub vertex_placement: VertexPlacement,
    /// Epoch synchronization mode.
    pub barrier_mode: BarrierMode,
    /// Scratchpad capacity per tile, in bytes.
    pub scratchpad_bytes: usize,
    /// Router buffer capacity per output port and channel, in flits.
    pub noc_buffer_flits: usize,
    /// Ejection (local delivery) buffer capacity per channel, in flits.
    pub noc_ejection_flits: usize,
    /// Endpoint bandwidth in messages per tile per cycle (default 1): how
    /// many arriving messages the TSU drains from the ejection buffers, and
    /// how many channel-queue messages it injects into the router, each
    /// cycle.  The paper's tiles have a single local router port (1); wider
    /// endpoints remove the injection/ejection serialization that dominates
    /// small grids, letting sweeps isolate fabric contention.
    pub endpoint_drains_per_cycle: usize,
    /// Hard cycle limit after which the simulation aborts.
    pub max_cycles: u64,
    /// Cycles without any progress after which a deadlock is reported.
    pub watchdog_cycles: u64,
    /// Fixed overhead charged at every epoch barrier (host broadcast of the
    /// "start next epoch" trigger), in cycles.
    pub epoch_broadcast_cycles: u64,
    /// Extra cycles charged on every task dispatch.  Zero for Dalorex's
    /// native, non-interrupting task invocations; the `Data-Local` rung of
    /// the Figure 5 ablation sets it to the 50-cycle interrupt penalty of
    /// Tesseract-style remote calls (Section II-C).
    pub invocation_overhead_cycles: u64,
    /// The cycle engine `Simulation::run` drives (default
    /// [`Engine::Skip`]).  All engines model the identical schedule; the
    /// knob trades simulator wall-clock profiles (see [`Engine`]).
    pub engine: Engine,
    /// Materialize every tile's arena slab up front instead of lazily on
    /// first activity (default `false`).  Laziness is schedule-invisible —
    /// the equivalence suite pins eager and lazy runs against each other —
    /// so the only reason to flip this is to measure the idle-tile memory
    /// laziness saves, or to serve as the eager oracle in that suite.
    pub eager_tile_init: bool,
    /// Deterministic fault schedule applied bit-identically by every cycle
    /// engine (default empty = schedule-invisible).  See
    /// [`crate::fault::FaultPlan`] for the model and spec format.
    pub faults: FaultPlan,
    /// How strictly the static task-graph verifier ([`crate::verify`])
    /// treats its findings when the simulation is built (default
    /// [`VerifyMode::Warn`]).  Structural defects that would abort the run
    /// anyway are fatal under every mode.
    pub verify: VerifyMode,
}

impl SimConfig {
    /// Starts a builder for the given grid with paper-default settings.
    pub fn builder(grid: GridConfig) -> SimConfigBuilder {
        SimConfigBuilder::new(grid)
    }

    /// The default topology the paper uses for this grid size: a plain torus
    /// up to 32x32 tiles, and a torus with ruche channels (factor 4) beyond
    /// that (Section IV-A).
    pub fn paper_default_topology(grid: GridConfig) -> Topology {
        if grid.num_tiles() <= 32 * 32 {
            Topology::Torus
        } else {
            Topology::TorusRuche { factor: 4 }
        }
    }
}

/// Builder for [`SimConfig`].
///
/// ```
/// use dalorex_sim::config::{GridConfig, SimConfigBuilder};
///
/// # fn main() -> Result<(), dalorex_sim::SimError> {
/// let config = SimConfigBuilder::new(GridConfig::square(4)).build()?;
/// assert_eq!(config.grid.num_tiles(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Creates a builder with the paper's default settings for `grid`:
    /// torus (or ruche-torus for >1024 tiles), occupancy-priority
    /// scheduling, interleaved vertex placement, barrierless execution, and
    /// a 4 MiB scratchpad per tile.
    pub fn new(grid: GridConfig) -> Self {
        SimConfigBuilder {
            config: SimConfig {
                grid,
                topology: SimConfig::paper_default_topology(grid),
                scheduling: SchedulingPolicy::OccupancyPriority,
                vertex_placement: VertexPlacement::Interleaved,
                barrier_mode: BarrierMode::Barrierless,
                scratchpad_bytes: 4 * 1024 * 1024,
                noc_buffer_flits: 16,
                noc_ejection_flits: DEFAULT_EJECTION_FLITS,
                endpoint_drains_per_cycle: 1,
                max_cycles: 200_000_000,
                watchdog_cycles: 2_000_000,
                epoch_broadcast_cycles: (grid.width + grid.height) as u64,
                invocation_overhead_cycles: 0,
                engine: Engine::default(),
                eager_tile_init: false,
                faults: FaultPlan::default(),
                verify: VerifyMode::default(),
            },
        }
    }

    /// Overrides the NoC topology.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.config.topology = topology;
        self
    }

    /// Overrides the scheduling policy.
    pub fn scheduling(mut self, policy: SchedulingPolicy) -> Self {
        self.config.scheduling = policy;
        self
    }

    /// Overrides the vertex placement.
    pub fn vertex_placement(mut self, placement: VertexPlacement) -> Self {
        self.config.vertex_placement = placement;
        self
    }

    /// Overrides the barrier mode.
    pub fn barrier_mode(mut self, mode: BarrierMode) -> Self {
        self.config.barrier_mode = mode;
        self
    }

    /// Overrides the per-tile scratchpad capacity in bytes.
    pub fn scratchpad_bytes(mut self, bytes: usize) -> Self {
        self.config.scratchpad_bytes = bytes;
        self
    }

    /// Overrides the router buffer size in flits.
    pub fn noc_buffer_flits(mut self, flits: usize) -> Self {
        self.config.noc_buffer_flits = flits;
        self
    }

    /// Overrides the ejection buffer size in flits.
    pub fn noc_ejection_flits(mut self, flits: usize) -> Self {
        self.config.noc_ejection_flits = flits;
        self
    }

    /// Overrides the endpoint bandwidth: messages drained from the ejection
    /// buffers — and injected from the channel queues — per tile per cycle.
    /// The default of 1 models the paper's single local router port.
    pub fn endpoint_drains_per_cycle(mut self, drains: usize) -> Self {
        self.config.endpoint_drains_per_cycle = drains;
        self
    }

    /// Overrides the hard cycle limit.
    pub fn max_cycles(mut self, cycles: u64) -> Self {
        self.config.max_cycles = cycles;
        self
    }

    /// Overrides the deadlock watchdog window.
    pub fn watchdog_cycles(mut self, cycles: u64) -> Self {
        self.config.watchdog_cycles = cycles;
        self
    }

    /// Overrides the per-dispatch invocation overhead (used by the
    /// `Data-Local` ablation rung to model interrupting remote calls).
    pub fn invocation_overhead_cycles(mut self, cycles: u64) -> Self {
        self.config.invocation_overhead_cycles = cycles;
        self
    }

    /// Overrides the cycle engine (default [`Engine::Skip`]; the modelled
    /// schedule is identical for every engine).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.config.engine = engine;
        self
    }

    /// Overrides lazy tile-state allocation (default `false` = lazy): when
    /// `true`, every tile's arena slab is materialized before the first
    /// cycle, as the pre-arena engine did.  The modelled schedule is
    /// identical either way; the memory report's tile-arena line is not.
    pub fn eager_tile_init(mut self, eager: bool) -> Self {
        self.config.eager_tile_init = eager;
        self
    }

    /// Installs a deterministic fault schedule (default empty).  An empty
    /// plan is schedule-invisible; a non-empty plan degrades the run but
    /// stays bit-identical across all five cycle engines.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.config.faults = faults;
        self
    }

    /// Overrides the static-verifier mode (default [`VerifyMode::Warn`]):
    /// `Off` skips the analysis passes, `Warn` prints their findings,
    /// `Deny` fails [`crate::Simulation::new`] with
    /// [`SimError::Verification`] on any error-severity finding.
    pub fn verify(mut self, mode: VerifyMode) -> Self {
        self.config.verify = mode;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any dimension, buffer or limit
    /// is zero, or the ruche factor is smaller than 2.
    pub fn build(self) -> Result<SimConfig, SimError> {
        let c = &self.config;
        let reject = |reason: &str| -> Result<SimConfig, SimError> {
            Err(SimError::InvalidConfig {
                reason: reason.to_string(),
            })
        };
        if c.grid.width == 0 || c.grid.height == 0 {
            return reject("grid dimensions must be non-zero");
        }
        if c.scratchpad_bytes == 0 {
            return reject("scratchpad capacity must be non-zero");
        }
        if c.noc_buffer_flits == 0 || c.noc_ejection_flits == 0 {
            return reject("NoC buffers must hold at least one flit");
        }
        if c.endpoint_drains_per_cycle == 0 {
            return reject("endpoints must drain at least one message per cycle");
        }
        if c.max_cycles == 0 || c.watchdog_cycles == 0 {
            return reject("cycle limits must be non-zero");
        }
        if let Topology::TorusRuche { factor } = c.topology {
            if factor < 2 {
                return reject("ruche factor must be at least 2");
            }
        }
        if let Err(reason) = c.faults.resolve(c.grid.num_tiles()) {
            return Err(SimError::InvalidConfig {
                reason: format!("invalid fault plan: {reason}"),
            });
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let config = SimConfigBuilder::new(GridConfig::square(16)).build().unwrap();
        assert_eq!(config.topology, Topology::Torus);
        assert_eq!(config.scheduling, SchedulingPolicy::OccupancyPriority);
        assert_eq!(config.vertex_placement, VertexPlacement::Interleaved);
        assert_eq!(config.barrier_mode, BarrierMode::Barrierless);
        assert_eq!(config.scratchpad_bytes, 4 * 1024 * 1024);
        assert_eq!(config.endpoint_drains_per_cycle, 1);
        assert_eq!(config.verify, VerifyMode::Warn);
    }

    #[test]
    fn verify_mode_override_applies() {
        let config = SimConfigBuilder::new(GridConfig::square(4))
            .verify(VerifyMode::Deny)
            .build()
            .unwrap();
        assert_eq!(config.verify, VerifyMode::Deny);
    }

    #[test]
    fn large_grids_default_to_ruche_torus() {
        let config = SimConfigBuilder::new(GridConfig::square(64)).build().unwrap();
        assert_eq!(config.topology, Topology::TorusRuche { factor: 4 });
        let small = SimConfigBuilder::new(GridConfig::square(32)).build().unwrap();
        assert_eq!(small.topology, Topology::Torus);
    }

    #[test]
    fn builder_overrides_apply() {
        let config = SimConfigBuilder::new(GridConfig::new(2, 3))
            .topology(Topology::Mesh)
            .scheduling(SchedulingPolicy::RoundRobin)
            .vertex_placement(VertexPlacement::Chunked)
            .barrier_mode(BarrierMode::EpochBarrier)
            .scratchpad_bytes(1024)
            .noc_buffer_flits(8)
            .noc_ejection_flits(8)
            .endpoint_drains_per_cycle(4)
            .max_cycles(1000)
            .watchdog_cycles(100)
            .build()
            .unwrap();
        assert_eq!(config.grid.num_tiles(), 6);
        assert_eq!(config.endpoint_drains_per_cycle, 4);
        assert_eq!(config.topology, Topology::Mesh);
        assert_eq!(config.scheduling, SchedulingPolicy::RoundRobin);
        assert_eq!(config.vertex_placement, VertexPlacement::Chunked);
        assert_eq!(config.barrier_mode, BarrierMode::EpochBarrier);
        assert_eq!(config.max_cycles, 1000);
    }

    #[test]
    fn tile_init_defaults_to_lazy() {
        let config = SimConfigBuilder::new(GridConfig::square(4)).build().unwrap();
        assert!(!config.eager_tile_init);
        let eager = SimConfigBuilder::new(GridConfig::square(4))
            .eager_tile_init(true)
            .build()
            .unwrap();
        assert!(eager.eager_tile_init);
    }

    #[test]
    fn engine_defaults_parses_and_round_trips() {
        let config = SimConfigBuilder::new(GridConfig::square(4)).build().unwrap();
        assert_eq!(config.engine, Engine::Skip);
        let calendar = SimConfigBuilder::new(GridConfig::square(4))
            .engine(Engine::Calendar)
            .build()
            .unwrap();
        assert_eq!(calendar.engine, Engine::Calendar);
        for engine in Engine::ALL {
            assert_eq!(engine.name().parse::<Engine>().unwrap(), engine);
            assert_eq!(engine.to_string(), engine.name());
        }
        assert_eq!("tick".parse::<Engine>().unwrap(), Engine::Ticked);
        assert!("warp".parse::<Engine>().is_err());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SimConfigBuilder::new(GridConfig::new(0, 4)).build().is_err());
        assert!(SimConfigBuilder::new(GridConfig::square(4))
            .scratchpad_bytes(0)
            .build()
            .is_err());
        assert!(SimConfigBuilder::new(GridConfig::square(4))
            .noc_buffer_flits(0)
            .build()
            .is_err());
        assert!(SimConfigBuilder::new(GridConfig::square(4))
            .endpoint_drains_per_cycle(0)
            .build()
            .is_err());
        assert!(SimConfigBuilder::new(GridConfig::square(4))
            .max_cycles(0)
            .build()
            .is_err());
        assert!(SimConfigBuilder::new(GridConfig::square(4))
            .topology(Topology::TorusRuche { factor: 1 })
            .build()
            .is_err());
    }
}
