//! Kernel output gathering.
//!
//! At the end of a run, the engine gathers the kernel's declared output
//! arrays from every tile back into global vertex order — the inverse of
//! the data distribution — so results can be compared against the reference
//! implementations, exactly as the paper validates its simulator against
//! sequential x86 executions.

use std::collections::BTreeMap;

/// The gathered output of a kernel run: one global `u32` array per declared
/// output array, in vertex order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelOutput {
    arrays: BTreeMap<String, Vec<u32>>,
}

impl KernelOutput {
    /// Creates an empty output set.
    pub fn new() -> Self {
        KernelOutput::default()
    }

    /// Inserts a gathered array under `name`.
    pub fn insert(&mut self, name: &str, values: Vec<u32>) {
        self.arrays.insert(name.to_string(), values);
    }

    /// Names of the gathered arrays.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.arrays.keys().map(String::as_str)
    }

    /// The array gathered under `name`, if present.
    pub fn get(&self, name: &str) -> Option<&[u32]> {
        self.arrays.get(name).map(Vec::as_slice)
    }

    /// The array gathered under `name`.
    ///
    /// # Panics
    ///
    /// Panics if no array with that name was gathered.
    pub fn as_u32_array(&self, name: &str) -> &[u32] {
        self.get(name)
            .unwrap_or_else(|| panic!("kernel produced no output array named {name:?}"))
    }

    /// The array gathered under `name`, widened to `u64` (convenient for
    /// comparing against the fixed-point PageRank reference).
    pub fn as_u64_array(&self, name: &str) -> Vec<u64> {
        self.as_u32_array(name).iter().map(|&v| u64::from(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut out = KernelOutput::new();
        out.insert("dist", vec![1, 2, 3]);
        out.insert("depth", vec![9]);
        assert_eq!(out.as_u32_array("dist"), &[1, 2, 3]);
        assert_eq!(out.get("missing"), None);
        let names: Vec<&str> = out.names().collect();
        assert_eq!(names, vec!["depth", "dist"]);
        assert_eq!(out.as_u64_array("depth"), vec![9u64]);
    }

    #[test]
    #[should_panic(expected = "no output array")]
    fn missing_array_panics_with_name() {
        let out = KernelOutput::new();
        let _ = out.as_u32_array("dist");
    }
}
