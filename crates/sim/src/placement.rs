//! Data placement: mapping global array indices to (tile, local index).
//!
//! Section III-A of the paper distributes every dataset array in equal
//! chunks across tiles, so that each tile owns `len / num_tiles` elements
//! and all accesses to them are local.  Two vertex-array placements appear
//! in the evaluation:
//!
//! * **Chunked (high-order bits)** — element `i` lives on tile `i / chunk`;
//!   contiguous blocks per tile.  This is the placement of the ablation
//!   steps before `Uniform-Distr` in Figure 5.
//! * **Interleaved (low-order bits)** — element `i` lives on tile
//!   `i % num_tiles`.  "Dalorex uses low-order bits of indices to distribute
//!   data randomly, so the number of hot vertices per tile is relatively
//!   uniform" (Section III-F).  This is the `Uniform-Distr` step and the
//!   full-Dalorex default.
//!
//! Edge arrays are always chunked: task T1 sends *ranges* of edge indices
//! to the edge-owning tile (Listing 1 splits a range at every chunk
//! boundary), which requires consecutive edge indices to be co-located.
//! Vertex placement is the knob that spreads hot vertices.
//!
//! The head flit of every network message carries a global index; the TSU's
//! head encoder uses these mappings to derive the destination tile, and the
//! head decoder converts the index to the local offset before pushing it to
//! the input queue — that conversion is [`Placement::to_local`].

use dalorex_noc::TileId;

/// Placement policy for vertex-indexed arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VertexPlacement {
    /// Element `i` on tile `i / chunk_size` (high-order index bits).
    Chunked,
    /// Element `i` on tile `i % num_tiles` (low-order index bits); the
    /// Dalorex default.
    Interleaved,
}

/// Which distributed array an index refers to, for routing purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArraySpace {
    /// Vertex-indexed arrays (`dist`, `ptr`-descriptors, ranks, ...).
    Vertex,
    /// Edge-indexed arrays (`edge_idx`, `edge_values`).
    Edge,
}

/// Concrete placement of a dataset across a tile grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    num_tiles: usize,
    num_vertices: usize,
    num_edges: usize,
    vertex_placement: VertexPlacement,
    vertices_per_tile: usize,
    edges_per_tile: usize,
}

impl Placement {
    /// Creates a placement for a dataset of `num_vertices` and `num_edges`
    /// over `num_tiles` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `num_tiles` is zero.
    pub fn new(
        num_tiles: usize,
        num_vertices: usize,
        num_edges: usize,
        vertex_placement: VertexPlacement,
    ) -> Self {
        assert!(num_tiles > 0, "at least one tile is required");
        Placement {
            num_tiles,
            num_vertices,
            num_edges,
            vertex_placement,
            vertices_per_tile: num_vertices.div_ceil(num_tiles).max(1),
            edges_per_tile: num_edges.div_ceil(num_tiles).max(1),
        }
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.num_tiles
    }

    /// Number of vertices in the dataset.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges in the dataset.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The vertex placement policy.
    pub fn vertex_placement(&self) -> VertexPlacement {
        self.vertex_placement
    }

    /// Vertex-array chunk size per tile (`NODES_PER_CHUNK` in Listing 1).
    pub fn vertices_per_tile(&self) -> usize {
        self.vertices_per_tile
    }

    /// Edge-array chunk size per tile (`EDGES_PER_CHUNK` in Listing 1).
    pub fn edges_per_tile(&self) -> usize {
        self.edges_per_tile
    }

    /// Tile that owns global index `index` of the given array space.
    pub fn owner(&self, space: ArraySpace, index: usize) -> TileId {
        match space {
            ArraySpace::Edge => (index / self.edges_per_tile).min(self.num_tiles - 1),
            ArraySpace::Vertex => match self.vertex_placement {
                VertexPlacement::Chunked => {
                    (index / self.vertices_per_tile).min(self.num_tiles - 1)
                }
                VertexPlacement::Interleaved => index % self.num_tiles,
            },
        }
    }

    /// Local offset of global index `index` within its owner's chunk.
    pub fn to_local(&self, space: ArraySpace, index: usize) -> usize {
        match space {
            ArraySpace::Edge => index - self.owner(space, index) * self.edges_per_tile,
            ArraySpace::Vertex => match self.vertex_placement {
                VertexPlacement::Chunked => {
                    index - self.owner(space, index) * self.vertices_per_tile
                }
                VertexPlacement::Interleaved => index / self.num_tiles,
            },
        }
    }

    /// Global index of local offset `local` on `tile`.
    pub fn to_global(&self, space: ArraySpace, tile: TileId, local: usize) -> usize {
        match space {
            ArraySpace::Edge => tile * self.edges_per_tile + local,
            ArraySpace::Vertex => match self.vertex_placement {
                VertexPlacement::Chunked => tile * self.vertices_per_tile + local,
                VertexPlacement::Interleaved => local * self.num_tiles + tile,
            },
        }
    }

    /// The vertex-space `global = base + local * stride` mapping for `tile`.
    ///
    /// Both placements are affine in the local offset (chunked: `base =
    /// tile * vertices_per_tile`, stride 1; interleaved: `base = tile`,
    /// stride `num_tiles`), which is what lets a lazily allocated tile
    /// capture its whole vertex mapping in two words and materialize later
    /// without a `Placement` in hand.  Matches [`Placement::to_global`]
    /// exactly for `ArraySpace::Vertex`.
    pub fn vertex_affine(&self, tile: TileId) -> (usize, usize) {
        match self.vertex_placement {
            VertexPlacement::Chunked => (tile * self.vertices_per_tile, 1),
            VertexPlacement::Interleaved => (tile, self.num_tiles),
        }
    }

    /// Number of elements of the given array space stored on `tile`.
    pub fn local_len(&self, space: ArraySpace, tile: TileId) -> usize {
        let (total, per_tile) = match space {
            ArraySpace::Vertex => (self.num_vertices, self.vertices_per_tile),
            ArraySpace::Edge => (self.num_edges, self.edges_per_tile),
        };
        match (space, self.vertex_placement) {
            (ArraySpace::Edge, _) | (ArraySpace::Vertex, VertexPlacement::Chunked) => {
                let start = tile * per_tile;
                if start >= total {
                    0
                } else {
                    per_tile.min(total - start)
                }
            }
            (ArraySpace::Vertex, VertexPlacement::Interleaved) => {
                // Elements tile, tile + T, tile + 2T, ...
                if tile >= total {
                    0
                } else {
                    (total - tile).div_ceil(self.num_tiles)
                }
            }
        }
    }

    /// Chunk capacity each tile reserves for the given array space (the
    /// scratchpad allocation, which is the same on every tile regardless of
    /// how many elements the last tile actually holds).
    pub fn chunk_capacity(&self, space: ArraySpace) -> usize {
        match space {
            ArraySpace::Vertex => self.vertices_per_tile,
            ArraySpace::Edge => self.edges_per_tile,
        }
    }

    /// Splits the global edge range `[begin, end)` into maximal sub-ranges
    /// that each live on a single tile, exactly like task T1 in Listing 1
    /// splits a neighbour range at every `EDGES_PER_CHUNK` boundary.
    pub fn split_edge_range(
        &self,
        begin: usize,
        end: usize,
    ) -> impl Iterator<Item = (TileId, usize, usize)> + '_ {
        let mut current = begin;
        std::iter::from_fn(move || {
            if current >= end {
                return None;
            }
            let tile = self.owner(ArraySpace::Edge, current);
            let chunk_end = (tile + 1) * self.edges_per_tile;
            let stop = end.min(chunk_end);
            let item = (tile, current, stop);
            current = stop;
            Some(item)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_placement_maps_contiguously() {
        let p = Placement::new(4, 100, 400, VertexPlacement::Chunked);
        assert_eq!(p.vertices_per_tile(), 25);
        assert_eq!(p.owner(ArraySpace::Vertex, 0), 0);
        assert_eq!(p.owner(ArraySpace::Vertex, 24), 0);
        assert_eq!(p.owner(ArraySpace::Vertex, 25), 1);
        assert_eq!(p.owner(ArraySpace::Vertex, 99), 3);
        assert_eq!(p.to_local(ArraySpace::Vertex, 26), 1);
    }

    #[test]
    fn interleaved_placement_spreads_consecutive_indices() {
        let p = Placement::new(4, 100, 400, VertexPlacement::Interleaved);
        assert_eq!(p.owner(ArraySpace::Vertex, 0), 0);
        assert_eq!(p.owner(ArraySpace::Vertex, 1), 1);
        assert_eq!(p.owner(ArraySpace::Vertex, 5), 1);
        assert_eq!(p.to_local(ArraySpace::Vertex, 5), 1);
    }

    #[test]
    fn round_trip_global_local_for_both_placements() {
        for placement in [VertexPlacement::Chunked, VertexPlacement::Interleaved] {
            let p = Placement::new(7, 103, 311, placement);
            for space in [ArraySpace::Vertex, ArraySpace::Edge] {
                let total = match space {
                    ArraySpace::Vertex => 103,
                    ArraySpace::Edge => 311,
                };
                for index in 0..total {
                    let tile = p.owner(space, index);
                    let local = p.to_local(space, index);
                    assert!(tile < 7);
                    assert_eq!(
                        p.to_global(space, tile, local),
                        index,
                        "round trip failed for {space:?} {index} under {placement:?}"
                    );
                    assert!(local < p.chunk_capacity(space));
                }
            }
        }
    }

    #[test]
    fn vertex_affine_matches_to_global() {
        for placement in [VertexPlacement::Chunked, VertexPlacement::Interleaved] {
            let p = Placement::new(7, 103, 311, placement);
            for tile in 0..7 {
                let (base, stride) = p.vertex_affine(tile);
                for local in 0..p.chunk_capacity(ArraySpace::Vertex) + 2 {
                    assert_eq!(
                        base + local * stride,
                        p.to_global(ArraySpace::Vertex, tile, local),
                        "affine mapping diverged for tile {tile} local {local} under {placement:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn local_len_sums_to_total() {
        for placement in [VertexPlacement::Chunked, VertexPlacement::Interleaved] {
            let p = Placement::new(6, 101, 257, placement);
            let vertex_total: usize = (0..6).map(|t| p.local_len(ArraySpace::Vertex, t)).sum();
            let edge_total: usize = (0..6).map(|t| p.local_len(ArraySpace::Edge, t)).sum();
            assert_eq!(vertex_total, 101);
            assert_eq!(edge_total, 257);
        }
    }

    #[test]
    fn edges_are_always_chunked() {
        let p = Placement::new(4, 16, 100, VertexPlacement::Interleaved);
        assert_eq!(p.owner(ArraySpace::Edge, 0), 0);
        assert_eq!(p.owner(ArraySpace::Edge, 24), 0);
        assert_eq!(p.owner(ArraySpace::Edge, 25), 1);
    }

    #[test]
    fn split_edge_range_respects_chunk_boundaries() {
        let p = Placement::new(4, 16, 100, VertexPlacement::Chunked);
        // edges_per_tile = 25; range [20, 60) spans tiles 0, 1 and 2.
        let parts: Vec<_> = p.split_edge_range(20, 60).collect();
        assert_eq!(parts, vec![(0, 20, 25), (1, 25, 50), (2, 50, 60)]);
        // A range inside one chunk is returned unchanged.
        let parts: Vec<_> = p.split_edge_range(30, 40).collect();
        assert_eq!(parts, vec![(1, 30, 40)]);
        // An empty range yields nothing.
        assert_eq!(p.split_edge_range(10, 10).count(), 0);
    }

    #[test]
    fn more_tiles_than_elements_is_handled() {
        let p = Placement::new(8, 3, 5, VertexPlacement::Chunked);
        assert_eq!(p.vertices_per_tile(), 1);
        assert_eq!(p.local_len(ArraySpace::Vertex, 0), 1);
        assert_eq!(p.local_len(ArraySpace::Vertex, 3), 0);
        assert_eq!(p.local_len(ArraySpace::Vertex, 7), 0);
        let total: usize = (0..8).map(|t| p.local_len(ArraySpace::Vertex, t)).sum();
        assert_eq!(total, 3);
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn zero_tiles_rejected() {
        let _ = Placement::new(0, 10, 10, VertexPlacement::Chunked);
    }
}
