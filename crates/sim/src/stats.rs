//! Simulation statistics: utilization, throughput and activity totals.
//!
//! These are the quantities the paper's figures plot: runtime in cycles
//! (Figures 5, 6, 8), edges and operations per second plus memory bandwidth
//! (Figure 7), PU-utilization heatmaps (Figure 10), and the activity
//! counters the energy model converts into Joules (Figures 5, 6, 9).

use crate::energy::ActivityCounters;
use crate::tile::TileCounters;
use dalorex_noc::stats::UtilizationGrid;
use dalorex_noc::NocStats;

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Number of epochs executed (barrier mode) or 1 for barrierless runs.
    pub epochs: u64,
    /// Task invocations executed, indexed by task id.
    pub task_invocations: Vec<u64>,
    /// Messages sent through the network.
    pub messages_sent: u64,
    /// Messages drained from ejection buffers into task IQs, across all
    /// tiles.  At quiescence this equals the network's delivered-message
    /// count — the conservation invariant the property suite checks for
    /// every endpoint-drain budget.
    pub messages_received: u64,
    /// Edges processed, as reported by the kernel.
    pub edges_processed: u64,
    /// Aggregate activity counters (input to the energy model).
    pub activity: ActivityCounters,
    /// Per-tile PU busy cycles (row-major), for the Figure 10 heatmap.
    pub per_tile_busy_cycles: Vec<u64>,
    /// Per-router busy fraction (row-major, in `[0, 1]`), for the Figure 10
    /// router heatmap.
    pub router_busy_fraction: Vec<f64>,
    /// Network statistics.
    pub noc: NocStats,
    /// Grid width used for heatmaps.
    pub grid_width: usize,
    /// Grid height used for heatmaps.
    pub grid_height: usize,
}

impl SimStats {
    /// Accumulates one tile's counters into the aggregate.
    pub fn absorb_tile(&mut self, counters: &TileCounters) {
        self.activity.sram_reads += counters.sram_reads;
        self.activity.sram_writes += counters.sram_writes;
        self.activity.pu_ops += counters.pu_ops;
        self.activity.pu_busy_cycles += counters.pu_busy_cycles;
        self.messages_sent += counters.messages_sent;
        self.messages_received += counters.messages_received;
        self.edges_processed += counters.edges_processed;
        if self.task_invocations.len() < counters.task_invocations.len() {
            self.task_invocations
                .resize(counters.task_invocations.len(), 0);
        }
        for (total, &count) in self
            .task_invocations
            .iter_mut()
            .zip(&counters.task_invocations)
        {
            *total += count;
        }
        self.per_tile_busy_cycles.push(counters.pu_busy_cycles);
    }

    /// Total task invocations across all tasks.
    pub fn total_invocations(&self) -> u64 {
        self.task_invocations.iter().sum()
    }

    /// Total PU operations plus memory accesses — the "operations" series of
    /// Figure 7.
    pub fn total_operations(&self) -> u64 {
        self.activity.pu_ops + self.activity.sram_reads + self.activity.sram_writes
    }

    /// Edges processed per second at the given clock frequency.
    pub fn edges_per_second(&self, clock_hz: f64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.edges_processed as f64 * clock_hz / self.cycles as f64
        }
    }

    /// Operations per second at the given clock frequency.
    pub fn operations_per_second(&self, clock_hz: f64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_operations() as f64 * clock_hz / self.cycles as f64
        }
    }

    /// Mean PU utilization across tiles, in `[0, 1]`.
    pub fn mean_pu_utilization(&self) -> f64 {
        if self.cycles == 0 || self.per_tile_busy_cycles.is_empty() {
            return 0.0;
        }
        let total: u64 = self.per_tile_busy_cycles.iter().sum();
        total as f64 / (self.cycles as f64 * self.per_tile_busy_cycles.len() as f64)
    }

    /// Per-tile PU utilization heatmap (Figure 10, left panels).
    ///
    /// # Panics
    ///
    /// Panics if the per-tile data does not match the recorded grid shape.
    pub fn pu_utilization_grid(&self) -> UtilizationGrid {
        let cycles = self.cycles.max(1) as f64;
        let values = self
            .per_tile_busy_cycles
            .iter()
            .map(|&busy| (busy as f64 / cycles).min(1.0))
            .collect();
        UtilizationGrid::new(self.grid_width, self.grid_height, values)
    }

    /// Per-router utilization heatmap (Figure 10, right panels).
    ///
    /// # Panics
    ///
    /// Panics if the per-router data does not match the recorded grid shape.
    pub fn router_utilization_grid(&self) -> UtilizationGrid {
        UtilizationGrid::new(
            self.grid_width,
            self.grid_height,
            self.router_busy_fraction.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile_counters(reads: u64, busy: u64) -> TileCounters {
        TileCounters {
            sram_reads: reads,
            sram_writes: reads / 2,
            pu_ops: reads * 2,
            pu_busy_cycles: busy,
            task_invocations: vec![3, 1],
            edges_processed: 10,
            messages_sent: 4,
            messages_received: 3,
            ..TileCounters::default()
        }
    }

    #[test]
    fn absorb_accumulates_counters() {
        let mut stats = SimStats {
            grid_width: 2,
            grid_height: 1,
            ..SimStats::default()
        };
        stats.absorb_tile(&tile_counters(100, 50));
        stats.absorb_tile(&tile_counters(200, 150));
        assert_eq!(stats.activity.sram_reads, 300);
        assert_eq!(stats.activity.sram_writes, 150);
        assert_eq!(stats.activity.pu_ops, 600);
        assert_eq!(stats.task_invocations, vec![6, 2]);
        assert_eq!(stats.total_invocations(), 8);
        assert_eq!(stats.edges_processed, 20);
        assert_eq!(stats.messages_sent, 8);
        assert_eq!(stats.messages_received, 6);
        assert_eq!(stats.per_tile_busy_cycles, vec![50, 150]);
    }

    #[test]
    fn throughput_figures() {
        let mut stats = SimStats {
            cycles: 1_000,
            grid_width: 2,
            grid_height: 1,
            ..SimStats::default()
        };
        stats.absorb_tile(&tile_counters(100, 500));
        stats.absorb_tile(&tile_counters(100, 1000));
        // 20 edges over 1000 cycles at 1 GHz = 20M edges/s.
        assert!((stats.edges_per_second(1.0e9) - 2.0e7).abs() < 1.0);
        assert!(stats.operations_per_second(1.0e9) > 0.0);
        // Utilization: (500 + 1000) / (2 * 1000) = 0.75.
        assert!((stats.mean_pu_utilization() - 0.75).abs() < 1e-12);
        let grid = stats.pu_utilization_grid();
        assert_eq!(grid.at(0, 0), 0.5);
        assert_eq!(grid.at(1, 0), 1.0);
    }

    #[test]
    fn zero_cycles_gives_zero_rates() {
        let stats = SimStats::default();
        assert_eq!(stats.edges_per_second(1.0e9), 0.0);
        assert_eq!(stats.operations_per_second(1.0e9), 0.0);
        assert_eq!(stats.mean_pu_utilization(), 0.0);
    }
}
