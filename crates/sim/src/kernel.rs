//! The Dalorex programming model: kernel, task, channel and array
//! declarations.
//!
//! Section III-B of the paper splits a parallel-loop iteration into tasks at
//! every pointer indirection.  Each task reads its parameters from an input
//! queue (IQ), operates only on data local to the tile, and invokes the next
//! task by writing the parameters — head flit first — into a channel queue
//! (CQ) that the network delivers to the tile owning the next datum.  A
//! kernel is the set of task bodies plus the static declarations the TSU
//! needs: queue sizes, parameter counts, channel targets, and the local
//! arrays the tasks operate on.
//!
//! Kernels implement the [`Kernel`] trait; the simulator in
//! [`crate::engine`] provides the execution contexts.

use crate::placement::ArraySpace;
use std::sync::Arc;

/// Index of a task within a kernel (`T1` is task 0, and so on).
pub type TaskId = usize;

/// Index of a kernel-declared local array, in declaration order.
pub type ArrayId = usize;

/// How a task's parameters reach its body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskParams {
    /// The TSU pops `n` words from the IQ and passes them as `params` —
    /// like tasks T2 and T3 in the paper's Listing 1.
    AutoPop(usize),
    /// The task reads its IQ itself through peek/pop, allowing partial
    /// progress across invocations — like tasks T1 and T4.
    SelfManaged,
}

/// Capacity of a task's input queue.  Queue sizes are configured when the
/// program is loaded (paper Section III-E), so they may depend on the size
/// of the tile's data chunk — e.g. the frontier-exploration task T4 declares
/// an IQ of `FRONTIER_LEN = NODES_PER_CHUNK / 32` entries in Listing 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueCapacity {
    /// A fixed number of 32-bit words.
    Words(usize),
    /// One word per locally owned vertex.
    PerVertex,
    /// One word per 32 locally owned vertices (`FRONTIER_LEN`).
    VertexBlocks,
}

/// Static declaration of one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskDecl {
    /// Short name used in statistics ("T1", "explore", ...).
    pub name: &'static str,
    /// Input-queue capacity.
    pub iq_capacity: QueueCapacity,
    /// Parameter-delivery mode.
    pub params: TaskParams,
    /// Output-space guarantees the TSU must check before dispatch: pairs of
    /// `(channel, words)` meaning "only invoke this task when channel's CQ
    /// has at least `words` free".  Tasks that check fullness themselves
    /// (T1) leave this empty.
    pub cq_space_required: Vec<(usize, usize)>,
    /// Output-space guarantees on *local* input queues: pairs of
    /// `(task, words)` meaning "only invoke this task when `task`'s IQ has
    /// at least `words` free".  A task whose output is a local push (the
    /// frontier re-explore task T4 pushes into T1's IQ) declares its
    /// output-queue requirement here, exactly as a channel-writing task
    /// declares `cq_space_required`: the TSU must not dispatch a task whose
    /// output queue cannot absorb any progress, or an occupancy-priority
    /// schedule can spin it forever against the full queue (the single-tile
    /// T4/T1 livelock).
    pub iq_space_required: Vec<(usize, usize)>,
    /// Declared dataflow: channels this task's body writes through
    /// [`TaskContext::try_send`].  Purely descriptive — the simulator does
    /// not enforce it — but it is what lets the static verifier
    /// ([`crate::verify`]) build the producer graph and prove the absence
    /// of capacity cycles and occupancy-priority livelocks before the first
    /// simulated cycle.  Kernels that declare no dataflow at all skip those
    /// analysis passes.
    pub sends: Vec<usize>,
    /// Declared dataflow: tasks whose IQ this task's body pushes into
    /// through [`TaskContext::try_push_local`] (same-tile chaining, e.g.
    /// T3 → IQ4 and T4 → IQ1).  See [`TaskDecl::sends`].
    pub local_pushes: Vec<TaskId>,
    /// Whether the host injects invocations into this task's IQ from
    /// outside the task graph ([`Kernel::bootstrap`] or
    /// [`Kernel::on_global_idle`]).  Entry tasks seed the verifier's
    /// reachability analysis.
    pub entry: bool,
}

impl TaskDecl {
    /// Creates a task declaration with a fixed IQ capacity in words and no
    /// dispatch-time output guarantee.
    pub fn new(name: &'static str, iq_capacity_words: usize, params: TaskParams) -> Self {
        TaskDecl {
            name,
            iq_capacity: QueueCapacity::Words(iq_capacity_words),
            params,
            cq_space_required: Vec::new(),
            iq_space_required: Vec::new(),
            sends: Vec::new(),
            local_pushes: Vec::new(),
            entry: false,
        }
    }

    /// Creates a task declaration whose IQ capacity scales with the tile's
    /// data chunk.
    pub fn with_capacity(
        name: &'static str,
        iq_capacity: QueueCapacity,
        params: TaskParams,
    ) -> Self {
        TaskDecl {
            name,
            iq_capacity,
            params,
            cq_space_required: Vec::new(),
            iq_space_required: Vec::new(),
            sends: Vec::new(),
            local_pushes: Vec::new(),
            entry: false,
        }
    }

    /// Adds a dispatch-time guarantee: the task only runs when `channel` has
    /// at least `words` free entries.
    pub fn requires_cq_space(mut self, channel: usize, words: usize) -> Self {
        self.cq_space_required.push((channel, words));
        self
    }

    /// Adds a dispatch-time guarantee on a local IQ: the task only runs
    /// when `task`'s input queue has at least `words` free entries.  Declare
    /// this for tasks whose output is a local push into another task's IQ.
    pub fn requires_iq_space(mut self, task: TaskId, words: usize) -> Self {
        self.iq_space_required.push((task, words));
        self
    }

    /// Declares that this task's body sends messages on `channel` (see
    /// [`TaskDecl::sends`]).
    pub fn sends(mut self, channel: usize) -> Self {
        self.sends.push(channel);
        self
    }

    /// Declares that this task's body pushes invocations into `task`'s IQ
    /// on the same tile (see [`TaskDecl::local_pushes`]).
    pub fn pushes_local(mut self, task: TaskId) -> Self {
        self.local_pushes.push(task);
        self
    }

    /// Marks this task as a host entry point: the bootstrap or the
    /// global-idle hook pushes invocations into its IQ.
    pub fn entry(mut self) -> Self {
        self.entry = true;
        self
    }
}

/// Static declaration of one network channel (CQ → remote IQ).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelDecl {
    /// Short name used in statistics ("CQ1", ...).
    pub name: &'static str,
    /// Task whose IQ receives messages sent on this channel.
    pub dest_task: TaskId,
    /// Array space the head flit indexes; the head encoder derives the
    /// destination tile from it, and the head decoder converts it to a local
    /// offset at the receiver.
    pub space: ArraySpace,
    /// Flits per message (the head plus the remaining parameters).
    pub flits_per_message: usize,
    /// Capacity of the sending side's channel queue, in words.
    pub cq_capacity_words: usize,
}

impl ChannelDecl {
    /// Creates a channel declaration.
    pub fn new(
        name: &'static str,
        dest_task: TaskId,
        space: ArraySpace,
        flits_per_message: usize,
        cq_capacity_words: usize,
    ) -> Self {
        ChannelDecl {
            name,
            dest_task,
            space,
            flits_per_message,
            cq_capacity_words,
        }
    }
}

/// Length of a kernel-declared local array, per tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalArrayLen {
    /// One word per locally owned vertex.
    PerVertex,
    /// One word per locally owned edge.
    PerEdge,
    /// One word per 32 locally owned vertices (a frontier bitmap).
    VertexBitmap,
    /// A fixed number of words.
    Words(usize),
}

/// Initial contents of a kernel-declared local array.
#[derive(Clone)]
pub enum ArrayInit {
    /// All zeros.
    Zero,
    /// All entries set to a constant.
    Const(u32),
    /// All entries set to `u32::MAX` (the "unreached" sentinel).
    MaxU32,
    /// Per-vertex arrays only: entry for global vertex `v` set to `v` (used
    /// by WCC's initial labels).
    GlobalVertexId,
    /// Per-vertex arrays only: entry for global vertex `v` set to `f(v)`
    /// (used by SPMV's input vector).
    PerVertexFn(Arc<dyn Fn(u32) -> u32 + Send + Sync>),
}

impl std::fmt::Debug for ArrayInit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArrayInit::Zero => write!(f, "Zero"),
            ArrayInit::Const(v) => write!(f, "Const({v})"),
            ArrayInit::MaxU32 => write!(f, "MaxU32"),
            ArrayInit::GlobalVertexId => write!(f, "GlobalVertexId"),
            ArrayInit::PerVertexFn(_) => write!(f, "PerVertexFn(..)"),
        }
    }
}

/// Static declaration of one kernel-local array.
#[derive(Debug, Clone)]
pub struct LocalArrayDecl {
    /// Array name; output arrays are gathered by this name.
    pub name: &'static str,
    /// Per-tile length.
    pub len: LocalArrayLen,
    /// Initial contents.
    pub init: ArrayInit,
}

impl LocalArrayDecl {
    /// Creates an array declaration.
    pub fn new(name: &'static str, len: LocalArrayLen, init: ArrayInit) -> Self {
        LocalArrayDecl { name, len, init }
    }
}

/// Decision returned by [`Kernel::on_global_idle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochDecision {
    /// More work was scheduled; run another epoch.
    Continue,
    /// The computation is complete.
    Finish,
}

/// A kernel written for the Dalorex programming model.
///
/// The declaration methods ([`Kernel::tasks`], [`Kernel::channels`],
/// [`Kernel::arrays`]) are called once at simulation setup; they must return
/// the same declarations every time.  [`Kernel::execute`] is the task body
/// dispatched by the TSU; it must only touch tile-local state through the
/// provided context (that restriction is what makes every memory operation
/// local, the core of the paper's execution model).
///
/// Kernels must be [`Send`] + [`Sync`]: the parallel engine
/// ([`crate::config::Engine::Parallel`]) shares one kernel reference across
/// its worker pool.  Task bodies only receive `&self`, so any mutable
/// kernel-side state would already be a bug under every engine.
pub trait Kernel: Send + Sync {
    /// Kernel name used in reports ("bfs", "sssp", ...).
    fn name(&self) -> &str;

    /// Task declarations, `T1` first.
    fn tasks(&self) -> Vec<TaskDecl>;

    /// Channel declarations.
    fn channels(&self) -> Vec<ChannelDecl>;

    /// Kernel-local array declarations.
    fn arrays(&self) -> Vec<LocalArrayDecl>;

    /// Number of per-tile scalar variables (the paper's "memory-stored
    /// variables" such as `blocks_in_frontier`).
    fn num_tile_vars(&self) -> usize {
        0
    }

    /// Names of the arrays that constitute the kernel's output, gathered
    /// into global order at the end of the run.
    fn output_arrays(&self) -> Vec<&'static str>;

    /// Called once per tile before the first cycle; pushes the initial task
    /// invocations (e.g. the BFS root into T1's IQ on the root's owner).
    fn bootstrap(&self, ctx: &mut dyn BootstrapContext);

    /// The task bodies. `params` holds the auto-popped parameters for
    /// [`TaskParams::AutoPop`] tasks and is empty for self-managed tasks.
    fn execute(&self, task: TaskId, params: &[u32], ctx: &mut dyn TaskContext);

    /// Called whenever the whole chip (tiles and network) is idle. Barrier
    /// kernels trigger the next epoch here; barrierless kernels return
    /// [`EpochDecision::Finish`] once nothing remains.
    fn on_global_idle(&self, epoch: usize, ctx: &mut dyn EpochContext) -> EpochDecision;

    /// Diagnostic codes from [`crate::verify`] this kernel deliberately
    /// suppresses (e.g. `"V041"`).  Use sparingly, with a comment next to
    /// the override justifying each code: a suppression silences the
    /// finding for every run of this kernel.
    fn verify_suppressions(&self) -> Vec<&'static str> {
        Vec::new()
    }
}

/// Context handed to [`Kernel::bootstrap`], scoped to one tile.
pub trait BootstrapContext {
    /// This tile's id.
    fn tile(&self) -> usize;
    /// Number of vertices this tile owns.
    fn num_local_vertices(&self) -> usize;
    /// Number of edges this tile owns.
    fn num_local_edges(&self) -> usize;
    /// Local offset of global vertex `v` if this tile owns it.
    fn local_vertex(&self, global: u32) -> Option<usize>;
    /// Global id of the local vertex at `local`.
    fn global_vertex(&self, local: usize) -> u32;
    /// Pushes an invocation into a local task's IQ; returns false if full.
    fn push_invocation(&mut self, task: TaskId, words: &[u32]) -> bool;
    /// Sets a per-tile scalar variable.
    fn set_var(&mut self, index: usize, value: u32);
    /// Writes directly into a local array (initial state beyond `ArrayInit`).
    fn write_array(&mut self, array: ArrayId, index: usize, value: u32);
    /// Reads a local array entry.
    fn read_array(&self, array: ArrayId, index: usize) -> u32;
}

/// Context handed to [`Kernel::execute`]; every access is tile-local and is
/// charged to the tile's cycle/energy counters.
pub trait TaskContext {
    // ---- identity and geometry -------------------------------------------
    /// This tile's id.
    fn tile(&self) -> usize;
    /// Number of vertices this tile owns.
    fn num_local_vertices(&self) -> usize;
    /// Number of edges this tile owns.
    fn num_local_edges(&self) -> usize;
    /// Vertex chunk capacity per tile (`NODES_PER_CHUNK`).
    fn vertices_per_chunk(&self) -> usize;
    /// Edge chunk capacity per tile (`EDGES_PER_CHUNK`).
    fn edges_per_chunk(&self) -> usize;
    /// Global id of the local vertex at `local`.
    fn global_vertex(&self, local: usize) -> u32;
    /// Whether the simulation runs with per-epoch barriers
    /// ([`crate::config::BarrierMode::EpochBarrier`]).
    fn barrier_mode(&self) -> bool;

    // ---- CSR chunk (read-only dataset arrays) ----------------------------
    /// Global edge index at which local vertex `local`'s out-edges start.
    fn row_begin(&mut self, local: usize) -> u32;
    /// Global edge index one past local vertex `local`'s out-edges.
    fn row_end(&mut self, local: usize) -> u32;
    /// Destination (global vertex id) of the local edge at `local`.
    fn edge_dst(&mut self, local: usize) -> u32;
    /// Weight of the local edge at `local`.
    fn edge_value(&mut self, local: usize) -> u32;

    // ---- kernel arrays and variables -------------------------------------
    /// Reads a kernel array entry.
    fn read(&mut self, array: ArrayId, index: usize) -> u32;
    /// Writes a kernel array entry.
    fn write(&mut self, array: ArrayId, index: usize, value: u32);
    /// Reads a per-tile scalar variable.
    fn var(&mut self, index: usize) -> u32;
    /// Writes a per-tile scalar variable.
    fn set_var(&mut self, index: usize, value: u32);

    // ---- queues ------------------------------------------------------------
    /// Free words in a channel queue.
    fn cq_free(&self, channel: usize) -> usize;
    /// Sends one message (head flit = **global** index into the channel's
    /// array space) if the CQ has room; returns whether it was accepted.
    fn try_send(&mut self, channel: usize, words: &[u32]) -> bool;
    /// Free words in a local task's IQ.
    fn iq_free(&self, task: TaskId) -> usize;
    /// Pushes an invocation into a local task's IQ (same-tile task chaining,
    /// e.g. T3 → IQ4); returns whether it was accepted.
    fn try_push_local(&mut self, task: TaskId, words: &[u32]) -> bool;
    /// Peeks the head word of the *current* task's IQ (self-managed tasks).
    fn iq_peek(&mut self) -> Option<u32>;
    /// Pops the head word of the current task's IQ (self-managed tasks).
    fn iq_pop(&mut self) -> Option<u32>;
    /// Words currently queued in the current task's IQ.
    fn iq_len(&self) -> usize;

    // ---- accounting --------------------------------------------------------
    /// Charges `n` ALU operations to the current invocation.
    fn charge_ops(&mut self, n: u64);
    /// Records `n` edges as processed (the work-efficiency metric of
    /// Figures 6 and 7).
    fn count_edges(&mut self, n: u64);

    // ---- routing helpers ---------------------------------------------------
    /// Splits the global edge range `[begin, end)` at tile-chunk boundaries,
    /// streaming `(owner_tile, begin, end)` per piece to `part` — what task
    /// T1 does when a neighbour range crosses `EDGES_PER_CHUNK`.
    ///
    /// This is the allocation-free form for task bodies on the hot path;
    /// [`TaskContext::split_edge_range`] is the `Vec`-returning shim kept
    /// for the reference path and for callers that want the pieces
    /// materialized.
    fn for_each_edge_part(&mut self, begin: u32, end: u32, part: &mut dyn FnMut(usize, u32, u32));

    /// Splits the global edge range `[begin, end)` at tile-chunk boundaries,
    /// returning `(owner_tile, begin, end)` per piece.
    ///
    /// Provided shim over [`TaskContext::for_each_edge_part`]: it allocates
    /// a `Vec` per call, so inside task bodies prefer the streaming form.
    fn split_edge_range(&mut self, begin: u32, end: u32) -> Vec<(usize, u32, u32)> {
        let mut parts = Vec::new();
        self.for_each_edge_part(begin, end, &mut |tile, b, e| parts.push((tile, b, e)));
        parts
    }
}

/// Context handed to [`Kernel::on_global_idle`], spanning all tiles.
pub trait EpochContext {
    /// Number of tiles.
    fn num_tiles(&self) -> usize;
    /// Number of vertices owned by `tile`.
    fn num_local_vertices(&self, tile: usize) -> usize;
    /// Reads a per-tile scalar variable.
    fn read_var(&self, tile: usize, index: usize) -> u32;
    /// Reads a kernel array entry on `tile`.
    fn read_array(&self, tile: usize, array: ArrayId, index: usize) -> u32;
    /// Writes a kernel array entry on `tile` (host-mediated, charged as a
    /// broadcast rather than per-word traffic).
    fn write_array(&mut self, tile: usize, array: ArrayId, index: usize, value: u32);
    /// Sets a per-tile scalar variable.
    fn set_var(&mut self, tile: usize, index: usize, value: u32);
    /// Pushes an invocation into a task's IQ on `tile`; returns false if the
    /// queue is full.
    fn push_invocation(&mut self, tile: usize, task: TaskId, words: &[u32]) -> bool;
    /// Whether the simulation runs with per-epoch barriers.
    fn barrier_mode(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_decl_builder_accumulates_requirements() {
        let decl = TaskDecl::new("T2", 128, TaskParams::AutoPop(3))
            .requires_cq_space(1, 64)
            .requires_cq_space(2, 8);
        assert_eq!(decl.cq_space_required, vec![(1, 64), (2, 8)]);
        assert_eq!(decl.params, TaskParams::AutoPop(3));
    }

    #[test]
    fn array_init_debug_is_nonempty() {
        let inits = [
            ArrayInit::Zero,
            ArrayInit::Const(7),
            ArrayInit::MaxU32,
            ArrayInit::GlobalVertexId,
            ArrayInit::PerVertexFn(Arc::new(|v| v * 2)),
        ];
        for init in inits {
            assert!(!format!("{init:?}").is_empty());
        }
    }

    #[test]
    fn channel_decl_holds_fields() {
        let decl = ChannelDecl::new("CQ1", 1, ArraySpace::Edge, 3, 128);
        assert_eq!(decl.dest_task, 1);
        assert_eq!(decl.flits_per_message, 3);
        assert_eq!(decl.space, ArraySpace::Edge);
    }
}
