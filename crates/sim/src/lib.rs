//! Cycle-level simulator of the Dalorex tile architecture (HPCA 2023).
//!
//! Dalorex executes memory-bound applications by migrating computation to
//! the data instead of moving data to the compute: a 2D grid of tiles, each
//! with an SRAM scratchpad, a thin in-order processing unit (PU), a task
//! scheduling unit (TSU) and a router, runs programs split into tasks at
//! every pointer indirection.  Tasks execute on the tile that owns the data
//! they touch, so every memory operation is local and every update is
//! atomic by construction.
//!
//! This crate provides the architecture side of the reproduction:
//!
//! * [`config`] — grid, topology, scheduling, placement and barrier knobs
//!   (the Figure 5 ablation ladder is expressed entirely through these).
//! * [`placement`] — the equal-chunk data distribution and the low-order-bit
//!   (interleaved) vertex placement.
//! * [`queues`] / [`tile`] / [`tsu`] — the per-tile hardware: input/channel
//!   queues carved from the scratchpad, the distributed dataset chunk, and
//!   the occupancy-priority task scheduler.
//! * [`kernel`] — the programming model: the [`kernel::Kernel`]
//!   trait plus task/channel/array declarations (kernels themselves live in
//!   the `dalorex-kernels` crate).
//! * [`engine`] — the cycle-level execution loop coupling tiles with the
//!   `dalorex-noc` network, with termination detection, epoch barriers and
//!   a deadlock watchdog.
//! * [`verify`] — the static task-graph verifier (`dalorex-verify`): a
//!   pass pipeline over the declared tasks/channels/gates that rejects
//!   deadlockable and livelockable graphs before the first simulated cycle.
//! * [`energy`] / [`area`] — the 7 nm energy, area and power-density models
//!   behind the paper's energy figures.
//! * [`stats`] / [`output`] — utilization, throughput and gathered results.
//!
//! # Example
//!
//! A trivial "relay" kernel is exercised end-to-end in the tests of
//! [`engine`]; realistic kernels (BFS, SSSP, PageRank, WCC, SPMV) live in
//! the `dalorex-kernels` crate, and complete runnable scenarios are under
//! `examples/` at the workspace root.

// Unsafe is denied crate-wide and allowed back in exactly one leaf: the
// parallel engine's worker-pool handoff (`engine::par`), which passes one
// type-erased batch pointer per cycle under a mutex.  Everything else —
// including all of `dalorex-noc` — remains `forbid(unsafe_code)`-clean.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod config;
pub mod energy;
pub mod engine;
pub mod fault;
pub mod kernel;
pub mod memory;
pub mod output;
pub mod placement;
pub mod queues;
pub mod stats;
pub mod tile;
pub mod tsu;
pub mod verify;

mod context;
mod error;

pub use config::{BarrierMode, Engine, GridConfig, SchedulingPolicy, SimConfig, SimConfigBuilder};
pub use engine::{SimOutcome, Simulation};
pub use error::{BlockedTile, DeadlockDiagnostics, SimError};
pub use fault::{FaultEvent, FaultImpactEntry, FaultPlan, FaultReport, RandomFaultSpec};
pub use kernel::Kernel;
pub use memory::MemoryReport;
pub use output::KernelOutput;
pub use placement::{ArraySpace, Placement, VertexPlacement};
pub use stats::SimStats;
pub use verify::{Diagnostic, Severity, VerifyContext, VerifyMode, VerifyReport};
