//! Task Scheduling Unit: dispatch eligibility and priority policies.
//!
//! Section III-E: the TSU may only invoke a task when its input queue is
//! non-empty and its output queue has sufficient free entries, so that a
//! task never blocks mid-execution.  When several tasks are eligible the
//! TSU arbitrates; the paper's occupancy-based policy gives *high* priority
//! to a task whose IQ is nearly full (relieving end-point back-pressure),
//! *medium* priority to a task whose output queue is nearly empty (keeping
//! downstream tiles fed), and low priority otherwise, breaking ties toward
//! the larger queue.  A round-robin policy is kept as the `Basic-TSU`
//! ablation configuration.
//!
//! # Incremental pick
//!
//! [`Scheduler::pick`] consults the tile's incrementally maintained
//! task-ready bitmask ([`crate::tile::TileState::task_ready_mask`]) instead
//! of probing every task's queues: a tile with nothing eligible costs one
//! mask comparison, and an eligible task is found by bit tests in the same
//! arbitration order as before.  The pre-overhaul full rescan is preserved
//! as [`Scheduler::pick_reference`] — the engine's reference tile path
//! drives it, equivalence tests pin the two against each other, and it
//! remains the fallback for kernels whose declarations exceed the mask
//! width (more than 64 tasks).

use crate::config::SchedulingPolicy;
use crate::kernel::{TaskDecl, TaskParams};
use crate::tile::TileState;

/// IQ occupancy fraction at or above which a task becomes high priority.
/// The comparison itself is done in exact integer arithmetic
/// ([`crate::queues::WordQueue::at_least_three_quarters_full`]).
pub const HIGH_PRIORITY_IQ_FRACTION: f64 = 0.75;
/// Output-queue occupancy fraction at or below which a task becomes medium
/// priority (integer form:
/// [`crate::queues::WordQueue::at_most_one_quarter_full`]).
pub const MEDIUM_PRIORITY_OQ_FRACTION: f64 = 0.25;

/// Priority classes of the occupancy-based policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Default priority.
    Low = 0,
    /// The task's output queue is nearly empty: run it to keep consumers fed.
    Medium = 1,
    /// The task's input queue is nearly full: run it to relieve back-pressure.
    High = 2,
}

/// The per-tile task scheduler.
#[derive(Debug, Clone)]
pub struct Scheduler {
    policy: SchedulingPolicy,
    /// Round-robin pointer used for arbitration fairness.
    next_task: usize,
}

impl Scheduler {
    /// Creates a scheduler with the given policy.
    pub fn new(policy: SchedulingPolicy) -> Self {
        Scheduler {
            policy,
            next_task: 0,
        }
    }

    /// The policy in use.
    pub fn policy(&self) -> SchedulingPolicy {
        self.policy
    }

    /// Whether `task` can be dispatched right now on `tile`: its IQ holds at
    /// least one full invocation and every declared output-space guarantee
    /// holds.  This is the reference definition; the tile's task-ready mask
    /// maintains exactly this predicate incrementally.
    pub fn is_eligible(tile: &TileState, tasks: &[TaskDecl], task: usize) -> bool {
        if !tile.is_materialized() {
            // A hollow tile has no queued work by construction, so nothing
            // can be dispatch-eligible (and its queue descriptors do not
            // exist to probe).
            return false;
        }
        let decl = &tasks[task];
        let iq = &tile.iqs()[task];
        let has_input = match decl.params {
            TaskParams::AutoPop(n) => iq.len() >= n && n > 0,
            TaskParams::SelfManaged => !iq.is_empty(),
        };
        if !has_input {
            return false;
        }
        decl.cq_space_required
            .iter()
            .all(|&(channel, words)| tile.cqs()[channel].free() >= words)
            && decl
                .iq_space_required
                .iter()
                .all(|&(task, words)| tile.iqs()[task].free() >= words)
    }

    /// Priority of an eligible task under the occupancy policy.  Thresholds
    /// are evaluated in exact integer arithmetic (equivalent to the
    /// documented fractions for every physical queue size).
    pub fn priority(tile: &TileState, tasks: &[TaskDecl], task: usize) -> Priority {
        if tile.iqs()[task].at_least_three_quarters_full() {
            return Priority::High;
        }
        let decl = &tasks[task];
        let output_nearly_empty = decl
            .cq_space_required
            .iter()
            .any(|&(channel, _)| tile.cqs()[channel].at_most_one_quarter_full());
        if output_nearly_empty {
            Priority::Medium
        } else {
            Priority::Low
        }
    }

    /// Picks the next task to dispatch on `tile`, or `None` if no task is
    /// eligible (the TSU then clock-gates the PU).
    ///
    /// Consults the tile's task-ready bitmask; decisions are identical to
    /// [`Scheduler::pick_reference`], which rescans the queues instead.
    pub fn pick(&mut self, tile: &TileState, tasks: &[TaskDecl]) -> Option<usize> {
        if !tile.masks_exact() {
            return self.pick_reference(tile, tasks);
        }
        let ready = tile.task_ready_mask();
        if ready == 0 {
            debug_assert!((0..tasks.len()).all(|t| !Self::is_eligible(tile, tasks, t)));
            return None;
        }
        let num_tasks = tasks.len();
        match self.policy {
            SchedulingPolicy::RoundRobin => {
                for offset in 0..num_tasks {
                    let task = (self.next_task + offset) % num_tasks;
                    if ready & (1u64 << task) != 0 {
                        debug_assert!(Self::is_eligible(tile, tasks, task));
                        self.next_task = (task + 1) % num_tasks;
                        return Some(task);
                    }
                }
                None
            }
            SchedulingPolicy::OccupancyPriority => {
                let mut best: Option<(Priority, usize, usize)> = None;
                for offset in 0..num_tasks {
                    let task = (self.next_task + offset) % num_tasks;
                    if ready & (1u64 << task) == 0 {
                        debug_assert!(!Self::is_eligible(tile, tasks, task));
                        continue;
                    }
                    debug_assert!(Self::is_eligible(tile, tasks, task));
                    let priority = Self::priority(tile, tasks, task);
                    let queue_size = tile.iqs()[task].capacity();
                    let candidate = (priority, queue_size, task);
                    let better = match &best {
                        None => true,
                        Some((bp, bq, _)) => {
                            priority > *bp || (priority == *bp && queue_size > *bq)
                        }
                    };
                    if better {
                        best = Some(candidate);
                    }
                }
                let picked = best.map(|(_, _, task)| task);
                if let Some(task) = picked {
                    self.next_task = (task + 1) % num_tasks;
                }
                picked
            }
        }
    }

    /// The pre-overhaul pick: probes every task's queues through
    /// [`Scheduler::is_eligible`] on every call.  Preserved as the
    /// correctness oracle for [`Scheduler::pick`] (equivalence tests drive
    /// both over identical runs), as the engine's reference tile path, and
    /// as the fallback when the ready mask is not maintained.
    pub fn pick_reference(&mut self, tile: &TileState, tasks: &[TaskDecl]) -> Option<usize> {
        let num_tasks = tasks.len();
        if num_tasks == 0 {
            return None;
        }
        match self.policy {
            SchedulingPolicy::RoundRobin => {
                for offset in 0..num_tasks {
                    let task = (self.next_task + offset) % num_tasks;
                    if Self::is_eligible(tile, tasks, task) {
                        self.next_task = (task + 1) % num_tasks;
                        return Some(task);
                    }
                }
                None
            }
            SchedulingPolicy::OccupancyPriority => {
                let mut best: Option<(Priority, usize, usize)> = None;
                for offset in 0..num_tasks {
                    let task = (self.next_task + offset) % num_tasks;
                    if !Self::is_eligible(tile, tasks, task) {
                        continue;
                    }
                    let priority = Self::priority(tile, tasks, task);
                    let queue_size = tile.iqs()[task].capacity();
                    let candidate = (priority, queue_size, task);
                    let better = match &best {
                        None => true,
                        Some((bp, bq, _)) => {
                            priority > *bp || (priority == *bp && queue_size > *bq)
                        }
                    };
                    if better {
                        best = Some(candidate);
                    }
                }
                let picked = best.map(|(_, _, task)| task);
                if let Some(task) = picked {
                    self.next_task = (task + 1) % num_tasks;
                }
                picked
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ChannelDecl, LocalArrayDecl};
    use crate::placement::{ArraySpace, Placement, VertexPlacement};

    fn decls() -> (Vec<TaskDecl>, Vec<ChannelDecl>, Vec<LocalArrayDecl>) {
        (
            vec![
                TaskDecl::new("T1", 32, TaskParams::SelfManaged),
                TaskDecl::new("T2", 128, TaskParams::AutoPop(3)).requires_cq_space(0, 8),
                TaskDecl::new("T3", 2048, TaskParams::AutoPop(2)),
            ],
            vec![ChannelDecl::new("CQ2", 2, ArraySpace::Vertex, 2, 16)],
            vec![],
        )
    }

    fn tile() -> TileState {
        let placement = Placement::new(4, 64, 256, VertexPlacement::Interleaved);
        let (tasks, channels, arrays) = decls();
        TileState::new(0, &placement, &tasks, &channels, &arrays, 0)
    }

    #[test]
    fn no_task_eligible_on_empty_queues() {
        let tile = tile();
        let (tasks, _, _) = decls();
        let mut scheduler = Scheduler::new(SchedulingPolicy::OccupancyPriority);
        assert!(scheduler.pick(&tile, &tasks).is_none());
        assert!(scheduler.pick_reference(&tile, &tasks).is_none());
        assert_eq!(scheduler.policy(), SchedulingPolicy::OccupancyPriority);
    }

    #[test]
    fn autopop_task_needs_all_parameters() {
        let mut tile = tile();
        let (tasks, _, _) = decls();
        tile.push_iq(1, &[1, 2]);
        assert!(!Scheduler::is_eligible(&tile, &tasks, 1));
        tile.push_iq(1, &[3]);
        assert!(Scheduler::is_eligible(&tile, &tasks, 1));
    }

    #[test]
    fn cq_space_requirement_blocks_dispatch() {
        let mut tile = tile();
        let (tasks, _, _) = decls();
        tile.push_iq(1, &[1, 2, 3]);
        // Fill the CQ so fewer than 8 words remain.
        let filler = vec![0u32; 12];
        assert!(tile.push_cq(0, &filler));
        assert!(!Scheduler::is_eligible(&tile, &tasks, 1));
        assert_eq!(tile.task_ready_mask() & 0b010, 0);
        // Drain it and the task becomes eligible again.
        tile.pop_cq_invocation(0, 12).unwrap();
        assert!(Scheduler::is_eligible(&tile, &tasks, 1));
        assert_ne!(tile.task_ready_mask() & 0b010, 0);
    }

    #[test]
    fn round_robin_cycles_through_eligible_tasks() {
        let mut tile = tile();
        let (tasks, _, _) = decls();
        tile.push_iq(0, &[1]);
        tile.push_iq(2, &[1, 2]);
        let mut scheduler = Scheduler::new(SchedulingPolicy::RoundRobin);
        let first = scheduler.pick(&tile, &tasks).unwrap();
        let second = scheduler.pick(&tile, &tasks).unwrap();
        assert_ne!(first, second);
        assert!([0, 2].contains(&first) && [0, 2].contains(&second));
    }

    #[test]
    fn nearly_full_iq_wins_priority() {
        let mut tile = tile();
        let (tasks, _, _) = decls();
        // T1's IQ at 100% (32 of 32 words) -> high priority.
        let filler = vec![7u32; 32];
        assert!(tile.push_iq(0, &filler));
        // T3 has a little input -> low/medium priority.
        tile.push_iq(2, &[1, 2]);
        assert_eq!(Scheduler::priority(&tile, &tasks, 0), Priority::High);
        let mut scheduler = Scheduler::new(SchedulingPolicy::OccupancyPriority);
        assert_eq!(scheduler.pick(&tile, &tasks), Some(0));
    }

    #[test]
    fn empty_output_queue_gives_medium_priority() {
        let mut tile = tile();
        let (tasks, _, _) = decls();
        tile.push_iq(1, &[1, 2, 3]);
        // CQ0 is empty -> medium priority for T2.
        assert_eq!(Scheduler::priority(&tile, &tasks, 1), Priority::Medium);
        // T3 has no output requirement and a mostly empty IQ -> low.
        tile.push_iq(2, &[1, 2]);
        assert_eq!(Scheduler::priority(&tile, &tasks, 2), Priority::Low);
        // Medium beats low.
        let mut scheduler = Scheduler::new(SchedulingPolicy::OccupancyPriority);
        assert_eq!(scheduler.pick(&tile, &tasks), Some(1));
    }

    #[test]
    fn ties_go_to_the_larger_queue() {
        let mut tile = tile();
        let (tasks, _, _) = decls();
        // Both T1 (capacity 32) and T3 (capacity 2048) at low priority.
        tile.push_iq(0, &[1]);
        tile.push_iq(2, &[1, 2]);
        // Fill CQ0 above the medium threshold so T2 stays out of the picture.
        let filler = vec![0u32; 8];
        tile.push_cq(0, &filler);
        let mut scheduler = Scheduler::new(SchedulingPolicy::OccupancyPriority);
        assert_eq!(scheduler.pick(&tile, &tasks), Some(2));
    }

    #[test]
    fn mask_pick_matches_reference_pick_under_random_mutations() {
        // Drive both pickers over the same mutation sequence (on cloned
        // state so the round-robin pointers evolve identically) and assert
        // every decision matches.
        let (tasks, _, _) = decls();
        for policy in [SchedulingPolicy::RoundRobin, SchedulingPolicy::OccupancyPriority] {
            let mut tile = tile();
            let mut fast = Scheduler::new(policy);
            let mut reference = Scheduler::new(policy);
            let mut state = 0x2545f491u64;
            for step in 0..500 {
                // xorshift-ish mutation driver.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let r = state as usize;
                match r % 5 {
                    0 => {
                        tile.push_iq(r % 3, &[r as u32]);
                    }
                    1 => {
                        tile.pop_iq_word(r % 3);
                    }
                    2 => {
                        tile.push_cq(0, &[r as u32, 1]);
                    }
                    3 => {
                        let mut buf = [0u32; 2];
                        tile.pop_cq_into(0, 2, &mut buf);
                    }
                    _ => {}
                }
                let a = fast.pick(&tile, &tasks);
                let b = reference.pick_reference(&tile, &tasks);
                assert_eq!(a, b, "policy {policy:?} diverged at step {step}");
                // Consume the picked invocation so the run makes progress.
                if let Some(task) = a {
                    match tasks[task].params {
                        TaskParams::AutoPop(n) => {
                            tile.pop_iq_invocation(task, n);
                        }
                        TaskParams::SelfManaged => {
                            tile.pop_iq_word(task);
                        }
                    }
                }
            }
        }
    }
}
