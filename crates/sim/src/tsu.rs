//! Task Scheduling Unit: dispatch eligibility and priority policies.
//!
//! Section III-E: the TSU may only invoke a task when its input queue is
//! non-empty and its output queue has sufficient free entries, so that a
//! task never blocks mid-execution.  When several tasks are eligible the
//! TSU arbitrates; the paper's occupancy-based policy gives *high* priority
//! to a task whose IQ is nearly full (relieving end-point back-pressure),
//! *medium* priority to a task whose output queue is nearly empty (keeping
//! downstream tiles fed), and low priority otherwise, breaking ties toward
//! the larger queue.  A round-robin policy is kept as the `Basic-TSU`
//! ablation configuration.

use crate::config::SchedulingPolicy;
use crate::kernel::{TaskDecl, TaskParams};
use crate::tile::TileState;

/// IQ occupancy fraction at or above which a task becomes high priority.
pub const HIGH_PRIORITY_IQ_FRACTION: f64 = 0.75;
/// Output-queue occupancy fraction at or below which a task becomes medium
/// priority.
pub const MEDIUM_PRIORITY_OQ_FRACTION: f64 = 0.25;

/// Priority classes of the occupancy-based policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Default priority.
    Low = 0,
    /// The task's output queue is nearly empty: run it to keep consumers fed.
    Medium = 1,
    /// The task's input queue is nearly full: run it to relieve back-pressure.
    High = 2,
}

/// The per-tile task scheduler.
#[derive(Debug, Clone)]
pub struct Scheduler {
    policy: SchedulingPolicy,
    /// Round-robin pointer used for arbitration fairness.
    next_task: usize,
}

impl Scheduler {
    /// Creates a scheduler with the given policy.
    pub fn new(policy: SchedulingPolicy) -> Self {
        Scheduler {
            policy,
            next_task: 0,
        }
    }

    /// The policy in use.
    pub fn policy(&self) -> SchedulingPolicy {
        self.policy
    }

    /// Whether `task` can be dispatched right now on `tile`: its IQ holds at
    /// least one full invocation and every declared output-space guarantee
    /// holds.
    pub fn is_eligible(tile: &TileState, tasks: &[TaskDecl], task: usize) -> bool {
        let decl = &tasks[task];
        let iq = &tile.iqs[task];
        let has_input = match decl.params {
            TaskParams::AutoPop(n) => iq.len() >= n && n > 0,
            TaskParams::SelfManaged => !iq.is_empty(),
        };
        if !has_input {
            return false;
        }
        decl.cq_space_required
            .iter()
            .all(|&(channel, words)| tile.cqs[channel].free() >= words)
    }

    /// Priority of an eligible task under the occupancy policy.
    pub fn priority(tile: &TileState, tasks: &[TaskDecl], task: usize) -> Priority {
        let iq = &tile.iqs[task];
        if iq.occupancy_fraction() >= HIGH_PRIORITY_IQ_FRACTION {
            return Priority::High;
        }
        let decl = &tasks[task];
        let output_nearly_empty = decl
            .cq_space_required
            .iter()
            .any(|&(channel, _)| {
                tile.cqs[channel].occupancy_fraction() <= MEDIUM_PRIORITY_OQ_FRACTION
            });
        if output_nearly_empty {
            Priority::Medium
        } else {
            Priority::Low
        }
    }

    /// Picks the next task to dispatch on `tile`, or `None` if no task is
    /// eligible (the TSU then clock-gates the PU).
    pub fn pick(&mut self, tile: &TileState, tasks: &[TaskDecl]) -> Option<usize> {
        let num_tasks = tasks.len();
        if num_tasks == 0 {
            return None;
        }
        match self.policy {
            SchedulingPolicy::RoundRobin => {
                for offset in 0..num_tasks {
                    let task = (self.next_task + offset) % num_tasks;
                    if Self::is_eligible(tile, tasks, task) {
                        self.next_task = (task + 1) % num_tasks;
                        return Some(task);
                    }
                }
                None
            }
            SchedulingPolicy::OccupancyPriority => {
                let mut best: Option<(Priority, usize, usize)> = None;
                for offset in 0..num_tasks {
                    let task = (self.next_task + offset) % num_tasks;
                    if !Self::is_eligible(tile, tasks, task) {
                        continue;
                    }
                    let priority = Self::priority(tile, tasks, task);
                    let queue_size = tile.iqs[task].capacity();
                    let candidate = (priority, queue_size, task);
                    let better = match &best {
                        None => true,
                        Some((bp, bq, _)) => {
                            priority > *bp || (priority == *bp && queue_size > *bq)
                        }
                    };
                    if better {
                        best = Some(candidate);
                    }
                }
                let picked = best.map(|(_, _, task)| task);
                if let Some(task) = picked {
                    self.next_task = (task + 1) % num_tasks;
                }
                picked
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ChannelDecl, LocalArrayDecl};
    use crate::placement::{ArraySpace, Placement, VertexPlacement};

    fn decls() -> (Vec<TaskDecl>, Vec<ChannelDecl>, Vec<LocalArrayDecl>) {
        (
            vec![
                TaskDecl::new("T1", 32, TaskParams::SelfManaged),
                TaskDecl::new("T2", 128, TaskParams::AutoPop(3)).requires_cq_space(0, 8),
                TaskDecl::new("T3", 2048, TaskParams::AutoPop(2)),
            ],
            vec![ChannelDecl::new("CQ2", 2, ArraySpace::Vertex, 2, 16)],
            vec![],
        )
    }

    fn tile() -> TileState {
        let placement = Placement::new(4, 64, 256, VertexPlacement::Interleaved);
        let (tasks, channels, arrays) = decls();
        TileState::new(0, &placement, &tasks, &channels, &arrays, 0)
    }

    #[test]
    fn no_task_eligible_on_empty_queues() {
        let tile = tile();
        let (tasks, _, _) = decls();
        let mut scheduler = Scheduler::new(SchedulingPolicy::OccupancyPriority);
        assert!(scheduler.pick(&tile, &tasks).is_none());
        assert_eq!(scheduler.policy(), SchedulingPolicy::OccupancyPriority);
    }

    #[test]
    fn autopop_task_needs_all_parameters() {
        let mut tile = tile();
        let (tasks, _, _) = decls();
        tile.iqs[1].try_push(&[1, 2]);
        assert!(!Scheduler::is_eligible(&tile, &tasks, 1));
        tile.iqs[1].try_push(&[3]);
        assert!(Scheduler::is_eligible(&tile, &tasks, 1));
    }

    #[test]
    fn cq_space_requirement_blocks_dispatch() {
        let mut tile = tile();
        let (tasks, _, _) = decls();
        tile.iqs[1].try_push(&[1, 2, 3]);
        // Fill the CQ so fewer than 8 words remain.
        let filler = vec![0u32; 12];
        assert!(tile.cqs[0].try_push(&filler));
        assert!(!Scheduler::is_eligible(&tile, &tasks, 1));
        // Drain it and the task becomes eligible again.
        tile.cqs[0].pop_invocation(12).unwrap();
        assert!(Scheduler::is_eligible(&tile, &tasks, 1));
    }

    #[test]
    fn round_robin_cycles_through_eligible_tasks() {
        let mut tile = tile();
        let (tasks, _, _) = decls();
        tile.iqs[0].try_push(&[1]);
        tile.iqs[2].try_push(&[1, 2]);
        let mut scheduler = Scheduler::new(SchedulingPolicy::RoundRobin);
        let first = scheduler.pick(&tile, &tasks).unwrap();
        let second = scheduler.pick(&tile, &tasks).unwrap();
        assert_ne!(first, second);
        assert!([0, 2].contains(&first) && [0, 2].contains(&second));
    }

    #[test]
    fn nearly_full_iq_wins_priority() {
        let mut tile = tile();
        let (tasks, _, _) = decls();
        // T1's IQ at 100% (32 of 32 words) -> high priority.
        let filler = vec![7u32; 32];
        assert!(tile.iqs[0].try_push(&filler));
        // T3 has a little input -> low/medium priority.
        tile.iqs[2].try_push(&[1, 2]);
        assert_eq!(Scheduler::priority(&tile, &tasks, 0), Priority::High);
        let mut scheduler = Scheduler::new(SchedulingPolicy::OccupancyPriority);
        assert_eq!(scheduler.pick(&tile, &tasks), Some(0));
    }

    #[test]
    fn empty_output_queue_gives_medium_priority() {
        let mut tile = tile();
        let (tasks, _, _) = decls();
        tile.iqs[1].try_push(&[1, 2, 3]);
        // CQ0 is empty -> medium priority for T2.
        assert_eq!(Scheduler::priority(&tile, &tasks, 1), Priority::Medium);
        // T3 has no output requirement and a mostly empty IQ -> low.
        tile.iqs[2].try_push(&[1, 2]);
        assert_eq!(Scheduler::priority(&tile, &tasks, 2), Priority::Low);
        // Medium beats low.
        let mut scheduler = Scheduler::new(SchedulingPolicy::OccupancyPriority);
        assert_eq!(scheduler.pick(&tile, &tasks), Some(1));
    }

    #[test]
    fn ties_go_to_the_larger_queue() {
        let mut tile = tile();
        let (tasks, _, _) = decls();
        // Both T1 (capacity 32) and T3 (capacity 2048) at low priority.
        tile.iqs[0].try_push(&[1]);
        tile.iqs[2].try_push(&[1, 2]);
        // Fill CQ0 above the medium threshold so T2 stays out of the picture.
        let filler = vec![0u32; 8];
        tile.cqs[0].try_push(&filler);
        let mut scheduler = Scheduler::new(SchedulingPolicy::OccupancyPriority);
        assert_eq!(scheduler.pick(&tile, &tasks), Some(2));
    }
}
