//! Deterministic fault injection: timed fault schedules ([`FaultPlan`]),
//! their serialized spec format, the seeded random-plan generator, and the
//! per-run impact accounting ([`FaultReport`]).
//!
//! A fault plan is an explicit schedule of half-open cycle windows
//! `[start, end)` during which a piece of the machine degrades:
//!
//! * [`FaultEvent::LinkOutage`] — an outgoing router link stops starting
//!   new transmissions (fabric-side, modelled in `dalorex-noc`).
//! * [`FaultEvent::RouterStall`] — a whole router's crossbar freezes
//!   (fabric-side).
//! * [`FaultEvent::PuSlowdown`] — a tile's processing unit runs `factor`×
//!   slower: every task dispatched during the window occupies the PU for
//!   `factor`× its normal cost.
//! * [`FaultEvent::EndpointThrottle`] — a tile's endpoint bandwidth
//!   (messages drained/injected per cycle) is capped at `budget` during
//!   the window (never below 1, so progress is delayed, not denied).
//!
//! Faults *degrade* and never *drop*: every message still arrives, every
//! task still runs, and the run still quiesces — later.  Because every
//! fault only blocks or lengthens work, the engine-side skip bounds remain
//! valid lower bounds, and the schedule under a fault plan is bit-identical
//! across all five cycle engines (pinned by the equivalence square in
//! `tests/tile_path_equivalence.rs`).  An empty plan is schedule-invisible
//! and costs one branch per hot-path decision.
//!
//! # Spec format
//!
//! Plans serialize to a `;`-separated (or newline-separated, with `#`
//! comments) list of events:
//!
//! ```text
//! link:tile=5,port=east,start=100,end=200    # port omitted = all links
//! stall:tile=3,start=50,end=80
//! slow:tile=7,factor=4,start=0,end=1000
//! throttle:tile=2,budget=1,start=10,end=500
//! random:seed=42,count=8,horizon=20000      # seeded generated events
//! ```
//!
//! `random` expands deterministically — for a fixed seed *and* grid size —
//! into `count` events with windows starting inside `[0, horizon)`.

use dalorex_noc::fault::{NocFaultEvent, NocFaults};
use dalorex_noc::topology::Port;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::str::FromStr;

/// One timed fault event (see the [module docs](self) for the model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// An outgoing link of `tile` starts no new transmissions during the
    /// window; `port: None` blacks out every outgoing link at once.
    LinkOutage {
        /// Router whose output link fails.
        tile: usize,
        /// The failing link (`None` = all of the router's links).
        port: Option<Port>,
        /// First cycle of the outage (inclusive).
        start: u64,
        /// First cycle after the outage (exclusive).
        end: u64,
    },
    /// Router `tile` commits no forwards during the window; arrivals and
    /// endpoint drains continue.
    RouterStall {
        /// The stalled router.
        tile: usize,
        /// First cycle of the stall (inclusive).
        start: u64,
        /// First cycle after the stall (exclusive).
        end: u64,
    },
    /// Tile `tile`'s PU runs `factor`× slower: a task dispatched during
    /// the window costs `factor`× its normal PU cycles.
    PuSlowdown {
        /// The degraded tile.
        tile: usize,
        /// Cost multiplier (≥ 1; 1 is a no-op).
        factor: u64,
        /// First cycle of the slowdown (inclusive).
        start: u64,
        /// First cycle after the slowdown (exclusive).
        end: u64,
    },
    /// Tile `tile`'s endpoint bandwidth is capped at `budget` messages per
    /// cycle during the window (clamped to ≥ 1 at application time).
    EndpointThrottle {
        /// The throttled tile.
        tile: usize,
        /// Per-cycle drain/inject cap (≥ 1).
        budget: usize,
        /// First cycle of the throttle (inclusive).
        start: u64,
        /// First cycle after the throttle (exclusive).
        end: u64,
    },
}

impl FaultEvent {
    /// The tile the fault applies to.
    pub fn tile(&self) -> usize {
        match *self {
            FaultEvent::LinkOutage { tile, .. }
            | FaultEvent::RouterStall { tile, .. }
            | FaultEvent::PuSlowdown { tile, .. }
            | FaultEvent::EndpointThrottle { tile, .. } => tile,
        }
    }

    /// The fault's `[start, end)` window.
    pub fn window(&self) -> (u64, u64) {
        match *self {
            FaultEvent::LinkOutage { start, end, .. }
            | FaultEvent::RouterStall { start, end, .. }
            | FaultEvent::PuSlowdown { start, end, .. }
            | FaultEvent::EndpointThrottle { start, end, .. } => (start, end),
        }
    }

    fn validate(&self, index: usize, num_tiles: usize) -> Result<(), String> {
        let tile = self.tile();
        let (start, end) = self.window();
        if tile >= num_tiles {
            return Err(format!(
                "fault event {index} names tile {tile}, outside the {num_tiles}-tile grid"
            ));
        }
        if start >= end {
            return Err(format!(
                "fault event {index} has an empty window [{start}, {end})"
            ));
        }
        if end == u64::MAX {
            return Err(format!("fault event {index}: window end must be finite"));
        }
        match *self {
            FaultEvent::PuSlowdown { factor: 0, .. } => {
                Err(format!("fault event {index}: slowdown factor must be >= 1"))
            }
            FaultEvent::EndpointThrottle { budget: 0, .. } => Err(format!(
                "fault event {index}: throttle budget must be >= 1 (a zero budget would deny \
                 progress instead of delaying it)"
            )),
            FaultEvent::LinkOutage {
                port: Some(Port::Local),
                ..
            } => Err(format!(
                "fault event {index}: the local (ejection) port cannot fail; use a router stall"
            )),
            _ => Ok(()),
        }
    }
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultEvent::LinkOutage {
                tile,
                port,
                start,
                end,
            } => match port {
                Some(port) => write!(
                    f,
                    "link:tile={tile},port={},start={start},end={end}",
                    port_name(port)
                ),
                None => write!(f, "link:tile={tile},start={start},end={end}"),
            },
            FaultEvent::RouterStall { tile, start, end } => {
                write!(f, "stall:tile={tile},start={start},end={end}")
            }
            FaultEvent::PuSlowdown {
                tile,
                factor,
                start,
                end,
            } => write!(f, "slow:tile={tile},factor={factor},start={start},end={end}"),
            FaultEvent::EndpointThrottle {
                tile,
                budget,
                start,
                end,
            } => write!(
                f,
                "throttle:tile={tile},budget={budget},start={start},end={end}"
            ),
        }
    }
}

/// A seeded random-plan clause: expands into `count` events (mixing all
/// four kinds) whose windows start inside `[0, horizon)`.  Deterministic
/// for a fixed `(seed, grid size)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomFaultSpec {
    /// Generator seed.
    pub seed: u64,
    /// Number of events to generate (at most [`RandomFaultSpec::MAX_COUNT`]).
    pub count: usize,
    /// Upper bound (exclusive) on window start cycles; window lengths are
    /// drawn from `1..=max(horizon/8, 1)`.
    pub horizon: u64,
}

impl RandomFaultSpec {
    /// Cap on `count`, bounding the per-decision fault-lookup cost.
    pub const MAX_COUNT: usize = 256;

    /// Expands the clause into concrete events for a `num_tiles`-tile grid.
    fn expand(&self, num_tiles: usize) -> Result<Vec<FaultEvent>, String> {
        if self.count > Self::MAX_COUNT {
            return Err(format!(
                "random fault count {} exceeds the cap of {}",
                self.count,
                Self::MAX_COUNT
            ));
        }
        if self.horizon == 0 {
            return Err("random fault horizon must be >= 1".to_string());
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let max_len = (self.horizon / 8).max(1);
        let mut events = Vec::with_capacity(self.count);
        for _ in 0..self.count {
            let kind: u32 = rng.gen_range(0u32..4);
            let tile = rng.gen_range(0usize..num_tiles);
            let start = rng.gen_range(0u64..self.horizon);
            let end = start + rng.gen_range(1u64..=max_len);
            events.push(match kind {
                0 => {
                    let port = match rng.gen_range(0u32..5) {
                        0 => None,
                        1 => Some(Port::East),
                        2 => Some(Port::West),
                        3 => Some(Port::North),
                        _ => Some(Port::South),
                    };
                    FaultEvent::LinkOutage {
                        tile,
                        port,
                        start,
                        end,
                    }
                }
                1 => FaultEvent::RouterStall { tile, start, end },
                2 => FaultEvent::PuSlowdown {
                    tile,
                    factor: rng.gen_range(2u64..=8),
                    start,
                    end,
                },
                _ => FaultEvent::EndpointThrottle {
                    tile,
                    budget: 1,
                    start,
                    end,
                },
            });
        }
        Ok(events)
    }
}

/// An explicit, serializable schedule of timed fault events, plus an
/// optional seeded random clause.  The `SimConfig` knob all five cycle
/// engines apply bit-identically; an empty plan (the default) is
/// schedule-invisible.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Explicit events, in spec order.
    pub events: Vec<FaultEvent>,
    /// Optional seeded generator clause, expanded at resolve time (it
    /// needs the grid size).
    pub random: Option<RandomFaultSpec>,
}

impl FaultPlan {
    /// The empty plan: no faults, schedule-invisible.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// A plan made of the given explicit events.
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        FaultPlan {
            events,
            random: None,
        }
    }

    /// True when the plan schedules nothing (no explicit events and no
    /// random clause, or a random clause with `count == 0`).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.random.is_none_or(|r| r.count == 0)
    }

    /// Serializes the plan to its spec string (`;`-separated events; the
    /// random clause stays symbolic).  `parse` round-trips it exactly.
    pub fn to_spec(&self) -> String {
        let mut parts: Vec<String> = self.events.iter().map(|e| e.to_string()).collect();
        if let Some(random) = &self.random {
            parts.push(format!(
                "random:seed={},count={},horizon={}",
                random.seed, random.count, random.horizon
            ));
        }
        parts.join(";")
    }

    /// Parses a plan spec (see the [module docs](self) for the grammar).
    ///
    /// # Errors
    ///
    /// Returns a diagnostic naming the offending event on any syntax
    /// error, unknown event kind, unknown key, or unparsable number.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for raw in spec.split([';', '\n']) {
            let token = raw.trim();
            let token = match token.find('#') {
                Some(pos) => token[..pos].trim(),
                None => token,
            };
            if token.is_empty() {
                continue;
            }
            let (kind, rest) = token
                .split_once(':')
                .ok_or_else(|| format!("fault event '{token}' is missing its ':' separator"))?;
            let fields = parse_fields(token, rest)?;
            match kind {
                "link" => plan.events.push(FaultEvent::LinkOutage {
                    tile: require(token, &fields, "tile")?,
                    port: optional_port(token, &fields)?,
                    start: require(token, &fields, "start")?,
                    end: require(token, &fields, "end")?,
                }),
                "stall" => plan.events.push(FaultEvent::RouterStall {
                    tile: require(token, &fields, "tile")?,
                    start: require(token, &fields, "start")?,
                    end: require(token, &fields, "end")?,
                }),
                "slow" => plan.events.push(FaultEvent::PuSlowdown {
                    tile: require(token, &fields, "tile")?,
                    factor: require(token, &fields, "factor")?,
                    start: require(token, &fields, "start")?,
                    end: require(token, &fields, "end")?,
                }),
                "throttle" => plan.events.push(FaultEvent::EndpointThrottle {
                    tile: require(token, &fields, "tile")?,
                    budget: require(token, &fields, "budget")?,
                    start: require(token, &fields, "start")?,
                    end: require(token, &fields, "end")?,
                }),
                "random" => {
                    if plan.random.is_some() {
                        return Err("at most one random clause is allowed per plan".to_string());
                    }
                    plan.random = Some(RandomFaultSpec {
                        seed: require(token, &fields, "seed")?,
                        count: require(token, &fields, "count")?,
                        horizon: require(token, &fields, "horizon")?,
                    });
                }
                other => {
                    return Err(format!(
                        "unknown fault kind '{other}' in '{token}' \
                         (expected link, stall, slow, throttle or random)"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// Resolves the plan for a `num_tiles`-tile grid: validates every
    /// explicit event and deterministically expands the random clause.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic for out-of-grid tiles, empty windows, zero
    /// factors/budgets, or an oversized random clause.
    pub fn resolve(&self, num_tiles: usize) -> Result<Vec<FaultEvent>, String> {
        if num_tiles == 0 {
            return Err("cannot resolve a fault plan for a zero-tile grid".to_string());
        }
        let mut resolved = self.events.clone();
        if let Some(random) = &self.random {
            resolved.extend(random.expand(num_tiles)?);
        }
        for (index, event) in resolved.iter().enumerate() {
            event.validate(index, num_tiles)?;
        }
        Ok(resolved)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_spec())
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultPlan::parse(s)
    }
}

/// `key=value` pairs of one spec event, with duplicate/malformed checks.
fn parse_fields<'s>(token: &str, rest: &'s str) -> Result<Vec<(&'s str, &'s str)>, String> {
    let mut fields = Vec::new();
    for pair in rest.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("'{pair}' in '{token}' is not a key=value pair"))?;
        let key = key.trim();
        if fields.iter().any(|&(k, _)| k == key) {
            return Err(format!("duplicate key '{key}' in '{token}'"));
        }
        fields.push((key, value.trim()));
    }
    Ok(fields)
}

/// Looks up and parses a required numeric field.
fn require<T: FromStr>(token: &str, fields: &[(&str, &str)], key: &str) -> Result<T, String> {
    let (_, value) = fields
        .iter()
        .find(|&&(k, _)| k == key)
        .ok_or_else(|| format!("'{token}' is missing its '{key}=' field"))?;
    value
        .parse()
        .map_err(|_| format!("'{key}={value}' in '{token}' is not a valid number"))
}

/// Looks up the optional `port=` field of a link event.
fn optional_port(token: &str, fields: &[(&str, &str)]) -> Result<Option<Port>, String> {
    match fields.iter().find(|&&(k, _)| k == "port") {
        None => Ok(None),
        Some(&(_, value)) => parse_port(value)
            .map(Some)
            .map_err(|err| format!("{err} in '{token}'")),
    }
}

/// The spec name of a port.
pub fn port_name(port: Port) -> &'static str {
    match port {
        Port::East => "east",
        Port::West => "west",
        Port::North => "north",
        Port::South => "south",
        Port::RucheEast => "ruche-east",
        Port::RucheWest => "ruche-west",
        Port::RucheNorth => "ruche-north",
        Port::RucheSouth => "ruche-south",
        Port::Local => "local",
    }
}

/// Parses a spec port name (the inverse of [`port_name`]).
///
/// # Errors
///
/// Returns a diagnostic listing the valid names for anything else.
pub fn parse_port(name: &str) -> Result<Port, String> {
    match name {
        "east" => Ok(Port::East),
        "west" => Ok(Port::West),
        "north" => Ok(Port::North),
        "south" => Ok(Port::South),
        "ruche-east" => Ok(Port::RucheEast),
        "ruche-west" => Ok(Port::RucheWest),
        "ruche-north" => Ok(Port::RucheNorth),
        "ruche-south" => Ok(Port::RucheSouth),
        "local" => Ok(Port::Local),
        other => Err(format!(
            "unknown port '{other}' (expected east, west, north, south or a ruche-* variant)"
        )),
    }
}

/// Observed impact of one fault event over a run.
///
/// Fabric-side counters (`messages_delayed`, `delayed_cycles`) are
/// attributed per event at forward commits; tile-side counters
/// (`dispatches_slowed`, `extra_pu_cycles`, `throttled_messages`) are
/// accumulated per *tile*, so multiple slowdown (or throttle) events
/// sharing a tile report that tile's shared totals.  All counters derive
/// from schedule facts, so they are bit-identical across the five engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultImpactEntry {
    /// The resolved event this entry describes.
    pub event: FaultEvent,
    /// Messages whose wait at the faulted fabric resource overlapped the
    /// window (link outages and router stalls).
    pub messages_delayed: u64,
    /// Total cycles of overlap between those waits and the window.
    pub delayed_cycles: u64,
    /// Task dispatches whose PU cost was multiplied (PU slowdowns).
    pub dispatches_slowed: u64,
    /// Extra PU-busy cycles those dispatches cost versus fault-free.
    pub extra_pu_cycles: u64,
    /// Messages drained/injected at the tile while throttled (endpoint
    /// throttles).
    pub throttled_messages: u64,
}

/// Per-run fault accounting carried by every `SimOutcome`: one entry per
/// resolved fault event, in plan order (empty for an empty plan).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Per-event impact entries.
    pub entries: Vec<FaultImpactEntry>,
}

impl FaultReport {
    /// True when the plan was empty (no entries at all).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no scheduled fault measurably impacted the run (all
    /// counters zero) — e.g. every window opened after quiescence.
    pub fn is_zero_impact(&self) -> bool {
        self.entries.iter().all(|e| {
            e.messages_delayed == 0
                && e.delayed_cycles == 0
                && e.dispatches_slowed == 0
                && e.extra_pu_cycles == 0
                && e.throttled_messages == 0
        })
    }

    /// Total fabric-side delay cycles attributed to faults.
    pub fn total_delayed_cycles(&self) -> u64 {
        self.entries.iter().map(|e| e.delayed_cycles).sum()
    }

    /// Throughput loss of a faulted run versus its fault-free twin:
    /// `1 - fault_free_cycles / faulted_cycles` (0 when the fault cost
    /// nothing; 0.5 when the run took twice as long).
    pub fn throughput_loss(fault_free_cycles: u64, faulted_cycles: u64) -> f64 {
        if faulted_cycles == 0 {
            return 0.0;
        }
        1.0 - fault_free_cycles as f64 / faulted_cycles as f64
    }
}

/// What a tile-side compiled window does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TileFaultKind {
    /// Multiply dispatch cost by the factor.
    Slow(u64),
    /// Cap the endpoint budget.
    Throttle(usize),
}

/// One tile-side fault window, compiled for the dispatch/drain hot path.
#[derive(Debug, Clone, Copy)]
struct TileFaultWindow {
    kind: TileFaultKind,
    start: u64,
    end: u64,
}

/// A resolved, compiled fault plan, armed on a `Simulation`: the resolved
/// event list, the sorted transition cycles the skip engines clamp their
/// horizons to, the tile-side windows grouped per tile, and the mapping
/// from the fabric-side schedule back to plan order.  Only ever allocated
/// for a non-empty plan.
#[derive(Debug, Clone)]
pub(crate) struct ArmedFaults {
    /// Resolved events, in plan order.
    pub(crate) events: Vec<FaultEvent>,
    /// Every window start and end, sorted and deduplicated: the fault
    /// transitions the skip engines clamp their event horizons to.
    transitions: Vec<u64>,
    /// Per tile: `(offset, len)` into `tile_windows`.
    tile_index: Vec<(u32, u32)>,
    /// Tile-side (slowdown/throttle) windows, grouped by tile.
    tile_windows: Vec<TileFaultWindow>,
    /// The fabric-side schedule handed to the NoC, and per fabric event
    /// the index of its plan event (for report assembly).
    pub(crate) noc_faults: NocFaults,
    pub(crate) noc_event_map: Vec<usize>,
}

impl ArmedFaults {
    /// Resolves and compiles `plan` for a `num_tiles`-tile grid; `None`
    /// for an empty plan.
    pub(crate) fn arm(plan: &FaultPlan, num_tiles: usize) -> Result<Option<Box<Self>>, String> {
        let events = plan.resolve(num_tiles)?;
        if events.is_empty() {
            return Ok(None);
        }
        let mut transitions: Vec<u64> = events
            .iter()
            .flat_map(|e| {
                let (start, end) = e.window();
                [start, end]
            })
            .collect();
        transitions.sort_unstable();
        transitions.dedup();
        let mut noc_faults = NocFaults::default();
        let mut noc_event_map = Vec::new();
        let mut per_tile: Vec<Vec<TileFaultWindow>> = vec![Vec::new(); num_tiles];
        for (index, event) in events.iter().enumerate() {
            match *event {
                FaultEvent::LinkOutage {
                    tile,
                    port,
                    start,
                    end,
                } => {
                    noc_faults.events.push(NocFaultEvent::LinkOutage {
                        tile,
                        port,
                        start,
                        end,
                    });
                    noc_event_map.push(index);
                }
                FaultEvent::RouterStall { tile, start, end } => {
                    noc_faults
                        .events
                        .push(NocFaultEvent::RouterStall { tile, start, end });
                    noc_event_map.push(index);
                }
                FaultEvent::PuSlowdown {
                    tile,
                    factor,
                    start,
                    end,
                } => per_tile[tile].push(TileFaultWindow {
                    kind: TileFaultKind::Slow(factor),
                    start,
                    end,
                }),
                FaultEvent::EndpointThrottle {
                    tile,
                    budget,
                    start,
                    end,
                } => per_tile[tile].push(TileFaultWindow {
                    kind: TileFaultKind::Throttle(budget),
                    start,
                    end,
                }),
            }
        }
        let mut tile_index = Vec::with_capacity(num_tiles);
        let mut tile_windows = Vec::new();
        for windows in per_tile {
            tile_index.push((tile_windows.len() as u32, windows.len() as u32));
            tile_windows.extend(windows);
        }
        Ok(Some(Box::new(ArmedFaults {
            events,
            transitions,
            tile_index,
            tile_windows,
            noc_faults,
            noc_event_map,
        })))
    }

    /// The first fault transition strictly after `cycle` (`u64::MAX` when
    /// none remain) — the skip engines' extra horizon clamp.
    #[inline]
    pub(crate) fn next_transition_after(&self, cycle: u64) -> u64 {
        let idx = self.transitions.partition_point(|&t| t <= cycle);
        self.transitions.get(idx).copied().unwrap_or(u64::MAX)
    }

    #[inline]
    fn windows_at(&self, tile: usize) -> &[TileFaultWindow] {
        let (offset, len) = self.tile_index[tile];
        &self.tile_windows[offset as usize..(offset + len) as usize]
    }

    /// The PU cost multiplier active at `tile` on `cycle` (1 when none):
    /// the product of all active slowdown factors.
    #[inline]
    pub(crate) fn slow_factor(&self, tile: usize, cycle: u64) -> u64 {
        let mut factor = 1u64;
        for window in self.windows_at(tile) {
            if let TileFaultKind::Slow(f) = window.kind {
                if window.start <= cycle && cycle < window.end {
                    factor = factor.saturating_mul(f);
                }
            }
        }
        factor
    }

    /// The endpoint budget effective at `tile` on `cycle`: the configured
    /// budget capped by every active throttle window, clamped to ≥ 1 so a
    /// throttle delays progress but can never deny it.
    #[inline]
    pub(crate) fn endpoint_budget(&self, tile: usize, cycle: u64, configured: usize) -> usize {
        let mut budget = configured;
        for window in self.windows_at(tile) {
            if let TileFaultKind::Throttle(cap) = window.kind {
                if window.start <= cycle && cycle < window.end {
                    budget = budget.min(cap);
                }
            }
        }
        budget.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan {
            events: vec![
                FaultEvent::LinkOutage {
                    tile: 5,
                    port: Some(Port::East),
                    start: 100,
                    end: 200,
                },
                FaultEvent::LinkOutage {
                    tile: 1,
                    port: None,
                    start: 3,
                    end: 9,
                },
                FaultEvent::RouterStall {
                    tile: 3,
                    start: 50,
                    end: 80,
                },
                FaultEvent::PuSlowdown {
                    tile: 7,
                    factor: 4,
                    start: 0,
                    end: 1000,
                },
                FaultEvent::EndpointThrottle {
                    tile: 2,
                    budget: 1,
                    start: 10,
                    end: 500,
                },
            ],
            random: Some(RandomFaultSpec {
                seed: 42,
                count: 8,
                horizon: 20_000,
            }),
        }
    }

    #[test]
    fn spec_round_trips_exactly() {
        let plan = sample_plan();
        let spec = plan.to_spec();
        assert_eq!(FaultPlan::parse(&spec).unwrap(), plan);
        // And a second serialization is stable.
        assert_eq!(FaultPlan::parse(&spec).unwrap().to_spec(), spec);
    }

    #[test]
    fn parse_accepts_newlines_and_comments() {
        let plan = FaultPlan::parse(
            "# a comment line\n\
             stall:tile=0,start=1,end=2   # trailing comment\n\
             ; \n\
             slow:tile=1,factor=2,start=0,end=10",
        )
        .unwrap();
        assert_eq!(plan.events.len(), 2);
        assert!(plan.random.is_none());
    }

    #[test]
    fn parse_diagnoses_bad_specs() {
        for (spec, needle) in [
            ("flood:tile=0,start=1,end=2", "unknown fault kind"),
            ("stall tile=0", "missing its ':'"),
            ("stall:tile=0,start=1", "missing its 'end='"),
            ("stall:tile=zero,start=1,end=2", "not a valid number"),
            ("link:tile=0,port=up,start=1,end=2", "unknown port"),
            ("stall:tile=0,tile=1,start=1,end=2", "duplicate key"),
            (
                "random:seed=1,count=2,horizon=10;random:seed=2,count=1,horizon=5",
                "at most one random clause",
            ),
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(
                err.contains(needle),
                "spec '{spec}' produced '{err}', expected it to mention '{needle}'"
            );
        }
    }

    #[test]
    fn resolve_validates_events() {
        let out_of_grid = FaultPlan::from_events(vec![FaultEvent::RouterStall {
            tile: 99,
            start: 0,
            end: 10,
        }]);
        assert!(out_of_grid.resolve(16).unwrap_err().contains("tile 99"));
        let empty_window = FaultPlan::from_events(vec![FaultEvent::RouterStall {
            tile: 0,
            start: 10,
            end: 10,
        }]);
        assert!(empty_window.resolve(16).unwrap_err().contains("empty window"));
        let zero_budget = FaultPlan::from_events(vec![FaultEvent::EndpointThrottle {
            tile: 0,
            budget: 0,
            start: 0,
            end: 10,
        }]);
        assert!(zero_budget.resolve(16).unwrap_err().contains("budget"));
    }

    #[test]
    fn random_expansion_is_deterministic_and_valid() {
        let plan = FaultPlan {
            events: Vec::new(),
            random: Some(RandomFaultSpec {
                seed: 7,
                count: 32,
                horizon: 5_000,
            }),
        };
        let a = plan.resolve(64).unwrap();
        let b = plan.resolve(64).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        for event in &a {
            let (start, end) = event.window();
            assert!(start < end);
            assert!(event.tile() < 64);
        }
        // A different seed draws a different schedule.
        let other = FaultPlan {
            events: Vec::new(),
            random: Some(RandomFaultSpec {
                seed: 8,
                count: 32,
                horizon: 5_000,
            }),
        };
        assert_ne!(other.resolve(64).unwrap(), a);
    }

    #[test]
    fn armed_faults_answer_hot_path_queries() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent::PuSlowdown {
                tile: 1,
                factor: 3,
                start: 10,
                end: 20,
            },
            FaultEvent::PuSlowdown {
                tile: 1,
                factor: 2,
                start: 15,
                end: 25,
            },
            FaultEvent::EndpointThrottle {
                tile: 2,
                budget: 1,
                start: 5,
                end: 15,
            },
        ]);
        let armed = ArmedFaults::arm(&plan, 4).unwrap().unwrap();
        assert_eq!(armed.slow_factor(1, 9), 1);
        assert_eq!(armed.slow_factor(1, 10), 3);
        assert_eq!(armed.slow_factor(1, 17), 6); // overlapping windows compound
        assert_eq!(armed.slow_factor(1, 24), 2);
        assert_eq!(armed.slow_factor(0, 17), 1);
        assert_eq!(armed.endpoint_budget(2, 10, 4), 1);
        assert_eq!(armed.endpoint_budget(2, 20, 4), 4);
        // The clamp: a throttle can never zero the budget.
        assert_eq!(armed.endpoint_budget(2, 10, 1), 1);
        // Transitions: sorted dedup of all starts and ends.
        assert_eq!(armed.next_transition_after(0), 5);
        assert_eq!(armed.next_transition_after(5), 10);
        assert_eq!(armed.next_transition_after(15), 20);
        assert_eq!(armed.next_transition_after(25), u64::MAX);
    }

    #[test]
    fn empty_plan_arms_to_nothing() {
        assert!(ArmedFaults::arm(&FaultPlan::empty(), 16).unwrap().is_none());
        assert!(FaultPlan::empty().is_empty());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }
}
